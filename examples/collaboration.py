#!/usr/bin/env python3
"""A CCTL-style collaboration system with session churn.

The paper's second motivating application is CCTL, "a group
communication based collaboration system that manages several groups on
behalf of the same application": every document a team works on gets its
own group (membership awareness, chat, shared cursors), and users open
and close documents constantly.

Six users collaborate on documents in two teams.  Each document session
is one light-weight group; sessions come and go (churn), and the
dynamic service keeps re-balancing mappings — sharing heavy-weight
machinery per team while sessions churn on top.

Run:  python examples/collaboration.py
"""

from repro.core import LwgListener
from repro.core.config import LwgConfig
from repro.sim import SECOND
from repro.workloads import Cluster

TEAMS = {
    "design": ["p0", "p1", "p2"],
    "backend": ["p3", "p4", "p5"],
}


class SessionLog(LwgListener):
    """Tracks membership and edits of one user's document session."""

    def __init__(self, node, doc):
        self.node = node
        self.doc = doc
        self.peers = ()
        self.edits = []

    def on_view(self, lwg, view):
        self.peers = view.members

    def on_data(self, lwg, src, payload, size):
        self.edits.append((src, payload))


def main() -> None:
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(num_processes=6, seed=99, lwg_config=config)
    logs = {}
    handles = {}

    def open_doc(doc, users):
        for user in users:
            log = SessionLog(user, doc)
            logs[(doc, user)] = log
            handles[(doc, user)] = cluster.services[user].join(doc, log)

    def close_doc(doc, users):
        for user in users:
            cluster.services[user].leave(doc)
            handles.pop((doc, user), None)

    print("== Morning: the design team opens three documents ==")
    for doc in ("spec.md", "mockup.fig", "notes.txt"):
        open_doc(doc, TEAMS["design"])
    cluster.run_for_seconds(10)
    hwgs = {handles[(d, "p0")].hwg for d in ("spec.md", "mockup.fig", "notes.txt")}
    print(f"  3 documents -> {len(hwgs)} heavy-weight group(s): {sorted(hwgs)}")

    print("\n== Backend team starts its own sessions ==")
    for doc in ("api.yaml", "schema.sql"):
        open_doc(doc, TEAMS["backend"])
    cluster.run_for_seconds(10)
    backend_hwgs = {handles[(d, "p3")].hwg for d in ("api.yaml", "schema.sql")}
    print(f"  2 documents -> {len(backend_hwgs)} heavy-weight group(s) "
          f"(disjoint from design: {not (hwgs & backend_hwgs)})")

    print("\n== Concurrent edits are totally ordered per document ==")
    handles[("spec.md", "p0")].send("insert §2 heading", size=48)
    handles[("spec.md", "p1")].send("fix typo in §1", size=48)
    handles[("spec.md", "p2")].send("add TODO", size=48)
    cluster.run_for_seconds(2)
    orders = {tuple(logs[("spec.md", u)].edits) for u in TEAMS["design"]}
    print(f"  every member saw the same edit order: {len(orders) == 1}")
    for src, edit in logs[("spec.md", "p0")].edits:
        print(f"    {src}: {edit}")

    print("\n== Churn: documents close, new ones open ==")
    close_doc("notes.txt", TEAMS["design"])
    close_doc("api.yaml", TEAMS["backend"])
    open_doc("retro.md", TEAMS["design"])
    open_doc("deploy.sh", TEAMS["backend"])
    cluster.run_for_seconds(10)
    live_docs = sorted({doc for doc, _ in handles})
    print(f"  live documents: {live_docs}")
    all_hwgs = {h.hwg for h in handles.values()}
    print(f"  all sessions still on {len(all_hwgs)} heavy-weight groups")

    print("\n== A cross-team standup document brings everyone together ==")
    open_doc("standup.md", TEAMS["design"] + TEAMS["backend"])
    cluster.run_for_seconds(12)
    standup = handles[("standup.md", "p0")]
    print(f"  standup.md members: {standup.view.members}")
    print(f"  mapped onto: {standup.hwg}")

    print("\n== p2 goes offline mid-session ==")
    cluster.crash("p2")
    cluster.run_for_seconds(3)
    for doc in ("spec.md", "standup.md"):
        peers = logs[(doc, "p0")].peers
        print(f"  {doc}: surviving members {peers}")

    stats = cluster.service("p0").stats
    print(
        f"\nDone. p0: {stats.lwg_views_installed} LWG views installed, "
        f"{stats.switches_committed} switches, "
        f"{stats.data_delivered} edits delivered."
    )


if __name__ == "__main__":
    main()
