#!/usr/bin/env python3
"""Quickstart: light-weight groups in five minutes.

Builds a four-process cluster, joins everyone to two user groups
("chat" and "alerts"), shows that both light-weight groups transparently
share one heavy-weight group, exchanges totally-ordered messages, and
survives a member crash.

Run:  python examples/quickstart.py
"""

from repro.core import LwgListener
from repro.workloads import Cluster


class PrintingListener(LwgListener):
    """Prints every upcall, prefixed by the owning process."""

    def __init__(self, node: str):
        self.node = node

    def on_view(self, lwg, view):
        members = ", ".join(view.members)
        print(f"  [{self.node}] view of {lwg}: {{{members}}}  (id {view.view_id})")

    def on_data(self, lwg, src, payload, size):
        print(f"  [{self.node}] {lwg} <- {src}: {payload!r}")

    def on_left(self, lwg):
        print(f"  [{self.node}] left {lwg}")


def main() -> None:
    print("== 1. Build a 4-process cluster with the dynamic LWG service ==")
    cluster = Cluster(num_processes=4, seed=7)

    print("== 2. Everyone joins 'chat'; p0 and p1 also join 'alerts' ==")
    chat = [
        cluster.service(i).join("chat", PrintingListener(cluster.node_id(i)))
        for i in range(4)
    ]
    cluster.run_for_seconds(3)
    alerts = [
        cluster.service(i).join("alerts", PrintingListener(cluster.node_id(i)))
        for i in range(2)
    ]
    cluster.run_for_seconds(3)

    print("\n== 3. Transparent sharing: both LWGs ride the same HWG ==")
    print(f"  chat   -> {chat[0].hwg}")
    print(f"  alerts -> {alerts[0].hwg}")
    assert chat[0].hwg == alerts[0].hwg

    print("\n== 4. Totally-ordered multicast within each group ==")
    chat[0].send("hello from p0")
    chat[2].send("hello from p2")
    alerts[1].send({"severity": "low", "msg": "disk 81% full"})
    cluster.run_for_seconds(1)

    print("\n== 5. Crash p3: one HWG reconfiguration heals every group ==")
    cluster.crash(3)
    cluster.run_for_seconds(2)
    print(f"  chat view now: {chat[0].view.members}")

    print("\n== 6. Clean leave ==")
    alerts[1].leave()
    cluster.run_for_seconds(2)
    stats = cluster.service(0).stats
    print(
        f"\nDone. p0 stats: sent={stats.data_sent} delivered={stats.data_delivered} "
        f"filtered={stats.data_filtered} views={stats.lwg_views_installed}"
    )


if __name__ == "__main__":
    main()
