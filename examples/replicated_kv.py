#!/usr/bin/env python3
"""A replicated key-value store on light-weight groups.

Demonstrates the classic group-communication application pattern:

* every replica applies the same totally-ordered stream of updates, so
  all copies stay identical (state machine replication);
* a replica that joins late receives a **state snapshot** captured at
  its exact admission point in the total order (state transfer), then
  the live stream — no update is lost or applied twice;
* a partition splits the store into two diverging copies; the heal
  merges the groups again (the application reconciles its own data —
  here, last-writer-wins per key on a per-side counter).

Run:  python examples/replicated_kv.py
"""

from repro.core import LwgListener
from repro.workloads import Cluster


class KvReplica(LwgListener):
    """One replica of the store: applies SET operations in order."""

    def __init__(self, node: str):
        self.node = node
        self.data = {}
        self.applied = 0

    def on_data(self, lwg, src, payload, size):
        op, key, value = payload
        assert op == "set"
        self.data[key] = value
        self.applied += 1

    # -- state transfer -------------------------------------------------
    def get_state(self, lwg):
        return dict(self.data)

    def on_state(self, lwg, state):
        print(f"  [{self.node}] received snapshot with {len(state)} keys")
        self.data = dict(state)


def show(replicas, label):
    print(f"\n  {label}:")
    for node, replica in replicas.items():
        items = ", ".join(f"{k}={v}" for k, v in sorted(replica.data.items()))
        print(f"    {node}: {{{items}}}  ({replica.applied} ops applied)")


def main() -> None:
    cluster = Cluster(num_processes=4, seed=77, num_name_servers=2)
    replicas = {f"p{i}": KvReplica(f"p{i}") for i in range(3)}
    handles = {
        node: cluster.services[node].join("kv", replica)
        for node, replica in replicas.items()
    }

    print("== 1. Three replicas, ordered writes ==")
    cluster.run_for_seconds(4)
    handles["p0"].send(("set", "color", "blue"), size=48)
    handles["p1"].send(("set", "size", 42), size=48)
    handles["p2"].send(("set", "color", "green"), size=48)  # ordered after
    cluster.run_for_seconds(1)
    show(replicas, "after 3 writes (identical everywhere)")
    assert len({tuple(sorted(r.data.items())) for r in replicas.values()}) == 1

    print("\n== 2. A late replica joins and receives the snapshot ==")
    replicas["p3"] = KvReplica("p3")
    handles["p3"] = cluster.services["p3"].join("kv", replicas["p3"])
    cluster.run_for_seconds(3)
    handles["p0"].send(("set", "joined", "p3"), size=48)
    cluster.run_for_seconds(1)
    show(replicas, "after p3 joined (snapshot + live stream)")
    assert replicas["p3"].data == replicas["p0"].data

    print("\n== 3. Partition: both sides keep writing ==")
    cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "ns1"])
    cluster.run_for_seconds(4)
    handles["p0"].send(("set", "side", "left"), size=48)
    handles["p2"].send(("set", "side", "right"), size=48)
    handles["p2"].send(("set", "extra", 1), size=48)
    cluster.run_for_seconds(1)
    show(replicas, "during the partition (divergence is allowed)")

    print("\n== 4. Heal: the groups merge; writes flow group-wide again ==")
    cluster.heal()
    assert cluster.run_until(
        lambda: all(
            h.view is not None and len(h.view.members) == 4
            for h in handles.values()
        ),
        timeout_us=40_000_000,
    )
    handles["p1"].send(("set", "healed", True), size=48)
    cluster.run_for_seconds(1)
    show(replicas, "after the heal (new writes reach everyone)")
    healed = {node: r.data.get("healed") for node, r in replicas.items()}
    assert all(v is True for v in healed.values())
    print("\nDone. (Partition-era keys differ per side — reconciling "
          "divergent application data is the application's policy, e.g. "
          "CRDTs; the group layer guarantees ordered delivery per view "
          "and merged membership.)")


if __name__ == "__main__":
    main()
