#!/usr/bin/env python3
"""A Swiss-Exchange-style trading system on light-weight groups.

The paper motivates the service with the Swiss Exchange Trading System:
"A different group is associated with a different data 'subject' and the
resulting system uses as many as 50 groups that may overlap."

This example runs 8 trading gateways subscribing to 24 instrument
subjects across 3 market segments (equities / bonds / derivatives).
Gateways subscribe to every subject of their segments, so subjects of a
segment have identical membership — exactly the sharing opportunity the
LWG service exploits.  We then publish quotes, report how few
heavy-weight groups carry all 24 subjects, and fail over a gateway.

Run:  python examples/trading_system.py
"""

from collections import defaultdict

from repro.core import LwgListener
from repro.workloads import Cluster
from repro.core.config import LwgConfig
from repro.sim import SECOND

SEGMENTS = {
    "equities": ["NOVN", "NESN", "ROG", "UBSG", "ZURN", "ABBN", "CSGN", "SREN"],
    "bonds": ["CH10Y", "CH30Y", "EUR5Y", "USD2Y", "USD10Y", "CORP-A", "CORP-B", "MUNI"],
    "derivatives": ["SMI-FUT", "SMI-OPT", "EURCHF-FUT", "GOLD-OPT",
                    "RATE-SWP", "FX-SWP", "VOL-IDX", "CDS-X"],
}

#: Which market segments each gateway subscribes to.
GATEWAY_SEGMENTS = {
    "p0": ["equities"],
    "p1": ["equities"],
    "p2": ["equities", "derivatives"],
    "p3": ["equities", "derivatives"],
    "p4": ["bonds"],
    "p5": ["bonds"],
    "p6": ["bonds", "derivatives"],
    "p7": ["bonds", "derivatives"],
}


class QuoteBook(LwgListener):
    """Keeps the latest quote per subject at one gateway."""

    def __init__(self, node):
        self.node = node
        self.last_quote = {}
        self.updates = 0

    def on_data(self, lwg, src, payload, size):
        subject, price = payload
        self.last_quote[subject] = price
        self.updates += 1


def main() -> None:
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(num_processes=8, seed=13, lwg_config=config)
    books = {node: QuoteBook(node) for node in cluster.process_ids}
    handles = {}

    print("== Subscribing 8 gateways to 24 instrument subjects ==")
    for segment, subjects in SEGMENTS.items():
        members = [n for n, segs in GATEWAY_SEGMENTS.items() if segment in segs]
        print(f"  {segment:12s}: {len(subjects)} subjects x {len(members)} gateways")
        for subject in subjects:
            for node in members:
                handles[(subject, node)] = cluster.services[node].join(
                    subject, books[node]
                )
    print("  converging (joins + mapping heuristics)...")
    cluster.run_for_seconds(25)

    print("\n== Mapping achieved by the dynamic service ==")
    hwg_subjects = defaultdict(set)
    for (subject, node), handle in handles.items():
        if handle.hwg:
            hwg_subjects[handle.hwg].add(subject)
    for hwg, subjects in sorted(hwg_subjects.items()):
        print(f"  {hwg}: {len(subjects)} subjects")
    total_subjects = sum(len(s) for s in SEGMENTS.values())
    print(
        f"  -> {total_subjects} user groups on {len(hwg_subjects)} heavy-weight "
        f"groups (vs {total_subjects} without the service)"
    )

    print("\n== Publishing a round of quotes on every subject ==")
    price = 100.0
    for segment, subjects in SEGMENTS.items():
        publisher = [n for n, s in GATEWAY_SEGMENTS.items() if segment in s][0]
        for subject in subjects:
            handles[(subject, publisher)].send((subject, round(price, 2)), size=64)
            price += 0.25
    cluster.run_for_seconds(2)
    for node in ("p0", "p2", "p4", "p6"):
        book = books[node]
        print(f"  {node}: {len(book.last_quote)} subjects quoted, "
              f"{book.updates} updates")

    print("\n== Gateway p3 fails; every equities+derivatives subject heals ==")
    affected = [s for seg in GATEWAY_SEGMENTS["p3"] for s in SEGMENTS[seg]]
    cluster.crash("p3")
    # Wait for the failure detector + view changes rather than a fixed
    # sleep: mid-reconfiguration a handle briefly has no installed view.
    cluster.run_until(
        lambda: all(
            handles[(subject, "p2")].view is not None
            and "p3" not in handles[(subject, "p2")].view.members
            for subject in affected
        ),
        timeout_us=30 * SECOND,
    )
    healthy = sum(
        1
        for subject in affected
        if "p3" not in handles[(subject, "p2")].view.members
    )
    print(f"  {healthy}/{len(affected)} affected subjects reconfigured without p3")

    print("\n== Quotes still flow after the failure ==")
    before = books["p0"].updates
    handles[("NOVN", "p0")].send(("NOVN", 101.5), size=64)
    cluster.run_for_seconds(1)
    print(f"  p0 received {books['p0'].updates - before} new update(s)")
    print("\nDone.")


if __name__ == "__main__":
    main()
