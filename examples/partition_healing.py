#!/usr/bin/env python3
"""The paper's partition-healing walkthrough (Figures 3-4, Tables 3-4).

Recreates the exact situation of Figure 3 — two LWGs whose concurrent
views end up mapped onto *different* HWGs in two partitions — and then
narrates the four reconciliation steps of Section 6 as they execute:

  step 1  global peer discovery   (naming reconciliation + callbacks)
  step 2  mapping reconciliation  (switch to the highest group id)
  step 3  local peer discovery    (concurrent views share one HWG)
  step 4  merge-views protocol    (one flush merges them all)

Run:  python examples/partition_healing.py
"""

from repro.sim import SECOND
from repro.workloads import build_partition_scenario


def print_naming_db(cluster, groups, label):
    print(f"\n  naming database ({label}):")
    for server_id, server in sorted(cluster.name_servers.items()):
        for group in groups:
            records = server.db.live_records(f"lwg:{group}")
            for record in records:
                print(f"    [{server_id}] {record}")
            if not records:
                print(f"    [{server_id}] lwg:{group}: (no mapping)")


def main() -> None:
    print("== Figure 3: building inconsistent mappings across a partition ==")
    print("   partition p  = {p0, p1, ns0};  partition p' = {p2, p3, ns1}")
    scenario = build_partition_scenario(num_groups=2, seed=42)
    cluster = scenario.cluster
    for group in scenario.groups:
        for side, nodes in (("p ", scenario.side_a), ("p'", scenario.side_b)):
            handle = scenario.handles[(group, nodes[0])]
            print(
                f"   {side}: lwg:{group} view {handle.view.view_id} "
                f"{handle.view.members} -> {handle.hwg}"
            )
    print_naming_db(cluster, scenario.groups, "partitioned — each side knows its own")

    print("\n== The partition heals ==")
    interesting = {
        "naming": {"reconciled", "multiple_mappings"},
        "lwg": {"reconcile_switch", "switch_committed", "lwg_views_merged"},
    }
    log = []

    def listener(record):
        wanted = interesting.get(record.category)
        if wanted and record.event in wanted:
            log.append(record)

    cluster.env.tracer.subscribe(listener)
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=60 * SECOND)
    cluster.run_for_seconds(3)

    step_names = {
        "reconciled": "step 1  naming databases reconciled",
        "multiple_mappings": "step 1  MULTIPLE-MAPPINGS callback",
        "reconcile_switch": "step 2  switch to highest-gid HWG",
        "switch_committed": "step 2  switch committed",
        "lwg_views_merged": "step 4  concurrent LWG views merged (one flush)",
    }
    print("\n== Section 6 reconciliation, as it happened ==")
    seen = set()
    for record in log:
        key = (record.event, record.fields.get("lwg"), record.fields.get("target"),
               record.fields.get("node") if record.event == "lwg_views_merged" else None)
        if key in seen:
            continue  # repeated gossip/retry noise
        seen.add(key)
        t_ms = record.time / 1000
        detail = {k: v for k, v in record.fields.items()
                  if k in ("lwg", "target", "from_hwg", "to_hwg", "merged", "lwgs")}
        print(f"   t={t_ms:9.1f}ms  {step_names[record.event]:45s} {detail}")

    print("\n== Table 4 (final stage): merged views, obsolete mappings GC'd ==")
    for group in scenario.groups:
        handle = scenario.handles[(group, scenario.side_a[0])]
        print(
            f"   lwg:{group}: view {handle.view.view_id} members {handle.view.members}"
        )
        print(f"            parents (pre-heal views): "
              f"{[str(p) for p in handle.view.parents]}")
    print_naming_db(cluster, scenario.groups, "converged — one mapping per LWG")

    print("\n== Post-heal traffic flows in the merged views ==")
    scenario.handles[("a", scenario.side_a[0])].send("hello, reunited group")
    cluster.run_for_seconds(1)
    delivered = sum(
        1
        for node in scenario.side_a + scenario.side_b
        if any(p == "hello, reunited group"
               for _, p in scenario.probes[("a", node)].delivered)
    )
    print(f"   delivered at {delivered}/4 members")
    print("\nDone.")


if __name__ == "__main__":
    main()
