from glob import glob

from setuptools import setup

setup(
    # Ship the bundled examples so `python -m repro <example>` also works
    # from an installed wheel/sdist, not only a source checkout (the CLI
    # searches <prefix>/share/repro/examples as a fallback).
    data_files=[("share/repro/examples", sorted(glob("examples/*.py")))],
)
