"""Recovery-profile fuzzing: determinism across replays and hash seeds.

``crash_recover`` and ``corrupt_state`` steps pull randomness from
schedule-seeded streams (corruption offsets, downtimes) and replay the
entire durable snapshot+log machinery — any hidden dependence on object
identity, dict order or ``PYTHONHASHSEED`` would surface here as a
digest mismatch.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.fuzz import CLEAN, ScheduleGenerator, ScheduleRunner, Step, run_schedule
from tests.fuzz.test_runner import small_schedule

MS = 1_000


def test_recovery_replay_is_bit_for_bit_reproducible():
    schedule = ScheduleGenerator(11, "recovery").generate(0)
    assert any(s.kind in ("crash_recover", "corrupt_state") for s in schedule.steps)
    first = run_schedule(schedule)
    second = run_schedule(schedule)
    assert first.classification == second.classification
    assert first.digest == second.digest
    assert first.sim_time_us == second.sim_time_us


def test_corrupt_state_replays_identical_corruption():
    """The injected corruption itself is part of the deterministic replay."""
    schedule = small_schedule([
        Step(kind="burst", node="p0", group="s0", count=2),
        Step(kind="corrupt_state", node="ns0", mode="bit_flip",
             down_us=500 * MS, delay_us=2_000 * MS),
        Step(kind="settle", delay_us=4_000 * MS),
    ])
    first = ScheduleRunner(schedule).run()
    second = ScheduleRunner(schedule).run()
    assert first.digest == second.digest
    assert first.classification == CLEAN, first.detail


def test_recovery_steps_are_valid_noops_when_misaimed():
    """Shrinker safety: misaimed recovery steps no-op deterministically."""
    outcome = run_schedule(small_schedule([
        Step(kind="crash_recover", node="p99"),              # unknown node
        Step(kind="corrupt_state", node="p0", mode="bit_flip"),   # not a server
        Step(kind="corrupt_state", node="ns0", mode="nonsense"),  # unknown mode
        Step(kind="crash_recover", node="ns0", down_us=300 * MS),
        Step(kind="settle", delay_us=3_000 * MS),
    ]))
    assert outcome.classification == CLEAN, outcome.detail


@pytest.mark.slow
def test_recovery_digest_is_hashseed_independent():
    """The trace digest must not depend on PYTHONHASHSEED.

    Runs the same recovery schedule in two subprocesses with different
    hash seeds; a digest difference means set/dict iteration order leaks
    into protocol behaviour somewhere in the recovery path.
    """
    program = (
        "import json\n"
        "from repro.fuzz import ScheduleGenerator, run_schedule\n"
        "out = run_schedule(ScheduleGenerator(11, 'recovery').generate(1))\n"
        "print(json.dumps({'digest': out.digest, 'cls': out.classification}))\n"
    )
    results = []
    for hash_seed in ("0", "1"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        results.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    assert results[0] == results[1]


@pytest.mark.slow
def test_recovery_smoke_campaign_is_clean():
    """A small seeded recovery campaign must report zero problems."""
    generator = ScheduleGenerator(11, "recovery")
    for index in range(10):
        outcome = run_schedule(generator.generate(index))
        assert outcome.classification == CLEAN, (
            f"iteration {index}: {outcome.summary()} ({outcome.detail})"
        )
