"""Regression corpus: every frozen schedule must replay clean.

Each JSON file under ``tests/fuzz/corpus/`` is a complete schedule that
once exposed a bug (or covers a scenario class worth pinning).  Replays
are bit-for-bit deterministic, so any classification change here means
a behavioural change in the stack — investigate before re-freezing.
"""

from pathlib import Path

import pytest

from repro.fuzz import Schedule, run_schedule

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS, f"no schedules in {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_schedule_replays_clean(path):
    schedule = Schedule.from_json(path.read_text(encoding="utf-8"))
    outcome = run_schedule(schedule)
    assert outcome.is_clean, f"{path.name}: {outcome.summary()} {outcome.detail}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_file_is_canonical(path):
    # Frozen files stay in canonical form so diffs are meaningful.
    text = path.read_text(encoding="utf-8")
    assert Schedule.from_json(text).to_json() == text
