"""Schedule generation: determinism, independence, well-formedness."""

import pytest

from repro.fuzz import PROFILES, GeneratorConfig, ScheduleGenerator, Step
from repro.fuzz.schedule import STEP_KINDS
from repro.naming import CORRUPTION_MODES


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown profile"):
        ScheduleGenerator(0, profile="chaos")


def test_same_seed_same_schedules():
    a = ScheduleGenerator(7, "mixed").generate(3)
    b = ScheduleGenerator(7, "mixed").generate(3)
    assert a == b
    assert a.to_json() == b.to_json()


def test_iterations_are_independent():
    # generate(5) must not depend on whether earlier iterations ran —
    # that is what lets a single failing iteration be replayed alone.
    fresh = ScheduleGenerator(7, "mixed").generate(5)
    warmed = ScheduleGenerator(7, "mixed")
    for index in range(5):
        warmed.generate(index)
    assert warmed.generate(5) == fresh


def test_different_seeds_differ():
    a = ScheduleGenerator(1, "mixed").generate(0)
    b = ScheduleGenerator(2, "mixed").generate(0)
    assert a.steps != b.steps or a.seed != b.seed


@pytest.mark.parametrize("profile", PROFILES)
def test_schedules_are_well_formed(profile):
    config = GeneratorConfig(num_processes=5, num_groups=2)
    generator = ScheduleGenerator(11, profile, config=config)
    for index in range(10):
        schedule = generator.generate(index)
        processes = set(schedule.process_ids)
        servers = set(schedule.name_server_ids)
        assert config.min_steps <= len(schedule.steps) <= config.max_steps
        for group, members in schedule.initial_members.items():
            assert group in schedule.groups
            assert members and set(members) <= processes
        for step in schedule.steps:
            assert isinstance(step, Step)
            assert step.kind in STEP_KINDS
            if step.kind == "partition":
                assert 2 <= len(step.blocks) <= config.max_partition_blocks
                flat = [n for block in step.blocks for n in block]
                assert all(block for block in step.blocks)
                # Every process and name server lands in exactly one block.
                assert sorted(flat) == sorted(processes | servers)
            elif step.kind == "burst":
                assert step.node in processes
                assert step.group in schedule.groups
                assert 1 <= step.count <= config.max_burst
            elif step.kind in ("join", "leave"):
                assert step.node in processes
                assert step.group in schedule.groups
            elif step.kind in ("crash", "recover"):
                assert step.node in processes
            elif step.kind == "crash_recover":
                assert step.node in processes | servers
                assert step.down_us > 0
            elif step.kind == "corrupt_state":
                assert step.node in servers
                assert step.mode in CORRUPTION_MODES
                assert step.down_us > 0


def test_singleton_blocks_do_occur():
    # The generator must be able to isolate a single process — an
    # explicitly wanted case for quorum/minority behaviour.
    generator = ScheduleGenerator(11, "partition")
    saw_singleton = False
    for index in range(20):
        for step in generator.generate(index).steps:
            if step.kind != "partition":
                continue
            if any(len([n for n in b if n.startswith("p")]) == 1 for b in step.blocks):
                saw_singleton = True
    assert saw_singleton


def test_recovery_profile_exercises_new_kinds():
    generator = ScheduleGenerator(3, "recovery")
    kinds = set()
    modes = set()
    for index in range(10):
        for step in generator.generate(index).steps:
            kinds.add(step.kind)
            if step.kind == "corrupt_state":
                modes.add(step.mode)
    assert "crash_recover" in kinds
    assert "corrupt_state" in kinds
    # The profile should reach every corruption mode within a few runs.
    assert modes == set(CORRUPTION_MODES)


def test_labels_identify_campaign_and_iteration():
    schedule = ScheduleGenerator(7, "churn").generate(12)
    assert schedule.label == "fuzz-7-churn-0012"
    assert schedule.profile == "churn"
