"""Schedule replay: classification, determinism, validity guards, sabotage.

The last test is the fuzzer's end-to-end acceptance check: a cluster
with a deliberately sabotaged channel must be caught by the campaign
within a bounded number of iterations, and the shrinker must reduce the
failing schedule to a handful of steps that still reproduce the same
invariant violation.
"""

from repro.core.ids import lwg_id
from repro.fuzz import (
    CLEAN,
    VIOLATION,
    Schedule,
    ScheduleGenerator,
    ScheduleRunner,
    Step,
    reproducer_for,
    run_schedule,
    shrink,
)

MS = 1_000


def small_schedule(steps, seed=42):
    return Schedule(
        seed=seed,
        num_processes=3,
        num_name_servers=1,
        groups=("s0",),
        initial_members={"s0": ("p0", "p1", "p2")},
        settle_us=8_000 * MS,
        steps=steps,
        label="unit",
    )


def test_quiet_schedule_runs_clean():
    outcome = run_schedule(small_schedule([
        Step(kind="burst", node="p0", group="s0", count=2),
        Step(kind="settle"),
    ]))
    assert outcome.classification == CLEAN, outcome.detail
    assert outcome.steps_applied == 2
    assert outcome.digest


def test_replay_is_bit_for_bit_reproducible():
    schedule = ScheduleGenerator(3, "mixed").generate(0)
    first = run_schedule(schedule)
    second = run_schedule(schedule)
    assert first.classification == second.classification
    assert first.digest == second.digest
    assert first.sim_time_us == second.sim_time_us


def test_invalid_steps_are_deterministic_noops():
    # The shrinker deletes steps freely; whatever remains must stay
    # runnable.  Unknown nodes/groups, duplicate joins, crashes of
    # crashed nodes and heals without partitions all no-op.
    outcome = run_schedule(small_schedule([
        Step(kind="join", node="p99", group="s0"),
        Step(kind="join", node="p0", group="nope"),
        Step(kind="join", node="p0", group="s0"),       # already a member
        Step(kind="leave", node="p1", group="nope"),
        Step(kind="crash", node="p99"),
        Step(kind="recover", node="p0"),                 # not crashed
        Step(kind="heal"),                               # not partitioned
        Step(kind="burst", node="p9", group="s0", count=2),
        Step(kind="partition", blocks=(("p0", "p1"),)),  # single block
    ]))
    assert outcome.classification == CLEAN, outcome.detail


def test_crash_respects_min_alive():
    schedule = small_schedule([
        Step(kind="crash", node="p0"),
        Step(kind="crash", node="p1"),  # would leave 1 alive: refused
        Step(kind="crash", node="p2"),  # likewise
    ])
    runner = ScheduleRunner(schedule)
    outcome = runner.run()
    assert outcome.classification == CLEAN, outcome.detail
    assert runner.crashed == {"p0"}


def test_partition_step_updates_runner_state():
    schedule = small_schedule([
        Step(kind="partition", blocks=(("p0", "p1", "ns0"), ("p2",))),
        Step(kind="heal"),
    ])
    runner = ScheduleRunner(schedule)
    outcome = runner.run()
    assert outcome.classification == CLEAN, outcome.detail
    assert not runner.partitioned


def lossy_channel_sabotage(cluster):
    """Swallow one ordered delivery at the first live member of s0."""
    for node in cluster.process_ids:
        local = cluster.service(node).table.local(lwg_id("s0"))
        if local is None or local.hwg is None:
            continue
        endpoint = cluster.stack(node).endpoints.get(local.hwg)
        if endpoint is None:
            continue
        channel = endpoint.channel
        original = channel._deliver
        state = {"engaged": False}

        def lossy(msg, original=original, state=state):
            if not state["engaged"]:
                state["engaged"] = True
                return
            original(msg)

        channel._deliver = lossy
        return


def test_sabotaged_stack_is_caught_and_shrunk():
    """Acceptance: sabotage found within 50 iterations, shrunk to <= 8
    steps, and the shrunk schedule replays to the same violation."""
    generator = ScheduleGenerator(3, "mixed")
    failing = None
    outcome = None
    for index in range(50):
        schedule = generator.generate(index)
        outcome = run_schedule(schedule, sabotage=lossy_channel_sabotage)
        if outcome.classification == VIOLATION:
            failing = schedule
            break
    assert failing is not None, "sabotage went undetected for 50 iterations"

    def replay(candidate):
        return run_schedule(candidate, sabotage=lossy_channel_sabotage)

    result = shrink(failing, reproducer_for(outcome.invariant, replay))
    assert len(result.schedule.steps) <= 8
    final = replay(result.schedule)
    assert final.classification == VIOLATION
    assert final.invariant == outcome.invariant
