"""Schedule grammar: validation, description, canonical JSON round-trip."""

import json

import pytest

from repro.fuzz import DEFAULT_DELAY_US, Schedule, Step


def sample_schedule() -> Schedule:
    return Schedule(
        seed=12345,
        num_processes=4,
        num_name_servers=2,
        groups=("s0", "s1"),
        initial_members={"s0": ("p0", "p1"), "s1": ("p1", "p2", "p3")},
        steps=[
            Step(kind="partition", blocks=(("p0", "p1", "ns0"), ("p2",), ("p3", "ns1"))),
            Step(kind="burst", node="p1", group="s0", count=3, delay_us=600_000),
            Step(kind="crash", node="p2"),
            Step(kind="heal"),
            Step(kind="settle", delay_us=2_000_000),
        ],
        profile="mixed",
        label="sample",
    )


def test_unknown_step_kind_rejected():
    with pytest.raises(ValueError, match="unknown step kind"):
        Step(kind="explode")


def test_step_defaults():
    step = Step(kind="heal")
    assert step.delay_us == DEFAULT_DELAY_US
    assert step.node == "" and step.group == ""
    assert step.blocks == () and step.count == 0


def test_json_round_trip_preserves_everything():
    schedule = sample_schedule()
    clone = Schedule.from_json(schedule.to_json())
    assert clone == schedule


def test_json_is_canonical():
    schedule = sample_schedule()
    text = schedule.to_json()
    # Stable bytes: serializing twice (and after a round trip) matches.
    assert text == schedule.to_json()
    assert text == Schedule.from_json(text).to_json()
    data = json.loads(text)
    assert data["version"] == 1
    assert list(data) == sorted(data)


def test_future_schema_version_rejected():
    data = sample_schedule().to_dict()
    data["version"] = 99
    with pytest.raises(ValueError, match="schema version"):
        Schedule.from_dict(data)


def test_replace_steps_copies_without_aliasing():
    schedule = sample_schedule()
    shorter = schedule.replace_steps(schedule.steps[:2])
    assert len(shorter.steps) == 2
    assert len(schedule.steps) == 5
    assert shorter.seed == schedule.seed
    assert shorter.initial_members == schedule.initial_members
    shorter.initial_members["s9"] = ("p0",)
    assert "s9" not in schedule.initial_members


def test_describe_mentions_every_step():
    schedule = sample_schedule()
    text = schedule.describe()
    assert "sample" in text
    assert "partition(p0,p1,ns0|p2|p3,ns1)" in text
    assert "burst(p1->s0 x3)" in text
    assert "crash(p2)" in text


def test_derived_node_ids():
    schedule = sample_schedule()
    assert schedule.process_ids == ["p0", "p1", "p2", "p3"]
    assert schedule.name_server_ids == ["ns0", "ns1"]


def test_flat_schedule_json_omits_zoning_fields():
    # Pre-zoning corpus files must stay byte-canonical: a flat schedule
    # serializes without topology/zones keys and without per-step zones.
    data = json.loads(sample_schedule().to_json())
    assert "topology" not in data and "zones" not in data
    assert all("zone" not in step for step in data["steps"])
    decoded = Schedule.from_json(sample_schedule().to_json())
    assert decoded.topology == "flat" and decoded.zones == 0


def test_zoned_schedule_round_trips_topology_and_relay_steps():
    schedule = sample_schedule()
    schedule.topology = "zoned"
    schedule.zones = 4
    schedule.steps.append(Step(kind="relay_crash", zone=2))
    decoded = Schedule.from_json(schedule.to_json())
    assert decoded.topology == "zoned" and decoded.zones == 4
    assert decoded.steps[-1].kind == "relay_crash"
    assert decoded.steps[-1].zone == 2
    assert "zone 2" in decoded.steps[-1].describe()
    # replace_steps (the shrinker's constructor) keeps the topology.
    shrunk = decoded.replace_steps(decoded.steps[:1])
    assert shrunk.topology == "zoned" and shrunk.zones == 4
