"""Shrinker unit tests against synthetic (cheap) reproduction predicates."""

from repro.fuzz import Schedule, Step, shrink
from repro.fuzz.shrink import _MIN_DELAY_US


def schedule_with(steps):
    return Schedule(seed=1, steps=list(steps), label="shrink-unit")


def kinds(schedule):
    return [step.kind for step in schedule.steps]


def test_removes_irrelevant_steps():
    steps = (
        [Step(kind="settle") for _ in range(6)]
        + [Step(kind="crash", node="p0")]
        + [Step(kind="settle") for _ in range(6)]
    )

    def needs_crash(candidate):
        return any(step.kind == "crash" for step in candidate.steps)

    result = shrink(schedule_with(steps), needs_crash)
    assert kinds(result.schedule) == ["crash"]
    assert result.original_steps == 13
    assert not result.exhausted


def test_preserves_a_required_pair():
    steps = [
        Step(kind="settle"),
        Step(kind="partition", blocks=(("p0",), ("p1", "ns0"))),
        Step(kind="settle"),
        Step(kind="heal"),
        Step(kind="settle"),
    ]

    def needs_split_then_heal(candidate):
        ks = kinds(candidate)
        return (
            "partition" in ks and "heal" in ks
            and ks.index("partition") < ks.index("heal")
        )

    result = shrink(schedule_with(steps), needs_split_then_heal)
    assert kinds(result.schedule) == ["partition", "heal"]


def test_simplifies_surviving_steps():
    steps = [
        Step(kind="burst", node="p0", group="s0", count=6, delay_us=2_000_000),
        Step(
            kind="partition",
            blocks=(("p0",), ("p1",), ("p2", "ns0")),
            delay_us=2_000_000,
        ),
    ]

    def always(candidate):
        return len(candidate.steps) == 2

    result = shrink(schedule_with(steps), always)
    burst, partition = result.schedule.steps
    assert burst.count == 1
    assert burst.delay_us == _MIN_DELAY_US
    assert len(partition.blocks) == 2  # 3-way collapsed to 2-way
    assert partition.delay_us == _MIN_DELAY_US


def test_attempt_budget_is_respected():
    steps = [Step(kind="settle") for _ in range(20)]

    calls = []

    def irreducible(candidate):
        calls.append(1)
        # Only the full schedule reproduces: every deletion fails, the
        # worst case for ddmin, so the budget must cut the search off.
        return len(candidate.steps) == 20

    result = shrink(schedule_with(steps), irreducible, max_attempts=5)
    assert result.attempts == 5
    assert len(calls) == 5
    assert result.exhausted
    assert len(result.schedule.steps) == 20


def test_result_never_grows():
    steps = [Step(kind="settle") for _ in range(8)]
    result = shrink(schedule_with(steps), lambda c: True)
    assert len(result.schedule.steps) == 0
