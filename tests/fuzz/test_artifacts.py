"""Failure artifacts: frozen JSON + a generated pytest that replays it."""

import subprocess
import sys
from pathlib import Path

from repro.fuzz import FuzzOutcome, Schedule, Step, write_artifact
from repro.fuzz.artifacts import artifact_name


def failing_pair():
    schedule = Schedule(
        seed=9,
        num_processes=3,
        groups=("s0",),
        initial_members={"s0": ("p0", "p1")},
        steps=[Step(kind="crash", node="p1")],
        label="fuzz-9-mixed-0001",
    )
    outcome = FuzzOutcome(
        classification="violation",
        detail="p0 delivered s0 seq 2, expected seq 1",
        invariant="contiguous total order",
        step_index=0,
        digest="deadbeefdeadbeef",
    )
    return schedule, outcome


def test_artifact_name_is_filesystem_safe():
    schedule, _ = failing_pair()
    schedule.label = "lwg:s0/odd"
    assert artifact_name(schedule) == "lwg_s0_odd"


def test_write_artifact_emits_json_and_test(tmp_path):
    schedule, outcome = failing_pair()
    json_path, test_path = write_artifact(schedule, outcome, tmp_path)
    assert json_path.name == "fuzz-9-mixed-0001.json"
    assert test_path.name == "test_fuzz_9_mixed_0001.py"
    # The JSON replays to the identical schedule.
    clone = Schedule.from_json(json_path.read_text(encoding="utf-8"))
    assert clone == schedule
    # The generated test embeds the schedule and the expected verdict.
    source = test_path.read_text(encoding="utf-8")
    assert "'contiguous total order'" in source
    assert "'violation'" in source
    assert '"label": "fuzz-9-mixed-0001"' in source


def test_generated_test_is_collectible_and_honest(tmp_path):
    # The reproducer must be a real pytest: when the replay does NOT
    # reproduce the violation (here: a clean schedule frozen with a
    # violation verdict), it fails instead of passing vacuously.
    schedule, outcome = failing_pair()
    _, test_path = write_artifact(schedule, outcome, tmp_path)
    src_dir = Path(__file__).resolve().parents[2] / "src"
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "--no-header",
         "-p", "no:cacheprovider", str(test_path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        cwd=tmp_path,
    )
    assert result.returncode != 0
    assert "1 failed" in result.stdout
