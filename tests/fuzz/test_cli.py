"""The ``python -m repro fuzz`` command-line driver."""

from pathlib import Path

from repro.fuzz.cli import main

CORPUS_DIR = Path(__file__).parent / "corpus"


def test_small_campaign_exits_zero_and_reports(capsys):
    code = main(["--seed", "3", "--iters", "2", "--profile", "mixed",
                 "--no-shrink"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[iter 000] fuzz-3-mixed-0000" in out
    assert "[iter 001] fuzz-3-mixed-0001" in out
    assert "2 clean, 0 violation(s), 0 non-convergence" in out


def test_campaign_output_is_deterministic(capsys):
    main(["--seed", "3", "--iters", "1", "--no-shrink"])
    first = capsys.readouterr().out
    main(["--seed", "3", "--iters", "1", "--no-shrink"])
    second = capsys.readouterr().out
    assert first == second


def test_replay_directory_runs_the_corpus(capsys):
    code = main(["--replay", str(CORPUS_DIR)])
    out = capsys.readouterr().out
    assert code == 0
    for path in sorted(CORPUS_DIR.glob("*.json")):
        assert f"[replay] {path.name}" in out
    assert "0 failing" in out


def test_replay_single_file(capsys):
    path = sorted(CORPUS_DIR.glob("*.json"))[0]
    code = main(["--replay", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 schedule(s), 1 clean, 0 failing" in out


def test_replay_with_nothing_to_do_fails(tmp_path, capsys):
    code = main(["--replay", str(tmp_path)])  # empty directory
    assert code == 1
    assert "no schedule files" in capsys.readouterr().out
