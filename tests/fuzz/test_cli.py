"""The ``python -m repro fuzz`` command-line driver."""

import json
from pathlib import Path

from repro.fuzz.cli import main

CORPUS_DIR = Path(__file__).parent / "corpus"
PIN_FILE = Path(__file__).parent / "expected_digests.json"


def test_small_campaign_exits_zero_and_reports(capsys):
    code = main(["--seed", "3", "--iters", "2", "--profile", "mixed",
                 "--no-shrink"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[iter 000] fuzz-3-mixed-0000" in out
    assert "[iter 001] fuzz-3-mixed-0001" in out
    assert "2 clean, 0 violation(s), 0 non-convergence" in out


def test_campaign_output_is_deterministic(capsys):
    main(["--seed", "3", "--iters", "1", "--no-shrink"])
    first = capsys.readouterr().out
    main(["--seed", "3", "--iters", "1", "--no-shrink"])
    second = capsys.readouterr().out
    assert first == second


def test_replay_directory_runs_the_corpus(capsys):
    code = main(["--replay", str(CORPUS_DIR)])
    out = capsys.readouterr().out
    assert code == 0
    for path in sorted(CORPUS_DIR.glob("*.json")):
        assert f"[replay] {path.name}" in out
    assert "0 failing" in out


def test_replay_single_file(capsys):
    path = sorted(CORPUS_DIR.glob("*.json"))[0]
    code = main(["--replay", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 schedule(s), 1 clean, 0 failing" in out


def test_replay_with_nothing_to_do_fails(tmp_path, capsys):
    code = main(["--replay", str(tmp_path)])  # empty directory
    assert code == 1
    assert "no schedule files" in capsys.readouterr().out


def test_corpus_digests_match_committed_pins(capsys):
    """The frozen corpus replays to the exact pinned trace digests.

    This is the replay-transparency gate: any hot-path change that
    alters an RNG draw or an iteration order fails here, locally,
    before it ever reaches CI.
    """
    code = main(["--replay", str(CORPUS_DIR), "--expect-digests", str(PIN_FILE)])
    out = capsys.readouterr().out
    assert code == 0
    pinned_corpus = sum(1 for k in json.loads(PIN_FILE.read_text()) if k.endswith(".json"))
    assert f"{pinned_corpus} digest(s) match the pin file" in out


def test_digest_mismatch_fails_the_run(tmp_path, capsys):
    path = sorted(CORPUS_DIR.glob("*.json"))[0]
    pins = tmp_path / "pins.json"
    pins.write_text(json.dumps({path.name: "0" * 16}))
    code = main(["--replay", str(path), "--expect-digests", str(pins)])
    out = capsys.readouterr().out
    assert code == 1
    assert "digest mismatch" in out


def test_pin_file_matching_nothing_fails(tmp_path, capsys):
    path = sorted(CORPUS_DIR.glob("*.json"))[0]
    pins = tmp_path / "pins.json"
    pins.write_text(json.dumps({"unrelated.json": "0" * 16}))
    code = main(["--replay", str(path), "--expect-digests", str(pins)])
    out = capsys.readouterr().out
    assert code == 1
    assert "matched no schedules" in out
