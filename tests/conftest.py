"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.sim import SimEnv


@pytest.fixture
def env() -> SimEnv:
    """A fresh deterministic simulation environment."""
    return SimEnv.create(seed=42)
