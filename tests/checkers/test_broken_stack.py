"""Checker self-tests: a deliberately broken stack must trip a monitor.

These are the "does the smoke detector actually detect smoke" tests —
each one sabotages a real protocol component inside a live cluster and
asserts the corresponding invariant checker raises.
"""

import pytest

from repro.checkers import InvariantViolation
from repro.core.ids import lwg_id
from repro.workloads import Cluster


def converged_cluster():
    cluster = Cluster(num_processes=3, seed=7)
    handles = [cluster.service(i).join("room") for i in range(3)]
    cluster.run_for_seconds(10)
    assert all(handle.is_member for handle in handles)
    assert len({str(handle.view.view_id) for handle in handles}) == 1
    return cluster, handles


def hwg_channel(cluster, node, lwg):
    """The live ordered channel under ``lwg`` at ``node``."""
    local = cluster.service(node).table.local(lwg)
    assert local is not None and local.hwg is not None
    return cluster.stack(node).endpoints[local.hwg].channel


def test_silently_dropped_delivery_trips_the_delivery_checker():
    cluster, handles = converged_cluster()
    channel = hwg_channel(cluster, "p1", lwg_id("room"))
    original = channel._deliver
    dropped = []

    def lossy(msg):
        if not dropped:
            dropped.append(msg.seq)
            return  # swallow exactly one delivery, advancing nothing
        original(msg)

    channel._deliver = lossy
    handles[0].send("one")
    handles[0].send("two")
    with pytest.raises(InvariantViolation, match="contiguous total order"):
        cluster.run_for_seconds(5)
    assert dropped, "sabotage never engaged"


def test_skipped_flush_trips_the_transition_checker():
    cluster, handles = converged_cluster()
    channel = hwg_channel(cluster, "p1", lwg_id("room"))
    # p1 goes deaf to ordered data and then fakes its way through the
    # flush: it claims the cut was applied without delivering anything.
    channel.on_ordered = lambda msg: None

    def lying_fill(cut, missing):
        channel.delivered_upto = max(channel.delivered_upto, cut)

    channel.apply_fill = lying_fill
    handles[0].send("one")
    handles[0].send("two")
    cluster.run_for_seconds(3)  # p0/p2 deliver; p1 silently does not
    cluster.crash("p2")         # force a view change and its flush
    with pytest.raises(InvariantViolation, match="same view, same messages"):
        cluster.run_for_seconds(60)


def test_healthy_cluster_reports_no_violations():
    cluster, handles = converged_cluster()
    handles[0].send("one")
    handles[1].send("two")
    cluster.run_for_seconds(5)
    cluster.check_invariants()
    assert cluster.checkers is not None
    assert cluster.checkers.violations == []


def test_checkers_can_be_disabled_for_perf_runs():
    cluster = Cluster(num_processes=2, seed=7, checkers=False)
    assert cluster.checkers is None
    cluster.service(0).join("room")
    cluster.run_for_seconds(3)
    cluster.check_invariants()  # no-op, must not raise
