"""Unit tests for the naming-service checkers: genealogy-ordered GC and
replica convergence at quiesce (on fake clusters with real databases)."""

import pytest

from repro.checkers import (
    CheckerSuite,
    GenealogyGcChecker,
    InvariantViolation,
    NamingConvergenceChecker,
)
from repro.naming.database import NamingDatabase
from repro.naming.records import MappingRecord
from repro.sim.trace import Tracer
from repro.vsync.view import ViewId


def rig(checker):
    suite = CheckerSuite()
    suite.add(checker)
    tracer = Tracer(clock=lambda: 0)
    suite.attach(tracer)
    return tracer


def edge(tracer, child, *parents, server="ns0"):
    tracer.emit("naming", "genealogy_edge",
                server=server, child=child, parents=list(parents))


def gc(tracer, view, witness, server="ns0", lwg="lwg:a"):
    tracer.emit("naming", "record_gc",
                server=server, lwg=lwg, view=view, witness=witness)


# ----------------------------------------------------------------------
# GenealogyGcChecker
# ----------------------------------------------------------------------
def test_collecting_an_ancestor_passes():
    tracer = rig(GenealogyGcChecker())
    edge(tracer, "p0#2", "p0#1")
    gc(tracer, view="p0#1", witness="p0#2")


def test_transitive_ancestry_passes():
    tracer = rig(GenealogyGcChecker())
    edge(tracer, "p0#2", "p0#1")
    edge(tracer, "p0#3", "p0#2")
    gc(tracer, view="p0#1", witness="p0#3")


def test_merge_views_have_multiple_parents():
    tracer = rig(GenealogyGcChecker())
    edge(tracer, "p0#9", "p0#1", "p5#1")  # Figure-5 merge of two branches
    gc(tracer, view="p5#1", witness="p0#9")


def test_collecting_a_concurrent_view_fails():
    tracer = rig(GenealogyGcChecker())
    edge(tracer, "p0#2", "p0#1")
    edge(tracer, "p5#2", "p0#1")  # sibling branch: concurrent with p0#2
    with pytest.raises(InvariantViolation, match="genealogy-ordered GC"):
        gc(tracer, view="p0#2", witness="p5#2")


def test_collecting_with_an_unknown_witness_fails():
    tracer = rig(GenealogyGcChecker())
    with pytest.raises(InvariantViolation, match="genealogy-ordered GC"):
        gc(tracer, view="p0#1", witness="p9#9")


def test_a_view_cannot_witness_its_own_collection():
    tracer = rig(GenealogyGcChecker())
    edge(tracer, "p0#2", "p0#1")
    with pytest.raises(InvariantViolation, match="genealogy-ordered GC"):
        gc(tracer, view="p0#2", witness="p0#2")


# ----------------------------------------------------------------------
# NamingConvergenceChecker (at quiesce, against a fake cluster)
# ----------------------------------------------------------------------
class FakeNetwork:
    def __init__(self, down=()):
        self._down = set(down)

    def is_alive(self, node):
        return node not in self._down


class FakeEnv:
    def __init__(self, down=()):
        self.fabric = FakeNetwork(down)


class FakeServer:
    def __init__(self, node):
        self.node = node
        self.db = NamingDatabase()


class FakeCluster:
    def __init__(self, servers, down=()):
        self.env = FakeEnv(down)
        self.services = {}
        self.name_servers = {server.node: server for server in servers}


def record_of(coord, seq, hwg, version=1, lwg="lwg:a"):
    return MappingRecord(
        lwg=lwg, lwg_view=ViewId(coord, seq), lwg_members=(coord,),
        hwg=hwg, hwg_view=ViewId("h", 1), version=version, writer=coord,
    )


def quiesce(cluster):
    suite = CheckerSuite()
    suite.add(NamingConvergenceChecker())
    suite.check_quiescent(cluster)


def test_identical_replicas_pass():
    ns0, ns1 = FakeServer("ns0"), FakeServer("ns1")
    for server in (ns0, ns1):
        server.db.apply(record_of("p0", 1, "hwg:x"))
    quiesce(FakeCluster([ns0, ns1]))


def test_divergent_replicas_fail():
    ns0, ns1 = FakeServer("ns0"), FakeServer("ns1")
    ns0.db.apply(record_of("p0", 1, "hwg:x"))
    ns1.db.apply(record_of("p0", 1, "hwg:x"))
    ns1.db.apply(record_of("p9", 4, "hwg:y", lwg="lwg:b"))  # ns0 never saw it
    with pytest.raises(InvariantViolation, match="replica agreement"):
        quiesce(FakeCluster([ns0, ns1]))


def test_unreconciled_multiple_mappings_fail():
    ns0 = FakeServer("ns0")
    # Two live concurrent views of one LWG on different HWGs: the
    # Section-6 pipeline should have collapsed these before quiesce.
    ns0.db.apply(record_of("p0", 1, "hwg:x"))
    ns0.db.apply(record_of("p5", 1, "hwg:y"))
    assert ns0.db.conflicts()
    with pytest.raises(InvariantViolation, match="mappings reconciled"):
        quiesce(FakeCluster([ns0]))


def test_dead_servers_are_exempt():
    ns0, ns1 = FakeServer("ns0"), FakeServer("ns1")
    ns0.db.apply(record_of("p0", 1, "hwg:x"))
    ns1.db.apply(record_of("p9", 4, "hwg:y", lwg="lwg:b"))  # ns1 is down
    quiesce(FakeCluster([ns0, ns1], down={"ns1"}))
