"""Recovery-checker self-tests: broken recovery paths must trip monitors.

Same philosophy as test_broken_stack.py — each test sabotages one leg of
the crash-recovery machinery inside a live cluster and asserts that
:class:`~repro.checkers.recovery.RecoveryConvergenceChecker` catches it.
A checker that never fires against a deliberately broken implementation
proves nothing about the healthy one.
"""

import pytest

from repro.checkers import CheckerSuite, InvariantViolation
from repro.checkers.recovery import RecoveryConvergenceChecker
from repro.naming.persistence import inject_corruption
from repro.sim.trace import TraceRecord
from repro.workloads import Cluster


def converged_cluster():
    cluster = Cluster(num_processes=3, seed=7, num_name_servers=2)
    handles = [cluster.service(i).join("room") for i in range(3)]
    cluster.run_for_seconds(10)
    assert all(handle.is_member for handle in handles)
    assert len({str(handle.view.view_id) for handle in handles}) == 1
    return cluster, handles


# ----------------------------------------------------------------------
# Sabotage: skipping the incarnation bump
# ----------------------------------------------------------------------
def test_skipped_incarnation_bump_trips_the_checker():
    """A server restarting without bumping is caught on its next life."""
    cluster, _ = converged_cluster()
    store = cluster.stores["ns0"]
    frozen = store.incarnation() + 1
    store.bump_incarnation = lambda at_least=0: frozen  # the sabotage

    # First recovery reports ``frozen`` — above anything seen, so fine.
    cluster.crash("ns0")
    cluster.run_for_seconds(1)
    cluster.recover("ns0")
    cluster.run_for_seconds(2)

    # Second recovery reports the *same* incarnation: its stale traffic
    # would be indistinguishable from the new life.  The checker raises
    # inside the recovery event itself.
    cluster.crash("ns0")
    cluster.run_for_seconds(1)
    with pytest.raises(InvariantViolation, match="incarnation bump"):
        cluster.recover("ns0")
        cluster.run_for_seconds(1)


def test_skipped_stack_incarnation_bump_trips_the_checker():
    """The same monotonicity contract binds process stacks."""
    cluster, _ = converged_cluster()
    store = cluster.stores["p1"]
    frozen = store.incarnation() + 1
    store.bump_incarnation = lambda at_least=0: frozen

    cluster.crash("p1")
    cluster.run_for_seconds(1)
    cluster.recover("p1")
    cluster.run_for_seconds(2)

    cluster.crash("p1")
    cluster.run_for_seconds(1)
    with pytest.raises(InvariantViolation, match="incarnation bump"):
        cluster.recover("p1")
        cluster.run_for_seconds(1)


# ----------------------------------------------------------------------
# Sabotage: a recovery path that never reloads the corrupted store
# ----------------------------------------------------------------------
def test_unreloaded_corruption_trips_at_quiesce():
    """Injected corruption nobody loads back tests nothing — and fails."""
    cluster, _ = converged_cluster()
    server = cluster.name_servers["ns0"]
    rng = cluster.env.rng.stream("test:corrupt")
    mode = "bit_flip"
    detail = inject_corruption(server.store, mode, rng, db=server.db)
    cluster.env.tracer.emit(
        "recovery", "store_corrupted", node="ns0", mode=mode, detail=detail
    )
    # Sabotage: the restart path forgets to reload the durable areas.
    server.on_recover = lambda: None
    cluster.crash("ns0")
    cluster.run_for_seconds(1)
    cluster.recover("ns0")
    cluster.run_for_seconds(5)
    with pytest.raises(InvariantViolation, match="corruption reloaded"):
        cluster.check_invariants()


# ----------------------------------------------------------------------
# Sabotage: persistence that silently drops journal writes
# ----------------------------------------------------------------------
def test_dropped_journal_writes_trip_durable_completeness():
    """A store whose log stops recording diverges from the live replica."""
    cluster, handles = converged_cluster()
    store = cluster.stores["ns0"]
    store._append = lambda entry: None  # journal goes deaf
    # Fresh naming traffic after the sabotage: a leave rewrites the
    # room's mapping, so the live database moves while the durable areas
    # stand still.
    handles[2].leave()
    cluster.run_for_seconds(8)
    with pytest.raises(InvariantViolation, match="durable completeness"):
        cluster.check_invariants()


# ----------------------------------------------------------------------
# Direct unit coverage of the online monitor (synthetic trace records)
# ----------------------------------------------------------------------
def _recovery_record(time, event, **fields):
    return TraceRecord(time=time, category="recovery", event=event, fields=fields)


def test_monitor_accepts_monotonic_incarnations():
    suite = CheckerSuite(raise_immediately=False)
    checker = suite.add(RecoveryConvergenceChecker())
    checker.on_record(_recovery_record(10, "server_recovered", server="ns0", incarnation=2))
    checker.on_record(_recovery_record(20, "stack_recovered", node="p1", incarnation=1))
    checker.on_record(_recovery_record(30, "server_recovered", server="ns0", incarnation=3))
    assert suite.violations == []


def test_monitor_flags_stale_incarnation():
    suite = CheckerSuite(raise_immediately=False)
    checker = suite.add(RecoveryConvergenceChecker())
    checker.on_record(_recovery_record(10, "server_recovered", server="ns0", incarnation=5))
    checker.on_record(_recovery_record(20, "server_recovered", server="ns0", incarnation=5))
    assert len(suite.violations) == 1
    assert suite.violations[0].invariant == "incarnation bump"


def test_monitor_clears_pending_corruption_on_reload():
    suite = CheckerSuite(raise_immediately=False)
    checker = suite.add(RecoveryConvergenceChecker())
    checker.on_record(_recovery_record(10, "store_corrupted", node="ns0", mode="bit_flip"))
    assert checker._pending_corruption
    checker.on_record(_recovery_record(20, "server_recovered", server="ns0", incarnation=1))
    assert not checker._pending_corruption


# ----------------------------------------------------------------------
# No false positives: real recovery paths stay clean
# ----------------------------------------------------------------------
def test_healthy_corruption_recovery_reports_no_violations():
    cluster, handles = converged_cluster()
    server = cluster.name_servers["ns0"]
    rng = cluster.env.rng.stream("test:corrupt")
    detail = inject_corruption(server.store, "truncated_log", rng, db=server.db)
    cluster.env.tracer.emit(
        "recovery", "store_corrupted", node="ns0", mode="truncated_log",
        detail=detail,
    )
    cluster.crash("ns0")
    cluster.run_for_seconds(1)
    cluster.recover("ns0")
    # Leave ample time for the Merkle descent to re-reconcile ns0.
    cluster.run_for_seconds(20)
    cluster.check_invariants()
    assert cluster.checkers is not None
    assert cluster.checkers.violations == []
