"""Unit tests for the virtual-synchrony checkers, driven by hand-built
trace events (no simulated cluster)."""

import pytest

from repro.checkers import CheckerSuite, DeliveryChecker, InvariantViolation, ViewAgreementChecker
from repro.sim.trace import Tracer


def rig(checker):
    suite = CheckerSuite()
    suite.add(checker)
    tracer = Tracer(clock=lambda: 0)
    suite.attach(tracer)
    return tracer


def install(tracer, node, view, members, parents=(), group="hwg:g"):
    tracer.emit(
        "hwg", "view_installed",
        node=node, group=group, view=view, members=list(members),
        parents=list(parents),
    )


def deliver(tracer, node, view, seq, sender, sender_seq, group="hwg:g"):
    tracer.emit(
        "hwg", "data_delivered",
        node=node, group=group, view=view, seq=seq,
        sender=sender, sender_seq=sender_seq,
    )


# ----------------------------------------------------------------------
# ViewAgreementChecker
# ----------------------------------------------------------------------
def test_matching_installations_pass():
    tracer = rig(ViewAgreementChecker())
    install(tracer, "p0", "p0#1", ["p0", "p1"])
    install(tracer, "p1", "p0#1", ["p0", "p1"])


def test_divergent_membership_for_one_view_id_fails():
    tracer = rig(ViewAgreementChecker())
    install(tracer, "p0", "p0#1", ["p0", "p1"])
    with pytest.raises(InvariantViolation, match="view agreement"):
        install(tracer, "p1", "p0#1", ["p0", "p1", "p2"])


def test_installing_a_view_without_self_fails():
    tracer = rig(ViewAgreementChecker())
    with pytest.raises(InvariantViolation, match="self-inclusion"):
        install(tracer, "p9", "p0#1", ["p0", "p1"])


def test_same_view_id_in_different_groups_is_independent():
    tracer = rig(ViewAgreementChecker())
    install(tracer, "p0", "p0#1", ["p0"], group="hwg:a")
    install(tracer, "p1", "p0#1", ["p1"], group="hwg:b")  # no clash


# ----------------------------------------------------------------------
# DeliveryChecker: ordering
# ----------------------------------------------------------------------
def test_contiguous_deliveries_pass():
    tracer = rig(DeliveryChecker())
    for seq in range(3):
        deliver(tracer, "p0", "p0#1", seq, "p1", seq + 1)


def test_sequence_gap_fails():
    tracer = rig(DeliveryChecker())
    deliver(tracer, "p0", "p0#1", 0, "p1", 1)
    with pytest.raises(InvariantViolation, match="contiguous total order"):
        deliver(tracer, "p0", "p0#1", 2, "p1", 3)  # seq 1 silently lost


def test_repeated_sequence_fails():
    tracer = rig(DeliveryChecker())
    deliver(tracer, "p0", "p0#1", 0, "p1", 1)
    with pytest.raises(InvariantViolation, match="contiguous total order"):
        deliver(tracer, "p0", "p0#1", 0, "p1", 1)


def test_order_disagreement_between_members_fails():
    tracer = rig(DeliveryChecker())
    deliver(tracer, "p0", "p0#1", 0, "p1", 1)
    with pytest.raises(InvariantViolation, match="order agreement"):
        deliver(tracer, "p2", "p0#1", 0, "p3", 1)  # same slot, other message


def test_fifo_regression_fails():
    tracer = rig(DeliveryChecker())
    deliver(tracer, "p0", "p0#1", 0, "p1", 2)
    install(tracer, "p0", "p0#2", ["p0", "p1"], parents=["p0#1"])
    with pytest.raises(InvariantViolation, match="FIFO per sender"):
        deliver(tracer, "p0", "p0#2", 0, "p1", 1)  # old message resurfaces


# ----------------------------------------------------------------------
# DeliveryChecker: fail-stop and incarnations
# ----------------------------------------------------------------------
def test_delivery_at_a_crashed_node_fails():
    tracer = rig(DeliveryChecker())
    tracer.emit("network", "crash", node="p0")
    with pytest.raises(InvariantViolation, match="fail-stop"):
        deliver(tracer, "p0", "p0#1", 0, "p1", 1)


def test_recovered_node_may_deliver_again():
    tracer = rig(DeliveryChecker())
    tracer.emit("network", "crash", node="p0")
    tracer.emit("network", "recover", node="p0")
    deliver(tracer, "p0", "p0#1", 0, "p1", 1)


def test_crash_resets_the_senders_fifo_incarnation():
    tracer = rig(DeliveryChecker())
    deliver(tracer, "p0", "p0#1", 0, "p1", 5)
    # p1 crashes, recovers, and its fresh incarnation restarts at 1.
    tracer.emit("network", "crash", node="p1")
    tracer.emit("network", "recover", node="p1")
    deliver(tracer, "p0", "p0#2", 0, "p1", 1)  # not a FIFO regression


# ----------------------------------------------------------------------
# DeliveryChecker: same view, same messages
# ----------------------------------------------------------------------
def test_equal_transition_counts_pass():
    tracer = rig(DeliveryChecker())
    install(tracer, "p0", "p0#1", ["p0", "p1"])
    install(tracer, "p1", "p0#1", ["p0", "p1"])
    deliver(tracer, "p0", "p0#1", 0, "p0", 1)
    deliver(tracer, "p1", "p0#1", 0, "p0", 1)
    install(tracer, "p0", "p0#2", ["p0", "p1"], parents=["p0#1"])
    install(tracer, "p1", "p0#2", ["p0", "p1"], parents=["p0#1"])


def test_unequal_transition_counts_fail():
    tracer = rig(DeliveryChecker())
    install(tracer, "p0", "p0#1", ["p0", "p1"])
    install(tracer, "p1", "p0#1", ["p0", "p1"])
    deliver(tracer, "p0", "p0#1", 0, "p0", 1)
    deliver(tracer, "p0", "p0#1", 1, "p0", 2)
    deliver(tracer, "p1", "p0#1", 0, "p0", 1)  # p1 missed one
    install(tracer, "p0", "p0#2", ["p0", "p1"], parents=["p0#1"])
    with pytest.raises(InvariantViolation, match="same view, same messages"):
        install(tracer, "p1", "p0#2", ["p0", "p1"], parents=["p0#1"])


def test_partition_branches_are_not_compared():
    tracer = rig(DeliveryChecker())
    install(tracer, "p0", "p0#1", ["p0", "p1"])
    install(tracer, "p1", "p0#1", ["p0", "p1"])
    deliver(tracer, "p0", "p0#1", 0, "p0", 1)  # p1 partitioned it away
    # Different successor views = different transitions: both legal.
    install(tracer, "p0", "p0#2", ["p0"], parents=["p0#1"])
    install(tracer, "p1", "p1#2", ["p1"], parents=["p0#1"])


def test_fresh_joiner_is_not_compared():
    tracer = rig(DeliveryChecker())
    install(tracer, "p0", "p0#1", ["p0"])
    deliver(tracer, "p0", "p0#1", 0, "p0", 1)
    install(tracer, "p0", "p0#2", ["p0", "p1"], parents=["p0#1"])
    install(tracer, "p1", "p0#2", ["p0", "p1"], parents=["p0#1"])  # joiner


def test_leaving_clears_the_current_view():
    tracer = rig(DeliveryChecker())
    install(tracer, "p0", "p0#1", ["p0", "p1"])
    install(tracer, "p1", "p0#1", ["p0", "p1"])
    deliver(tracer, "p0", "p0#1", 0, "p0", 1)  # p1 never saw it
    tracer.emit("hwg", "left", node="p0", group="hwg:g", view="p0#1")
    install(tracer, "p1", "p0#2", ["p0", "p1"], parents=["p0#1"])
    # p0 rejoins into the same successor: it left, so its stale old-view
    # count (1 vs p1's 0) must not be compared as a transition.
    install(tracer, "p0", "p0#2", ["p0", "p1"], parents=["p0#1"])
