"""CheckerSuite plumbing: dispatch, reporting modes, quiesce fan-out."""

import pytest

from repro.checkers import Checker, CheckerSuite, InvariantViolation
from repro.sim.trace import Tracer


class BoomChecker(Checker):
    name = "boom"
    categories = ("boom",)

    def on_record(self, record):
        self.fail("always", f"saw {record.event}", record)


class CountingChecker(Checker):
    name = "counting"

    def __init__(self):
        super().__init__()
        self.seen = []
        self.quiesced = 0

    def on_record(self, record):
        self.seen.append((record.category, record.event))

    def at_quiesce(self, cluster):
        self.quiesced += 1


def rig(*checkers, raising=True):
    suite = CheckerSuite(raise_immediately=raising)
    for checker in checkers:
        suite.add(checker)
    tracer = Tracer(clock=lambda: 42)
    suite.attach(tracer)
    return suite, tracer


def test_violation_raises_at_the_emitting_event():
    suite, tracer = rig(BoomChecker())
    with pytest.raises(InvariantViolation) as excinfo:
        tracer.emit("boom", "anything")
    assert excinfo.value.invariant == "always"
    assert excinfo.value.time == 42
    assert suite.violations and suite.violations[0] is excinfo.value


def test_accumulate_mode_collects_without_raising():
    suite, tracer = rig(BoomChecker(), raising=False)
    tracer.emit("boom", "one")
    tracer.emit("boom", "two")
    assert len(suite.violations) == 2
    with pytest.raises(InvariantViolation):
        suite.assert_clean()
    assert "2 violation(s)" in suite.summary()


def test_clean_suite_passes_assert_clean():
    suite, _ = rig(CountingChecker())
    suite.assert_clean()
    assert suite.summary() == "checkers: clean"


def test_category_filter_and_wildcard_dispatch():
    boom, wildcard = BoomChecker(), CountingChecker()
    suite, tracer = rig(boom, wildcard, raising=False)
    tracer.emit("other", "ignored_by_boom")
    assert suite.violations == []  # category filter kept boom out
    assert wildcard.seen == [("other", "ignored_by_boom")]


def test_check_quiescent_visits_every_checker():
    first, second = CountingChecker(), CountingChecker()
    suite, _ = rig(first, second)
    suite.check_quiescent(cluster=None)
    assert first.quiesced == 1 and second.quiesced == 1


def test_standard_suite_registers_the_stock_monitors():
    suite = CheckerSuite.standard()
    names = {checker.name for checker in suite.checkers}
    assert names == {
        "view-agreement",
        "delivery",
        "lwg-agreement",
        "batch-accounting",
        "merge-round",
        "genealogy-gc",
        "naming-convergence",
        "lwg-convergence",
        "recovery-convergence",
        "zone-scope",
    }
