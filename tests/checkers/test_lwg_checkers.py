"""Unit tests for the LWG-layer checkers: view agreement, merge-round
exclusion, and the at-quiesce convergence monitor (on a fake cluster)."""

import pytest

from repro.checkers import (
    CheckerSuite,
    InvariantViolation,
    LwgAgreementChecker,
    LwgConvergenceChecker,
    MergeRoundChecker,
)
from repro.core.mapping_table import LwgState, MappingTable
from repro.sim.trace import Tracer
from repro.vsync.view import View, ViewId


def rig(checker):
    suite = CheckerSuite()
    suite.add(checker)
    tracer = Tracer(clock=lambda: 0)
    suite.attach(tracer)
    return tracer


def lwg_install(tracer, node, view, members, lwg="lwg:a"):
    tracer.emit(
        "lwg", "lwg_view_installed",
        node=node, lwg=lwg, view=view, members=list(members),
        hwg="hwg:x", reason="test",
    )


# ----------------------------------------------------------------------
# LwgAgreementChecker
# ----------------------------------------------------------------------
def test_lwg_views_must_agree_on_membership():
    tracer = rig(LwgAgreementChecker())
    lwg_install(tracer, "p0", "p0#1", ["p0", "p1"])
    with pytest.raises(InvariantViolation, match="LWG view agreement"):
        lwg_install(tracer, "p1", "p0#1", ["p1"])


def test_lwg_installer_must_be_a_member():
    tracer = rig(LwgAgreementChecker())
    with pytest.raises(InvariantViolation, match="LWG self-inclusion"):
        lwg_install(tracer, "p2", "p0#1", ["p0", "p1"])


def test_delivery_outside_the_view_membership_fails():
    tracer = rig(LwgAgreementChecker())
    lwg_install(tracer, "p0", "p0#1", ["p0", "p1"])
    tracer.emit("lwg", "lwg_data_delivered",
                node="p0", lwg="lwg:a", view="p0#1", sender="p1")
    with pytest.raises(InvariantViolation, match="member-only delivery"):
        tracer.emit("lwg", "lwg_data_delivered",
                    node="p2", lwg="lwg:a", view="p0#1", sender="p1")


def test_delivery_from_a_non_member_sender_fails():
    tracer = rig(LwgAgreementChecker())
    lwg_install(tracer, "p0", "p0#1", ["p0", "p1"])
    with pytest.raises(InvariantViolation, match="member-only delivery"):
        tracer.emit("lwg", "lwg_data_delivered",
                    node="p0", lwg="lwg:a", view="p0#1", sender="p9")


def test_delivery_in_an_unseen_view_is_not_judged():
    tracer = rig(LwgAgreementChecker())
    tracer.emit("lwg", "lwg_data_delivered",
                node="p0", lwg="lwg:a", view="p9#9", sender="p1")


# ----------------------------------------------------------------------
# MergeRoundChecker
# ----------------------------------------------------------------------
def trigger(tracer, node="p0", hwg="hwg:x", lwg="lwg:a"):
    tracer.emit("lwg", "merge_views_triggered", node=node, hwg=hwg, lwg=lwg)


def test_two_concurrent_rounds_on_one_hwg_fail():
    tracer = rig(MergeRoundChecker())
    trigger(tracer, lwg="lwg:a")
    with pytest.raises(InvariantViolation, match="one merge round per HWG"):
        trigger(tracer, lwg="lwg:b")


def test_flush_point_closes_the_round():
    tracer = rig(MergeRoundChecker())
    trigger(tracer)
    tracer.emit("hwg", "view_installed",
                node="p0", group="hwg:x", view="p0#2",
                members=["p0"], parents=["p0#1"])
    trigger(tracer)  # new round after the flush: fine


def test_retry_reset_allows_a_new_round():
    tracer = rig(MergeRoundChecker())
    trigger(tracer)
    tracer.emit("lwg", "merge_round_retry", node="p0", hwg="hwg:x", lwg="lwg:a")
    trigger(tracer)


def test_completion_event_closes_the_round():
    tracer = rig(MergeRoundChecker())
    trigger(tracer)
    tracer.emit("lwg", "merge_round_completed", node="p0", hwg="hwg:x")
    trigger(tracer)


def test_rounds_on_distinct_hwgs_and_nodes_are_independent():
    tracer = rig(MergeRoundChecker())
    trigger(tracer, node="p0", hwg="hwg:x")
    trigger(tracer, node="p0", hwg="hwg:y")
    trigger(tracer, node="p1", hwg="hwg:x")


def test_crash_discards_the_nodes_open_rounds():
    tracer = rig(MergeRoundChecker())
    trigger(tracer, node="p0")
    tracer.emit("network", "crash", node="p0")
    trigger(tracer, node="p0")  # fresh incarnation


# ----------------------------------------------------------------------
# LwgConvergenceChecker (at quiesce, against a fake cluster)
# ----------------------------------------------------------------------
class FakeNetwork:
    def __init__(self, down=()):
        self._down = set(down)

    def is_alive(self, node):
        return node not in self._down


class FakeEnv:
    def __init__(self, down=()):
        self.fabric = FakeNetwork(down)


class FakeLwgService:
    def __init__(self):
        self.table = MappingTable()


class FakeCluster:
    def __init__(self, services, down=()):
        self.env = FakeEnv(down)
        self.services = services
        self.name_servers = {}


def member(service, lwg, view, hwg="hwg:x"):
    local = service.table.ensure_local(lwg, object())
    local.state = LwgState.MEMBER
    local.view = view
    local.hwg = hwg
    return local


def view_of(lwg, coord, seq, *members):
    return View(lwg, ViewId(coord, seq), tuple(members), ())


def quiesce(cluster):
    suite = CheckerSuite()
    suite.add(LwgConvergenceChecker())
    suite.check_quiescent(cluster)


def test_converged_lwg_passes():
    p0, p1 = FakeLwgService(), FakeLwgService()
    shared = view_of("lwg:a", "p0", 3, "p0", "p1")
    member(p0, "lwg:a", shared)
    member(p1, "lwg:a", shared)
    quiesce(FakeCluster({"p0": p0, "p1": p1}))


def test_concurrent_views_at_quiesce_fail():
    p0, p1 = FakeLwgService(), FakeLwgService()
    member(p0, "lwg:a", view_of("lwg:a", "p0", 3, "p0"))
    member(p1, "lwg:a", view_of("lwg:a", "p1", 3, "p1"))
    with pytest.raises(InvariantViolation, match="concurrent views converge"):
        quiesce(FakeCluster({"p0": p0, "p1": p1}))


def test_split_hwg_mapping_at_quiesce_fails():
    p0, p1 = FakeLwgService(), FakeLwgService()
    shared = view_of("lwg:a", "p0", 3, "p0", "p1")
    member(p0, "lwg:a", shared, hwg="hwg:x")
    member(p1, "lwg:a", shared, hwg="hwg:y")
    with pytest.raises(InvariantViolation, match="single HWG mapping"):
        quiesce(FakeCluster({"p0": p0, "p1": p1}))


def test_view_membership_must_match_the_claimants():
    p0 = FakeLwgService()
    member(p0, "lwg:a", view_of("lwg:a", "p0", 3, "p0", "p1"))
    with pytest.raises(InvariantViolation, match="membership matches view"):
        quiesce(FakeCluster({"p0": p0}))  # p1 claims nothing


def test_dead_nodes_are_exempt_from_convergence():
    p0, p1 = FakeLwgService(), FakeLwgService()
    member(p0, "lwg:a", view_of("lwg:a", "p0", 3, "p0"))
    member(p1, "lwg:a", view_of("lwg:a", "p1", 3, "p1"))  # p1 is down
    quiesce(FakeCluster({"p0": p0, "p1": p1}, down={"p1"}))
