"""``python -m repro``: example resolution (source tree AND installed
wheel layouts) plus subcommand dispatch."""

from pathlib import Path

from repro.__main__ import (
    EXAMPLES,
    candidate_example_dirs,
    find_examples_dir,
    main,
)


def fake_source_checkout(tmp_path: Path) -> Path:
    """<repo>/src/repro/__main__.py with <repo>/examples alongside."""
    package_file = tmp_path / "src" / "repro" / "__main__.py"
    package_file.parent.mkdir(parents=True)
    package_file.write_text("")
    examples = tmp_path / "examples"
    examples.mkdir()
    (examples / "quickstart.py").write_text("print('hi')\n")
    return package_file


def fake_wheel_install(tmp_path: Path) -> Path:
    """site-packages/repro/__main__.py + <prefix>/share/repro/examples."""
    package_file = (
        tmp_path / "lib" / "python" / "site-packages" / "repro" / "__main__.py"
    )
    package_file.parent.mkdir(parents=True)
    package_file.write_text("")
    examples = tmp_path / "share" / "repro" / "examples"
    examples.mkdir(parents=True)
    (examples / "quickstart.py").write_text("print('hi')\n")
    return package_file


def test_source_checkout_layout_resolves(tmp_path):
    package_file = fake_source_checkout(tmp_path)
    found = find_examples_dir(package_file=str(package_file))
    assert found == tmp_path / "examples"


def test_installed_wheel_layout_resolves(tmp_path):
    package_file = fake_wheel_install(tmp_path)
    found = find_examples_dir(
        package_file=str(package_file), prefix=str(tmp_path)
    )
    assert found == tmp_path / "share" / "repro" / "examples"


def test_source_layout_wins_over_prefix(tmp_path):
    # A source checkout run inside a venv that ALSO has the wheel data:
    # the checkout's examples (most specific candidate) win.
    package_file = fake_source_checkout(tmp_path)
    wheel_examples = tmp_path / "share" / "repro" / "examples"
    wheel_examples.mkdir(parents=True)
    (wheel_examples / "quickstart.py").write_text("")
    found = find_examples_dir(
        package_file=str(package_file), prefix=str(tmp_path)
    )
    assert found == tmp_path / "examples"


def test_missing_examples_reports_all_candidates(tmp_path):
    package_file = tmp_path / "repro" / "__main__.py"
    package_file.parent.mkdir(parents=True)
    package_file.write_text("")
    candidates = candidate_example_dirs(
        package_file=str(package_file), prefix=str(tmp_path)
    )
    assert find_examples_dir(
        package_file=str(package_file), prefix=str(tmp_path)
    ) is None
    assert len(candidates) == 3
    assert tmp_path / "share" / "repro" / "examples" in candidates


def test_real_package_finds_the_repo_examples():
    # In this checkout the bundled examples must resolve.
    found = find_examples_dir()
    assert found is not None
    for name in EXAMPLES:
        assert (found / f"{name}.py").is_file(), name


def test_usage_on_unknown_example(capsys):
    assert main(["not-an-example"]) == 1
    out = capsys.readouterr().out
    assert "usage:" in out
    assert "quickstart" in out


def test_bare_invocation_lists_examples(capsys):
    assert main([]) == 0
    assert "available examples" in capsys.readouterr().out


def test_fuzz_subcommand_dispatches(capsys):
    assert main(["fuzz", "--iters", "0"]) == 0
    assert "0 iteration(s)" in capsys.readouterr().out
