"""Shared test helpers (importable as ``tests.helpers``)."""

from __future__ import annotations

from repro.sim import SECOND, SimEnv
from repro.vsync import GroupAddressing, HwgListener, ProtocolStack


class RecordingListener(HwgListener):
    """HWG listener that records every upcall."""

    def __init__(self, node: str = ""):
        self.node = node
        self.views = []
        self.data = []
        self.stops = 0
        self.lefts = 0

    def on_view(self, group, view):
        self.views.append(view)

    def on_data(self, group, src, payload, size):
        self.data.append((src, payload))

    def on_stop(self, group, stop_ok):
        self.stops += 1
        stop_ok()

    def on_left(self, group):
        self.lefts += 1


def make_group(env: SimEnv, n: int, group: str = "g", prefix: str = "p"):
    """n stacks, all joined to one HWG; returns (stacks, endpoints, listeners)."""
    addressing = GroupAddressing()
    stacks = [ProtocolStack(env, f"{prefix}{i}", addressing) for i in range(n)]
    listeners = [RecordingListener(s.node) for s in stacks]
    endpoints = [s.endpoint(group, listeners[i]) for i, s in enumerate(stacks)]
    for endpoint in endpoints:
        endpoint.join()
    return stacks, endpoints, listeners


def converged(endpoints, size: int) -> bool:
    """All endpoints share one view id with ``size`` members."""
    views = [e.current_view for e in endpoints]
    if any(v is None for v in views):
        return False
    ids = {v.view_id for v in views}
    return len(ids) == 1 and all(len(v.members) == size for v in views)


def run_until(env: SimEnv, predicate, timeout_s: float = 10.0, step_us: int = 50_000) -> bool:
    deadline = env.sim.now + int(timeout_s * SECOND)
    while env.sim.now < deadline:
        if predicate():
            return True
        env.sim.run_until(min(deadline, env.sim.now + step_us))
    return predicate()
