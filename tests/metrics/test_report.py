"""Tests for paper-style report formatting."""

from repro.metrics import format_table, series_table, shape_check


def test_format_table_aligns_columns():
    text = format_table("Title", ["a", "bbb"], [[1, 2], [333, 4]])
    assert "Title" in text
    lines = [l for l in text.splitlines() if l]
    assert any("333" in l for l in lines)


def test_format_table_formats_floats():
    text = format_table("T", ["x"], [[1.23456]])
    assert "1.23" in text


def test_format_table_note():
    text = format_table("T", ["x"], [[1]], note="hello")
    assert "note: hello" in text


def test_series_table_one_column_per_series():
    text = series_table(
        "Fig", "n", [1, 2], {"none": [10, 20], "dynamic": [11, 21]}, unit="ms"
    )
    assert "none (ms)" in text and "dynamic (ms)" in text
    assert "21" in text


def test_series_table_handles_missing_points():
    text = series_table("Fig", "n", [1, 2], {"s": [10]})
    assert "-" in text


def test_shape_check_markers():
    assert shape_check("ok", True).startswith("[PASS]")
    assert shape_check("bad", False).startswith("[FAIL]")
