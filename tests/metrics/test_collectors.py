"""Tests for measurement collectors."""

from repro.metrics import LatencyCollector, RecoveryTimer, SummaryStats, ThroughputMeter


def test_latency_collector_groups_by_key():
    collector = LatencyCollector()
    collector.record("g1", 100, 300)
    collector.record("g1", 100, 500)
    collector.record("g2", 0, 50)
    assert collector.samples("g1") == [200, 400]
    assert collector.samples() == [200, 400, 50]
    assert collector.keys() == ["g1", "g2"]


def test_latency_summary():
    collector = LatencyCollector()
    for latency in (100, 200, 300, 400):
        collector.record("g", 0, latency)
    summary = collector.summary("g")
    assert summary.count == 4
    assert summary.mean_us == 250
    assert summary.max_us == 400


def test_quantiles_single_sample():
    stats = SummaryStats.of([42.0])
    assert stats.p50_us == 42.0
    assert stats.p95_us == 42.0
    assert stats.max_us == 42.0


def test_quantiles_two_samples():
    stats = SummaryStats.of([20.0, 10.0])
    # Nearest-rank: ceil(0.5 * 2) = rank 1 -> the lower value, and
    # ceil(0.95 * 2) = rank 2 -> the upper one (the old floor-index
    # formula returned the max for p50 here).
    assert stats.p50_us == 10.0
    assert stats.p95_us == 20.0


def test_quantiles_nineteen_samples():
    stats = SummaryStats.of(list(range(1, 20)))
    assert stats.p50_us == 10  # ceil(9.5) = rank 10
    assert stats.p95_us == 19  # ceil(18.05) = rank 19


def test_quantiles_twenty_samples():
    stats = SummaryStats.of(list(range(1, 21)))
    assert stats.p50_us == 10
    # ceil(19.0) = rank 19; the old int(0.95 * 20) indexed past it and
    # reported the max (20) as p95.
    assert stats.p95_us == 19


def test_quantiles_hundred_samples():
    stats = SummaryStats.of(list(range(1, 101)))
    assert stats.p50_us == 50
    assert stats.p95_us == 95
    assert stats.max_us == 100


def test_summary_of_empty_is_none():
    assert SummaryStats.of([]) is None
    assert LatencyCollector().summary() is None


def test_summary_str_formats_ms():
    summary = SummaryStats.of([1000.0])
    assert "mean=1.00ms" in str(summary)


def test_throughput_meter_window():
    meter = ThroughputMeter()
    meter.open_window(1_000_000)
    for _ in range(10):
        meter.record_delivery()
    meter.close_window(2_000_000)
    assert meter.throughput_per_second() == 10


def test_throughput_ignores_deliveries_outside_window():
    meter = ThroughputMeter()
    meter.record_delivery()  # before window
    meter.open_window(0)
    meter.record_delivery()
    meter.close_window(1_000_000)
    meter.record_delivery()  # after window
    assert meter.delivered == 1


def test_throughput_empty_window_is_zero():
    meter = ThroughputMeter()
    assert meter.throughput_per_second() == 0.0


def test_recovery_timer_completes_when_all_reconfigure():
    timer = RecoveryTimer()
    timer.arm(1000, "victim", [("g1", "a"), ("g1", "b")])
    timer.note_view("g1", "a", ["a", "b"], 2000)
    assert not timer.complete
    timer.note_view("g1", "b", ["a", "b"], 2500)
    assert timer.complete
    assert timer.recovery_time_us() == 1500


def test_recovery_timer_ignores_views_containing_victim():
    timer = RecoveryTimer()
    timer.arm(1000, "victim", [("g1", "a")])
    timer.note_view("g1", "a", ["a", "victim"], 2000)
    assert not timer.complete


def test_recovery_timer_ignores_pre_crash_views():
    timer = RecoveryTimer()
    timer.arm(1000, "victim", [("g1", "a")])
    timer.note_view("g1", "a", ["a"], 500)
    assert not timer.complete


def test_recovery_timer_first_reconfiguration_wins():
    timer = RecoveryTimer()
    timer.arm(0, "v", [("g1", "a")])
    timer.note_view("g1", "a", ["a"], 100)
    timer.note_view("g1", "a", ["a", "b"], 200)
    assert timer.recovery_time_us() == 100


def test_recovery_per_group_breakdown():
    timer = RecoveryTimer()
    timer.arm(0, "v", [("g1", "a"), ("g2", "a")])
    timer.note_view("g1", "a", ["a"], 100)
    timer.note_view("g2", "a", ["a"], 300)
    assert timer.per_group_recovery_us() == {"g1": 100, "g2": 300}
