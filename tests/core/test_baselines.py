"""Tests for the comparison services: no-LWG, static, isolated."""

from repro.core import LwgListener
from repro.sim import SECOND
from repro.workloads import Cluster


class Recorder(LwgListener):
    def __init__(self):
        self.views = []
        self.data = []
        self.lefts = 0

    def on_view(self, lwg, view):
        self.views.append(view)

    def on_data(self, lwg, src, payload, size):
        self.data.append((src, payload))

    def on_left(self, lwg):
        self.lefts += 1


def converged(handles, size):
    views = [h.view for h in handles]
    if any(v is None for v in views):
        return False
    return len({v.view_id for v in views}) == 1 and all(
        len(v.members) == size for v in views
    )


# ----------------------------------------------------------------------
# NoLwgService
# ----------------------------------------------------------------------
def test_none_flavour_basic_group():
    cluster = Cluster(num_processes=3, seed=41, flavour="none")
    recorders = [Recorder() for _ in range(3)]
    handles = [cluster.service(i).join("g", recorders[i]) for i in range(3)]
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=10 * SECOND)
    handles[0].send("direct")
    cluster.run_for_seconds(2)
    assert all(("p0", "direct") in r.data for r in recorders)


def test_none_flavour_one_hwg_per_group():
    cluster = Cluster(num_processes=2, seed=42, flavour="none")
    g = [cluster.service(i).join("g") for i in range(2)]
    h = [cluster.service(i).join("h") for i in range(2)]
    assert cluster.run_until(
        lambda: converged(g, 2) and converged(h, 2), timeout_us=10 * SECOND
    )
    assert g[0].hwg != h[0].hwg


def test_none_flavour_leave():
    cluster = Cluster(num_processes=2, seed=43, flavour="none")
    recorders = [Recorder(), Recorder()]
    handles = [cluster.service(i).join("g", recorders[i]) for i in range(2)]
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=10 * SECOND)
    cluster.service(1).leave("g")
    assert cluster.run_until(lambda: recorders[1].lefts == 1, timeout_us=10 * SECOND)


def test_none_flavour_has_no_naming_traffic():
    cluster = Cluster(num_processes=2, seed=44, flavour="none")
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=10 * SECOND)
    assert all(s.requests_served == 0 for s in cluster.name_servers.values())


# ----------------------------------------------------------------------
# Static service
# ----------------------------------------------------------------------
def test_static_flavour_maps_everything_to_one_hwg():
    cluster = Cluster(num_processes=4, seed=45, flavour="static")
    g = [cluster.service(i).join("g") for i in range(4)]
    h = [cluster.service(i).join("h") for i in (0, 1)]
    assert cluster.run_until(
        lambda: converged(g, 4) and converged(h, 2), timeout_us=15 * SECOND
    )
    assert g[0].hwg == h[0].hwg
    assert g[0].hwg.startswith("hwg:static")


def test_static_flavour_never_switches():
    cluster = Cluster(num_processes=4, seed=46, flavour="static")
    g = [cluster.service(i).join("g") for i in range(4)]
    small = [cluster.service(i).join("small") for i in (0,)]
    cluster.run_for_seconds(12)
    assert cluster.service(0).stats.switches_started == 0


def test_static_flavour_preserves_lwg_semantics():
    """Even statically mapped, each LWG keeps its own views and filtering."""
    cluster = Cluster(num_processes=3, seed=47, flavour="static")
    r_g = [Recorder() for _ in range(3)]
    g = [cluster.service(i).join("g", r_g[i]) for i in range(3)]
    r_h = Recorder()
    h = [cluster.service(0).join("h", r_h), cluster.service(1).join("h")]
    assert cluster.run_until(
        lambda: converged(g, 3) and converged(h, 2), timeout_us=15 * SECOND
    )
    h[0].send("h-data")
    cluster.run_for_seconds(2)
    assert ("p0", "h-data") in r_h.data
    assert all(("p0", "h-data") not in r.data for r in r_g)


# ----------------------------------------------------------------------
# Isolated service (ablation)
# ----------------------------------------------------------------------
def test_isolated_flavour_private_hwgs():
    cluster = Cluster(num_processes=2, seed=48, flavour="isolated")
    g = [cluster.service(i).join("g") for i in range(2)]
    h = [cluster.service(i).join("h") for i in range(2)]
    assert cluster.run_until(
        lambda: converged(g, 2) and converged(h, 2), timeout_us=15 * SECOND
    )
    assert g[0].hwg != h[0].hwg


def test_all_flavours_share_the_user_api():
    for flavour in ("dynamic", "static", "isolated", "none"):
        cluster = Cluster(num_processes=2, seed=49, flavour=flavour)
        recorder = Recorder()
        handle = cluster.service(0).join("g", recorder)
        other = cluster.service(1).join("g")
        assert cluster.run_until(
            lambda: converged([handle, other], 2), timeout_us=15 * SECOND
        ), flavour
        handle.send("x")
        cluster.run_for_seconds(2)
        assert recorder.data, flavour
        handle.leave()
        cluster.run_for_seconds(3)
