"""Tests for the initial mapping policies, including the Isis-style hints."""

from repro.core import (
    DynamicMappingPolicy,
    HintedMappingPolicy,
    IsolatedMappingPolicy,
    LwgListener,
    StaticMappingPolicy,
)
from repro.core.service import LwgService
from repro.naming.client import NamingClient
from repro.sim import SECOND
from repro.workloads import Cluster


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


def test_static_policy_fixed_target():
    policy = StaticMappingPolicy("hwg:fixed")
    assert policy.choose("lwg:any", None) == "hwg:fixed"


def test_isolated_policy_always_fresh():
    assert IsolatedMappingPolicy().choose("lwg:any", None) is None


def test_dynamic_policy_on_live_cluster():
    cluster = Cluster(num_processes=2, seed=71)
    first = [cluster.service(i).join("a") for i in range(2)]
    assert cluster.run_until(lambda: converged(first, 2), timeout_us=10 * SECOND)
    # The dynamic policy reuses the HWG we are already in.
    chosen = DynamicMappingPolicy().choose("lwg:b", cluster.service(0))
    assert chosen == first[0].hwg


def test_hinted_policy_without_hint_falls_back_to_dynamic():
    cluster = Cluster(num_processes=2, seed=72)
    first = [cluster.service(i).join("a") for i in range(2)]
    assert cluster.run_until(lambda: converged(first, 2), timeout_us=10 * SECOND)
    policy = HintedMappingPolicy()
    assert policy.choose("lwg:b", cluster.service(0)) == first[0].hwg


def test_hinted_policy_picks_covering_hwg():
    cluster = Cluster(num_processes=4, seed=73)
    big = [cluster.service(i).join("big") for i in range(4)]
    assert cluster.run_until(lambda: converged(big, 4), timeout_us=15 * SECOND)
    policy = HintedMappingPolicy()
    # Hint matches the big HWG's membership well enough (k_c=4: 4-3<=1).
    policy.set_hint("lwg:sub", ["p0", "p1", "p2"])
    assert policy.choose("lwg:sub", cluster.service(0)) == big[0].hwg
    # Hint far smaller than any existing HWG: create fresh.
    policy.set_hint("lwg:tiny", ["p0"])
    assert policy.choose("lwg:tiny", cluster.service(0)) is None
    # Hint includes a process no existing HWG covers: create fresh.
    policy.set_hint("lwg:foreign", ["p0", "p9"])
    assert policy.choose("lwg:foreign", cluster.service(0)) is None


def test_hinted_service_end_to_end():
    """A full service wired with hints maps a new group per its hint."""
    cluster = Cluster(num_processes=4, seed=74)
    base = [cluster.service(i).join("base") for i in range(4)]
    assert cluster.run_until(lambda: converged(base, 4), timeout_us=15 * SECOND)
    hints = HintedMappingPolicy()
    hints.set_hint("lwg:team", ["p0", "p1", "p2", "p3"])
    # Swap the policy on the creator's service.
    cluster.service(0).mapping_policy = hints
    team0 = cluster.service(0).join("team")
    others = [cluster.service(i).join("team") for i in range(1, 4)]
    assert cluster.run_until(
        lambda: converged([team0] + others, 4), timeout_us=15 * SECOND
    )
    assert team0.hwg == base[0].hwg
