"""Tests for the Figure-1 heuristics: predicates and the policy engine."""

from repro.core import (
    LeaveHwgAction,
    LwgConfig,
    PolicyEngine,
    PolicySnapshot,
    SwitchAction,
    is_close_enough,
    is_minority,
    share_rule_applies,
)


def fs(*members):
    return frozenset(members)


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def test_minority_requires_subset():
    assert not is_minority(fs("a", "x"), fs("a", "b", "c", "d", "e", "f", "g", "h"), 4)


def test_minority_threshold_with_km_4():
    """With k_m=4 a 2-member LWG is a minority of an 8-member HWG."""
    hwg = fs(*[f"m{i}" for i in range(8)])
    assert is_minority(fs("m0", "m1"), hwg, 4)
    assert not is_minority(fs("m0", "m1", "m2"), hwg, 4)


def test_minority_exact_boundary():
    # |g1| * k_m == |g2| counts as minority (<=).
    assert is_minority(fs("a"), fs("a", "b", "c", "d"), 4)


def test_closeness_requires_subset():
    assert not is_close_enough(fs("a", "x"), fs("a", "b", "c", "d"), 4)


def test_closeness_threshold_with_kc_4():
    """With k_c=4, a 3-of-4 subset is close (diff 1 <= 4/4)."""
    hwg = fs("a", "b", "c", "d")
    assert is_close_enough(fs("a", "b", "c"), hwg, 4)
    assert not is_close_enough(fs("a", "b"), hwg, 4)


def test_identical_membership_is_close():
    group = fs("a", "b")
    assert is_close_enough(group, group, 4)


def test_paper_hysteresis_claim():
    """Section 3.2: with k_m = k_c = 4, "for a LWG to be mapped on a HWG,
    the number of their common members must be greater than 75% of the
    size of the HWG, and the mapping remains stable until this number is
    reduced to 25%".  Figure 1's formal definitions use ``<=``, so the
    boundaries themselves (exactly 75% / exactly 25%) are inclusive."""
    hwg = fs(*[f"m{i}" for i in range(8)])
    overlap_5 = fs(*[f"m{i}" for i in range(5)])  # 62.5%: not close enough
    overlap_6 = fs(*[f"m{i}" for i in range(6)])  # 75% boundary: close
    assert not is_close_enough(overlap_5, hwg, 4)
    assert is_close_enough(overlap_6, hwg, 4)
    overlap_2 = fs("m0", "m1")  # 25% boundary: minority -> unmapped
    overlap_3 = fs("m0", "m1", "m2")  # 37.5%: stays
    assert is_minority(overlap_2, hwg, 4)
    assert not is_minority(overlap_3, hwg, 4)


def test_share_rule_fires_on_large_overlap():
    h1 = fs("a", "b", "c", "d", "x")
    h2 = fs("a", "b", "c", "d", "y")
    # k=4, n1=n2=1, sqrt(2) ~ 1.41 < 4.
    assert share_rule_applies(h1, h2, 4)


def test_share_rule_spares_minority_subset():
    small = fs("a")
    big = fs("a", "b", "c", "d", "e")
    assert not share_rule_applies(small, big, 4)


def test_share_rule_collapses_substantial_subset():
    sub = fs("a", "b", "c")
    sup = fs("a", "b", "c", "d")
    # Subset but NOT a minority: collapse (k=3 > sqrt(0)).
    assert share_rule_applies(sub, sup, 4)


def test_share_rule_needs_enough_overlap():
    h1 = fs("a", "b", "c", "d")
    h2 = fs("a", "x", "y", "z")
    # k=1, n1=n2=3, sqrt(18) ~ 4.24 > 1.
    assert not share_rule_applies(h1, h2, 4)


def test_share_rule_disjoint_groups_never_collapse():
    assert not share_rule_applies(fs("a", "b"), fs("x", "y"), 4)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def snapshot(**kwargs):
    defaults = dict(
        node="p0",
        now_us=10_000_000,
        coordinated_lwgs={},
        hwg_members={},
        local_lwgs_per_hwg={},
        hwg_idle_since={},
        busy_lwgs=frozenset(),
    )
    defaults.update(kwargs)
    return PolicySnapshot(**defaults)


def engine(**config_kwargs):
    config = LwgConfig(**config_kwargs) if config_kwargs else LwgConfig()
    return PolicyEngine(config)


def test_empty_snapshot_no_actions():
    assert engine().evaluate(snapshot()) == []


def test_interference_rule_switches_minority_lwg_to_close_hwg():
    actions = engine().evaluate(
        snapshot(
            coordinated_lwgs={"lwg:x": (fs("p0", "p1"), "hwg:big")},
            hwg_members={
                "hwg:big": fs(*[f"p{i}" for i in range(8)]),
                "hwg:fit": fs("p0", "p1"),
            },
            local_lwgs_per_hwg={"hwg:big": 1, "hwg:fit": 0},
        )
    )
    switches = [a for a in actions if isinstance(a, SwitchAction)]
    assert len(switches) == 1
    assert switches[0].lwg == "lwg:x"
    assert switches[0].to_hwg == "hwg:fit"
    assert switches[0].reason == "interference"


def test_interference_rule_creates_new_hwg_when_no_fit():
    actions = engine().evaluate(
        snapshot(
            coordinated_lwgs={"lwg:x": (fs("p0", "p1"), "hwg:big")},
            hwg_members={"hwg:big": fs(*[f"p{i}" for i in range(8)])},
            local_lwgs_per_hwg={"hwg:big": 1},
        )
    )
    switches = [a for a in actions if isinstance(a, SwitchAction)]
    assert switches and switches[0].to_hwg is None
    assert switches[0].reason == "interference-new"


def test_interference_rule_leaves_majority_lwg_alone():
    actions = engine().evaluate(
        snapshot(
            coordinated_lwgs={"lwg:x": (fs("p0", "p1", "p2"), "hwg:h")},
            hwg_members={"hwg:h": fs("p0", "p1", "p2", "p3")},
            local_lwgs_per_hwg={"hwg:h": 1},
        )
    )
    assert not [a for a in actions if isinstance(a, SwitchAction)]


def test_interference_prefers_highest_gid_candidate():
    members = fs("p0", "p1")
    actions = engine().evaluate(
        snapshot(
            coordinated_lwgs={"lwg:x": (members, "hwg:big")},
            hwg_members={
                "hwg:big": fs(*[f"p{i}" for i in range(8)]),
                "hwg:aaa": members,
                "hwg:zzz": members,
            },
            local_lwgs_per_hwg={"hwg:big": 1},
        )
    )
    switches = [a for a in actions if isinstance(a, SwitchAction)]
    assert switches[0].to_hwg == "hwg:zzz"


def test_share_rule_switches_lwgs_off_lower_gid_hwg():
    shared = [f"p{i}" for i in range(4)]
    h1 = fs(*shared, "x")
    h2 = fs(*shared, "y")
    actions = engine().evaluate(
        snapshot(
            coordinated_lwgs={"lwg:x": (fs(*shared), "hwg:aaa")},
            hwg_members={"hwg:aaa": h1, "hwg:zzz": h2},
            local_lwgs_per_hwg={"hwg:aaa": 1, "hwg:zzz": 0},
        )
    )
    switches = [a for a in actions if isinstance(a, SwitchAction)]
    assert switches and switches[0].to_hwg == "hwg:zzz"
    assert switches[0].reason == "share"


def test_share_rule_does_not_touch_lwgs_on_winner():
    shared = [f"p{i}" for i in range(4)]
    actions = engine().evaluate(
        snapshot(
            coordinated_lwgs={"lwg:x": (fs(*shared), "hwg:zzz")},
            hwg_members={"hwg:aaa": fs(*shared, "x"), "hwg:zzz": fs(*shared, "y")},
            local_lwgs_per_hwg={"hwg:aaa": 0, "hwg:zzz": 1},
        )
    )
    share_switches = [
        a for a in actions if isinstance(a, SwitchAction) and a.reason == "share"
    ]
    assert not share_switches


def test_shrink_rule_leaves_idle_hwg_after_grace():
    actions = engine().evaluate(
        snapshot(
            hwg_members={"hwg:idle": fs("p0", "p1")},
            local_lwgs_per_hwg={"hwg:idle": 0},
            hwg_idle_since={"hwg:idle": 0},
            now_us=10_000_000,
        )
    )
    leaves = [a for a in actions if isinstance(a, LeaveHwgAction)]
    assert leaves and leaves[0].hwg == "hwg:idle"


def test_shrink_rule_respects_grace_period():
    actions = engine().evaluate(
        snapshot(
            hwg_members={"hwg:idle": fs("p0", "p1")},
            local_lwgs_per_hwg={"hwg:idle": 0},
            hwg_idle_since={"hwg:idle": 9_900_000},
            now_us=10_000_000,
        )
    )
    assert not [a for a in actions if isinstance(a, LeaveHwgAction)]


def test_shrink_rule_spares_used_hwgs():
    actions = engine().evaluate(
        snapshot(
            hwg_members={"hwg:used": fs("p0", "p1")},
            local_lwgs_per_hwg={"hwg:used": 1},
            hwg_idle_since={"hwg:used": 0},
        )
    )
    assert not [a for a in actions if isinstance(a, LeaveHwgAction)]


def test_busy_lwgs_are_not_redecided():
    actions = engine().evaluate(
        snapshot(
            coordinated_lwgs={"lwg:x": (fs("p0", "p1"), "hwg:big")},
            hwg_members={"hwg:big": fs(*[f"p{i}" for i in range(8)])},
            local_lwgs_per_hwg={"hwg:big": 1},
            busy_lwgs=frozenset({"lwg:x"}),
        )
    )
    assert not [a for a in actions if isinstance(a, SwitchAction)]


def test_evaluation_is_deterministic():
    snap = snapshot(
        coordinated_lwgs={
            "lwg:x": (fs("p0", "p1"), "hwg:big"),
            "lwg:y": (fs("p0", "p2"), "hwg:big"),
        },
        hwg_members={"hwg:big": fs(*[f"p{i}" for i in range(8)])},
        local_lwgs_per_hwg={"hwg:big": 2},
    )
    e = engine()
    assert e.evaluate(snap) == e.evaluate(snap)


def test_each_lwg_switched_at_most_once_per_round():
    shared = [f"p{i}" for i in range(4)]
    snap = snapshot(
        coordinated_lwgs={"lwg:x": (fs("p0"), "hwg:aaa")},
        hwg_members={"hwg:aaa": fs(*shared, "x"), "hwg:zzz": fs(*shared, "y")},
        local_lwgs_per_hwg={"hwg:aaa": 1, "hwg:zzz": 0},
    )
    actions = engine().evaluate(snap)
    switches = [a for a in actions if isinstance(a, SwitchAction) and a.lwg == "lwg:x"]
    assert len(switches) <= 1


def test_km_parameter_changes_minority_boundary():
    hwg = fs(*[f"m{i}" for i in range(8)])
    lwg = fs("m0", "m1", "m2", "m3")  # half the HWG
    assert not is_minority(lwg, hwg, 4)
    assert is_minority(lwg, hwg, 2)
