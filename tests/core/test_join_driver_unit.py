"""Unit tests for the JoinDriver state machine (fake service)."""

from typing import List, Optional

from repro.core.config import LwgConfig
from repro.core.join_leave import JoinDriver
from repro.core.mapping_table import LwgState, MappingTable
from repro.core.messages import LwgJoinReq
from repro.naming.records import MappingRecord
from repro.vsync.membership import EndpointState
from repro.vsync.view import View, ViewId


class FakeEndpoint:
    def __init__(self, state=EndpointState.MEMBER, view=None):
        self.state = state
        self.current_view = view or View("hwg:x", ViewId("p0", 1), ("p0",))


class FakeNaming:
    def __init__(self):
        self.reads: List = []
        self.testsets: List = []
        self._version = 0

    def next_version(self):
        self._version += 1
        return self._version

    def read(self, lwg, on_reply):
        self.reads.append((lwg, on_reply))

    def testset(self, record, parents=(), on_reply=None):
        self.testsets.append((record, on_reply))


class FakeStackTimer:
    def __init__(self):
        self.pending = True

    def cancel(self):
        self.pending = False


class FakeStack:
    def __init__(self):
        self.timers: List = []
        self._seq = 0

    def set_timer(self, delay, callback):
        self.timers.append((delay, callback))
        return FakeStackTimer()

    def next_view_seq(self):
        self._seq += 1
        return self._seq


class FakeService:
    def __init__(self, node="p9"):
        self.node = node
        self.config = LwgConfig()
        self.naming = FakeNaming()
        self.stack = FakeStack()
        self.table = MappingTable()
        self.endpoints = {}
        self.sent = []
        self.adopted = []
        self._hwg_counter = 0

        class _Policy:
            def choose(inner, lwg, svc):
                return None  # always mint fresh

        self.mapping_policy = _Policy()

    def mint_hwg_id(self):
        self._hwg_counter += 1
        return f"hwg:{self.node}:{self._hwg_counter:06d}"

    def ensure_hwg(self, hwg):
        return self.endpoints.setdefault(hwg, FakeEndpoint())

    def hwg_endpoint(self, hwg):
        return self.endpoints.get(hwg)

    def hwg_send(self, hwg, message):
        self.sent.append((hwg, message))

    def adopt_created_view(self, local, view, hwg):
        self.adopted.append((view, hwg))

    def trace(self, event, **fields):
        pass


def record(lwg, view_id, hwg, members=("pX",), deleted=False):
    return MappingRecord(
        lwg=lwg, lwg_view=view_id, lwg_members=members, hwg=hwg,
        hwg_view=ViewId("h", 1), version=1, writer="pX", deleted=deleted,
    )


def make_driver(node="p9"):
    service = FakeService(node)
    local = service.table.ensure_local("lwg:g", object())
    local.state = LwgState.JOINING
    driver = JoinDriver(service, local)
    return service, local, driver


def test_start_reads_naming():
    service, local, driver = make_driver()
    driver.start()
    assert service.naming.reads and service.naming.reads[0][0] == "lwg:g"


def test_existing_mapping_targets_highest_gid_hwg():
    service, local, driver = make_driver()
    driver.start()
    _, reply = service.naming.reads[0]
    reply([
        record("lwg:g", ViewId("a", 1), "hwg:aaa"),
        record("lwg:g", ViewId("b", 1), "hwg:zzz"),
    ])
    assert driver.mode == "join"
    assert driver.target_hwg == "hwg:zzz"
    # The endpoint was MEMBER: the join request went out immediately.
    requests = [m for _, m in service.sent if isinstance(m, LwgJoinReq)]
    assert len(requests) == 1 and requests[0].joiner == "p9"


def test_deleted_records_do_not_count_as_live():
    service, local, driver = make_driver()
    driver.start()
    _, reply = service.naming.reads[0]
    reply([record("lwg:g", ViewId("a", 1), "hwg:aaa", deleted=True)])
    assert driver.mode == "create"
    assert driver.target_hwg.startswith("hwg:p9:")


def test_empty_naming_creates_fresh_hwg_and_claims():
    service, local, driver = make_driver()
    driver.start()
    service.naming.reads[0][1]([])
    assert driver.mode == "create"
    # The claim proposed a singleton view via testset.
    assert service.naming.testsets
    proposed, reply = service.naming.testsets[0]
    assert proposed.lwg_members == ("p9",)
    # Winning the race adopts the created view.
    reply((proposed,))
    assert service.adopted and service.adopted[0][0].members == ("p9",)
    # (In the real service, adopt_created_view completes the driver.)


def test_losing_the_claim_race_follows_the_winner():
    service, local, driver = make_driver()
    driver.start()
    service.naming.reads[0][1]([])
    proposed, reply = service.naming.testsets[0]
    winner = record("lwg:g", ViewId("pW", 1), "hwg:winner")
    reply((winner,))
    assert driver.mode == "join"
    assert driver.target_hwg == "hwg:winner"
    assert not service.adopted


def test_redirect_retargets():
    service, local, driver = make_driver()
    driver.start()
    service.naming.reads[0][1]([record("lwg:g", ViewId("a", 1), "hwg:old")])
    sent_before = len(service.sent)
    driver.on_redirect("hwg:new")
    assert driver.target_hwg == "hwg:new"
    requests = [m for _, m in service.sent[sent_before:] if isinstance(m, LwgJoinReq)]
    assert len(requests) == 1


def test_claim_or_retry_resends_when_group_visible():
    service, local, driver = make_driver()
    driver.start()
    service.naming.reads[0][1]([record("lwg:g", ViewId("a", 1), "hwg:tgt")])
    # The directory records the LWG with a member that is actually in
    # the HWG's current view (an admitter): the claim timer re-asks.
    service.table.dir_for("hwg:tgt").record_view(
        View("lwg:g", ViewId("p0", 1), ("p0",))
    )
    claim_timer = service.stack.timers[-1]
    claim_timer[1]()
    requests = [m for _, m in service.sent if isinstance(m, LwgJoinReq)]
    assert len(requests) == 2


def test_claim_or_retry_restarts_from_naming_when_no_admitter():
    service, local, driver = make_driver()
    driver.start()
    service.naming.reads[0][1]([record("lwg:g", ViewId("a", 1), "hwg:tgt")])
    # The recorded members have all left the HWG ("pC" is not in the
    # endpoint's current view), so nobody can admit us: resending would
    # loop forever.  The driver escalates to a fresh naming read.
    service.table.dir_for("hwg:tgt").record_view(
        View("lwg:g", ViewId("pC", 1), ("pC",))
    )
    reads_before = len(service.naming.reads)
    claim_timer = service.stack.timers[-1]
    claim_timer[1]()
    requests = [m for _, m in service.sent if isinstance(m, LwgJoinReq)]
    assert len(requests) == 1  # no resend
    assert len(service.naming.reads) == reads_before + 1


def test_claim_or_retry_claims_when_group_gone():
    service, local, driver = make_driver()
    driver.start()
    service.naming.reads[0][1]([record("lwg:g", ViewId("a", 1), "hwg:tgt")])
    claim_timer = service.stack.timers[-1]
    claim_timer[1]()  # directory empty: the mapping is stale -> claim
    assert service.naming.testsets


def test_completion_cancels_everything():
    service, local, driver = make_driver()
    driver.start()
    service.naming.reads[0][1]([record("lwg:g", ViewId("a", 1), "hwg:tgt")])
    driver.complete()
    assert driver.done
    # Events after completion are ignored.
    driver.on_redirect("hwg:other")
    assert driver.target_hwg == "hwg:tgt"
