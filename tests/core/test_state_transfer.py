"""Tests for application state transfer at both layers."""

from tests.helpers import converged, make_group, run_until

from repro.core import LwgListener
from repro.sim import SECOND
from repro.vsync import HwgListener, ProtocolStack
from repro.workloads import Cluster


# ----------------------------------------------------------------------
# HWG level: snapshot rides InstallView, captured at the flush cut
# ----------------------------------------------------------------------
class CounterApp(HwgListener):
    """A replicated counter: state = sum of delivered increments."""

    def __init__(self):
        self.total = 0
        self.got_state = None

    def on_data(self, group, src, payload, size):
        self.total += payload

    def get_state(self, group):
        return self.total

    def on_state(self, group, state):
        self.got_state = state
        self.total = state


def test_hwg_joiner_receives_state_at_the_cut(env):
    stacks, endpoints, _ = make_group(env, 2)
    apps = [CounterApp(), CounterApp()]
    endpoints[0].listener = apps[0]
    endpoints[1].listener = apps[1]
    assert run_until(env, lambda: converged(endpoints, 2))
    for i in range(10):
        endpoints[i % 2].send(i + 1, size=16)
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert apps[0].total == 55
    late_stack = ProtocolStack(env, "late", stacks[0].addressing)
    late_app = CounterApp()
    late = late_stack.endpoint("g", late_app)
    late.join()
    assert run_until(env, lambda: converged(endpoints + [late], 3))
    assert late_app.got_state == 55
    # Post-join traffic keeps all replicas identical.
    endpoints[0].send(45, size=16)
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert late_app.total == 100
    assert apps[0].total == 100


def test_hwg_state_transfer_disabled_by_default(env):
    stacks, endpoints, _ = make_group(env, 1)
    env.sim.run_until(1 * SECOND)
    late_stack = ProtocolStack(env, "late", stacks[0].addressing)
    received = []

    class Probe(HwgListener):
        def on_state(self, group, state):
            received.append(state)

    late = late_stack.endpoint("g", Probe())
    late.join()
    assert run_until(env, lambda: converged(endpoints + [late], 2))
    assert received == []  # default get_state returns None


# ----------------------------------------------------------------------
# LWG level: snapshot multicast in the group's total order
# ----------------------------------------------------------------------
class LwgCounter(LwgListener):
    def __init__(self):
        self.total = 0
        self.got_state = None
        self.deliveries = []

    def on_data(self, lwg, src, payload, size):
        self.total += payload
        self.deliveries.append(payload)

    def get_state(self, lwg):
        return self.total

    def on_state(self, lwg, state):
        self.got_state = state
        self.total = state


def test_lwg_joiner_receives_state_before_data():
    cluster = Cluster(num_processes=3, seed=61)
    apps = [LwgCounter(), LwgCounter()]
    handles = [cluster.service(i).join("ctr", apps[i]) for i in range(2)]
    assert cluster.run_until(
        lambda: all(h.view and len(h.view.members) == 2 for h in handles),
        timeout_us=10 * SECOND,
    )
    for i in range(10):
        handles[i % 2].send(i + 1, size=16)
    cluster.run_for_seconds(1)
    assert apps[0].total == 55
    late_app = LwgCounter()
    late = cluster.service(2).join("ctr", late_app)
    assert cluster.run_until(
        lambda: late.view is not None and len(late.view.members) == 3
        and late_app.got_state is not None,
        timeout_us=15 * SECOND,
    )
    assert late_app.got_state == 55
    handles[0].send(45, size=16)
    cluster.run_for_seconds(1)
    assert late_app.total == 100


def test_lwg_state_transfer_with_concurrent_traffic():
    """Messages racing the join must be counted exactly once at the joiner
    (either inside the snapshot or as a delivery, never both)."""
    cluster = Cluster(num_processes=4, seed=62)
    apps = [LwgCounter() for _ in range(3)]
    handles = [cluster.service(i).join("ctr", apps[i]) for i in range(3)]
    assert cluster.run_until(
        lambda: all(h.view and len(h.view.members) == 3 for h in handles),
        timeout_us=10 * SECOND,
    )
    # Pump continuously while a fourth member joins.
    sent = {"n": 0}

    def pump():
        if sent["n"] < 40:
            sent["n"] += 1
            handles[sent["n"] % 3].send(1, size=16)
            cluster.stack(0).set_timer(30_000, pump)

    pump()
    cluster.run_for_seconds(0.2)
    late_app = LwgCounter()
    late = cluster.service(3).join("ctr", late_app)
    assert cluster.run_until(lambda: sent["n"] >= 40, timeout_us=20 * SECOND)
    cluster.run_for_seconds(2)
    assert apps[0].total == 40
    assert late_app.total == 40, (late_app.got_state, late_app.deliveries)


def test_lwg_creator_gets_no_state():
    cluster = Cluster(num_processes=1, seed=63)
    app = LwgCounter()
    handle = cluster.service(0).join("solo", app)
    cluster.run_for_seconds(3)
    assert handle.is_member
    assert app.got_state is None
