"""Tests for the service's introspection and lifecycle conveniences."""

from repro.core import LwgListener
from repro.sim import SECOND
from repro.workloads import Cluster


class Recorder(LwgListener):
    def __init__(self):
        self.lefts = 0

    def on_left(self, lwg):
        self.lefts += 1


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


def test_groups_and_members():
    cluster = Cluster(num_processes=2, seed=131)
    a = [cluster.service(i).join("alpha") for i in range(2)]
    b = [cluster.service(0).join("beta")]
    assert cluster.run_until(
        lambda: converged(a, 2) and converged(b, 1), timeout_us=15 * SECOND
    )
    service = cluster.service(0)
    assert service.groups() == ["lwg:alpha", "lwg:beta"]
    assert set(service.members("alpha")) == {"p0", "p1"}
    assert service.members("beta") == ("p0",)
    assert service.members("nonexistent") == ()


def test_describe_reports_roles():
    cluster = Cluster(num_processes=2, seed=132)
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=15 * SECOND)
    description = cluster.service(0).describe()
    entry = description["lwg:g"]
    assert entry["state"] == "member"
    assert set(entry["members"]) == {"p0", "p1"}
    assert entry["hwg"].startswith("hwg:")
    assert entry["switching"] is False
    coordinators = [
        cluster.service(i).describe()["lwg:g"]["coordinator"] for i in range(2)
    ]
    assert coordinators.count(True) == 1


def test_shutdown_leaves_everything():
    cluster = Cluster(num_processes=2, seed=133)
    recorder = Recorder()
    a = [cluster.service(i).join("alpha") for i in range(2)]
    cluster.service(0).join("beta", recorder)
    assert cluster.run_until(lambda: converged(a, 2), timeout_us=15 * SECOND)
    cluster.run_for_seconds(2)
    cluster.service(0).shutdown()
    assert cluster.run_until(
        lambda: cluster.service(0).groups() == [], timeout_us=20 * SECOND
    )
    # The remaining member of alpha continues alone.
    assert cluster.run_until(
        lambda: cluster.service(1).members("alpha") == ("p1",),
        timeout_us=15 * SECOND,
    )
