"""Property test: LWG delivery agreement under random interleavings.

Two co-mapped LWGs with different memberships receive interleaved
traffic from random senders; every member of each group must deliver
exactly that group's messages, in an identical order, with no leakage
between co-mapped groups (the filtering property of Section 3.1).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LwgListener
from repro.sim import MS, SECOND
from repro.workloads import Cluster


class Recorder(LwgListener):
    def __init__(self):
        self.data = []

    def on_data(self, lwg, src, payload, size):
        self.data.append(payload)


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1000),
    sends=st.lists(
        st.tuples(
            st.sampled_from(["wide", "narrow"]),  # which group
            st.integers(min_value=0, max_value=2),  # sender index in group
            st.integers(min_value=0, max_value=40 * MS),  # gap to next send
        ),
        min_size=1,
        max_size=25,
    ),
)
def test_co_mapped_groups_deliver_consistently(seed, sends):
    cluster = Cluster(num_processes=3, seed=seed, keep_trace=False)
    wide_recorders = [Recorder() for _ in range(3)]
    wide = [cluster.service(i).join("wide", wide_recorders[i]) for i in range(3)]
    assert cluster.run_until(lambda: converged(wide, 3), timeout_us=15 * SECOND)
    narrow_recorders = [Recorder() for _ in range(2)]
    narrow = [cluster.service(i).join("narrow", narrow_recorders[i]) for i in range(2)]
    assert cluster.run_until(lambda: converged(narrow, 2), timeout_us=15 * SECOND)
    assert wide[0].hwg == narrow[0].hwg  # co-mapped (optimistic rule)

    expected = {"wide": [], "narrow": []}
    delay = 0
    for index, (group, sender, gap) in enumerate(sends):
        handles = wide if group == "wide" else narrow
        handle = handles[sender % len(handles)]
        payload = (group, index)
        expected[group].append(payload)
        cluster.env.sim.schedule(delay, lambda h=handle, p=payload: h.send(p, 32))
        delay += gap
    cluster.run_for(delay + 3 * SECOND)

    # Each group's members agree on one delivery order of exactly that
    # group's messages.
    wide_orders = {tuple(r.data) for r in wide_recorders}
    assert len(wide_orders) == 1
    narrow_orders = {tuple(r.data) for r in narrow_recorders}
    assert len(narrow_orders) == 1
    assert sorted(next(iter(wide_orders))) == sorted(expected["wide"])
    assert sorted(next(iter(narrow_orders))) == sorted(expected["narrow"])
    # No leakage between co-mapped groups.
    assert all(p[0] == "wide" for p in next(iter(wide_orders)))
    assert all(p[0] == "narrow" for p in next(iter(narrow_orders)))
