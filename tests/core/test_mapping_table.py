"""Tests for the per-process mapping table and HWG directory."""

from repro.core import LwgListener, LwgState, MappingTable
from repro.core.mapping_table import HwgDirectory, LocalLwg
from repro.vsync.view import View, ViewId


def view(lwg, coord, seq, *members):
    return View(lwg, ViewId(coord, seq), tuple(members))


def test_ensure_local_creates_once():
    table = MappingTable()
    listener = LwgListener()
    first = table.ensure_local("lwg:a", listener)
    second = table.ensure_local("lwg:a", None)
    assert first is second
    assert first.listener is listener


def test_local_lwgs_on_filters_by_hwg_and_state():
    table = MappingTable()
    a = table.ensure_local("lwg:a", LwgListener())
    a.state = LwgState.MEMBER
    a.hwg = "hwg:1"
    a.view = view("lwg:a", "p0", 1, "p0")
    b = table.ensure_local("lwg:b", LwgListener())
    b.state = LwgState.JOINING
    b.hwg = "hwg:1"
    assert [e.lwg for e in table.local_lwgs_on("hwg:1")] == ["lwg:a"]


def test_coordinated_lwgs():
    table = MappingTable()
    a = table.ensure_local("lwg:a", LwgListener())
    a.state = LwgState.MEMBER
    a.view = view("lwg:a", "p0", 1, "p0", "p1")
    b = table.ensure_local("lwg:b", LwgListener())
    b.state = LwgState.MEMBER
    b.view = view("lwg:b", "p1", 1, "p1", "p0")
    assert [e.lwg for e in table.coordinated_lwgs("p0")] == ["lwg:a"]
    assert [e.lwg for e in table.coordinated_lwgs("p1")] == ["lwg:b"]


def test_hwgs_in_use_includes_switch_targets():
    table = MappingTable()
    a = table.ensure_local("lwg:a", LwgListener())
    a.state = LwgState.MEMBER
    a.hwg = "hwg:1"
    a.switch_target = "hwg:2"
    assert table.hwgs_in_use() == {"hwg:1", "hwg:2"}


def test_directory_record_and_forward():
    directory = HwgDirectory("hwg:1")
    v = view("lwg:a", "p0", 1, "p0", "p1")
    directory.record_view(v)
    assert directory.views["lwg:a"] is v
    directory.remove_lwg("lwg:a", forward_to="hwg:2")
    assert "lwg:a" not in directory.views
    assert directory.forward["lwg:a"] == "hwg:2"
    # A fresh view announcement clears the forward pointer.
    directory.record_view(v)
    assert "lwg:a" not in directory.forward


def test_directory_prune_members():
    directory = HwgDirectory("hwg:1")
    directory.record_view(view("lwg:a", "p0", 1, "p0", "p1"))
    directory.record_view(view("lwg:b", "p2", 1, "p2"))
    dropped = directory.prune_members({"p0", "p1"})
    assert dropped == ["lwg:b"]
    assert "lwg:a" in directory.views


def test_dir_for_creates_on_demand():
    table = MappingTable()
    assert table.dir_for("hwg:x") is table.dir_for("hwg:x")
