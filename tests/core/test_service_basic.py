"""Integration tests of the dynamic LWG service on a live cluster."""

from repro.core import LwgListener, LwgState
from repro.sim import SECOND
from repro.workloads import Cluster


class Recorder(LwgListener):
    def __init__(self):
        self.views = []
        self.data = []
        self.lefts = 0

    def on_view(self, lwg, view):
        self.views.append(view)

    def on_data(self, lwg, src, payload, size):
        self.data.append((src, payload))

    def on_left(self, lwg):
        self.lefts += 1


def converged_lwg(handles, size):
    views = [h.view for h in handles]
    if any(v is None for v in views):
        return False
    return len({v.view_id for v in views}) == 1 and all(
        len(v.members) == size for v in views
    )


def test_single_join_creates_lwg_and_hwg():
    cluster = Cluster(num_processes=1, seed=1)
    recorder = Recorder()
    handle = cluster.service(0).join("solo", recorder)
    cluster.run_for_seconds(3)
    assert handle.is_member
    assert handle.view.members == ("p0",)
    assert handle.hwg is not None and handle.hwg.startswith("hwg:")
    assert recorder.views


def test_four_members_converge_to_one_view():
    cluster = Cluster(num_processes=4, seed=2)
    handles = [cluster.service(i).join("g") for i in range(4)]
    assert cluster.run_until(lambda: converged_lwg(handles, 4), timeout_us=10 * SECOND)


def fast_policies():
    from repro.core import LwgConfig

    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return config


def test_staggered_lwgs_reuse_existing_hwg():
    """The optimistic rule: a new LWG maps onto an existing HWG."""
    cluster = Cluster(num_processes=3, seed=3)
    first = [cluster.service(i).join("g1") for i in range(3)]
    assert cluster.run_until(lambda: converged_lwg(first, 3), timeout_us=10 * SECOND)
    second = [cluster.service(i).join("g2") for i in range(3)]
    assert cluster.run_until(lambda: converged_lwg(second, 3), timeout_us=10 * SECOND)
    assert second[0].hwg == first[0].hwg


def test_share_rule_collapses_simultaneously_created_hwgs():
    """Racing creations mint several HWGs with identical membership; the
    share rule must collapse them into one."""
    cluster = Cluster(num_processes=3, seed=3, lwg_config=fast_policies())
    groups = ["g1", "g2", "g3"]
    handles = {}
    for group in groups:
        for i in range(3):
            handles[(group, i)] = cluster.service(i).join(group)
    assert cluster.run_until(
        lambda: len({handles[(g, i)].hwg for g in groups for i in range(3)}) == 1
        and all(converged_lwg([handles[(g, i)] for i in range(3)], 3) for g in groups),
        timeout_us=30 * SECOND,
    ), {handles[(g, 0)].hwg for g in groups}


def test_data_delivered_to_members_in_order():
    cluster = Cluster(num_processes=3, seed=4)
    recorders = [Recorder() for _ in range(3)]
    handles = [cluster.service(i).join("g", recorders[i]) for i in range(3)]
    assert cluster.run_until(lambda: converged_lwg(handles, 3), timeout_us=10 * SECOND)
    handles[0].send("one")
    handles[1].send("two")
    handles[2].send("three")
    cluster.run_for_seconds(2)
    sequences = {tuple(r.data) for r in recorders}
    assert len(sequences) == 1
    assert len(next(iter(sequences))) == 3


def test_data_filtered_for_non_members():
    """Messages of a co-mapped LWG must not reach non-member processes'
    listeners — but they do arrive at their LWG layer (interference)."""
    cluster = Cluster(num_processes=3, seed=5)
    r_g = [Recorder() for _ in range(3)]
    g_handles = [cluster.service(i).join("g", r_g[i]) for i in range(3)]
    assert cluster.run_until(lambda: converged_lwg(g_handles, 3), timeout_us=10 * SECOND)
    r_h = Recorder()
    # "h" has members p0, p1 only, but shares the HWG with "g".
    h0 = cluster.service(0).join("h", r_h)
    h1 = cluster.service(1).join("h")
    cluster.run_for_seconds(8)
    assert h0.hwg == g_handles[0].hwg  # co-mapped
    h0.send("h-only")
    cluster.run_for_seconds(2)
    assert ("p0", "h-only") in r_h.data
    assert all(("p0", "h-only") not in r.data for r in r_g)
    # p2 paid the filtering cost at the LWG layer.
    assert cluster.service(2).stats.data_filtered >= 1


def test_leave_removes_member_from_view():
    cluster = Cluster(num_processes=3, seed=6)
    recorders = [Recorder() for _ in range(3)]
    handles = [cluster.service(i).join("g", recorders[i]) for i in range(3)]
    assert cluster.run_until(lambda: converged_lwg(handles, 3), timeout_us=10 * SECOND)
    handles[2].leave()
    assert cluster.run_until(
        lambda: recorders[2].lefts == 1 and converged_lwg(handles[:2], 2),
        timeout_us=10 * SECOND,
    )
    assert "p2" not in handles[0].view.members


def test_last_leave_dissolves_lwg_and_tombstones_naming():
    cluster = Cluster(num_processes=1, seed=7)
    recorder = Recorder()
    handle = cluster.service(0).join("g", recorder)
    cluster.run_for_seconds(3)
    cluster.service(0).leave("g")
    cluster.run_for_seconds(2)
    assert recorder.lefts == 1
    server = cluster.name_servers["ns0"]
    assert server.db.live_records("lwg:g") == []


def test_rejoin_after_leave():
    cluster = Cluster(num_processes=2, seed=8)
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged_lwg(handles, 2), timeout_us=10 * SECOND)
    cluster.service(1).leave("g")
    cluster.run_for_seconds(3)
    handles[1] = cluster.service(1).join("g")
    assert cluster.run_until(lambda: converged_lwg(handles, 2), timeout_us=10 * SECOND)


def test_send_before_join_is_buffered():
    cluster = Cluster(num_processes=2, seed=9)
    recorders = [Recorder(), Recorder()]
    handles = [cluster.service(i).join("g", recorders[i]) for i in range(2)]
    handles[0].send("early")
    assert cluster.run_until(lambda: converged_lwg(handles, 2), timeout_us=10 * SECOND)
    cluster.run_for_seconds(2)
    assert any(p == "early" for _, p in recorders[0].data)


def test_send_without_join_raises():
    cluster = Cluster(num_processes=1, seed=10)
    try:
        cluster.service(0).send("never-joined", "x")
        raised = False
    except RuntimeError:
        raised = True
    assert raised


def test_coordinator_registers_mapping_in_naming_service():
    cluster = Cluster(num_processes=2, seed=11)
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged_lwg(handles, 2), timeout_us=10 * SECOND)
    cluster.run_for_seconds(1)
    records = cluster.name_servers["ns0"].db.live_records("lwg:g")
    assert len(records) == 1
    assert set(records[0].lwg_members) == {"p0", "p1"}
    assert records[0].hwg == handles[0].hwg


def test_member_crash_restricts_lwg_view():
    cluster = Cluster(num_processes=3, seed=12)
    handles = [cluster.service(i).join("g") for i in range(3)]
    assert cluster.run_until(lambda: converged_lwg(handles, 3), timeout_us=10 * SECOND)
    cluster.crash(2)
    assert cluster.run_until(lambda: converged_lwg(handles[:2], 2), timeout_us=15 * SECOND)
    assert "p2" not in handles[0].view.members


def test_stats_counters_track_data_path():
    cluster = Cluster(num_processes=2, seed=13)
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged_lwg(handles, 2), timeout_us=10 * SECOND)
    handles[0].send("x")
    cluster.run_for_seconds(1)
    svc = cluster.service(0)
    assert svc.stats.data_sent == 1
    assert svc.stats.data_delivered >= 1
    assert svc.stats.lwg_views_installed >= 1


def test_disjoint_groups_get_disjoint_hwgs():
    cluster = Cluster(num_processes=4, seed=14)
    a = [cluster.service(i).join("a") for i in (0, 1)]
    b = [cluster.service(i).join("b") for i in (2, 3)]
    cluster.run_for_seconds(8)
    assert a[0].hwg != b[0].hwg
