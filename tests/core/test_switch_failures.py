"""Failure paths of the switch protocol: aborts, crashes mid-switch."""

from repro.core import LwgConfig, LwgListener
from repro.sim import SECOND
from repro.workloads import Cluster


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


def manual_cluster(n, seed):
    config = LwgConfig()
    config.enable_policies = False
    config.switch_timeout_us = 2 * SECOND
    return Cluster(num_processes=n, seed=seed, lwg_config=config)


def test_member_crash_mid_switch_still_completes_for_survivors():
    cluster = manual_cluster(4, seed=91)
    handles = [cluster.service(i).join("g") for i in range(3)]
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=15 * SECOND)
    local = cluster.service(0).table.local("lwg:g")
    cluster.service(0).start_switch(local, None, reason="test")
    old_hwg = handles[0].hwg
    # One member dies while everyone is joining the target HWG.
    cluster.crash(2)
    assert cluster.run_until(
        lambda: handles[0].hwg != old_hwg
        and handles[1].hwg == handles[0].hwg
        and converged(handles[:2], 2),
        timeout_us=30 * SECOND,
    ), (handles[0].hwg, handles[1].hwg, handles[0].view)


def test_switch_coordinator_crash_releases_members():
    """A dead switch coordinator must not wedge the members: the stale
    switch state clears, and the restricted group keeps working."""
    cluster = manual_cluster(4, seed=92)
    recorders = []

    class Recorder(LwgListener):
        def __init__(self):
            self.data = []
            recorders.append(self)

        def on_data(self, lwg, src, payload, size):
            self.data.append(payload)

    handles = [cluster.service(i).join("g", Recorder()) for i in range(3)]
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=15 * SECOND)
    coordinator = handles[0].view.members[0]
    coordinator_index = int(coordinator[1:])
    local = cluster.service(coordinator_index).table.local("lwg:g")
    cluster.service(coordinator_index).start_switch(local, None, reason="test")
    cluster.run_for(100_000)  # SwitchStart is out; members are switching
    cluster.crash(coordinator_index)
    survivors = [h for i, h in enumerate(handles) if i != coordinator_index]
    assert cluster.run_until(
        lambda: converged(survivors, 2), timeout_us=40 * SECOND
    )
    # Traffic flows again after the stale-switch guard clears.
    sender = survivors[0]
    assert cluster.run_until(
        lambda: sender.is_member
        and cluster.service(int(sender.view.members[0][1:])) is not None,
        timeout_us=10 * SECOND,
    )
    sender.send("after-recovery")
    assert cluster.run_until(
        lambda: any("after-recovery" in r.data for r in recorders),
        timeout_us=20 * SECOND,
    )


def test_switch_to_partitioned_target_founds_concurrent_view_then_merges():
    """A target HWG across a partition is not "unreachable" — joining it
    founds a concurrent view on our side (partitionable semantics), the
    switch commits onto that view, and the heal merges the HWG."""
    cluster = manual_cluster(5, seed=93)
    handles = [cluster.service(i).join("g") for i in range(2)]
    other = [cluster.service(i).join("other") for i in (3, 4)]
    assert cluster.run_until(
        lambda: converged(handles, 2) and converged(other, 2),
        timeout_us=15 * SECOND,
    )
    target_hwg = other[0].hwg
    cluster.partition(["p0", "p1", "ns0"], ["p3", "p4", "ns1"])
    cluster.run_for_seconds(1)
    local = cluster.service(0).table.local("lwg:g")
    cluster.service(0).start_switch(local, target_hwg, reason="test")
    assert cluster.run_until(
        lambda: handles[0].hwg == target_hwg and converged(handles, 2),
        timeout_us=20 * SECOND,
    )
    # Our side's view of the target HWG is concurrent with p3/p4's.
    ours = cluster.stack(0).endpoints[target_hwg].current_view
    theirs = cluster.stack(3).endpoints[target_hwg].current_view
    assert ours.view_id != theirs.view_id
    # After the heal, the HWG views merge into one 4-member view.
    cluster.heal()
    assert cluster.run_until(
        lambda: len(cluster.stack(0).endpoints[target_hwg].current_view.members) == 4,
        timeout_us=30 * SECOND,
    )
    # Both LWGs still work on the merged HWG.
    assert converged(handles, 2) and converged(other, 2)


def test_switch_driver_aborts_on_timeout():
    """Unit-level: a driver whose members never report ready gives up."""
    from repro.core.switching import SwitchDriver
    from repro.vsync.view import View, ViewId

    sent = []

    class FakeService:
        node = "p0"
        config = LwgConfig()

        class stack:  # noqa: N801 - minimal stub
            @staticmethod
            def set_timer(delay, callback):
                sent.append(("timer", delay, callback))

                class H:
                    @staticmethod
                    def cancel():
                        pass

                return H()

        @staticmethod
        def hwg_send(hwg, message):
            sent.append((hwg, message))

        @staticmethod
        def mint_hwg_id():
            return "hwg:fresh"

        @staticmethod
        def next_switch_epoch():
            return 7

        @staticmethod
        def trace(event, **fields):
            pass

    class FakeLocal:
        lwg = "lwg:g"
        hwg = "hwg:old"
        view = View("lwg:g", ViewId("p0", 1), ("p0", "p1"))

    driver = SwitchDriver(FakeService(), FakeLocal(), None, reason="unit")
    driver.start()
    assert driver.to_hwg == "hwg:fresh"
    # Fire the timeout manually.
    timer = [entry for entry in sent if entry[0] == "timer"][0]
    timer[2]()
    assert driver.aborted and driver.finished
    from repro.core.messages import SwitchAbort

    aborts = [entry[1] for entry in sent
              if len(entry) == 2 and isinstance(entry[1], SwitchAbort)]
    assert len(aborts) == 1
    assert aborts[0].epoch == 7
