"""Tests of the global placement optimizer (repro.core.placement).

Three layers:

* unit tests pinning the deterministic tie-breaks the search promises
  (sorted candidate order, anchors-before-fresh, stickiness);
* property tests (Hypothesis) over random PlacementViews: every plan
  respects the k_m/k_c overlap constraints, assignments are total, and
  planning is a pure function of the view;
* policy-level tests of the SwitchAction adapter: hysteresis gate,
  rate limit, fresh-group minting, and a cross-process determinism
  check that re-plans a fixed view under different PYTHONHASHSEEDs.
"""

import json
import os
import subprocess
import sys
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LwgConfig, PolicyEngine, PolicySnapshot, SwitchAction
from repro.core.placement import (
    OptimizerPlacementPolicy,
    PlacementOptimizer,
    PlacementView,
    is_fresh_key,
)

PROCS = [f"p{i}" for i in range(10)]


def fs(*names):
    return frozenset(names)


def view(lwgs, current, anchors, pinned=None):
    return PlacementView(
        lwgs=tuple(sorted(lwgs)),
        current=dict(current),
        anchors=tuple(sorted(anchors)),
        pinned={a: tuple((pinned or {}).get(a, ())) for a in anchors},
    )


def final_groups(view_, plan):
    """key -> (movable cargo sets, moved-in sets, union incl. pinned)."""
    groups = {}
    members_of = dict(view_.lwgs)
    for lwg, key in plan.assignment.items():
        cargo, moved, union = groups.setdefault(key, ([], [], set()))
        m = members_of[lwg]
        cargo.append(m)
        union.update(m)
        anchored = not is_fresh_key(key)
        if not anchored or view_.current.get(lwg) != key:
            moved.append(m)
    for key, (cargo, moved, union) in groups.items():
        for m in view_.pinned.get(key, ()):
            cargo.append(m)
            union.update(m)
    return groups


# ----------------------------------------------------------------------
# Deterministic tie-breaks
# ----------------------------------------------------------------------
class TestTieBreaks:
    def test_equal_cost_anchors_pick_lexicographically_smallest(self):
        # Two empty anchors are perfectly symmetric targets.
        v = view(
            lwgs=[("lwg:g", fs("p0", "p1", "p2", "p3"))],
            current={"lwg:g": None},
            anchors=["hwg:a", "hwg:b"],
        )
        plan = PlacementOptimizer(LwgConfig()).plan(v)
        assert plan.assignment["lwg:g"] == "hwg:a"

    def test_anchor_beats_equal_cost_fresh_group(self):
        # A single empty anchor costs exactly what a fresh group costs
        # (same hwg_cost charge, same fan-out) — the anchor must win so
        # the system reuses HWGs instead of minting churn.
        v = view(
            lwgs=[("lwg:g", fs("p0", "p1", "p2", "p3"))],
            current={"lwg:g": None},
            anchors=["hwg:a"],
        )
        plan = PlacementOptimizer(LwgConfig()).plan(v)
        assert plan.assignment["lwg:g"] == "hwg:a"
        assert not plan.fresh_groups

    def test_stickiness_prefers_current_anchor_on_cost_ties(self):
        # Both anchors carry identical pinned cargo, so the cost deltas
        # are equal; the class currently rides hwg:b and must stay there
        # (lexicographic order alone would migrate it to hwg:a).
        pin = fs("p0", "p1", "p2", "p3")
        v = view(
            lwgs=[("lwg:g", pin)],
            current={"lwg:g": "hwg:b"},
            anchors=["hwg:a", "hwg:b"],
            pinned={"hwg:a": [pin], "hwg:b": [pin]},
        )
        plan = PlacementOptimizer(LwgConfig()).plan(v)
        assert plan.assignment["lwg:g"] == "hwg:b"
        assert plan.moves(v) == []

    def test_identical_views_yield_identical_plans(self):
        v = view(
            lwgs=[
                ("lwg:a", fs("p0", "p1", "p2", "p3", "p4", "p5")),
                ("lwg:b", fs("p0", "p1", "p2", "p3", "p4", "p5")),
                ("lwg:c", fs(*PROCS)),
            ],
            current={"lwg:a": "hwg:z", "lwg:b": "hwg:z", "lwg:c": "hwg:z"},
            anchors=["hwg:z"],
        )
        opt = PlacementOptimizer(LwgConfig())
        p1, p2 = opt.plan(v), opt.plan(v)
        assert p1.assignment == p2.assignment
        assert p1.fresh_groups == p2.fresh_groups
        assert p1.cost == p2.cost


# ----------------------------------------------------------------------
# The motivating scenario: peel a stuck sub-class off the zone HWG
# ----------------------------------------------------------------------
def test_separates_subclasses_the_paper_rules_are_stuck_with():
    # 12-process zone HWG carrying two sub-window classes (6- and
    # 8-member) plus a zone-spanning LWG.  Neither sub-class is ever a
    # k_m=4 minority (6*4 > 12) so the interference rule never moves
    # them — but every sub-class message fans out to 12.  The optimizer
    # must split the classes onto right-sized groups (which class keeps
    # the anchor is its choice; the separation is what matters).
    zone = fs(*[f"p{i}" for i in range(12)])
    sub_a = fs(*[f"p{i}" for i in range(6)])
    sub_b = fs(*[f"p{i}" for i in range(8)])
    lwg_class = {
        "lwg:a0": sub_a,
        "lwg:a1": sub_a,
        "lwg:a2": sub_a,
        "lwg:b0": sub_b,
        "lwg:b1": sub_b,
        "lwg:z": zone,
    }
    v = view(
        lwgs=list(lwg_class.items()),
        current={l: "hwg:zone" for l in lwg_class},
        anchors=["hwg:zone"],
    )
    plan = PlacementOptimizer(LwgConfig()).plan(v)
    assert plan.cost < plan.current_cost
    # Each membership class stays together...
    by_class = {}
    for lwg, members in lwg_class.items():
        by_class.setdefault(members, set()).add(plan.assignment[lwg])
    for members, targets in by_class.items():
        assert len(targets) == 1, (sorted(members), targets)
    # ...and the three classes end on three distinct groups.
    assert len({plan.assignment[l] for l in lwg_class}) == 3


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
procs = st.sampled_from(PROCS)
member_sets = st.frozensets(procs, min_size=1, max_size=10)


@st.composite
def placement_views(draw):
    anchors = [f"hwg:{i:02d}" for i in range(draw(st.integers(0, 3)))]
    pinned = {
        a: tuple(draw(st.lists(member_sets, max_size=2))) for a in anchors
    }
    lwgs = []
    current = {}
    for i in range(draw(st.integers(1, 6))):
        lwg = f"lwg:g{i}"
        lwgs.append((lwg, draw(member_sets)))
        current[lwg] = draw(
            st.one_of(st.none(), st.sampled_from(anchors)) if anchors else st.none()
        )
    return view(lwgs, current, anchors, pinned)


@settings(max_examples=150, deadline=None)
@given(v=placement_views())
def test_plan_assignment_is_total_and_consistent(v):
    plan = PlacementOptimizer(LwgConfig()).plan(v)
    assert set(plan.assignment) == {lwg for lwg, _ in v.lwgs}
    for lwg, key in plan.assignment.items():
        assert key in v.anchors or is_fresh_key(key)
    # fresh_groups is exactly the fresh side of the assignment.
    from_assignment = {}
    for lwg, key in sorted(plan.assignment.items()):
        if is_fresh_key(key):
            from_assignment.setdefault(key, []).append(lwg)
    assert {k: tuple(v_) for k, v_ in from_assignment.items()} == plan.fresh_groups


@settings(max_examples=150, deadline=None)
@given(v=placement_views(), k_m=st.integers(2, 6), k_c=st.integers(2, 6))
def test_plan_respects_overlap_constraints(v, k_m, k_c):
    config = LwgConfig(k_m=k_m, k_c=k_c)
    plan = PlacementOptimizer(config).plan(v)
    for key, (cargo, moved, union) in final_groups(v, plan).items():
        has_movable = any(
            plan.assignment[lwg] == key for lwg, _ in v.lwgs
        )
        if not has_movable:
            continue  # untouched anchor: its pinned state is not ours
        u = len(union)
        # Retention floor: no cargo (movable or pinned) may be a
        # minority of the union the optimizer itself built.
        for m in cargo:
            assert len(m) * k_m > u, (key, sorted(m), u)
        # Admission ceiling: every moved-in set must be close enough.
        for m in moved:
            assert (u - len(m)) * k_c <= u, (key, sorted(m), u)


@settings(max_examples=100, deadline=None)
@given(v=placement_views())
def test_planning_is_deterministic(v):
    opt = PlacementOptimizer(LwgConfig())
    p1, p2 = opt.plan(v), opt.plan(v)
    assert p1.assignment == p2.assignment
    assert p1.cost == p2.cost
    assert p1.current_cost == p2.current_cost


@settings(max_examples=100, deadline=None)
@given(v=placement_views())
def test_replanning_an_applied_plan_never_regresses(v):
    # Apply the plan as the new current assignment (fresh keys become
    # real anchors) and re-plan: the second plan must not cost more —
    # the search always admits "change nothing".
    opt = PlacementOptimizer(LwgConfig())
    plan = opt.plan(v)
    renamed = {
        key: (key if not is_fresh_key(key) else f"hwg:f{key[-3:]}")
        for key in set(plan.assignment.values())
    }
    applied = view(
        lwgs=v.lwgs,
        current={lwg: renamed[key] for lwg, key in plan.assignment.items()},
        anchors=sorted(set(renamed.values()) | set(v.anchors)),
        pinned={a: v.pinned.get(a, ()) for a in set(renamed.values()) | set(v.anchors)},
    )
    replan = opt.plan(applied)
    assert replan.cost <= replan.current_cost + 1e-6


# ----------------------------------------------------------------------
# Policy adapter: hysteresis, rate limit, minting
# ----------------------------------------------------------------------
def zone_snapshot(**config_kwargs):
    """The motivating scenario as a PolicySnapshot (three classes)."""
    zone = fs(*[f"p{i}" for i in range(12)])
    sub_a = fs(*[f"p{i}" for i in range(6)])
    sub_b = fs(*[f"p{i}" for i in range(8)])
    coordinated = {
        "lwg:a0": (sub_a, "hwg:zone"),
        "lwg:a1": (sub_a, "hwg:zone"),
        "lwg:a2": (sub_a, "hwg:zone"),
        "lwg:b0": (sub_b, "hwg:zone"),
        "lwg:b1": (sub_b, "hwg:zone"),
        "lwg:z": (zone, "hwg:zone"),
    }
    return (
        PolicySnapshot(
            node="p0",
            now_us=0,
            coordinated_lwgs=coordinated,
            hwg_members={"hwg:zone": zone},
            local_lwgs_per_hwg={"hwg:zone": 6},
            hwg_idle_since={"hwg:zone": 0},
        ),
        LwgConfig(placement_policy="optimizer", **config_kwargs),
    )


def test_policy_emits_switches_with_shared_minted_hwg():
    snap, config = zone_snapshot()
    minted = []

    def mint():
        minted.append(f"hwg:minted:{len(minted)}")
        return minted[-1]

    actions = OptimizerPlacementPolicy(config).evaluate(snap, mint=mint)
    switches = [a for a in actions if isinstance(a, SwitchAction)]
    assert switches
    # One mint per fresh placement group, and LWGs of one membership
    # class land on the SAME minted HWG (not one each).
    targets = {a.to_hwg for a in switches}
    assert len(minted) == len(targets & set(minted))
    by_class = {}
    for a in switches:
        members, _ = snap.coordinated_lwgs[a.lwg]
        by_class.setdefault(members, set()).add(a.to_hwg)
    for members, class_targets in by_class.items():
        assert len(class_targets) == 1, (sorted(members), class_targets)


def test_policy_rate_limits_switches_per_evaluation():
    snap, config = zone_snapshot(placement_max_switches=2)
    actions = OptimizerPlacementPolicy(config).evaluate(snap, mint=lambda: "hwg:new")
    assert len([a for a in actions if isinstance(a, SwitchAction)]) == 2


def test_policy_hysteresis_gate_blocks_marginal_plans(self=None):
    snap, config = zone_snapshot(placement_hysteresis=10.0)
    # A 1000x relative-gain requirement is unmeetable: no actions.
    assert OptimizerPlacementPolicy(config).evaluate(snap, mint=lambda: "hwg:new") == []


def test_policy_min_gain_floor_blocks_tiny_plans():
    snap, config = zone_snapshot(placement_min_gain=1e9)
    assert OptimizerPlacementPolicy(config).evaluate(snap, mint=lambda: "hwg:new") == []


def test_policy_never_switches_onto_current_hwg():
    snap, config = zone_snapshot()
    actions = OptimizerPlacementPolicy(config).evaluate(snap, mint=lambda: "hwg:new")
    for a in actions:
        if isinstance(a, SwitchAction):
            _, underlying = snap.coordinated_lwgs[a.lwg]
            assert a.to_hwg != underlying


def test_policy_engine_routes_to_optimizer():
    snap, config = zone_snapshot()
    engine = PolicyEngine(config)
    actions = engine.evaluate(snap, mint=lambda: "hwg:new")
    assert any(
        isinstance(a, SwitchAction) and a.reason == "placement" for a in actions
    )
    # The paper engine on the same snapshot is fully stuck (that is the
    # scenario's point): no switch actions at all.
    paper = PolicyEngine(LwgConfig()).evaluate(snap)
    assert not any(isinstance(a, SwitchAction) for a in paper)


def test_policy_reaches_fixed_point_under_repeated_evaluation():
    # Apply emitted switches back into the snapshot until quiescence;
    # hysteresis + strict-improvement must terminate quickly.
    snap, config = zone_snapshot()
    coordinated = dict(snap.coordinated_lwgs)
    hwg_members = dict(snap.hwg_members)
    policy = OptimizerPlacementPolicy(config)
    counter = [0]

    def mint():
        counter[0] += 1
        return f"hwg:minted:{counter[0]:02d}"

    for _ in range(10):
        snap = PolicySnapshot(
            node="p0",
            now_us=0,
            coordinated_lwgs=dict(coordinated),
            hwg_members=dict(hwg_members),
            local_lwgs_per_hwg={
                h: sum(1 for _, (_, u) in coordinated.items() if u == h)
                for h in hwg_members
            },
            hwg_idle_since={h: 0 for h in hwg_members},
        )
        switches = [
            a for a in policy.evaluate(snap, mint=mint) if isinstance(a, SwitchAction)
        ]
        if not switches:
            break
        for a in switches:
            members, _ = coordinated[a.lwg]
            coordinated[a.lwg] = (members, a.to_hwg)
        # Recompute HWG membership as the union of its cargo (the
        # steady state the switch/shrink machinery converges to).
        hwg_members = {}
        for members, hwg in coordinated.values():
            hwg_members[hwg] = hwg_members.get(hwg, frozenset()) | members
    else:
        raise AssertionError("no fixed point within 10 evaluations")


# ----------------------------------------------------------------------
# Cross-process determinism (PYTHONHASHSEED independence)
# ----------------------------------------------------------------------
_HASHSEED_PROBE = textwrap.dedent(
    """
    import json
    from repro.core import LwgConfig
    from repro.core.placement import PlacementOptimizer, PlacementView

    def fs(*names):
        return frozenset(names)

    zone = fs(*[f"p{i}" for i in range(12)])
    subs = [fs(*[f"p{i}" for i in range(n)]) for n in (4, 5, 6, 7, 8)]
    lwgs = [("lwg:z", zone)] + [
        (f"lwg:s{i}{j}", m) for i, m in enumerate(subs) for j in range(3)
    ]
    view = PlacementView(
        lwgs=tuple(sorted(lwgs)),
        current={lwg: "hwg:zone" for lwg, _ in lwgs},
        anchors=("hwg:zone",),
        pinned={"hwg:zone": ()},
    )
    plan = PlacementOptimizer(LwgConfig()).plan(view)
    print(json.dumps({
        "assignment": sorted(plan.assignment.items()),
        "fresh": sorted((k, list(v)) for k, v in plan.fresh_groups.items()),
        "cost": round(plan.cost, 9),
    }, sort_keys=True))
    """
)


def test_plan_is_independent_of_pythonhashseed():
    outputs = set()
    for seed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env.setdefault("PYTHONPATH", "src")
        result = subprocess.run(
            [sys.executable, "-c", _HASHSEED_PROBE],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1, outputs
    assert json.loads(outputs.pop())["assignment"]
