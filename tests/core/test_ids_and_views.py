"""Tests for identifier conventions and LWG view helpers."""

import pytest

from repro.core import (
    highest_gid,
    is_hwg_id,
    is_lwg_id,
    lwg_id,
    merge_lwg_views,
    merged_view_id,
    mint_hwg_id,
    restrict_view,
)
from repro.core.lwg_view import AncestorTracker
from repro.vsync.view import View, ViewId


def test_lwg_id_canonicalization():
    assert lwg_id("chat") == "lwg:chat"
    assert lwg_id("lwg:chat") == "lwg:chat"


def test_mint_hwg_id_unique_and_ordered():
    a = mint_hwg_id("p0", 1)
    b = mint_hwg_id("p0", 2)
    assert a != b and a < b
    assert is_hwg_id(a)


def test_id_kind_predicates():
    assert is_lwg_id("lwg:x") and not is_hwg_id("lwg:x")
    assert is_hwg_id("hwg:x") and not is_lwg_id("hwg:x")


def test_highest_gid():
    assert highest_gid(["hwg:a", "hwg:c", "hwg:b"]) == "hwg:c"
    assert highest_gid([]) is None


def make_view(coord, seq, *members, parents=()):
    return View("lwg:g", ViewId(coord, seq), tuple(members), tuple(parents))


def test_merged_view_id_is_deterministic():
    parents = [ViewId("p0", 1), ViewId("p5", 3)]
    assert merged_view_id("lwg:g", parents) == merged_view_id("lwg:g", list(reversed(parents)))


def test_merged_view_id_differs_by_lwg_and_parents():
    parents = [ViewId("p0", 1), ViewId("p5", 3)]
    assert merged_view_id("lwg:g", parents) != merged_view_id("lwg:h", parents)
    assert merged_view_id("lwg:g", parents) != merged_view_id("lwg:g", parents[:1])


def test_merged_view_id_cannot_collide_with_counter_ids():
    merged = merged_view_id("lwg:g", [ViewId("p0", 1)])
    assert merged.seq >= (1 << 60)


def test_merge_lwg_views_unions_members_sets_parents():
    left = make_view("p0", 1, "p0", "p1")
    right = make_view("p5", 1, "p5", "p6")
    merged = merge_lwg_views("lwg:g", [left, right])
    assert set(merged.members) == {"p0", "p1", "p5", "p6"}
    assert set(merged.parents) == {left.view_id, right.view_id}


def test_merge_lwg_views_single_view_is_identity():
    view = make_view("p0", 1, "p0")
    assert merge_lwg_views("lwg:g", [view]) is view


def test_merge_lwg_views_is_order_independent():
    left = make_view("p0", 1, "p0", "p1")
    right = make_view("p5", 1, "p5")
    assert merge_lwg_views("lwg:g", [left, right]) == merge_lwg_views(
        "lwg:g", [right, left]
    )


def test_merge_lwg_views_empty_rejected():
    with pytest.raises(ValueError):
        merge_lwg_views("lwg:g", [])


def test_restrict_view():
    view = make_view("p0", 1, "p0", "p1", "p2")
    restricted = restrict_view(view, ["p0", "p2"], ViewId("p0", 2))
    assert restricted.members == ("p0", "p2")
    assert restricted.parents == (view.view_id,)


def test_restrict_view_empty_rejected():
    view = make_view("p0", 1, "p0")
    with pytest.raises(ValueError):
        restrict_view(view, [], ViewId("p0", 2))


def test_ancestor_tracker_staleness():
    tracker = AncestorTracker()
    v1 = make_view("p0", 1, "p0")
    v2 = make_view("p0", 2, "p0", "p1", parents=[v1.view_id])
    tracker.advance(v1, v2)
    assert tracker.is_stale(v1.view_id)
    assert not tracker.is_stale(v2.view_id)


def test_ancestor_tracker_concurrency():
    tracker = AncestorTracker()
    v1 = make_view("p0", 1, "p0")
    v2 = make_view("p0", 2, "p0", parents=[v1.view_id])
    tracker.advance(v1, v2)
    foreign = ViewId("p9", 7)
    assert tracker.concurrent_with_current(v2, foreign)
    assert not tracker.concurrent_with_current(v2, v2.view_id)
    assert not tracker.concurrent_with_current(v2, v1.view_id)
    assert not tracker.concurrent_with_current(None, foreign)
