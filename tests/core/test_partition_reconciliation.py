"""End-to-end tests of the Section-6 reconciliation pipeline.

These reproduce the paper's worked example (Figures 3-4, Tables 3-4):
LWGs created with crossed mappings in concurrent partitions, healed, and
driven through global peer discovery, mapping reconciliation, local peer
discovery and the merge-views protocol.
"""

from repro.core import LwgListener
from repro.sim import SECOND
from repro.workloads import build_partition_scenario


def test_partition_sides_build_independent_mappings():
    scenario = build_partition_scenario(num_groups=2, seed=31)
    for group in scenario.groups:
        hwgs = {
            scenario.handles[(group, node)].hwg
            for node in scenario.side_a + scenario.side_b
        }
        assert len(hwgs) == 2  # one per side
    ns0 = scenario.cluster.name_servers["ns0"].db
    ns1 = scenario.cluster.name_servers["ns1"].db
    for group in scenario.groups:
        assert len(ns0.live_records(f"lwg:{group}")) == 1
        assert len(ns1.live_records(f"lwg:{group}")) == 1


def test_merged_naming_database_detects_inconsistent_mappings():
    """Table 3 / Section 6.1: after reconciliation the database holds the
    mappings of both partitions; the server detects the inconsistency and
    fires MULTIPLE-MAPPINGS at the view coordinators, who reconcile by
    switching (Section 6.2)."""
    scenario = build_partition_scenario(num_groups=1, seed=32)
    cluster = scenario.cluster
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=40 * SECOND)
    # The conflict was detected and pushed (not polled).
    notified = sum(s.notifier.notifications_sent for s in cluster.name_servers.values())
    assert notified >= 2  # both concurrent views' coordinators
    # At least one coordinator acted on it with a reconciliation switch.
    received = switches = 0
    for node in scenario.side_a + scenario.side_b:
        reconciler = cluster.service(node).reconciler
        received += reconciler.callbacks_received
        switches += reconciler.switches_initiated
    assert received >= 1
    assert switches >= 1


def test_full_reconciliation_converges():
    """Table 4 stage 4: a single merged view per LWG, one mapping stored."""
    scenario = build_partition_scenario(num_groups=2, seed=33)
    cluster = scenario.cluster
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=40 * SECOND)
    cluster.run_for_seconds(3)  # let naming GC settle
    for group in scenario.groups:
        records = cluster.name_servers["ns0"].db.live_records(f"lwg:{group}")
        assert len(records) == 1, [str(r) for r in records]
        assert set(records[0].lwg_members) == set(
            scenario.side_a + scenario.side_b
        )


def test_reconciliation_switches_to_highest_gid_hwg():
    """Section 6.2: inconsistent mappings are conciliated onto the HWG
    with the highest group identifier."""
    scenario = build_partition_scenario(num_groups=1, seed=34)
    cluster = scenario.cluster
    hwgs_before = {
        scenario.handles[("a", node)].hwg
        for node in scenario.side_a + scenario.side_b
    }
    winner = max(hwgs_before)
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=40 * SECOND)
    final = {scenario.handles[("a", node)].hwg for node in scenario.side_a + scenario.side_b}
    assert final == {winner}


def test_merged_view_genealogy_spans_both_sides():
    scenario = build_partition_scenario(num_groups=1, seed=35)
    cluster = scenario.cluster
    side_views = {
        scenario.handles[("a", scenario.side_a[0])].view.view_id,
        scenario.handles[("a", scenario.side_b[0])].view.view_id,
    }
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=40 * SECOND)
    merged = scenario.handles[("a", scenario.side_a[0])].view
    # Both pre-heal views are ancestors of the merged view.
    assert side_views <= set(merged.parents)


def test_data_flows_after_reconciliation():
    scenario = build_partition_scenario(num_groups=1, seed=36)
    cluster = scenario.cluster
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=40 * SECOND)
    scenario.handles[("a", scenario.side_a[0])].send("post-heal")
    cluster.run_for_seconds(2)
    everyone = scenario.side_a + scenario.side_b
    for node in everyone[1:]:
        probe = scenario.probes[("a", node)]
        assert any(p == "post-heal" for _, p in probe.delivered)


def test_three_groups_reconcile_through_shared_flush():
    """Figure 5's resource-sharing claim: all co-mapped LWGs merge in one
    round of flushes, not one flush per LWG."""
    scenario = build_partition_scenario(num_groups=3, seed=37)
    cluster = scenario.cluster
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=60 * SECOND)
    # Count distinct merged views: every group must have exactly one.
    for group in scenario.groups:
        ids = {
            scenario.handles[(group, node)].view.view_id
            for node in scenario.side_a + scenario.side_b
        }
        assert len(ids) == 1


def test_reconciliation_with_asymmetric_sides():
    scenario = build_partition_scenario(num_groups=1, side_size=3, seed=38)
    cluster = scenario.cluster
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=40 * SECOND)
    merged = scenario.handles[("a", scenario.side_a[0])].view
    assert len(merged.members) == 6
