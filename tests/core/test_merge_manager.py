"""Unit tests for the Figure-5 merge manager and the reconciliation
handler, driven through a fake service."""

from typing import Dict, List, Optional

from repro.core.lwg_view import AncestorTracker
from repro.core.mapping_table import LwgState, MappingTable
from repro.core.merge import MergeManager, ReconciliationHandler
from repro.core.messages import AllViewsMsg, MergeViewsMsg
from repro.naming.messages import MultipleMappings
from repro.naming.records import MappingRecord
from repro.vsync.view import View, ViewId


class FakeEndpoint:
    def __init__(self):
        self.refreshes = 0

    def force_refresh(self):
        self.refreshes += 1


class FakeTimerHandle:
    def cancel(self):
        pass


class FakeStack:
    """Collects timers so tests can fire them manually."""

    def __init__(self):
        self.timers: List[tuple] = []

    def set_timer(self, delay, callback):
        self.timers.append((delay, callback))
        return FakeTimerHandle()


class FakeNaming:
    """The version-clock + unset surface the disown path writes through."""

    def __init__(self):
        self.version = 0
        self.unset_records: List[MappingRecord] = []

    def next_version(self):
        self.version += 1
        return self.version

    def observe_version(self, version):
        self.version = max(self.version, version)

    def unset(self, record):
        self.unset_records.append(record)


class FakeService:
    """The narrow surface MergeManager/ReconciliationHandler need."""

    def __init__(self, node="p0"):
        self.node = node
        self.table = MappingTable()
        self.sent: List[tuple] = []
        self.installed: List[View] = []
        self.switches: List[tuple] = []
        self.registered: List[str] = []
        self.naming = FakeNaming()
        self.endpoint = FakeEndpoint()
        self.stack = FakeStack()

    def register_mapping(self, local):
        self.registered.append(local.lwg)

    def hwg_send(self, hwg, message):
        self.sent.append((hwg, message))

    def hwg_endpoint(self, hwg):
        return self.endpoint

    def install_local_view(self, local, view, reason):
        local.ancestors.advance(local.view, view)
        local.view = view
        self.installed.append(view)

    def start_switch(self, local, to_hwg, reason):
        self.switches.append((local.lwg, to_hwg, reason))

    def trace(self, event, **fields):
        pass


def make_local(service, lwg, view, hwg="hwg:x"):
    local = service.table.ensure_local(lwg, object())
    local.state = LwgState.MEMBER
    local.view = view
    local.hwg = hwg
    return local


def view_of(lwg, coord, seq, *members, parents=()):
    return View(lwg, ViewId(coord, seq), tuple(members), tuple(parents))


# ----------------------------------------------------------------------
# MergeManager
# ----------------------------------------------------------------------
def test_trigger_multicasts_merge_views_once_per_round():
    service = FakeService()
    manager = MergeManager(service)
    manager.trigger("hwg:x", "lwg:a")
    manager.trigger("hwg:x", "lwg:a")
    merge_msgs = [m for _, m in service.sent if isinstance(m, MergeViewsMsg)]
    assert len(merge_msgs) == 1


def test_on_merge_views_answers_with_local_views_and_forces_flush():
    service = FakeService()
    manager = MergeManager(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine)
    manager.on_merge_views("hwg:x", MergeViewsMsg(lwg="lwg:a"))
    all_views = [m for _, m in service.sent if isinstance(m, AllViewsMsg)]
    assert len(all_views) == 1
    assert all_views[0].views == (mine,)
    assert service.endpoint.refreshes == 1
    # A second MERGE-VIEWS in the same round answers nothing new.
    manager.on_merge_views("hwg:x", MergeViewsMsg(lwg="lwg:a"))
    assert len([m for _, m in service.sent if isinstance(m, AllViewsMsg)]) == 1


def test_flush_point_merges_concurrent_views():
    service = FakeService()
    manager = MergeManager(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    local = make_local(service, "lwg:a", mine)
    foreign = view_of("lwg:a", "p5", 1, "p5", "p6")
    manager.on_all_views(
        "hwg:x", AllViewsMsg(lwg="lwg:a", sender="p5", views=(foreign, mine))
    )
    hwg_view = view_of("hwg:x", "p0", 9, "p0", "p1", "p5", "p6")
    manager.on_hwg_view("hwg:x", hwg_view)
    assert len(service.installed) == 1
    merged = service.installed[0]
    assert set(merged.members) == {"p0", "p1", "p5", "p6"}
    assert set(merged.parents) == {mine.view_id, foreign.view_id}
    assert manager.merges_completed == 1


def test_flush_point_skips_views_with_dead_members():
    service = FakeService()
    manager = MergeManager(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine)
    ghost = view_of("lwg:a", "p5", 1, "p5", "dead")
    manager.on_all_views(
        "hwg:x", AllViewsMsg(lwg="lwg:a", sender="p5", views=(ghost, mine))
    )
    hwg_view = view_of("hwg:x", "p0", 9, "p0", "p1", "p5")  # "dead" not alive
    manager.on_hwg_view("hwg:x", hwg_view)
    assert service.installed == []  # only our own view survived the filter


def test_view_installed_mid_round_joins_the_collected_set():
    """A LwgViewMsg ordered between ALL-VIEWS and the flush is common
    knowledge and must take part in the merge (observe_view)."""
    service = FakeService()
    manager = MergeManager(service)
    old = view_of("lwg:a", "p0", 1, "p0")
    local = make_local(service, "lwg:a", old)
    foreign = view_of("lwg:a", "p5", 1, "p5")
    manager.on_merge_views("hwg:x", MergeViewsMsg(lwg="lwg:a"))  # round opens
    manager.on_all_views("hwg:x", AllViewsMsg(lwg="lwg:a", sender="p5", views=(foreign,)))
    # A racing view installation arrives in the same total order.
    newer = view_of("lwg:a", "p0", 2, "p0", "p1", parents=(old.view_id,))
    manager.observe_view("hwg:x", newer)
    local.ancestors.advance(old, newer)
    local.view = newer
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0", "p1", "p5"))
    assert len(service.installed) == 1
    merged = service.installed[0]
    # The stale predecessor was filtered; the newer view merged.
    assert set(merged.parents) == {newer.view_id, foreign.view_id}


def test_observe_view_ignored_outside_active_round():
    service = FakeService()
    manager = MergeManager(service)
    manager.observe_view("hwg:x", view_of("lwg:a", "p0", 1, "p0"))
    assert manager._collected == {}


def test_lone_surviving_successor_is_adopted():
    """A laggard whose peers already merged must catch up: the round
    leaves one candidate that supersedes our view — adopt it."""
    service = FakeService()
    manager = MergeManager(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine)
    merged_elsewhere = view_of(
        "lwg:a", "p0", 99, "p0", "p1", "p5", parents=(mine.view_id,)
    )
    manager.on_all_views(
        "hwg:x",
        AllViewsMsg(lwg="lwg:a", sender="p5", views=(merged_elsewhere, mine)),
    )
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0", "p1", "p5"))
    assert service.installed == [merged_elsewhere]


def test_deferred_requests_buffer_and_drain():
    service = FakeService()
    manager = MergeManager(service)
    manager.trigger("hwg:x", "lwg:a")
    assert manager.round_active("hwg:x")
    manager.defer("hwg:x", "join", "req1")
    manager.defer("hwg:x", "leave", "req2")
    assert manager.take_deferred("hwg:x") == [("join", "req1"), ("leave", "req2")]
    assert manager.take_deferred("hwg:x") == []
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0"))
    assert not manager.round_active("hwg:x")


def test_stale_collected_views_are_filtered():
    service = FakeService()
    manager = MergeManager(service)
    old = view_of("lwg:a", "p0", 1, "p0")
    current = view_of("lwg:a", "p0", 2, "p0", "p1", parents=(old.view_id,))
    local = make_local(service, "lwg:a", current)
    local.ancestors.advance(old, current)
    manager.on_all_views(
        "hwg:x", AllViewsMsg(lwg="lwg:a", sender="p9", views=(old, current))
    )
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0", "p1"))
    assert service.installed == []  # ancestor is not concurrent: no merge


def test_collected_state_clears_per_round():
    service = FakeService()
    manager = MergeManager(service)
    mine = view_of("lwg:a", "p0", 1, "p0")
    make_local(service, "lwg:a", mine)
    foreign = view_of("lwg:a", "p5", 1, "p5")
    manager.on_all_views("hwg:x", AllViewsMsg(lwg="lwg:a", sender="p5", views=(foreign,)))
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0", "p5"))
    installed_first = len(service.installed)
    # Next flush with nothing collected merges nothing more.
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 10, "p0", "p5"))
    assert len(service.installed) == installed_first


def test_all_views_revealing_concurrency_retriggers():
    service = FakeService()
    manager = MergeManager(service)
    mine = view_of("lwg:a", "p0", 1, "p0")
    make_local(service, "lwg:a", mine, hwg="hwg:x")
    foreign = view_of("lwg:a", "p5", 1, "p5")
    manager.on_all_views("hwg:x", AllViewsMsg(lwg="lwg:a", sender="p5", views=(foreign,)))
    merge_msgs = [m for _, m in service.sent if isinstance(m, MergeViewsMsg)]
    assert len(merge_msgs) == 1  # straggler discovery re-triggers the round


# ----------------------------------------------------------------------
# ReconciliationHandler
# ----------------------------------------------------------------------
def record_for(view, hwg, version=1):
    return MappingRecord(
        lwg=view.group, lwg_view=view.view_id, lwg_members=view.members,
        hwg=hwg, hwg_view=ViewId("h", 1), version=version, writer=view.members[0],
    )


def test_coordinator_switches_to_highest_gid():
    service = FakeService(node="p0")
    handler = ReconciliationHandler(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine, hwg="hwg:aaa")
    foreign = view_of("lwg:a", "p5", 1, "p5")
    message = MultipleMappings(
        lwg="lwg:a",
        records=(record_for(mine, "hwg:aaa"), record_for(foreign, "hwg:zzz")),
    )
    handler.on_multiple_mappings(message)
    assert service.switches == [("lwg:a", "hwg:zzz", "reconciliation")]


def test_winner_keeps_its_mapping():
    service = FakeService(node="p0")
    handler = ReconciliationHandler(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine, hwg="hwg:zzz")
    foreign = view_of("lwg:a", "p5", 1, "p5")
    message = MultipleMappings(
        lwg="lwg:a",
        records=(record_for(mine, "hwg:zzz"), record_for(foreign, "hwg:aaa")),
    )
    handler.on_multiple_mappings(message)
    assert service.switches == []


def test_non_coordinator_ignores_callback():
    service = FakeService(node="p1")  # member but not coordinator
    handler = ReconciliationHandler(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine, hwg="hwg:aaa")
    message = MultipleMappings(lwg="lwg:a", records=(record_for(mine, "hwg:aaa"),))
    handler.on_multiple_mappings(message)
    assert service.switches == []


def test_callback_about_superseded_view_ignored():
    service = FakeService(node="p0")
    handler = ReconciliationHandler(service)
    current = view_of("lwg:a", "p0", 2, "p0", "p1")
    make_local(service, "lwg:a", current, hwg="hwg:aaa")
    stale = view_of("lwg:a", "p0", 1, "p0")
    message = MultipleMappings(
        lwg="lwg:a",
        records=(record_for(stale, "hwg:aaa"), record_for(stale, "hwg:zzz", 2)),
    )
    handler.on_multiple_mappings(message)
    assert service.switches == []
    # Both records cite a view only p0 could have minted and no longer
    # operates: the coordinator disowns them — re-planting its beacon
    # first, since one of them pointed at the HWG the live branch is on.
    assert service.registered == ["lwg:a"]
    disowned = {(r.lwg_view, r.hwg) for r in service.naming.unset_records}
    assert disowned == {(stale.view_id, "hwg:aaa"), (stale.view_id, "hwg:zzz")}
    assert all(r.deleted for r in service.naming.unset_records)


def test_winner_buries_unresponsive_loser_after_persistent_conflict():
    """A dead fork's record can outlive every authority that could
    retire it: its coordinator crashed for good, the winner never merged
    with it (not an ancestor), and it wasn't minted here.  After
    PERSISTENT_CONFLICT_ROUNDS identical callbacks the winning
    coordinator buries it with the weakest tombstone."""
    from repro.core.merge import PERSISTENT_CONFLICT_ROUNDS

    service = FakeService(node="p0")
    handler = ReconciliationHandler(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine, hwg="hwg:zzz")
    dead_fork = view_of("lwg:a", "p4", 4, "p4")
    message = MultipleMappings(
        lwg="lwg:a",
        records=(record_for(mine, "hwg:zzz"), record_for(dead_fork, "hwg:aaa", 7)),
    )
    for _ in range(PERSISTENT_CONFLICT_ROUNDS - 1):
        handler.on_multiple_mappings(message)
    assert service.naming.unset_records == []  # still waiting it out
    handler.on_multiple_mappings(message)
    assert service.switches == []  # the winner never switches
    assert handler.branches_buried == 1
    [tomb] = service.naming.unset_records
    assert tomb.deleted
    # Weakest tombstone: same version and writer as the buried record,
    # so any later write by a live branch overrides the burial.
    assert (tomb.lwg_view, tomb.hwg, tomb.version) == (dead_fork.view_id, "hwg:aaa", 7)


def test_changing_loser_set_resets_the_burial_countdown():
    from repro.core.merge import PERSISTENT_CONFLICT_ROUNDS

    service = FakeService(node="p0")
    handler = ReconciliationHandler(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    make_local(service, "lwg:a", mine, hwg="hwg:zzz")
    fork_a = view_of("lwg:a", "p4", 4, "p4")
    fork_b = view_of("lwg:a", "p5", 2, "p5")
    msg_a = MultipleMappings(
        lwg="lwg:a",
        records=(record_for(mine, "hwg:zzz"), record_for(fork_a, "hwg:aaa")),
    )
    msg_b = MultipleMappings(
        lwg="lwg:a",
        records=(record_for(mine, "hwg:zzz"), record_for(fork_b, "hwg:bbb")),
    )
    # A progressing conflict (loser set changes) never reaches burial.
    for _ in range(PERSISTENT_CONFLICT_ROUNDS):
        handler.on_multiple_mappings(msg_a)
        handler.on_multiple_mappings(msg_b)
    assert handler.branches_buried == 0
    assert service.naming.unset_records == []


def test_mid_switch_callback_deferred():
    service = FakeService(node="p0")
    handler = ReconciliationHandler(service)
    mine = view_of("lwg:a", "p0", 1, "p0", "p1")
    local = make_local(service, "lwg:a", mine, hwg="hwg:aaa")
    local.switch_epoch = 7  # already switching
    foreign = view_of("lwg:a", "p5", 1, "p5")
    message = MultipleMappings(
        lwg="lwg:a",
        records=(record_for(mine, "hwg:aaa"), record_for(foreign, "hwg:zzz")),
    )
    handler.on_multiple_mappings(message)
    assert service.switches == []


def test_wedged_round_retries_via_timer():
    """A lost MERGE-VIEWS must not suppress future rounds forever."""
    service = FakeService()
    manager = MergeManager(service)
    manager.trigger("hwg:x", "lwg:a")
    assert manager.round_active("hwg:x")
    merge_count = len([m for _, m in service.sent if isinstance(m, MergeViewsMsg)])
    # No flush happens; the retry timer fires.
    delay, retry = service.stack.timers[0]
    retry()
    assert len([m for _, m in service.sent if isinstance(m, MergeViewsMsg)]) == merge_count + 1
    assert manager.round_active("hwg:x")


def test_retry_timer_noop_after_flush():
    service = FakeService()
    manager = MergeManager(service)
    manager.trigger("hwg:x", "lwg:a")
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0"))
    before = len(service.sent)
    delay, retry = service.stack.timers[0]
    retry()
    assert len(service.sent) == before  # round completed: no re-trigger


def test_retry_timer_armed_with_round_retry_delay():
    service = FakeService()
    manager = MergeManager(service)
    manager.trigger("hwg:x", "lwg:a")
    delay, _ = service.stack.timers[0]
    assert delay == MergeManager.ROUND_RETRY_US


def test_stale_retry_token_cannot_reset_a_newer_round():
    """A retry armed for round N fires after the flush completed N and a
    new round N+1 opened: the stale token must leave N+1 untouched."""
    service = FakeService()
    manager = MergeManager(service)
    manager.trigger("hwg:x", "lwg:a")
    _, stale_retry = service.stack.timers[0]
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0"))  # N flushes
    manager.trigger("hwg:x", "lwg:b")  # round N+1
    merges = lambda: len([m for _, m in service.sent if isinstance(m, MergeViewsMsg)])
    before = merges()
    stale_retry()
    assert merges() == before  # no duplicate MERGE-VIEWS
    assert manager.round_active("hwg:x")  # N+1 still running, not reset
    assert manager.merge_rounds == 2


def test_merge_rounds_counts_rounds_not_suppressed_triggers():
    service = FakeService()
    manager = MergeManager(service)
    manager.trigger("hwg:x", "lwg:a")
    manager.trigger("hwg:x", "lwg:b")  # suppressed: round already open
    assert manager.merge_rounds == 1
    _, retry = service.stack.timers[0]
    retry()  # a wedged-round retry is a fresh round
    assert manager.merge_rounds == 2
    manager.on_hwg_view("hwg:x", view_of("hwg:x", "p0", 9, "p0"))
    manager.trigger("hwg:y", "lwg:a")  # independent HWG
    assert manager.merge_rounds == 3
