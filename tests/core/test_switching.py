"""Tests for the run-time switch protocol."""

from repro.core import LwgListener, LwgState
from repro.sim import SECOND
from repro.workloads import Cluster


class Recorder(LwgListener):
    def __init__(self):
        self.views = []
        self.data = []

    def on_view(self, lwg, view):
        self.views.append(view)

    def on_data(self, lwg, src, payload, size):
        self.data.append((src, payload))


def converged_lwg(handles, size):
    views = [h.view for h in handles]
    if any(v is None for v in views):
        return False
    return len({v.view_id for v in views}) == 1 and all(
        len(v.members) == size for v in views
    )


def build_minority_setup(seed=21):
    """A 2-member LWG "small" co-mapped with a 4-member LWG "big":
    small is a minority (2 <= 4/k_m with k_m=2 here? use 8 procs)."""
    from repro.core import LwgConfig

    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(num_processes=8, seed=seed, lwg_config=config)
    big = [cluster.service(i).join("big") for i in range(8)]
    assert cluster.run_until(lambda: converged_lwg(big, 8), timeout_us=20 * SECOND)
    recorders = [Recorder(), Recorder()]
    small = [cluster.service(i).join("small", recorders[i]) for i in range(2)]
    assert cluster.run_until(lambda: converged_lwg(small, 2), timeout_us=20 * SECOND)
    assert small[0].hwg == big[0].hwg  # optimistic co-mapping
    return cluster, big, small, recorders


def test_interference_rule_switches_minority_lwg_out():
    cluster, big, small, _ = build_minority_setup()
    old_hwg = small[0].hwg
    assert cluster.run_until(
        lambda: small[0].hwg != old_hwg and small[1].hwg == small[0].hwg,
        timeout_us=30 * SECOND,
    )
    # The LWG view identifier survives the switch (Table 4, stage 3).
    assert converged_lwg(small, 2)
    # The big group is untouched.
    assert big[0].hwg == old_hwg


def test_switch_updates_naming_service():
    cluster, big, small, _ = build_minority_setup(seed=22)
    old_hwg = small[0].hwg
    assert cluster.run_until(lambda: small[0].hwg != old_hwg, timeout_us=30 * SECOND)
    cluster.run_for_seconds(2)
    records = cluster.name_servers["ns0"].db.live_records("lwg:small")
    assert len(records) == 1
    assert records[0].hwg == small[0].hwg


def test_switch_leaves_forward_pointer():
    cluster, big, small, _ = build_minority_setup(seed=23)
    old_hwg = small[0].hwg
    assert cluster.run_until(lambda: small[0].hwg != old_hwg, timeout_us=30 * SECOND)
    # A process that stayed on the old HWG (e.g. p5, a big-only member)
    # now holds a forward pointer for the switched LWG.
    directory = cluster.service(5).table.dir_for(old_hwg)
    assert directory.forward.get("lwg:small") == small[0].hwg


def test_data_sent_during_switch_is_not_lost():
    cluster, big, small, recorders = build_minority_setup(seed=24)
    old_hwg = small[0].hwg
    # Pump messages continuously while the switch happens.
    sent = []

    def pump():
        if len(sent) < 60:
            payload = f"m{len(sent)}"
            sent.append(payload)
            small[0].send(payload)
            cluster.stack(0).set_timer(100_000, pump)

    pump()
    assert cluster.run_until(lambda: small[0].hwg != old_hwg, timeout_us=30 * SECOND)
    assert cluster.run_until(lambda: len(sent) >= 60, timeout_us=30 * SECOND)
    cluster.run_for_seconds(3)
    delivered_at_1 = [p for _, p in recorders[1].data]
    assert delivered_at_1 == sent, (
        f"lost={set(sent) - set(delivered_at_1)} dup/order broken"
    )


def test_joiner_during_switch_is_redirected():
    cluster, big, small, _ = build_minority_setup(seed=25)
    old_hwg = small[0].hwg
    assert cluster.run_until(lambda: small[0].hwg != old_hwg, timeout_us=30 * SECOND)
    # p7 now joins "small" — the naming record may be fresh, but even a
    # stale path through the old HWG must end in membership.
    late = cluster.service(7).join("small")
    assert cluster.run_until(
        lambda: late.is_member and late.hwg == small[0].hwg, timeout_us=20 * SECOND
    )
    assert cluster.run_until(lambda: converged_lwg(small + [late], 3), timeout_us=10 * SECOND)


def test_shrink_rule_drains_abandoned_hwg():
    """After 'small' switches away, its members leave the old HWG only if
    no other LWG of theirs lives there — here 'big' still does, so they
    must stay."""
    cluster, big, small, _ = build_minority_setup(seed=26)
    old_hwg = small[0].hwg
    assert cluster.run_until(lambda: small[0].hwg != old_hwg, timeout_us=30 * SECOND)
    cluster.run_for_seconds(6)
    # p0 is in "big" too: must still be a member of the old HWG.
    endpoint = cluster.stack(0).endpoints.get(old_hwg)
    assert endpoint is not None and endpoint.current_view is not None
    assert "p0" in endpoint.current_view.members
