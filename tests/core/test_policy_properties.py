"""Property-based tests of the Figure-1 policy engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LeaveHwgAction,
    LwgConfig,
    PolicyEngine,
    PolicySnapshot,
    SwitchAction,
    is_close_enough,
    is_minority,
    share_rule_applies,
)

processes = st.sampled_from([f"p{i}" for i in range(8)])
member_sets = st.frozensets(processes, min_size=1, max_size=8)


@settings(max_examples=100, deadline=None)
@given(g1=member_sets, g2=member_sets, k=st.integers(min_value=1, max_value=8))
def test_minority_implies_subset(g1, g2, k):
    if is_minority(g1, g2, k):
        assert g1 <= g2
        assert len(g1) * k <= len(g2)


@settings(max_examples=100, deadline=None)
@given(g1=member_sets, g2=member_sets, k=st.integers(min_value=1, max_value=8))
def test_closeness_implies_subset(g1, g2, k):
    if is_close_enough(g1, g2, k):
        assert g1 <= g2


@settings(max_examples=100, deadline=None)
@given(g=member_sets, k=st.integers(min_value=1, max_value=8))
def test_group_is_always_close_to_itself_never_its_own_minority(g, k):
    assert is_close_enough(g, g, k)
    assert not is_minority(g, g, k) or len(g) * k <= len(g)


@settings(max_examples=100, deadline=None)
@given(h1=member_sets, h2=member_sets, k=st.integers(min_value=2, max_value=8))
def test_share_rule_is_symmetric(h1, h2, k):
    assert share_rule_applies(h1, h2, k) == share_rule_applies(h2, h1, k)


@settings(max_examples=100, deadline=None)
@given(h=member_sets, k=st.integers(min_value=2, max_value=8))
def test_identical_hwgs_always_collapse(h, k):
    assert share_rule_applies(h, h, k)


@st.composite
def snapshots(draw):
    hwg_names = [f"hwg:{i:02d}" for i in range(draw(st.integers(1, 4)))]
    hwg_members = {name: draw(member_sets) for name in hwg_names}
    coordinated = {}
    for i in range(draw(st.integers(0, 5))):
        hwg = draw(st.sampled_from(hwg_names))
        # The LWG's members are a subset of its HWG (system invariant).
        members = draw(
            st.frozensets(st.sampled_from(sorted(hwg_members[hwg])), min_size=1)
        )
        coordinated[f"lwg:g{i}"] = (members, hwg)
    return PolicySnapshot(
        node="p0",
        now_us=draw(st.integers(0, 100_000_000)),
        coordinated_lwgs=coordinated,
        hwg_members=hwg_members,
        local_lwgs_per_hwg={
            h: sum(1 for _, (m, u) in coordinated.items() if u == h)
            for h in hwg_names
        },
        hwg_idle_since={h: 0 for h in hwg_names},
    )


@settings(max_examples=100, deadline=None)
@given(snapshot=snapshots())
def test_engine_is_deterministic(snapshot):
    engine = PolicyEngine(LwgConfig())
    assert engine.evaluate(snapshot) == engine.evaluate(snapshot)


@settings(max_examples=100, deadline=None)
@given(snapshot=snapshots())
def test_engine_never_switches_a_group_twice(snapshot):
    engine = PolicyEngine(LwgConfig())
    actions = engine.evaluate(snapshot)
    switched = [a.lwg for a in actions if isinstance(a, SwitchAction)]
    assert len(switched) == len(set(switched))


@settings(max_examples=100, deadline=None)
@given(snapshot=snapshots())
def test_engine_never_targets_the_current_hwg(snapshot):
    engine = PolicyEngine(LwgConfig())
    for action in engine.evaluate(snapshot):
        if isinstance(action, SwitchAction) and action.to_hwg is not None:
            _, current = snapshot.coordinated_lwgs[action.lwg]
            assert action.to_hwg != current


@settings(max_examples=100, deadline=None)
@given(snapshot=snapshots())
def test_engine_never_leaves_a_used_hwg(snapshot):
    engine = PolicyEngine(LwgConfig())
    for action in engine.evaluate(snapshot):
        if isinstance(action, LeaveHwgAction):
            assert snapshot.local_lwgs_per_hwg.get(action.hwg, 0) == 0


@settings(max_examples=100, deadline=None)
@given(snapshot=snapshots())
def test_busy_groups_are_never_touched(snapshot):
    engine = PolicyEngine(LwgConfig())
    busy = frozenset(snapshot.coordinated_lwgs)
    frozen_snapshot = PolicySnapshot(
        node=snapshot.node,
        now_us=snapshot.now_us,
        coordinated_lwgs=snapshot.coordinated_lwgs,
        hwg_members=snapshot.hwg_members,
        local_lwgs_per_hwg=snapshot.local_lwgs_per_hwg,
        hwg_idle_since=snapshot.hwg_idle_since,
        busy_lwgs=busy,
    )
    actions = engine.evaluate(frozen_snapshot)
    assert not [a for a in actions if isinstance(a, SwitchAction)]
