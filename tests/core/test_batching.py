"""Unit tests for the data-path batch packer (PROTOCOLS.md §15)."""

from repro.core.batching import BatchPacker
from repro.core.messages import MIXED_BATCH, LwgBatch, LwgData
from repro.vsync.view import ViewId


class FakeTimers:
    """Manual-fire timer service recording (delay, callback) pairs."""

    def __init__(self):
        self.armed = []

    def set_timer(self, delay, callback):
        self.armed.append((delay, callback))
        return object()

    def fire(self, index=0):
        _, callback = self.armed.pop(index)
        callback()


def data(lwg="lwg:a", sender="p0", size=100, payload="x"):
    return LwgData(
        lwg=lwg, view_id=ViewId("p0", 1), sender=sender,
        payload=payload, payload_size=size,
    )


def make_packer(timers, sent, window_us=1000, max_bytes=400):
    return BatchPacker(
        node="p0",
        transmit=lambda hwg, msg: sent.append((hwg, msg)),
        set_timer=timers.set_timer,
        window_us=window_us,
        max_bytes=max_bytes,
    )


def test_window_timer_flushes_batch():
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent)
    packer.enqueue("h1", data(payload="a"))
    packer.enqueue("h1", data(payload="b"))
    assert sent == [] and len(timers.armed) == 1
    timers.fire()
    assert len(sent) == 1
    batch = sent[0][1]
    assert isinstance(batch, LwgBatch)
    assert [e.payload for e in batch.entries] == ["a", "b"]


def test_byte_cap_flushes_immediately():
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent, max_bytes=150)
    packer.enqueue("h1", data(payload="a"))
    packer.enqueue("h1", data(payload="b"))  # 200 bytes >= cap
    assert len(sent) == 1


def test_byte_cap_flush_disarms_window_timer():
    """Regression: a byte-cap flush must not leave the timer armed.

    Before the fix, the window timer armed by the first enqueue survived
    a byte-cap flush; the next batch then inherited the stale deadline
    and was flushed early (silently shortening its window), and no new
    timer could be armed because the flag still read "armed".
    """
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent, max_bytes=150)
    packer.enqueue("h1", data(payload="a"))  # arms timer
    packer.enqueue("h1", data(payload="b"))  # byte-cap flush
    assert len(sent) == 1
    # Start the next batch: it must get a *fresh* window timer.
    packer.enqueue("h1", data(payload="c"))
    assert len(timers.armed) == 2
    # The stale timer fires: it must not flush the new batch early.
    timers.fire(0)
    assert len(sent) == 1
    assert packer.pending_entries("h1") == 1
    # The fresh timer flushes it at its own deadline.
    timers.fire(0)
    assert len(sent) == 2
    assert sent[1][1].payload == "c"  # singleton: bare LwgData


def test_control_flush_disarms_window_timer():
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent)
    packer.enqueue("h1", data(payload="a"))
    packer.enqueue("h1", data(payload="b"))
    packer.flush("h1")  # control-message flush (hwg_send path)
    assert len(sent) == 1
    packer.enqueue("h1", data(payload="c"))
    timers.fire(0)  # stale window
    assert packer.pending_entries("h1") == 1
    timers.fire(0)  # fresh window
    assert [e for _, e in sent[1:]] == [sent[1][1]]
    assert sent[1][1].payload == "c"


def test_reset_invalidates_armed_timers():
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent)
    packer.enqueue("h1", data(payload="a"))
    packer.reset()  # crash: buffer wiped, timer logically dead
    packer.enqueue("h1", data(payload="b"))
    timers.fire(0)  # pre-crash timer: stale generation, ignored
    assert sent == []
    assert packer.pending_entries("h1") == 1
    timers.fire(0)  # post-recovery timer
    assert len(sent) == 1
    assert sent[0][1].payload == "b"


def test_single_lwg_batch_keeps_its_label():
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent)
    packer.enqueue("h1", data(lwg="lwg:a", payload="a1"))
    packer.enqueue("h1", data(lwg="lwg:a", payload="a2"))
    packer.flush("h1")
    batch = sent[0][1]
    assert batch.lwg == "lwg:a"
    assert batch.lwg_counts() == {"lwg:a": 2}


def test_mixed_lwg_batch_is_marked_mixed():
    """Regression: co-mapped LWGs coalesce; the batch must say so.

    Before the fix the batch was stamped with ``entries[0].lwg``, so
    per-LWG tracing attributed every entry of a mixed batch to whichever
    group happened to be buffered first.
    """
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent)
    packer.enqueue("h1", data(lwg="lwg:b", payload="b1"))
    packer.enqueue("h1", data(lwg="lwg:a", payload="a1"))
    packer.enqueue("h1", data(lwg="lwg:b", payload="b2"))
    packer.flush("h1")
    batch = sent[0][1]
    assert batch.lwg == MIXED_BATCH
    assert batch.lwg_counts() == {"lwg:a": 1, "lwg:b": 2}
    # Entry order (= send order) is untouched by the labeling.
    assert [e.payload for e in batch.entries] == ["b1", "a1", "b2"]


def test_buffers_are_per_hwg():
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent)
    packer.enqueue("h1", data(payload="a"))
    packer.enqueue("h2", data(payload="b"))
    assert len(timers.armed) == 2  # one window per HWG
    packer.flush("h1")
    assert len(sent) == 1 and sent[0][0] == "h1"
    assert packer.pending_entries("h2") == 1


def test_flush_all_covers_every_hwg():
    timers, sent = FakeTimers(), []
    packer = make_packer(timers, sent)
    packer.enqueue("h2", data(payload="b"))
    packer.enqueue("h1", data(payload="a"))
    packer.flush_all()
    assert [hwg for hwg, _ in sent] == ["h1", "h2"]
