"""Unit tests for the compact datagram codec and fabric framing."""

import pickle

import pytest

from repro.core.messages import LwgBatch, LwgData, LwgViewMsg
from repro.runtime.codec import (
    CodecError,
    CompactCodec,
    MAGIC,
    OversizeDatagramError,
    PickleCodec,
    make_codec,
)
from repro.vsync.messages import Ordered, Publish, StabilityAck
from repro.vsync.view import View, ViewId


def roundtrip(payload, codec=None, src="p0", size=256):
    codec = codec or CompactCodec()
    return codec.decode(codec.encode(src, payload, size))


def data_msg(payload=b"x" * 64, seq=3):
    return LwgData(
        lwg="lwg:chat", view_id=ViewId("p0", seq), sender="p1",
        payload=payload, payload_size=len(payload),
    )


# ----------------------------------------------------------------------
# Hot-path round trips
# ----------------------------------------------------------------------
def test_lwg_data_roundtrips_exactly():
    message = data_msg()
    src, decoded, size = roundtrip(message, size=92)
    assert (src, size) == ("p0", 92)
    assert decoded == message and type(decoded) is LwgData


def test_lwg_batch_roundtrips_with_entries():
    batch = LwgBatch(
        lwg="lwg:a", sender="p2", batch_seq=17,
        entries=(data_msg(b"one", 1), data_msg(b"two", 2)),
    )
    _, decoded, _ = roundtrip(batch)
    assert decoded == batch and type(decoded) is LwgBatch
    assert all(type(e) is LwgData for e in decoded.entries)


def test_ordered_carrying_a_batch_roundtrips():
    """The actual hot datagram: Ordered -> LwgBatch -> LwgData payloads."""
    batch = LwgBatch(lwg="lwg:a", sender="p1", batch_seq=2,
                     entries=(data_msg(), data_msg(b"more", 4)))
    ordered = Ordered(
        group="hwg:p0:000001", view_id=ViewId("p0", 9), seq=41,
        sender="p1", sender_seq=7, payload=batch,
        payload_size=batch.size_bytes(), stable_floor=33,
    )
    _, decoded, _ = roundtrip(ordered)
    assert decoded == ordered
    assert decoded.stable_floor == 33
    assert type(decoded.payload) is LwgBatch


def test_publish_and_stability_ack_roundtrip():
    publish = Publish(
        group="hwg:p0:000001", view_id=ViewId("p3", 4), sender="p3",
        sender_seq=12, payload=data_msg("text payload"),
        payload_size=40, acked_upto=11,
    )
    ack = StabilityAck(
        group="hwg:p0:000001", view_id=ViewId("p3", 4),
        member="p4", delivered_upto=38,
    )
    assert roundtrip(publish)[1] == publish
    assert roundtrip(ack)[1] == ack


def test_primitive_payloads_roundtrip():
    for payload in (None, True, False, 0, -1, 1 << 40, -(1 << 40),
                    "unicode ✓", b"", b"\x00\xff", (), (1, "a", (b"n", None))):
        assert roundtrip(payload)[1] == payload


def test_huge_ints_and_unknown_types_fall_back_to_pickle():
    for payload in (1 << 80, {"a": 1}, [1, 2], 3.5,
                    LwgViewMsg(lwg="lwg:a", view=View("lwg:a", ViewId("p", 1), ("p",)))):
        assert roundtrip(payload)[1] == payload


def test_compact_frames_are_smaller_than_pickle_for_hot_messages():
    batch = LwgBatch(lwg="lwg:a", sender="p1", batch_seq=2,
                     entries=tuple(data_msg(bytes(64), i) for i in range(8)))
    ordered = Ordered(group="hwg:p0:000001", view_id=ViewId("p0", 9), seq=41,
                      sender="p1", sender_seq=7, payload=batch,
                      payload_size=batch.size_bytes())
    compact = CompactCodec().encode("p0", ordered, 1024)
    pickled = PickleCodec().encode("p0", ordered, 1024)
    assert len(compact) < len(pickled)


# ----------------------------------------------------------------------
# Interop and framing errors
# ----------------------------------------------------------------------
def test_codecs_interoperate_both_ways():
    message = data_msg()
    assert PickleCodec().decode(CompactCodec().encode("p0", message, 1))[1] == message
    assert CompactCodec().decode(PickleCodec().encode("p0", message, 1))[1] == message


def test_magic_byte_disjoint_from_pickle_frames():
    assert pickle.dumps(0, protocol=pickle.HIGHEST_PROTOCOL)[0] != MAGIC
    assert CompactCodec().encode("p0", None, 0)[0] == MAGIC


def test_truncated_and_garbage_frames_raise_codec_error():
    frame = CompactCodec().encode("p0", data_msg(), 256)
    for bad in (b"", frame[:-3], frame[:4], b"\x01garbage",
                frame + b"trailing", bytes((MAGIC, 99))):
        with pytest.raises(CodecError):
            CompactCodec().decode(bad)


def test_make_codec_resolves_names():
    assert make_codec("pickle").name == "pickle"
    assert make_codec("compact").name == "compact"
    with pytest.raises(ValueError):
        make_codec("msgpack")


# ----------------------------------------------------------------------
# Fabric oversize path
# ----------------------------------------------------------------------
def test_oversize_payload_raises_typed_error():
    from repro.runtime.asyncio_backend import AsyncioRuntime, UdpFabric

    runtime = AsyncioRuntime.create(seed=1)
    try:
        received = []
        runtime.fabric.attach("p0", lambda *a: received.append(a))
        blob = bytes(UdpFabric.MAX_DATAGRAM + 1)
        with pytest.raises(OversizeDatagramError) as excinfo:
            runtime.fabric.send("p0", "p0", blob, size=len(blob))
        assert excinfo.value.src == "p0"
        assert excinfo.value.limit == UdpFabric.MAX_DATAGRAM
        assert excinfo.value.encoded_bytes > UdpFabric.MAX_DATAGRAM
        # The typed error is still a ValueError for legacy handlers.
        assert isinstance(excinfo.value, ValueError)
    finally:
        runtime.close()


# ----------------------------------------------------------------------
# Naming anti-entropy round trips
# ----------------------------------------------------------------------
def _mapping_record(i=1, deleted=False):
    from repro.naming.records import MappingRecord

    return MappingRecord(
        lwg=f"lwg:{i}", lwg_view=ViewId("p0", i), lwg_members=("p0", "p1"),
        hwg="hwg:9", hwg_view=ViewId("h", i), version=i, writer="p0",
        deleted=deleted,
    )


def test_dict_payloads_roundtrip():
    nested = {"": {"a": "1f2e", "b": "9c"}, "a3": {}}
    src, decoded, _ = roundtrip(nested)
    assert decoded == nested and type(decoded) is dict
    # Tuple keys (RecordKey shape) survive too.
    digest = {("lwg:x", ViewId("p0", 4)): (2, "p0")}
    assert roundtrip(digest)[1] == digest


def test_mapping_record_roundtrips():
    for record in (_mapping_record(3), _mapping_record(4, deleted=True)):
        _, decoded, _ = roundtrip(record)
        assert decoded == record and type(decoded) is type(record)


def test_sync_request_roundtrips():
    from repro.naming.messages import SyncRequest

    message = SyncRequest(
        sender="nsA", sync_id=7, db_hash="ab" * 8,
        expansions={"": {"0": "dead", "f": "beef"}},
        genealogy_children=(ViewId("p0", 1), ViewId("p5", 2)),
    )
    _, decoded, _ = roundtrip(message)
    assert decoded == message and type(decoded) is SyncRequest
    bare = SyncRequest(sender="nsA", sync_id=8, db_hash="cd" * 8)
    assert roundtrip(bare)[1] == bare  # genealogy_children=None survives


def test_sync_reply_roundtrips():
    from repro.naming.messages import SyncReply

    message = SyncReply(
        sender="nsB", sync_id=7, round_no=3,
        expansions={"a": {"0": "00ff"}},
        leaf_digests={"a3f0": {("lwg:1", ViewId("p0", 1)): (1, "p0")}, "b": {}},
        records=(_mapping_record(1), _mapping_record(2, deleted=True)),
        genealogy={ViewId("p0", 2): (ViewId("p0", 1),)},
        genealogy_children=(ViewId("p0", 2),),
    )
    _, decoded, _ = roundtrip(message)
    assert decoded == message and type(decoded) is SyncReply
    in_sync = SyncReply(sender="nsB", sync_id=9, in_sync=True)
    assert roundtrip(in_sync)[1] == in_sync


def test_sync_messages_avoid_pickle_frames():
    from repro.naming.messages import SyncReply

    message = SyncReply(
        sender="nsB", sync_id=1, round_no=1,
        records=(_mapping_record(1),),
        genealogy={ViewId("p0", 2): (ViewId("p0", 1),)},
    )
    frame = CompactCodec().encode("p0", message, 128)
    assert frame[0] == MAGIC
    assert b"SyncReply" not in frame  # no pickled class path inside


def test_liveness_digest_roundtrips_exactly():
    from repro.vsync.messages import LivenessDigest

    digest = LivenessDigest(
        group="_fd",
        sender="p3",
        round_no=417,
        entries=(
            ("p0", 0, 12, False),
            ("p1", 2, 9, True),
            ("p7", 1, 0, False),
        ),
    )
    _, decoded, _ = roundtrip(digest)
    assert decoded == digest and type(decoded) is LivenessDigest
    assert all(isinstance(row, tuple) for row in decoded.entries)
    empty = LivenessDigest(group="_fd", sender="p0", round_no=1)
    assert roundtrip(empty)[1] == empty


def test_liveness_digest_avoids_pickle_frames():
    from repro.vsync.messages import LivenessDigest

    digest = LivenessDigest(
        group="_fd", sender="p3", round_no=2,
        entries=(("p0", 0, 5, False), ("p1", 0, 4, True)),
    )
    frame = CompactCodec().encode("p3", digest, digest.size_bytes())
    assert frame[0] == MAGIC
    assert b"LivenessDigest" not in frame  # no pickled class path inside
