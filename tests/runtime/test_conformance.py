"""Cross-backend conformance: same protocol code, same view history.

One scripted join/send/leave scenario runs on the deterministic
simulator and on the real-time asyncio backend (single process, real UDP
sockets on localhost, wall-clock timers).  The *shape* of the LWG view
history — per node, the ordered sequence of distinct membership sets —
must match: membership logic lives entirely above the runtime
interfaces, so only timing may differ between backends.
"""

from typing import Dict, FrozenSet, List

from repro.runtime.asyncio_backend import AsyncioRuntime
from repro.runtime.interfaces import SECOND
from repro.workloads.cluster import Cluster

GROUP = "conformance"


def view_history_shape(cluster: Cluster) -> Dict[str, List[FrozenSet[str]]]:
    """Per-node ordered distinct member sets from the LWG view trace.

    Consecutive duplicates collapse: identity view changes (merges,
    refreshes that keep membership) are timing artefacts, not shape.
    """
    shapes: Dict[str, List[FrozenSet[str]]] = {}
    for record in cluster.env.tracer.select("lwg", "lwg_view_installed"):
        node = record.fields["node"]
        members = frozenset(record.fields["members"])
        history = shapes.setdefault(node, [])
        if not history or history[-1] != members:
            history.append(members)
    return shapes


def run_scripted_scenario(cluster: Cluster) -> Dict[str, List[FrozenSet[str]]]:
    """Join p0, join p1, send both ways, leave p1; return the shape."""
    p0, p1 = cluster.service("p0"), cluster.service("p1")

    handle0 = p0.join(GROUP)
    assert cluster.run_until(
        lambda: handle0.view is not None and set(handle0.view.members) == {"p0"},
        timeout_us=10 * SECOND,
    ), "p0 never founded the group"

    handle1 = p1.join(GROUP)
    assert cluster.run_until(
        lambda: all(
            h.view is not None and set(h.view.members) == {"p0", "p1"}
            for h in (handle0, handle1)
        ),
        timeout_us=15 * SECOND,
    ), "p1 never joined p0's view"

    handle0.send("from p0")
    handle1.send("from p1")
    cluster.run_for(SECOND)

    handle1.leave()
    assert cluster.run_until(
        lambda: handle0.view is not None and set(handle0.view.members) == {"p0"},
        timeout_us=15 * SECOND,
    ), "p0 never saw p1 leave"
    cluster.run_for(SECOND)
    return view_history_shape(cluster)


def test_sim_and_asyncio_backends_agree_on_view_history():
    sim_cluster = Cluster(2, seed=11, num_name_servers=1)
    sim_shape = run_scripted_scenario(sim_cluster)

    env = AsyncioRuntime.create(seed=11)
    try:
        rt_cluster = Cluster(2, num_name_servers=1, env=env)
        rt_shape = run_scripted_scenario(rt_cluster)
    finally:
        env.close()

    # The scenario is quiescent at every checkpoint, so both backends
    # must produce the canonical history below — not merely agree.
    assert sim_shape == rt_shape
    assert sim_shape["p0"] == [
        frozenset({"p0"}),
        frozenset({"p0", "p1"}),
        frozenset({"p0"}),
    ]
    assert rt_shape["p1"] == [frozenset({"p0", "p1"})]
