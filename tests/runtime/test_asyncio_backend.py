"""Unit tests for the real-time asyncio backend primitives."""

import time

import pytest

from repro.runtime.asyncio_backend import (
    AsyncioRuntime,
    BroadcastAddressing,
    WallClock,
    free_udp_ports,
)
from repro.runtime.interfaces import MS


@pytest.fixture
def env():
    runtime = AsyncioRuntime.create(seed=1)
    yield runtime
    runtime.close()


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------
def test_wall_clock_advances_in_microseconds():
    clock = WallClock()
    first = clock.now
    time.sleep(0.01)
    assert clock.now - first >= 5 * MS


def test_shared_epoch_yields_comparable_clocks():
    epoch = time.monotonic()
    a, b = WallClock(epoch), WallClock(epoch)
    assert abs(a.now - b.now) < 50 * MS


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def test_timer_fires_after_delay(env):
    fired = []
    env.scheduler.schedule(5 * MS, lambda: fired.append(env.now))
    env.run_for(50 * MS)
    assert len(fired) == 1
    assert fired[0] >= 5 * MS


def test_timer_cancel_prevents_firing(env):
    fired = []
    handle = env.scheduler.schedule(5 * MS, lambda: fired.append(1))
    assert handle.pending
    handle.cancel()
    assert not handle.pending
    env.run_for(20 * MS)
    assert fired == []


def test_timer_pending_transitions_on_fire(env):
    handle = env.scheduler.schedule(1 * MS, lambda: None)
    assert handle.pending
    env.run_for(20 * MS)
    assert not handle.pending


def test_schedule_at_absolute_time(env):
    fired = []
    env.scheduler.schedule_at(env.now + 5 * MS, lambda: fired.append(env.now))
    env.run_for(50 * MS)
    assert len(fired) == 1


# ----------------------------------------------------------------------
# UDP fabric
# ----------------------------------------------------------------------
def _mailbox(env, node):
    inbox = []
    env.fabric.attach(node, lambda src, payload, size: inbox.append((src, payload)))
    return inbox


def test_unicast_delivery_over_udp(env):
    inbox_b = _mailbox(env, "b")
    _mailbox(env, "a")
    assert env.fabric.send("a", "b", {"n": 1}, 64)
    env.run_for(100 * MS)
    assert inbox_b == [("a", {"n": 1})]


def test_multicast_reaches_all_including_loopback(env):
    boxes = {node: _mailbox(env, node) for node in ("a", "b", "c")}
    sent = env.fabric.multicast("a", {"a", "b", "c"}, "beacon", 64)
    assert sent == 3
    env.run_for(100 * MS)
    for node in ("a", "b", "c"):
        assert boxes[node] == [("a", "beacon")]


def test_partition_drop_filter_blocks_cross_block_traffic(env):
    inbox_b = _mailbox(env, "b")
    _mailbox(env, "a")
    env.fabric.set_partitions([["a"], ["b"]])
    assert not env.fabric.reachable("a", "b")
    assert not env.fabric.send("a", "b", "cut", 64)
    env.run_for(50 * MS)
    assert inbox_b == []
    env.fabric.heal()
    assert env.fabric.reachable("a", "b")
    assert env.fabric.send("a", "b", "healed", 64)
    env.run_for(100 * MS)
    assert inbox_b == [("a", "healed")]


def test_receive_side_filter_cuts_in_flight_datagrams(env):
    inbox_b = _mailbox(env, "b")
    _mailbox(env, "a")
    # Datagram is on the wire before the receiver installs the filter.
    assert env.fabric.send("a", "b", "late", 64)
    env.fabric.set_partitions([["a"], ["b"]])
    env.run_for(100 * MS)
    assert inbox_b == []


def test_crashed_node_neither_sends_nor_receives(env):
    inbox_b = _mailbox(env, "b")
    _mailbox(env, "a")
    env.fabric.set_alive("b", False)
    assert not env.fabric.is_alive("b")
    assert not env.fabric.send("a", "b", "x", 64)
    env.fabric.set_alive("b", True)
    assert env.fabric.send("a", "b", "y", 64)
    env.run_for(100 * MS)
    assert inbox_b == [("a", "y")]


def test_remote_mapped_nodes_assumed_alive():
    runtime = AsyncioRuntime.create(
        seed=1, node_addrs={"remote": ("127.0.0.1", 45_001)}
    )
    try:
        _mailbox(runtime, "local")
        assert runtime.fabric.is_alive("remote")
        assert runtime.fabric.has_node("remote")
        assert runtime.fabric.reachable("local", "remote")
        # Sends to the mapped-but-absent peer leave the process cleanly.
        assert runtime.fabric.send("local", "remote", "hello", 64)
    finally:
        runtime.close()


def test_partition_blocks_reporting(env):
    for node in ("a", "b", "c"):
        _mailbox(env, node)
    env.fabric.set_partitions([["a", "b"], ["c"]])
    assert env.fabric.partition_blocks() == [
        frozenset({"a", "b"}),
        frozenset({"c"}),
    ]


def test_detach_releases_the_node(env):
    _mailbox(env, "a")
    assert env.fabric.has_node("a")
    env.fabric.detach("a")
    assert not env.fabric.has_node("a")
    assert "a" not in env.fabric.nodes


# ----------------------------------------------------------------------
# Broadcast addressing
# ----------------------------------------------------------------------
def test_broadcast_addressing_reports_every_fabric_node(env):
    for node in ("a", "b"):
        _mailbox(env, node)
    addressing = BroadcastAddressing(env.fabric)
    addressing.subscribe("hwg:x", "a")
    # Broadcast semantics: the whole medium is the subscriber set.
    assert addressing.subscribers("hwg:x") == {"a", "b"}
    assert addressing.subscribers("hwg:unknown") == {"a", "b"}
    # Local subscriptions are still tracked for teardown.
    assert addressing.groups_of("a") == {"hwg:x"}
    addressing.unsubscribe_all("a")
    assert addressing.groups_of("a") == set()


# ----------------------------------------------------------------------
# Failure feed
# ----------------------------------------------------------------------
def test_failure_feed_fires_hooks_once_per_transition(env):
    _mailbox(env, "a")
    transitions = []
    env.failures.on_transition("a", transitions.append)
    env.failures.crash_now("a")
    env.failures.crash_now("a")  # no-op: already crashed
    env.failures.recover_now("a")
    assert transitions == [True, False]
    assert env.fabric.is_alive("a")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def test_free_udp_ports_are_distinct():
    ports = free_udp_ports(4)
    assert len(set(ports)) == 4
    assert all(1024 <= port <= 65535 for port in ports)
