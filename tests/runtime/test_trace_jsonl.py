"""Round-trip tests for JSONL trace export/import (satellite of the
runtime-layer extraction: real-backend runs persist per-process traces
for merging and checker replay)."""

import json

from repro.runtime.trace import TraceRecord, Tracer


def make_tracer(start=100):
    clock = {"now": start}
    tracer = Tracer(clock=lambda: clock["now"], keep_records=True)
    return tracer, clock


def test_jsonl_round_trip_preserves_records(tmp_path):
    tracer, clock = make_tracer()
    tracer.emit("lwg", "lwg_view_installed", node="p0", members=["p0", "p1"])
    clock["now"] = 250
    tracer.emit("network", "partition", blocks=[["p0"], ["p1"]])
    clock["now"] = 900
    tracer.emit("naming", "reconciled", server="ns0", applied=3, gc_removed=0)

    path = tmp_path / "trace.jsonl"
    assert tracer.to_jsonl(path) == 3

    loaded = Tracer.from_jsonl(path)
    assert loaded.records == tracer.records


def test_jsonl_round_trip_of_empty_trace(tmp_path):
    tracer, _ = make_tracer()
    path = tmp_path / "empty.jsonl"
    assert tracer.to_jsonl(path) == 0
    assert Tracer.from_jsonl(path).records == []


def test_jsonl_lines_are_plain_json(tmp_path):
    tracer, _ = make_tracer(start=42)
    tracer.emit("hwg", "view_installed", node="p1", view="p0#3")
    path = tmp_path / "trace.jsonl"
    tracer.to_jsonl(path)
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    obj = json.loads(lines[0])
    assert obj == {
        "time": 42,
        "category": "hwg",
        "event": "view_installed",
        "fields": {"node": "p1", "view": "p0#3"},
    }


def test_non_json_native_fields_are_stringified(tmp_path):
    class ViewId:
        def __str__(self):
            return "p0#7"

    tracer, _ = make_tracer()
    tracer.emit("lwg", "minted", view=ViewId())
    path = tmp_path / "trace.jsonl"
    tracer.to_jsonl(path)
    loaded = Tracer.from_jsonl(path)
    assert loaded.records[0].fields["view"] == "p0#7"


def test_loaded_tracer_supports_select_and_dump(tmp_path):
    tracer, clock = make_tracer()
    tracer.emit("lwg", "a", node="p0")
    clock["now"] = 200
    tracer.emit("hwg", "b", node="p1")
    path = tmp_path / "trace.jsonl"
    tracer.to_jsonl(path)

    loaded = Tracer.from_jsonl(path)
    assert [r.event for r in loaded.select("lwg")] == ["a"]
    assert "hwg.b" in loaded.dump()
    # The passive clock is frozen at the last loaded timestamp, so
    # appending to a loaded trace keeps time monotone.
    assert loaded._clock() == 200


def test_blank_lines_are_skipped(tmp_path):
    tracer, _ = make_tracer()
    tracer.emit("lwg", "only", node="p0")
    path = tmp_path / "trace.jsonl"
    tracer.to_jsonl(path)
    path.write_text(path.read_text() + "\n\n")
    assert len(Tracer.from_jsonl(path).records) == 1


def test_round_trip_via_sim_shim_import(tmp_path):
    # The relocated module stays importable from its old home.
    from repro.sim.trace import Tracer as ShimTracer

    assert ShimTracer is Tracer
