"""Tests for the stream-split RNG registry."""

from repro.sim import RngRegistry


def test_same_seed_same_stream_sequence():
    a = RngRegistry(7).stream("net")
    b = RngRegistry(7).stream("net")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RngRegistry(1).stream("net")
    b = RngRegistry(2).stream("net")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_streams_are_independent_of_creation_order():
    r1 = RngRegistry(9)
    r2 = RngRegistry(9)
    first_then_second = (r1.stream("a").random(), r1.stream("b").random())
    second_then_first = (r2.stream("b").random(), r2.stream("a").random())
    assert first_then_second[0] == second_then_first[1]
    assert first_then_second[1] == second_then_first[0]


def test_stream_is_cached():
    registry = RngRegistry(3)
    assert registry.stream("x") is registry.stream("x")


def test_named_streams_differ():
    registry = RngRegistry(3)
    assert registry.stream("x").random() != registry.stream("y").random()


def test_fork_is_deterministic_and_distinct():
    root = RngRegistry(5)
    fork_a = root.fork("rep1")
    fork_b = RngRegistry(5).fork("rep1")
    assert fork_a.seed == fork_b.seed
    assert fork_a.seed != root.seed
    assert root.fork("rep2").seed != fork_a.seed
