"""Tests for the partitionable network model."""

import pytest

from repro.sim import LinkModel, Network, RngRegistry, SimEnv, Simulation


def make_net(seed=0, **link_kwargs):
    sim = Simulation()
    link = LinkModel(jitter_us=0, **link_kwargs)
    net = Network(sim, RngRegistry(seed), link=link)
    return sim, net


def attach(net, *nodes):
    inboxes = {}
    for node in nodes:
        inboxes[node] = []
        net.attach(node, lambda src, p, s, n=node: inboxes[n].append((src, p)))
    return inboxes


def test_unicast_delivery():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    assert net.send("a", "b", "hello") is True
    sim.run()
    assert boxes["b"] == [("a", "hello")]


def test_delivery_is_delayed_by_latency():
    sim, net = make_net()
    attach(net, "a", "b")
    net.send("a", "b", "x", size=100)
    sim.run()
    assert sim.now >= net.link.latency_us


def test_multicast_reaches_all_destinations():
    sim, net = make_net()
    boxes = attach(net, "a", "b", "c", "d")
    count = net.multicast("a", ["b", "c", "d"], "m")
    sim.run()
    assert count == 3
    for node in ("b", "c", "d"):
        assert boxes[node] == [("a", "m")]


def test_multicast_loopback_delivers_to_self():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    net.multicast("a", ["a", "b"], "m")
    sim.run()
    assert boxes["a"] == [("a", "m")]
    assert boxes["b"] == [("a", "m")]


def test_partition_blocks_cross_traffic():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    net.set_partitions([["a"], ["b"]])
    assert net.send("a", "b", "x") is False
    sim.run()
    assert boxes["b"] == []


def test_partition_allows_intra_block_traffic():
    sim, net = make_net()
    boxes = attach(net, "a", "b", "c")
    net.set_partitions([["a", "b"], ["c"]])
    net.send("a", "b", "x")
    sim.run()
    assert boxes["b"] == [("a", "x")]


def test_heal_restores_connectivity():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    net.set_partitions([["a"], ["b"]])
    net.heal()
    net.send("a", "b", "x")
    sim.run()
    assert boxes["b"] == [("a", "x")]


def test_partition_cuts_in_flight_messages():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    net.send("a", "b", "x")
    # Partition strikes while the message is still in flight.
    net.set_partitions([["a"], ["b"]])
    sim.run()
    assert boxes["b"] == []
    assert net.messages_dropped == 1


def test_node_in_two_blocks_rejected():
    _, net = make_net()
    attach(net, "a", "b")
    with pytest.raises(ValueError):
        net.set_partitions([["a"], ["a", "b"]])


def test_unlisted_nodes_default_to_block_zero():
    sim, net = make_net()
    boxes = attach(net, "a", "b", "c")
    net.set_partitions([["a", "c"], ["b"]])
    # "a" and "c" share block 0 only if listed; unlisted joins block 0.
    net.set_partitions([["b"]])  # a, c unlisted -> block 0; b alone in 0? no: b listed in block 0
    # After this call a and c are in block 0 and b is in block 0 as well.
    assert net.reachable("a", "c")


def test_crashed_node_cannot_send_or_receive():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    net.set_alive("b", False)
    assert net.send("a", "b", "x") is False
    net.set_alive("b", True)
    net.set_alive("a", False)
    assert net.send("a", "b", "x") is False
    sim.run()
    assert boxes["b"] == []


def test_crash_drops_in_flight_messages():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    net.send("a", "b", "x")
    net.set_alive("b", False)
    sim.run()
    assert boxes["b"] == []


def test_recovery_allows_new_messages():
    sim, net = make_net()
    boxes = attach(net, "a", "b")
    net.set_alive("b", False)
    net.set_alive("b", True)
    net.send("a", "b", "x")
    sim.run()
    assert boxes["b"] == [("a", "x")]


def test_unknown_node_crash_raises():
    _, net = make_net()
    with pytest.raises(KeyError):
        net.set_alive("ghost", False)


def test_loss_probability_drops_messages():
    sim, net = make_net(loss_probability=1.0)
    boxes = attach(net, "a", "b")
    net.send("a", "b", "x")
    sim.run()
    assert boxes["b"] == []
    assert net.messages_dropped == 1


def test_serialization_delay_scales_with_size():
    link = LinkModel(bandwidth_bps=1_000_000, per_message_overhead_bytes=0)
    assert link.serialization_us(1000) == 8 * link.serialization_us(125)


def test_shared_medium_serializes_transmissions():
    sim, net = make_net(bandwidth_bps=1_000_000)
    boxes = attach(net, "a", "b", "c")
    arrival_times = []
    net.detach("b")
    net.attach("b", lambda s, p, z: arrival_times.append(sim.now))
    for _ in range(5):
        net.send("a", "b", "x", size=1000)
    sim.run()
    gaps = [b - a for a, b in zip(arrival_times, arrival_times[1:])]
    serialization = net.link.serialization_us(1000)
    # Back-to-back sends queue on the medium: inter-arrival ~ serialization.
    assert all(gap >= serialization - net.link.rx_cost_us for gap in gaps)


def test_per_node_egress_when_not_shared():
    sim = Simulation()
    net = Network(sim, RngRegistry(0), link=LinkModel(jitter_us=0), shared_medium=False)
    received = []
    net.attach("a", lambda *a: None)
    net.attach("b", lambda *a: None)
    net.attach("x", lambda s, p, z: received.append(sim.now))
    # Two different senders do not contend for the wire in switched mode.
    net.send("a", "x", "m1", size=10_000)
    net.send("b", "x", "m2", size=10_000)
    sim.run()
    assert len(received) == 2


def test_counters_track_traffic():
    sim, net = make_net()
    attach(net, "a", "b")
    net.send("a", "b", "x", size=100)
    sim.run()
    assert net.messages_sent == 1
    assert net.messages_delivered == 1
    assert net.bytes_sent == 100


def test_partition_blocks_accessor():
    _, net = make_net()
    attach(net, "a", "b", "c")
    net.set_partitions([["a"], ["b", "c"]])
    blocks = net.partition_blocks()
    assert frozenset({"a"}) in blocks
    assert frozenset({"b", "c"}) in blocks
