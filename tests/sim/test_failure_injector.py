"""FailureInjector edge cases: idempotent transitions, exact hook counts,
crash racing a heal, and in-flight message drops."""

import pytest

from repro.sim import Process, SimEnv


class Counter(Process):
    def __init__(self, env, node):
        super().__init__(env, node)
        self.received = []
        self.crashes = 0
        self.recoveries = 0

    def on_message(self, src, msg, size):
        self.received.append((src, msg))

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


def test_crash_of_crashed_node_is_a_noop(env):
    a = Counter(env, "a")
    env.failures.crash_now("a")
    env.failures.crash_now("a")
    assert a.crashes == 1
    assert a.crashed
    assert not env.network.is_alive("a")


def test_recovery_of_live_node_is_a_noop(env):
    a = Counter(env, "a")
    env.failures.recover_now("a")
    assert a.recoveries == 0
    assert env.network.is_alive("a")
    env.failures.crash_now("a")
    env.failures.recover_now("a")
    env.failures.recover_now("a")
    assert a.crashes == 1
    assert a.recoveries == 1


def test_scheduled_duplicate_transitions_fire_hooks_once(env):
    a = Counter(env, "a")
    env.failures.crash_at(100, "a").crash_at(200, "a")
    env.failures.recover_at(300, "a")
    env.failures.recover_at(400, "a")
    env.sim.run()
    assert a.crashes == 1
    assert a.recoveries == 1


def test_unknown_node_still_raises(env):
    with pytest.raises(KeyError, match="ghost"):
        env.failures.crash_now("ghost")
    with pytest.raises(KeyError, match="ghost"):
        env.failures.recover_now("ghost")


def test_duplicate_crash_emits_no_duplicate_trace_event(env):
    Counter(env, "a")
    env.failures.crash_now("a")
    env.failures.crash_now("a")
    crashes = [
        r for r in env.tracer.records
        if r.category == "network" and r.event == "crash"
    ]
    assert len(crashes) == 1


def test_crash_at_same_tick_as_heal(env):
    """A node crashing at the very tick the network heals: the heal must
    not resurrect it, and its hooks fire exactly once."""
    a, b = Counter(env, "a"), Counter(env, "b")
    env.network.set_partitions([["a"], ["b"]])
    heal_time = 1_000
    env.sim.schedule_at(heal_time, env.network.heal)
    env.failures.crash_at(heal_time, "a")
    env.sim.run()
    assert a.crashes == 1 and a.recoveries == 0
    assert not env.network.is_alive("a")
    assert env.network.is_alive("b")
    # Healed for live nodes, but 'a' stays dark.
    b.send("a", "hello")
    env.sim.run()
    assert a.received == []


def test_in_flight_messages_to_crashing_node_are_dropped(env):
    a, b = Counter(env, "a"), Counter(env, "b")
    b.send("a", "doomed")           # latency makes delivery strictly later
    env.failures.crash_now("a")
    env.sim.run()
    assert a.received == []
    env.failures.recover_now("a")
    b.send("a", "fresh")
    env.sim.run()
    assert a.received == [("b", "fresh")]


def test_in_flight_messages_from_crashing_node_are_dropped(env):
    a, b = Counter(env, "a"), Counter(env, "b")
    a.send("b", "doomed")
    env.failures.crash_now("a")
    env.sim.run()
    assert b.received == []
