"""Property-based tests for the stream-split RNG registry.

The fuzzer's reproducibility rests entirely on three properties of
:class:`~repro.sim.rng.RngRegistry`:

* a ``(seed, stream-name)`` pair identifies one draw sequence,
  regardless of how many other streams exist or in what order they were
  created;
* forked registries are deterministic functions of ``(seed, fork-name)``
  and their streams are independent of the parent's;
* ``_derive_seed`` is a stable, documented mapping — changing it silently
  would invalidate every frozen schedule and corpus digest.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry
from repro.sim.rng import _derive_seed

seeds = st.integers(min_value=0, max_value=2**63 - 1)
names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)


def draws(rng, n=8):
    return [rng.randrange(2**32) for _ in range(n)]


@given(seed=seeds, name=names, others=st.lists(names, max_size=6))
@settings(max_examples=100, deadline=None)
def test_stream_draws_independent_of_creation_order(seed, name, others):
    # Registry A touches a bunch of other streams first; registry B asks
    # for `name` immediately.  Both must see the same sequence.
    a = RngRegistry(seed)
    for other in others:
        if other != name:
            a.stream(other).random()
    b = RngRegistry(seed)
    assert draws(a.stream(name)) == draws(b.stream(name))


@given(seed=seeds, name=names)
@settings(max_examples=100, deadline=None)
def test_same_seed_same_stream_same_draws(seed, name):
    assert draws(RngRegistry(seed).stream(name)) == draws(
        RngRegistry(seed).stream(name)
    )


@given(seed=seeds, a=names, b=names)
@settings(max_examples=100, deadline=None)
def test_distinct_names_give_distinct_streams(seed, a, b):
    if a == b:
        return
    registry = RngRegistry(seed)
    assert draws(registry.stream(a)) != draws(registry.stream(b))


@given(seed=seeds, fork_name=names, stream_name=names)
@settings(max_examples=100, deadline=None)
def test_fork_is_a_pure_function_of_seed_and_name(seed, fork_name, stream_name):
    one = RngRegistry(seed).fork(fork_name)
    two = RngRegistry(seed).fork(fork_name)
    assert one.seed == two.seed
    assert draws(one.stream(stream_name)) == draws(two.stream(stream_name))


@given(seed=seeds, fork_name=names, stream_name=names)
@settings(max_examples=100, deadline=None)
def test_fork_streams_independent_of_parent_usage(seed, fork_name, stream_name):
    # Consuming draws in the parent must never perturb a fork.
    parent = RngRegistry(seed)
    parent.stream(stream_name).random()
    warm_fork = parent.fork(fork_name)
    cold_fork = RngRegistry(seed).fork(fork_name)
    assert draws(warm_fork.stream(stream_name)) == draws(
        cold_fork.stream(stream_name)
    )


@given(seed=seeds, name=names)
@settings(max_examples=100, deadline=None)
def test_fork_differs_from_same_named_stream(seed, name):
    # fork("x") and stream("x") must not collide (distinct derivations).
    registry = RngRegistry(seed)
    fork_draws = draws(registry.fork(name).stream(name))
    stream_draws = draws(RngRegistry(seed).stream(name))
    assert fork_draws != stream_draws


@given(seed=seeds, name=names)
@settings(max_examples=100, deadline=None)
def test_derive_seed_is_stable_across_calls(seed, name):
    assert _derive_seed(seed, name) == _derive_seed(seed, name)
    assert 0 <= _derive_seed(seed, name) < 2**64


def test_derive_seed_frozen_values():
    # Golden values: if this test fails, the derivation changed and every
    # frozen schedule, corpus file and recorded digest is invalidated.
    # Bump the fuzz schedule SCHEMA_VERSION if you change this knowingly.
    assert _derive_seed(0, "net.latency") == 13176976292430956614
    assert _derive_seed(7, "fork:iter:0") == 11957199679723830767
    assert _derive_seed(42, "schedule") == 5307109112791399321
