"""Property-based tests of the event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulation


@settings(max_examples=80, deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), max_size=40))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulation()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=80, deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=30))
def test_ties_fire_in_insertion_order(delays):
    sim = Simulation()
    fired = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, lambda i=index: fired.append(i))
    sim.run()
    # Within each timestamp, indices must appear in insertion order.
    by_time = {}
    for position, index in enumerate(fired):
        by_time.setdefault(delays[index], []).append(index)
    for indices in by_time.values():
        assert indices == sorted(indices)


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
)
def test_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulation()
    fired = []
    handles = []
    for index, delay in enumerate(delays):
        handles.append(sim.schedule(delay, lambda i=index: fired.append(i)))
    cancelled = set()
    for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(index)
    sim.run()
    assert not (set(fired) & cancelled)
    assert set(fired) == set(range(len(delays))) - cancelled


@settings(max_examples=50, deadline=None)
@given(
    splits=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20),
    horizon=st.integers(min_value=0, max_value=1500),
)
def test_run_until_is_a_clean_cut(splits, horizon):
    sim = Simulation()
    fired = []
    for delay in splits:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run_until(horizon)
    assert all(d <= horizon for d in fired)
    assert sorted(fired) == sorted(d for d in splits if d <= horizon)
    assert sim.now == horizon
