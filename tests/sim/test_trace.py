"""Tests for the structured tracer."""

from repro.sim import NullTracer, Tracer


def make_tracer(keep=True):
    clock = {"t": 0}
    tracer = Tracer(clock=lambda: clock["t"], keep_records=keep)
    return tracer, clock


def test_emit_records_time_and_fields():
    tracer, clock = make_tracer()
    clock["t"] = 55
    tracer.emit("cat", "evt", a=1, b="x")
    record = tracer.records[0]
    assert record.time == 55
    assert record.category == "cat"
    assert record.event == "evt"
    assert record.fields == {"a": 1, "b": "x"}


def test_select_filters_by_category_and_event():
    tracer, _ = make_tracer()
    tracer.emit("net", "send")
    tracer.emit("net", "recv")
    tracer.emit("hwg", "send")
    assert len(tracer.select(category="net")) == 2
    assert len(tracer.select(event="send")) == 2
    assert len(tracer.select(category="net", event="send")) == 1


def test_subscribe_receives_all_records():
    tracer, _ = make_tracer(keep=False)
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("a", "b")
    assert len(seen) == 1
    assert tracer.records == []  # keep_records=False


def test_clear_keeps_listeners():
    tracer, _ = make_tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("a", "b")
    tracer.clear()
    assert tracer.records == []
    tracer.emit("a", "c")
    assert len(seen) == 2


def test_dump_filters_by_category():
    tracer, _ = make_tracer()
    tracer.emit("x", "one", k=1)
    tracer.emit("y", "two")
    dump = tracer.dump(categories=["x"])
    assert "x.one" in dump and "y.two" not in dump


def test_record_str_contains_fields():
    tracer, clock = make_tracer()
    clock["t"] = 9
    tracer.emit("c", "e", node="p1")
    assert "node=p1" in str(tracer.records[0])


def test_null_tracer_drops_everything():
    tracer = NullTracer()
    tracer.emit("a", "b", c=3)
    assert tracer.records == []


# ----------------------------------------------------------------------
# Category-scoped subscriptions and the ``enabled`` fast path
# ----------------------------------------------------------------------
def test_category_listener_never_sees_other_categories():
    tracer, _ = make_tracer(keep=False)
    seen = []
    tracer.subscribe(seen.append, categories=("network",))
    tracer.emit("hwg", "data_delivered", seq=1)
    tracer.emit("network", "send")
    tracer.emit("lwg", "switch")
    assert [r.category for r in seen] == ["network"]


def test_multi_category_subscription():
    tracer, _ = make_tracer(keep=False)
    seen = []
    tracer.subscribe(seen.append, categories=("hwg", "lwg"))
    tracer.emit("hwg", "x")
    tracer.emit("network", "y")
    tracer.emit("lwg", "z")
    assert [r.category for r in seen] == ["hwg", "lwg"]


def test_wildcard_listeners_fire_before_category_listeners():
    tracer, _ = make_tracer(keep=False)
    order = []
    tracer.subscribe(lambda r: order.append("cat"), categories=("a",))
    tracer.subscribe(lambda r: order.append("wild"))
    tracer.emit("a", "evt")
    assert order == ["wild", "cat"]


def test_enabled_flips_on_subscribe_and_unsubscribe():
    tracer, _ = make_tracer(keep=False)
    assert not tracer.enabled("hwg")
    listener = lambda record: None  # noqa: E731
    tracer.subscribe(listener, categories=("hwg",))
    assert tracer.enabled("hwg")
    assert not tracer.enabled("network")
    tracer.unsubscribe(listener)
    assert not tracer.enabled("hwg")


def test_enabled_true_for_everything_with_wildcard_or_records():
    keeping, _ = make_tracer(keep=True)
    assert keeping.enabled("anything")
    tracer, _ = make_tracer(keep=False)
    tracer.subscribe(lambda record: None)
    assert tracer.enabled("anything")


def test_unsubscribe_removes_wildcard_listener():
    tracer, _ = make_tracer(keep=False)
    seen = []
    listener = seen.append  # bind once: unsubscribe matches by identity
    tracer.subscribe(listener)
    tracer.emit("a", "one")
    tracer.unsubscribe(listener)
    tracer.emit("a", "two")
    assert [r.event for r in seen] == ["one"]


def test_gated_emit_skips_record_construction():
    tracer, _ = make_tracer(keep=False)
    tracer.subscribe(lambda record: None, categories=("network",))
    # An emit in an unwatched category must reach nobody and keep nothing.
    tracer.emit("hwg", "data_delivered", seq=1)
    assert tracer.records == []
    assert not tracer.enabled("hwg")


# ----------------------------------------------------------------------
# Lazy select index
# ----------------------------------------------------------------------
def test_select_index_sees_records_emitted_after_first_select():
    tracer, _ = make_tracer()
    tracer.emit("net", "send")
    assert len(tracer.select(category="net")) == 1  # builds the index
    tracer.emit("net", "send")  # must invalidate it
    assert len(tracer.select(category="net")) == 2
    assert len(tracer.select(category="net", event="send")) == 2
    assert len(tracer.select(event="send")) == 2


def test_select_index_reset_on_clear():
    tracer, _ = make_tracer()
    tracer.emit("net", "send")
    assert tracer.select(category="net")
    tracer.clear()
    assert tracer.select(category="net") == []
    # Refill to the same length as before the clear: the index must not
    # serve the pre-clear contents.
    tracer.emit("hwg", "install")
    assert tracer.select(category="net") == []
    assert len(tracer.select(category="hwg")) == 1


def test_select_preserves_emission_order():
    tracer, clock = make_tracer()
    for i, event in enumerate(["a", "b", "c"]):
        tracer.emit("net", event, i=i)
    records = tracer.select(category="net")
    assert [r.event for r in records] == ["a", "b", "c"]
