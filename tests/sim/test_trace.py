"""Tests for the structured tracer."""

from repro.sim import NullTracer, Tracer


def make_tracer(keep=True):
    clock = {"t": 0}
    tracer = Tracer(clock=lambda: clock["t"], keep_records=keep)
    return tracer, clock


def test_emit_records_time_and_fields():
    tracer, clock = make_tracer()
    clock["t"] = 55
    tracer.emit("cat", "evt", a=1, b="x")
    record = tracer.records[0]
    assert record.time == 55
    assert record.category == "cat"
    assert record.event == "evt"
    assert record.fields == {"a": 1, "b": "x"}


def test_select_filters_by_category_and_event():
    tracer, _ = make_tracer()
    tracer.emit("net", "send")
    tracer.emit("net", "recv")
    tracer.emit("hwg", "send")
    assert len(tracer.select(category="net")) == 2
    assert len(tracer.select(event="send")) == 2
    assert len(tracer.select(category="net", event="send")) == 1


def test_subscribe_receives_all_records():
    tracer, _ = make_tracer(keep=False)
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("a", "b")
    assert len(seen) == 1
    assert tracer.records == []  # keep_records=False


def test_clear_keeps_listeners():
    tracer, _ = make_tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("a", "b")
    tracer.clear()
    assert tracer.records == []
    tracer.emit("a", "c")
    assert len(seen) == 2


def test_dump_filters_by_category():
    tracer, _ = make_tracer()
    tracer.emit("x", "one", k=1)
    tracer.emit("y", "two")
    dump = tracer.dump(categories=["x"])
    assert "x.one" in dump and "y.two" not in dump


def test_record_str_contains_fields():
    tracer, clock = make_tracer()
    clock["t"] = 9
    tracer.emit("c", "e", node="p1")
    assert "node=p1" in str(tracer.records[0])


def test_null_tracer_drops_everything():
    tracer = NullTracer()
    tracer.emit("a", "b", c=3)
    assert tracer.records == []
