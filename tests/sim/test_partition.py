"""Tests for scripted partition schedules."""

from repro.sim import PartitionSchedule, SimEnv


def test_split_applies_at_scheduled_time(env):
    env.network.attach("a", lambda *a: None)
    env.network.attach("b", lambda *a: None)
    schedule = PartitionSchedule().split_at(1000, [["a"], ["b"]])
    schedule.apply(env.sim, env.network)
    assert env.network.reachable("a", "b")
    env.sim.run_until(1001)
    assert not env.network.reachable("a", "b")


def test_heal_applies_at_scheduled_time(env):
    env.network.attach("a", lambda *a: None)
    env.network.attach("b", lambda *a: None)
    schedule = PartitionSchedule().split_at(10, [["a"], ["b"]]).heal_at(100)
    schedule.apply(env.sim, env.network)
    env.sim.run_until(50)
    assert not env.network.reachable("a", "b")
    env.sim.run_until(150)
    assert env.network.reachable("a", "b")


def test_virtual_partition_is_split_plus_heal(env):
    env.network.attach("a", lambda *a: None)
    env.network.attach("b", lambda *a: None)
    schedule = PartitionSchedule().virtual_partition(10, 40, [["a"], ["b"]])
    assert len(schedule) == 2
    schedule.apply(env.sim, env.network)
    env.sim.run_until(30)
    assert not env.network.reachable("a", "b")
    env.sim.run_until(60)
    assert env.network.reachable("a", "b")


def test_events_apply_in_time_order_regardless_of_insertion(env):
    env.network.attach("a", lambda *a: None)
    env.network.attach("b", lambda *a: None)
    schedule = PartitionSchedule()
    schedule.heal_at(200)
    schedule.split_at(100, [["a"], ["b"]])
    schedule.apply(env.sim, env.network)
    env.sim.run_until(150)
    assert not env.network.reachable("a", "b")
    env.sim.run_until(250)
    assert env.network.reachable("a", "b")


def test_multiple_splits(env):
    for node in ("a", "b", "c"):
        env.network.attach(node, lambda *a: None)
    schedule = (
        PartitionSchedule()
        .split_at(10, [["a"], ["b", "c"]])
        .split_at(20, [["a", "b"], ["c"]])
    )
    schedule.apply(env.sim, env.network)
    env.sim.run_until(15)
    assert env.network.reachable("b", "c")
    env.sim.run_until(25)
    assert env.network.reachable("a", "b")
    assert not env.network.reachable("b", "c")
