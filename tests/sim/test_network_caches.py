"""Tests for the network fabric's hot-path caches and delivery counters.

The sorted-destination memo and the partition-block cache trade repeated
work for invalidation obligations; these tests pin the invalidation
points (attach/detach, set_partitions/heal) and the per-receiver
accounting the fan-out rewrite introduced.
"""

from repro.sim import LinkModel, Network, RngRegistry, Simulation


def make_net(seed=0, **link_kwargs):
    sim = Simulation()
    link = LinkModel(jitter_us=0, **link_kwargs)
    net = Network(sim, RngRegistry(seed), link=link)
    return sim, net


def attach(net, *nodes):
    inboxes = {}
    for node in nodes:
        inboxes[node] = []
        net.attach(node, lambda src, p, s, n=node: inboxes[n].append((src, p)))
    return inboxes


# ----------------------------------------------------------------------
# Sorted-destination memo
# ----------------------------------------------------------------------
def test_repeated_multicast_reuses_memoized_order():
    sim, net = make_net()
    boxes = attach(net, "a", "b", "c", "d")
    for _ in range(3):
        net.multicast("a", {"b", "c", "d"}, "m")
    sim.run()
    assert len(net._sorted_dsts) == 1
    assert net._sorted_dsts[frozenset({"b", "c", "d"})] == ("b", "c", "d")
    for node in ("b", "c", "d"):
        assert len(boxes[node]) == 3


def test_memo_cleared_on_attach():
    sim, net = make_net()
    boxes = attach(net, "a", "b", "c")
    net.multicast("a", {"b", "c"}, "m1")
    assert net._sorted_dsts
    boxes.update(attach(net, "d"))
    assert not net._sorted_dsts  # attach invalidates
    net.multicast("a", {"b", "c", "d"}, "m2")
    sim.run()
    assert boxes["d"] == [("a", "m2")]


def test_memo_cleared_on_detach_and_stale_order_not_reused():
    sim, net = make_net()
    boxes = attach(net, "a", "b", "c")
    dsts = {"b", "c"}
    net.multicast("a", dsts, "m1")
    assert frozenset(dsts) in net._sorted_dsts
    net.detach("c")
    assert not net._sorted_dsts  # detach invalidates
    # Same destination set object: "c" is gone, so only "b" receives.
    scheduled = net.multicast("a", dsts, "m2")
    sim.run()
    assert scheduled == 1
    assert boxes["b"] == [("a", "m1"), ("a", "m2")]
    assert boxes["c"] == []


def test_memo_survives_partition_changes():
    # Partitions change reachability, not the sorted order, so the memo
    # is *not* invalidated — deliveries must still respect the blocks.
    sim, net = make_net()
    boxes = attach(net, "a", "b", "c")
    net.multicast("a", {"b", "c"}, "m1")
    memo_before = dict(net._sorted_dsts)
    net.set_partitions([["a", "b"], ["c"]])
    assert net._sorted_dsts == memo_before
    net.multicast("a", {"b", "c"}, "m2")
    sim.run()
    assert ("a", "m2") in boxes["b"]
    assert all(p != "m2" for _, p in boxes["c"])


def test_memo_bound_is_enforced():
    from repro.sim.network import _SORTED_DSTS_MEMO_MAX

    sim, net = make_net()
    attach(net, *[f"n{i}" for i in range(8)])
    net._sorted_dsts = {
        frozenset({f"x{i}"}): (f"x{i}",) for i in range(_SORTED_DSTS_MEMO_MAX)
    }
    net.multicast("n0", {"n1", "n2"}, "m")
    assert len(net._sorted_dsts) == 1  # cleared, then repopulated


# ----------------------------------------------------------------------
# Partition-block cache
# ----------------------------------------------------------------------
def test_partition_blocks_cached_until_change():
    sim, net = make_net()
    attach(net, "a", "b", "c")
    first = net.partition_blocks()
    assert first == [frozenset({"a", "b", "c"})]
    assert net.partition_blocks() is not first  # fresh list per call
    net.set_partitions([["a"], ["b", "c"]])
    assert net.partition_blocks() == [frozenset({"a"}), frozenset({"b", "c"})]


def test_partition_blocks_correct_after_heal():
    sim, net = make_net()
    attach(net, "a", "b", "c", "d")
    net.set_partitions([["a", "b"], ["c", "d"]])
    assert len(net.partition_blocks()) == 2
    net.heal()
    assert net.partition_blocks() == [frozenset({"a", "b", "c", "d"})]


def test_partition_blocks_refreshed_on_attach_detach():
    sim, net = make_net()
    attach(net, "a", "b")
    assert net.partition_blocks() == [frozenset({"a", "b"})]
    attach(net, "c")
    assert net.partition_blocks() == [frozenset({"a", "b", "c"})]
    net.detach("a")
    assert net.partition_blocks() == [frozenset({"b", "c"})]


def test_mutating_returned_blocks_does_not_corrupt_cache():
    sim, net = make_net()
    attach(net, "a", "b")
    blocks = net.partition_blocks()
    blocks.clear()
    assert net.partition_blocks() == [frozenset({"a", "b"})]


# ----------------------------------------------------------------------
# Delivery counters
# ----------------------------------------------------------------------
def test_multicast_counts_unreachable_destinations_as_drops():
    sim, net = make_net()
    attach(net, "a", "b", "c", "d")
    net.set_partitions([["a", "b"], ["c", "d"]])
    scheduled = net.multicast("a", {"b", "c", "d"}, "m")
    assert scheduled == 1  # only b is reachable
    assert net.messages_dropped == 2  # c and d, counted per receiver
    assert net.deliveries_scheduled == 1


def test_multicast_to_crashed_receiver_counts_per_receiver_drop():
    sim, net = make_net()
    attach(net, "a", "b", "c")
    net.set_alive("c", False)
    net.multicast("a", {"b", "c"}, "m")
    assert net.messages_dropped == 1
    assert net.deliveries_scheduled == 1


def test_deliveries_scheduled_counts_unicast_and_loopback():
    sim, net = make_net()
    attach(net, "a", "b")
    net.send("a", "b", "u")
    net.multicast("a", {"a", "b"}, "m")
    assert net.deliveries_scheduled == 3
    sim.run()
    assert net.messages_delivered == 3


def test_dead_sender_multicast_counts_one_drop():
    sim, net = make_net()
    attach(net, "a", "b", "c")
    net.set_alive("a", False)
    assert net.multicast("a", {"b", "c"}, "m") == 0
    assert net.messages_dropped == 1  # dropped at source, not per receiver
    assert net.deliveries_scheduled == 0


def test_multicast_loss_counts_per_receiver():
    sim, net = make_net(loss_probability=1.0)
    attach(net, "a", "b", "c")
    assert net.multicast("a", {"b", "c"}, "m") == 0
    assert net.messages_dropped == 2
    assert net.deliveries_scheduled == 0
