"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import MS, SECOND, Simulation, SimulationError


def test_time_starts_at_zero():
    assert Simulation().now == 0


def test_schedule_and_run_until_advances_clock():
    sim = Simulation()
    fired = []
    sim.schedule(10, lambda: fired.append(sim.now))
    sim.run_until(100)
    assert fired == [10]
    assert sim.now == 100


def test_events_fire_in_time_order():
    sim = Simulation()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulation()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["first", "second", "third"]


def test_zero_delay_event_fires():
    sim = Simulation()
    fired = []
    sim.schedule(0, lambda: fired.append(True))
    sim.run()
    assert fired == [True]


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulation()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_run_until_backwards_rejected():
    sim = Simulation()
    sim.run_until(100)
    with pytest.raises(SimulationError):
        sim.run_until(50)


def test_cancelled_event_does_not_fire():
    sim = Simulation()
    fired = []
    handle = sim.schedule(10, lambda: fired.append(True))
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.pending


def test_cancel_twice_is_safe():
    sim = Simulation()
    handle = sim.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_handle_states():
    sim = Simulation()
    handle = sim.schedule(10, lambda: None)
    assert handle.pending and not handle.fired
    sim.run()
    assert handle.fired and not handle.pending


def test_events_scheduled_during_run_fire():
    sim = Simulation()
    fired = []

    def outer():
        sim.schedule(5, lambda: fired.append("inner"))

    sim.schedule(10, outer)
    sim.run()
    assert fired == ["inner"]
    assert sim.now == 15


def test_run_until_does_not_run_later_events():
    sim = Simulation()
    fired = []
    sim.schedule(10, lambda: fired.append("early"))
    sim.schedule(200, lambda: fired.append("late"))
    sim.run_until(100)
    assert fired == ["early"]
    sim.run_until(300)
    assert fired == ["early", "late"]


def test_step_returns_false_when_empty():
    sim = Simulation()
    assert sim.step() is False


def test_run_returns_event_count():
    sim = Simulation()
    for i in range(7):
        sim.schedule(i, lambda: None)
    assert sim.run() == 7


def test_run_guards_against_runaway():
    sim = Simulation()

    def reschedule():
        sim.schedule(1, reschedule)

    sim.schedule(1, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_pending_events_counts_uncancelled():
    sim = Simulation()
    h1 = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    h1.cancel()
    assert sim.pending_events == 1


def test_pending_events_decrements_as_events_fire():
    sim = Simulation()
    for i in range(5):
        sim.schedule(10 * (i + 1), lambda: None)
    assert sim.pending_events == 5
    sim.run_until(25)
    assert sim.pending_events == 3
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_fire_does_not_corrupt_counter():
    sim = Simulation()
    handle = sim.schedule(10, lambda: None)
    sim.run()
    assert sim.pending_events == 0
    handle.cancel()  # cancelling a fired event must be a no-op
    assert sim.pending_events == 0


def test_double_cancel_decrements_once():
    sim = Simulation()
    handle = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.pending_events == 1


def test_pending_events_exact_under_churn():
    """The live counter always matches a brute-force scan of the heap."""
    sim = Simulation()
    handles = [sim.schedule(10 + i, lambda: None) for i in range(100)]
    for handle in handles[::3]:
        handle.cancel()
    expected = sum(
        1 for h in handles if not h.cancelled and not h.fired
    )
    assert sim.pending_events == expected
    sim.run_until(50)
    expected = sum(
        1 for h in handles if not h.cancelled and not h.fired
    )
    assert sim.pending_events == expected


def test_cancel_from_inside_event_keeps_counter_exact():
    sim = Simulation()
    victim = sim.schedule(20, lambda: None)
    sim.schedule(10, victim.cancel)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_time_constants():
    assert SECOND == 1_000_000
    assert MS == 1_000


def test_clock_advances_even_without_events():
    sim = Simulation()
    sim.run_until(12345)
    assert sim.now == 12345
