"""Tests for the Process actor base class."""

from repro.sim import Process, SimEnv


class Echo(Process):
    def __init__(self, env, node):
        super().__init__(env, node)
        self.received = []
        self.crashes = 0
        self.recoveries = 0

    def on_message(self, src, msg, size):
        self.received.append((src, msg))

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


def test_send_between_processes(env):
    a, b = Echo(env, "a"), Echo(env, "b")
    a.send("b", "hi")
    env.sim.run()
    assert b.received == [("a", "hi")]


def test_multicast(env):
    a, b, c = Echo(env, "a"), Echo(env, "b"), Echo(env, "c")
    a.multicast(["b", "c"], "all")
    env.sim.run()
    assert b.received == [("a", "all")]
    assert c.received == [("a", "all")]


def test_timer_fires(env):
    a = Echo(env, "a")
    fired = []
    a.set_timer(100, lambda: fired.append(env.sim.now))
    env.sim.run()
    assert fired == [100]


def test_crash_cancels_timers(env):
    a = Echo(env, "a")
    fired = []
    a.set_timer(100, lambda: fired.append(True))
    env.failures.crash_now("a")
    env.sim.run()
    assert fired == []
    assert a.crashes == 1


def test_crashed_process_ignores_messages(env):
    a, b = Echo(env, "a"), Echo(env, "b")
    env.failures.crash_now("b")
    a.send("b", "x")
    env.sim.run()
    assert b.received == []


def test_crashed_process_cannot_send(env):
    a, b = Echo(env, "a"), Echo(env, "b")
    env.failures.crash_now("a")
    assert a.send("b", "x") is False
    env.sim.run()
    assert b.received == []


def test_recovery_hook_and_messaging(env):
    a, b = Echo(env, "a"), Echo(env, "b")
    env.failures.crash_now("b")
    env.failures.recover_now("b")
    assert b.recoveries == 1
    a.send("b", "again")
    env.sim.run()
    assert b.received == [("a", "again")]


def test_periodic_timer_repeats(env):
    a = Echo(env, "a")
    ticks = []
    a.set_periodic(1000, lambda: ticks.append(env.sim.now))
    env.sim.run_until(5500)
    assert len(ticks) == 5


def test_periodic_stops_on_crash(env):
    a = Echo(env, "a")
    ticks = []
    a.set_periodic(1000, lambda: ticks.append(True))
    env.sim.run_until(2500)
    env.failures.crash_now("a")
    env.sim.run_until(10_000)
    assert len(ticks) == 2


def test_periodic_jitter_stays_within_bounds(env):
    a = Echo(env, "a")
    ticks = []
    a.set_periodic(1000, lambda: ticks.append(env.sim.now), jitter_stream="test")
    env.sim.run_until(20_000)
    gaps = [b - t for t, b in zip(ticks, ticks[1:])]
    assert all(1000 <= g <= 1100 for g in gaps)


def test_scheduled_failure_events(env):
    a = Echo(env, "a")
    env.failures.crash_at(500, "a").recover_at(900, "a")
    env.sim.run_until(600)
    assert a.crashed
    env.sim.run_until(1000)
    assert not a.crashed
