"""Tests for the reliable sliding-window transport."""

import pytest

from repro.sim import LinkModel, Process, ReliableTransport, SimEnv
from repro.sim.transport import _Segment


class Host(Process):
    """A process pairing raw network delivery with a ReliableTransport."""

    def __init__(self, env, node, **kwargs):
        super().__init__(env, node)
        self.delivered = []
        self.transport = ReliableTransport(
            env, node, lambda src, p, s: self.delivered.append((src, p)), **kwargs
        )

    def on_message(self, src, msg, size):
        if ReliableTransport.is_segment(msg):
            self.transport.on_segment(src, msg)


def make_pair(seed=0, loss=0.0, **kwargs):
    env = SimEnv.create(seed=seed, link=LinkModel(loss_probability=loss, jitter_us=0))
    return env, Host(env, "a", **kwargs), Host(env, "b", **kwargs)


def test_basic_delivery():
    env, a, b = make_pair()
    a.transport.send("b", "m1")
    env.sim.run()
    assert b.delivered == [("a", "m1")]


def test_fifo_order_preserved():
    env, a, b = make_pair()
    for i in range(20):
        a.transport.send("b", i)
    env.sim.run()
    assert [p for _, p in b.delivered] == list(range(20))


def test_delivery_under_heavy_loss():
    env, a, b = make_pair(loss=0.4)
    for i in range(30):
        a.transport.send("b", i)
    env.sim.run_until(10_000_000)
    assert [p for _, p in b.delivered] == list(range(30))
    assert a.transport.retransmissions > 0


def test_duplicates_are_suppressed():
    env, a, b = make_pair(loss=0.3)
    for i in range(10):
        a.transport.send("b", i)
    env.sim.run_until(10_000_000)
    assert len(b.delivered) == 10


def test_window_queues_excess_messages():
    env, a, b = make_pair(window=4)
    for i in range(50):
        a.transport.send("b", i)
    env.sim.run_until(20_000_000)
    assert [p for _, p in b.delivered] == list(range(50))


def test_give_up_skips_gap_for_later_messages():
    """Messages lost to an unreachable peer must not wedge the channel."""
    env, a, b = make_pair(max_retries=2)
    env.network.set_partitions([["a"], ["b"]])
    a.transport.send("b", "lost")
    env.sim.run_until(2_000_000)  # retries exhausted, message abandoned
    assert a.transport.gave_up == 1
    env.network.heal()
    a.transport.send("b", "after-heal")
    env.sim.run_until(4_000_000)
    assert ("a", "after-heal") in b.delivered
    assert ("a", "lost") not in b.delivered


def test_bidirectional_channels_are_independent():
    env, a, b = make_pair()
    a.transport.send("b", "ping")
    b.transport.send("a", "pong")
    env.sim.run()
    assert b.delivered == [("a", "ping")]
    assert a.delivered == [("b", "pong")]


def test_restart_clears_state():
    env, a, b = make_pair()
    a.transport.send("b", "before")
    env.sim.run()
    a.transport.restart()
    a.transport.send("b", "after")
    env.sim.run()
    assert [p for _, p in b.delivered] == ["before", "after"]


def test_stop_silences_transport():
    env, a, b = make_pair()
    a.transport.stop()
    a.transport.send("b", "never")
    env.sim.run()
    assert b.delivered == []


# ----------------------------------------------------------------------
# Floor / abandoned-gap semantics
# ----------------------------------------------------------------------
def test_floor_advances_past_multiple_abandoned_messages():
    env, a, b = make_pair(max_retries=2)
    env.network.set_partitions([["a"], ["b"]])
    for i in range(3):
        a.transport.send("b", f"lost{i}")
    env.sim.run_until(3_000_000)
    assert a.transport.gave_up == 3
    env.network.heal()
    a.transport.send("b", "fresh")
    env.sim.run_until(6_000_000)
    # The fresh segment carries floor=3, so the receiver skips the whole
    # abandoned gap instead of waiting for seqs 0..2 forever.
    assert [p for _, p in b.delivered] == ["fresh"]


def test_raised_floor_discards_buffered_out_of_order_segments():
    env, a, b = make_pair()
    # Seq 1 arrives early and is buffered behind the missing seq 0.
    b.transport.on_segment("a", _Segment("data", 1, "early", 16, floor=0))
    assert b.delivered == []
    # The sender abandons seq 0 and 1: the next segment's floor says so.
    b.transport.on_segment("a", _Segment("data", 2, "kept", 16, floor=2))
    assert [p for _, p in b.delivered] == ["kept"]
    # The buffered seq-1 copy must be gone, not delivered later.
    state = b.transport._peer("a")
    assert state.out_of_order == {}
    assert state.delivered_up_to == 2


def test_duplicate_below_floor_reacked_not_redelivered():
    env, a, b = make_pair()
    a.transport.send("b", "m0")
    env.sim.run()
    assert [p for _, p in b.delivered] == ["m0"]
    b.transport.on_segment("a", _Segment("data", 0, "m0", 16, floor=0))
    assert [p for _, p in b.delivered] == ["m0"]


# ----------------------------------------------------------------------
# Crash / recovery and incarnation bumps
# ----------------------------------------------------------------------
def test_give_up_then_crash_recover_does_not_wedge_channel():
    """Abandoned gap + restart (incarnation bump) still yields a clean channel."""
    env, a, b = make_pair(max_retries=2)
    env.network.set_partitions([["a"], ["b"]])
    a.transport.send("b", "lost-pre-crash")
    env.sim.run_until(2_000_000)
    assert a.transport.gave_up == 1
    a.transport.stop()  # fail-stop
    env.network.heal()
    a.transport.restart()  # recovery: numbering starts afresh
    assert a.transport.incarnation == 1
    a.transport.send("b", "post-recovery")
    env.sim.run_until(4_000_000)
    assert [p for _, p in b.delivered] == ["post-recovery"]


def test_stale_segment_from_previous_incarnation_ignored():
    env, a, b = make_pair()
    a.transport.send("b", "first-life")
    env.sim.run()
    a.transport.restart()
    a.transport.send("b", "second-life")
    env.sim.run()
    assert [p for _, p in b.delivered] == ["first-life", "second-life"]
    # A delayed replay from incarnation 0 must not be delivered again.
    b.transport.on_segment("a", _Segment("data", 0, "first-life", 16, incarnation=0))
    assert [p for _, p in b.delivered] == ["first-life", "second-life"]


def test_ack_from_previous_incarnation_not_credited():
    env, a, b = make_pair()
    a.transport.restart()  # incarnation 1
    a.transport.send("b", "msg")
    state = a.transport._peer("b")
    assert 0 in state.unacked
    # An ack minted for incarnation 0 (a previous life) arrives late.
    a.transport.on_segment("b", _Segment("ack", 0, incarnation=0))
    assert 0 in state.unacked, "stale-incarnation ack must not credit"
    a.transport.on_segment("b", _Segment("ack", 0, incarnation=1))
    assert state.unacked == {}


def test_receiver_resets_state_on_peer_incarnation_bump():
    env, a, b = make_pair()
    for i in range(3):
        a.transport.send("b", f"old{i}")
    env.sim.run()
    a.transport.restart()
    # Fresh life reuses seqs 0..2; the bump tells b to start over.
    for i in range(3):
        a.transport.send("b", f"new{i}")
    env.sim.run()
    assert [p for _, p in b.delivered] == [
        "old0", "old1", "old2", "new0", "new1", "new2"
    ]


def test_many_peers():
    env = SimEnv.create(seed=1, link=LinkModel(jitter_us=0))
    hub = Host(env, "hub")
    spokes = [Host(env, f"s{i}") for i in range(5)]
    for i, spoke in enumerate(spokes):
        hub.transport.send(spoke.node, f"m{i}")
    env.sim.run()
    for i, spoke in enumerate(spokes):
        assert spoke.delivered == [("hub", f"m{i}")]
