"""Tests for the reliable sliding-window transport."""

import pytest

from repro.sim import LinkModel, Process, ReliableTransport, SimEnv


class Host(Process):
    """A process pairing raw network delivery with a ReliableTransport."""

    def __init__(self, env, node, **kwargs):
        super().__init__(env, node)
        self.delivered = []
        self.transport = ReliableTransport(
            env, node, lambda src, p, s: self.delivered.append((src, p)), **kwargs
        )

    def on_message(self, src, msg, size):
        if ReliableTransport.is_segment(msg):
            self.transport.on_segment(src, msg)


def make_pair(seed=0, loss=0.0, **kwargs):
    env = SimEnv.create(seed=seed, link=LinkModel(loss_probability=loss, jitter_us=0))
    return env, Host(env, "a", **kwargs), Host(env, "b", **kwargs)


def test_basic_delivery():
    env, a, b = make_pair()
    a.transport.send("b", "m1")
    env.sim.run()
    assert b.delivered == [("a", "m1")]


def test_fifo_order_preserved():
    env, a, b = make_pair()
    for i in range(20):
        a.transport.send("b", i)
    env.sim.run()
    assert [p for _, p in b.delivered] == list(range(20))


def test_delivery_under_heavy_loss():
    env, a, b = make_pair(loss=0.4)
    for i in range(30):
        a.transport.send("b", i)
    env.sim.run_until(10_000_000)
    assert [p for _, p in b.delivered] == list(range(30))
    assert a.transport.retransmissions > 0


def test_duplicates_are_suppressed():
    env, a, b = make_pair(loss=0.3)
    for i in range(10):
        a.transport.send("b", i)
    env.sim.run_until(10_000_000)
    assert len(b.delivered) == 10


def test_window_queues_excess_messages():
    env, a, b = make_pair(window=4)
    for i in range(50):
        a.transport.send("b", i)
    env.sim.run_until(20_000_000)
    assert [p for _, p in b.delivered] == list(range(50))


def test_give_up_skips_gap_for_later_messages():
    """Messages lost to an unreachable peer must not wedge the channel."""
    env, a, b = make_pair(max_retries=2)
    env.network.set_partitions([["a"], ["b"]])
    a.transport.send("b", "lost")
    env.sim.run_until(2_000_000)  # retries exhausted, message abandoned
    assert a.transport.gave_up == 1
    env.network.heal()
    a.transport.send("b", "after-heal")
    env.sim.run_until(4_000_000)
    assert ("a", "after-heal") in b.delivered
    assert ("a", "lost") not in b.delivered


def test_bidirectional_channels_are_independent():
    env, a, b = make_pair()
    a.transport.send("b", "ping")
    b.transport.send("a", "pong")
    env.sim.run()
    assert b.delivered == [("a", "ping")]
    assert a.delivered == [("b", "pong")]


def test_restart_clears_state():
    env, a, b = make_pair()
    a.transport.send("b", "before")
    env.sim.run()
    a.transport.restart()
    a.transport.send("b", "after")
    env.sim.run()
    assert [p for _, p in b.delivered] == ["before", "after"]


def test_stop_silences_transport():
    env, a, b = make_pair()
    a.transport.stop()
    a.transport.send("b", "never")
    env.sim.run()
    assert b.delivered == []


def test_many_peers():
    env = SimEnv.create(seed=1, link=LinkModel(jitter_us=0))
    hub = Host(env, "hub")
    spokes = [Host(env, f"s{i}") for i in range(5)]
    for i, spoke in enumerate(spokes):
        hub.transport.send(spoke.node, f"m{i}")
    env.sim.run()
    for i, spoke in enumerate(spokes):
        assert spoke.delivered == [("hub", f"m{i}")]
