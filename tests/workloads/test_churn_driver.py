"""Unit tests for the churn driver's bookkeeping."""

from repro.core import LwgConfig
from repro.sim import SECOND
from repro.workloads import ChurnDriver, ChurnModel, Cluster


def small_cluster(seed=7):
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return Cluster(num_processes=4, seed=seed, num_name_servers=2,
                   lwg_config=config, keep_trace=False)


def test_seed_membership_populates_expected():
    cluster = small_cluster()
    driver = ChurnDriver(cluster, groups=["a", "b"], seed=1)
    driver.seed_membership(per_group=2)
    assert all(len(members) == 2 for members in driver.expected.values())
    ok, detail = driver.quiesced()
    assert ok, detail


def test_crash_updates_expectations():
    cluster = small_cluster()
    driver = ChurnDriver(cluster, groups=["a"], seed=2)
    driver.seed_membership(per_group=3)
    victim = next(iter(driver.expected["a"]))
    driver._crash(victim)
    assert victim in driver.crashed
    assert victim not in driver.expected["a"]
    assert ("crash", victim, "") in driver.log


def test_min_alive_floor_is_respected():
    cluster = small_cluster()
    driver = ChurnDriver(
        cluster, groups=["a"], seed=3, model=ChurnModel(min_alive=3)
    )
    driver.seed_membership(per_group=2)
    for node in cluster.process_ids:
        driver._crash(node)
    assert len(driver.crashed) <= 1  # 4 processes - floor of 3


def test_partition_and_heal_toggle():
    cluster = small_cluster()
    driver = ChurnDriver(cluster, groups=["a"], seed=4)
    driver.seed_membership(per_group=2)
    driver._partition()
    assert driver.partitioned
    driver._partition()  # idempotent
    assert len([e for e in driver.log if e[0] == "partition"]) == 1
    driver.finish()
    assert not driver.partitioned


def test_crashed_node_cannot_act():
    cluster = small_cluster()
    driver = ChurnDriver(cluster, groups=["a"], seed=5)
    driver.seed_membership(per_group=2)
    outsider = [n for n in cluster.process_ids if n not in driver.expected["a"]][0]
    driver._crash(outsider)
    driver._join(outsider, "a")
    assert outsider not in driver.expected["a"]


def test_schedule_is_reproducible():
    logs = []
    for _ in range(2):
        cluster = small_cluster(seed=11)
        driver = ChurnDriver(cluster, groups=["a", "b"], seed=11)
        driver.seed_membership(per_group=2)
        driver.run(steps=8)
        logs.append(list(driver.log))
    assert logs[0] == logs[1]
