"""FabricMeter accounting: FD traffic classes and fan-out memo stats."""

from repro.core import LwgConfig
from repro.sim import SECOND
from repro.vsync import VsyncConfig
from repro.workloads import Cluster
from repro.workloads.placement import FabricMeter


def fast_config():
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return config


def run_metered(vsync_config=None):
    cluster = Cluster(
        num_processes=3, seed=29, vsync_config=vsync_config,
        lwg_config=fast_config(), checkers=False,
    )
    meter = FabricMeter(cluster)
    for node in cluster.process_ids:
        cluster.service(node).join("g0")
    cluster.run_for_seconds(10)
    return cluster, meter


def test_flat_fd_traffic_is_heartbeats():
    _, meter = run_metered()
    assert meter.heartbeats > 0
    assert meter.fd_messages >= meter.heartbeats
    assert meter.by_type.get("LivenessDigest") is None


def test_zoned_fd_traffic_is_digests_not_heartbeats():
    _, meter = run_metered(VsyncConfig(topology="zoned", num_zones=2))
    assert meter.by_type.get("LivenessDigest", 0) > 0
    assert meter.heartbeats == 0  # gossip replaced per-peer heartbeats
    assert meter.fd_messages >= meter.by_type["LivenessDigest"]


def test_fd_traffic_does_not_pollute_flush_accounting():
    _, meter = run_metered()
    assert meter.fd_messages > 0
    flush_kinds = {
        kind for kind in meter.by_type
        if kind not in ("Heartbeat", "LivenessDigest", "ProbeRequest",
                        "ProbePing", "ZoneSummary")
    }
    total_flush = sum(meter.by_type[kind] for kind in flush_kinds)
    assert meter.flush_messages == total_flush


def test_fanout_memo_counters_surface_through_the_meter():
    cluster, meter = run_metered()
    counters = meter.counters()
    # The protocol layers multicast to the same membership repeatedly,
    # so the sorted-destination memo must be hit-dominated.
    assert counters["fanout_memo_hits"] > counters["fanout_memo_misses"] > 0
    assert counters["fanout_memo_hits"] == cluster.env.network.fanout_memo_hits
    for key in ("flush_messages", "flush_bytes", "heartbeats", "fd_messages"):
        assert counters[key] == getattr(meter, key)
