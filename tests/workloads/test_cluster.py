"""Tests for the cluster assembly helper."""

import pytest

from repro.sim import SECOND
from repro.workloads import Cluster


def test_cluster_wires_processes_and_servers():
    cluster = Cluster(num_processes=3, seed=1, num_name_servers=2)
    assert len(cluster.process_ids) == 3
    assert len(cluster.name_servers) == 2
    assert cluster.service(0) is cluster.service("p0")


def test_unknown_flavour_rejected():
    with pytest.raises(ValueError):
        Cluster(num_processes=1, flavour="bogus")


def test_run_for_advances_clock():
    cluster = Cluster(num_processes=1, seed=2)
    cluster.run_for_seconds(1.5)
    assert cluster.env.sim.now == int(1.5 * SECOND)


def test_run_until_stops_early():
    cluster = Cluster(num_processes=1, seed=3)
    target = cluster.env.sim.now + 100_000
    assert cluster.run_until(lambda: cluster.env.sim.now >= target, timeout_us=SECOND)
    assert cluster.env.sim.now < SECOND


def test_partition_and_heal_helpers():
    cluster = Cluster(num_processes=2, seed=4)
    cluster.partition(["p0"], ["p1"])
    assert not cluster.env.network.reachable("p0", "p1")
    cluster.heal()
    assert cluster.env.network.reachable("p0", "p1")


def test_crash_and_recover_helpers():
    cluster = Cluster(num_processes=1, seed=5)
    cluster.crash(0)
    assert not cluster.env.network.is_alive("p0")
    cluster.recover(0)
    assert cluster.env.network.is_alive("p0")


def test_none_flavour_has_no_naming_clients():
    cluster = Cluster(num_processes=1, seed=6, flavour="none")
    assert cluster.clients == {}


def test_deterministic_given_seed():
    def fingerprint(seed):
        cluster = Cluster(num_processes=3, seed=seed)
        handles = [cluster.service(i).join("g") for i in range(3)]
        cluster.run_for_seconds(5)
        view = handles[0].view
        return (cluster.env.sim.now, str(view.view_id) if view else None,
                cluster.env.network.messages_sent)

    assert fingerprint(7) == fingerprint(7)
