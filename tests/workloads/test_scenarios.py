"""Tests for the Figure-2 scenario harness."""

import pytest

from repro.workloads import (
    GROUP_SIZE,
    build_figure2,
    build_partition_scenario,
    measure_latency,
    measure_recovery,
    measure_throughput,
)


@pytest.mark.parametrize("flavour", ["none", "static", "dynamic"])
def test_figure2_builds_and_converges(flavour):
    setup = build_figure2(n=2, flavour=flavour, seed=1)
    assert setup.converged()
    assert len(setup.all_groups) == 4
    for group in setup.all_groups:
        assert len(setup.members_of(group)) == GROUP_SIZE


def test_figure2_dynamic_uses_two_hwgs():
    setup = build_figure2(n=3, flavour="dynamic", seed=2)
    hwgs = {handle.hwg for handle in setup.handles.values()}
    assert len(hwgs) == 2


def test_figure2_static_uses_one_hwg():
    setup = build_figure2(n=3, flavour="static", seed=2)
    hwgs = {handle.hwg for handle in setup.handles.values()}
    assert len(hwgs) == 1


def test_figure2_none_uses_one_hwg_per_group():
    setup = build_figure2(n=3, flavour="none", seed=2)
    hwgs = {handle.hwg for handle in setup.handles.values()}
    assert len(hwgs) == 6


def test_latency_measurement_returns_stats():
    setup = build_figure2(n=2, flavour="dynamic", seed=3)
    stats = measure_latency(setup, probes_per_group=4)
    assert stats.count > 0
    assert 0 < stats.mean_us < 1_000_000


def test_throughput_measurement_positive():
    setup = build_figure2(n=2, flavour="dynamic", seed=4)
    throughput = measure_throughput(setup, burst_per_group=10)
    assert throughput > 0


def test_recovery_measurement_breakdown():
    setup = build_figure2(n=2, flavour="dynamic", seed=5)
    result = measure_recovery(setup)
    assert result.total_us > 0
    assert 0 <= result.detection_us <= result.total_us
    assert result.reconfig_us == result.total_us - result.detection_us


def test_partition_scenario_builds_crossed_mappings():
    scenario = build_partition_scenario(num_groups=2, seed=6)
    assert not scenario.converged()  # still partitioned
    for group in scenario.groups:
        hwg_a = scenario.handles[(group, scenario.side_a[0])].hwg
        hwg_b = scenario.handles[(group, scenario.side_b[0])].hwg
        assert hwg_a != hwg_b
