"""Tests for traffic generation and probe plumbing."""

from repro.metrics import LatencyCollector
from repro.sim import MS, SECOND
from repro.workloads import Cluster, PeriodicSender, ProbeHub, ProbeListener, probe_payload


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


def build():
    cluster = Cluster(num_processes=2, seed=141)
    hub = ProbeHub(env=cluster.env)
    probes = [ProbeListener(hub, f"p{i}") for i in range(2)]
    handles = [cluster.service(i).join("g", probes[i]) for i in range(2)]
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=15 * SECOND)
    return cluster, hub, probes, handles


def test_probe_payload_carries_timestamp():
    cluster, hub, probes, handles = build()
    payload = probe_payload(cluster.env, 7)
    assert payload[0] == "probe" and payload[1] == 7
    assert payload[2] == cluster.env.now


def test_probe_listener_records_latency():
    cluster, hub, probes, handles = build()
    handles[0].send(probe_payload(cluster.env, 0))
    cluster.run_for_seconds(1)
    stats = hub.latency.summary("lwg:g")
    assert stats is not None and stats.count == 2  # both members delivered
    assert stats.mean_us > 0


def test_non_probe_payloads_counted_but_not_timed():
    cluster, hub, probes, handles = build()
    handles[0].send("plain message")
    cluster.run_for_seconds(1)
    assert hub.deliveries == 2
    assert hub.latency.summary() is None


def test_periodic_sender_rate_and_limit():
    cluster, hub, probes, handles = build()
    sender = PeriodicSender(
        cluster.env, cluster.stack(0), handles[0],
        period_us=50 * MS, limit=5,
    )
    sender.start()
    cluster.run_for_seconds(2)
    assert sender.sent == 5
    assert hub.deliveries == 10  # 5 messages x 2 members


def test_periodic_sender_stop():
    cluster, hub, probes, handles = build()
    sender = PeriodicSender(
        cluster.env, cluster.stack(0), handles[0], period_us=50 * MS
    )
    sender.start()
    cluster.run_for(120 * MS)
    sender.stop()
    sent_at_stop = sender.sent
    cluster.run_for_seconds(1)
    assert sender.sent == sent_at_stop


def test_views_feed_recovery_timer():
    cluster, hub, probes, handles = build()
    hub.recovery.arm(cluster.env.now, "p1", [("lwg:g", "p0")])
    cluster.crash(1)
    assert cluster.run_until(lambda: hub.recovery.complete, timeout_us=20 * SECOND)
    assert hub.recovery.recovery_time_us() > 0
