"""Multi-way and singleton partitions through the full stack.

Each test splits a checker-enabled cluster into three or more blocks
(including single-process blocks), lets every side adapt, heals, and
requires full re-convergence with the invariant checkers silent
throughout — online checks fire inside the run, at-quiesce checks at
the end.
"""

import pytest

from repro.core.ids import lwg_id
from repro.sim import SECOND
from repro.workloads import Cluster


def converged(cluster, group, members):
    """All of ``members`` share one view containing exactly them."""
    views = []
    for node in sorted(members):
        local = cluster.service(node).table.local(lwg_id(group))
        if local is None or not local.is_member or local.view is None:
            return False
        views.append(local.view)
    if len({str(v.view_id) for v in views}) != 1:
        return False
    return set(views[0].members) == set(members)


def wait_converged(cluster, group, members, timeout_s=120):
    ok = cluster.run_until(
        lambda: converged(cluster, group, members),
        timeout_us=timeout_s * SECOND,
    )
    assert ok, f"{group} never reconverged on {sorted(members)}"


def test_three_way_partition_heals_clean():
    cluster = Cluster(num_processes=6, seed=21, num_name_servers=2)
    members = [f"p{i}" for i in range(6)]
    for node in members:
        cluster.service(node).join("room")
    cluster.run_for_seconds(10)
    assert converged(cluster, "room", members)

    cluster.partition(
        ["p0", "p1", "ns0"],
        ["p2", "p3", "ns1"],
        ["p4", "p5"],
    )
    cluster.run_for_seconds(40)
    cluster.heal()
    wait_converged(cluster, "room", members)
    cluster.run_for_seconds(5)
    cluster.check_invariants()
    assert cluster.checkers.violations == []


def test_singleton_blocks_rejoin_clean():
    # Two isolated singletons: each falls back to a primary/secede view
    # of itself, then everyone merges back.
    cluster = Cluster(num_processes=4, seed=22, num_name_servers=2)
    members = [f"p{i}" for i in range(4)]
    for node in members:
        cluster.service(node).join("room")
    cluster.run_for_seconds(10)
    assert converged(cluster, "room", members)

    cluster.partition(["p0", "p1", "ns0", "ns1"], ["p2"], ["p3"])
    cluster.run_for_seconds(40)
    cluster.heal()
    wait_converged(cluster, "room", members)
    cluster.run_for_seconds(5)
    cluster.check_invariants()
    assert cluster.checkers.violations == []


def test_repartition_coarsens_blocks_then_heals():
    # A partial heal is a re-partition with coarser blocks: 3-way down
    # to 2-way, then fully healed.
    cluster = Cluster(num_processes=6, seed=23, num_name_servers=2)
    members = [f"p{i}" for i in range(6)]
    for node in members:
        cluster.service(node).join("room")
    cluster.run_for_seconds(10)

    cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "ns1"], ["p4", "p5"])
    cluster.run_for_seconds(30)
    # Partial heal: the two minority blocks merge.
    cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "p4", "p5", "ns1"])
    cluster.run_for_seconds(30)
    cluster.heal()
    wait_converged(cluster, "room", members)
    cluster.run_for_seconds(5)
    cluster.check_invariants()
    assert cluster.checkers.violations == []


def test_traffic_across_multiway_partition_stays_consistent():
    # Senders in different blocks keep multicasting while split; after
    # the heal everyone converges and the delivery checkers (total
    # order, FIFO, virtual synchrony) stay quiet.
    cluster = Cluster(num_processes=5, seed=24, num_name_servers=2)
    members = [f"p{i}" for i in range(5)]
    handles = {node: cluster.service(node).join("room") for node in members}
    cluster.run_for_seconds(10)
    assert converged(cluster, "room", members)

    cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "ns1"], ["p4"])
    cluster.run_for_seconds(15)
    for node in ("p0", "p2", "p4"):
        for n in range(3):
            handles[node].send(f"{node}-while-split-{n}")
    cluster.run_for_seconds(15)
    cluster.heal()
    wait_converged(cluster, "room", members)
    for node in ("p1", "p3"):
        handles[node].send(f"{node}-after-heal")
    cluster.run_for_seconds(5)
    cluster.check_invariants()
    assert cluster.checkers.violations == []
