"""Long-running churn: joins, leaves, crashes, partitions — then quiesce.

The strongest whole-stack test: a random schedule of membership churn
and failures runs against the dynamic service, after which the system
must quiesce into a consistent state:

* every surviving member of each LWG holds the same view;
* that view contains exactly the surviving members;
* the naming service stores exactly one live mapping per surviving LWG;
* every process's LWG rides the HWG its view coordinator registered.
"""

import pytest

from repro.core import LwgConfig, LwgListener
from repro.sim import SECOND
from repro.workloads import Cluster


def fast_config():
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return config


class Tracker(LwgListener):
    def __init__(self):
        self.lefts = 0

    def on_left(self, lwg):
        self.lefts += 1


def quiesced_state(cluster, expected):
    """Check convergence; return (ok, detail) for assertion messages.

    ``expected`` maps group name -> set of member node ids.
    """
    for group, members in expected.items():
        if not members:
            continue
        views = []
        for node in members:
            local = cluster.service(node).table.local(f"lwg:{group}")
            if local is None or not local.is_member or local.view is None:
                return False, f"{node} not a member of {group}"
            views.append((node, local.view, local.hwg))
        ids = {v.view_id for _, v, _ in views}
        if len(ids) != 1:
            return False, f"{group}: divergent views {[(n, str(v.view_id)) for n, v, _ in views]}"
        if set(views[0][1].members) != members:
            return False, (
                f"{group}: view members {views[0][1].members} != expected {members}"
            )
        hwgs = {h for _, _, h in views}
        if len(hwgs) != 1:
            return False, f"{group}: divergent hwgs {hwgs}"
    return True, "ok"


def run_schedule(seed, schedule, num_processes=6, groups=("g0", "g1", "g2")):
    """Apply a churn schedule; return (cluster, expected membership)."""
    cluster = Cluster(
        num_processes=num_processes,
        seed=seed,
        num_name_servers=2,
        lwg_config=fast_config(),
    )
    expected = {g: set() for g in groups}
    crashed = set()
    trackers = {}
    # Initial membership: everyone joins g0; half join g1.
    for i, node in enumerate(cluster.process_ids):
        trackers[(node, "g0")] = Tracker()
        cluster.service(node).join("g0", trackers[(node, "g0")])
        expected["g0"].add(node)
        if i % 2 == 0:
            cluster.service(node).join("g1")
            expected["g1"].add(node)
    cluster.run_for_seconds(8)

    for action, target, group in schedule:
        node = cluster.process_ids[target % num_processes]
        if action == "join" and node not in crashed:
            if node not in expected[group]:
                cluster.service(node).join(group)
                expected[group].add(node)
        elif action == "leave" and node not in crashed:
            if node in expected[group] and len(expected[group]) > 0:
                cluster.service(node).leave(group)
                expected[group].discard(node)
        elif action == "crash":
            if node not in crashed and len(crashed) < num_processes - 2:
                cluster.crash(node)
                crashed.add(node)
                for g in expected:
                    expected[g].discard(node)
        elif action == "partition":
            alive = [n for n in cluster.process_ids if n not in crashed]
            half = len(alive) // 2
            cluster.partition(
                alive[:half] + ["ns0"], alive[half:] + ["ns1"]
            )
        elif action == "heal":
            cluster.heal()
        cluster.run_for_seconds(1.5)

    cluster.heal()  # always end healed
    return cluster, expected


def assert_quiesces(cluster, expected, timeout_s=90):
    ok = cluster.run_until(
        lambda: quiesced_state(cluster, expected)[0],
        timeout_us=int(timeout_s * SECOND),
    )
    state, detail = quiesced_state(cluster, expected)
    assert state, detail
    # Naming converged too: one live mapping per non-empty group.
    cluster.run_for_seconds(4)
    for group, members in expected.items():
        if not members:
            continue
        records = cluster.name_servers["ns0"].db.live_records(f"lwg:{group}")
        assert len(records) == 1, (group, [str(r) for r in records])
        assert set(records[0].lwg_members) == members, (group, records[0])


def test_join_leave_churn():
    schedule = [
        ("join", 1, "g2"), ("join", 3, "g2"), ("leave", 0, "g1"),
        ("join", 5, "g1"), ("leave", 1, "g2"), ("join", 0, "g2"),
        ("leave", 2, "g0"), ("join", 2, "g0"),
    ]
    cluster, expected = run_schedule(seed=101, schedule=schedule)
    assert_quiesces(cluster, expected)


def test_churn_with_crashes():
    schedule = [
        ("join", 1, "g2"), ("crash", 5, ""), ("join", 3, "g2"),
        ("leave", 0, "g1"), ("crash", 3, ""), ("join", 1, "g1"),
    ]
    cluster, expected = run_schedule(seed=102, schedule=schedule)
    assert_quiesces(cluster, expected)


def test_churn_with_partition_and_heal():
    schedule = [
        ("partition", 0, ""), ("join", 1, "g2"), ("join", 4, "g2"),
        ("leave", 2, "g0"), ("heal", 0, ""), ("join", 2, "g0"),
    ]
    cluster, expected = run_schedule(seed=103, schedule=schedule)
    assert_quiesces(cluster, expected)


def test_churn_everything_at_once():
    schedule = [
        ("partition", 0, ""), ("join", 1, "g2"), ("crash", 5, ""),
        ("join", 2, "g2"), ("heal", 0, ""), ("leave", 0, "g0"),
        ("partition", 0, ""), ("join", 4, "g1"), ("heal", 0, ""),
        ("join", 0, "g0"),
    ]
    cluster, expected = run_schedule(seed=104, schedule=schedule)
    assert_quiesces(cluster, expected)


def test_repeated_partition_cycles_converge():
    schedule = []
    for _ in range(3):
        schedule += [("partition", 0, ""), ("join", 2, "g2"), ("heal", 0, "")]
    cluster, expected = run_schedule(seed=105, schedule=schedule)
    assert_quiesces(cluster, expected)
