"""Randomized soak tests: seeded churn schedules must always quiesce."""

import pytest

from repro.core import LwgConfig
from repro.sim import SECOND
from repro.workloads import ChurnDriver, ChurnModel, Cluster


def build(seed):
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(
        num_processes=6, seed=seed, num_name_servers=2, lwg_config=config,
        keep_trace=False,
    )
    driver = ChurnDriver(cluster, groups=["s0", "s1", "s2"], seed=seed)
    driver.seed_membership(per_group=3)
    return cluster, driver


def assert_invariants_clean(cluster):
    """Settle the naming anti-entropy tail, then run the quiescent checks.

    The online checkers ran for the whole soak (they are on by default
    and raise at the guilty event); this adds the at-quiesce properties
    and the zero-violations acceptance gate.
    """
    cluster.run_for_seconds(5)
    cluster.check_invariants()
    assert cluster.checkers is not None
    assert cluster.checkers.violations == []


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_churn_quiesces(seed):
    cluster, driver = build(seed)
    driver.run(steps=15)
    ok, detail = driver.wait_for_quiesce(timeout_seconds=120)
    assert ok, f"seed={seed}: {detail}\nschedule={driver.log}"
    assert_invariants_clean(cluster)


def test_heavy_partition_churn_quiesces():
    model = ChurnModel(partition_weight=4.0, heal_weight=4.0, crash_weight=0.5)
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(
        num_processes=6, seed=99, num_name_servers=2, lwg_config=config,
        keep_trace=False,
    )
    driver = ChurnDriver(cluster, groups=["s0", "s1"], seed=99, model=model)
    driver.seed_membership(per_group=3)
    driver.run(steps=20)
    ok, detail = driver.wait_for_quiesce(timeout_seconds=150)
    assert ok, f"{detail}\nschedule={driver.log}"
    assert_invariants_clean(cluster)
