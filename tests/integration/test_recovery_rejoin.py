"""Crash-recovery of application processes: clean-slate rejoin."""

from repro.core import LwgListener
from repro.sim import SECOND
from repro.workloads import Cluster


class Counter(LwgListener):
    def __init__(self):
        self.total = 0
        self.got_state = None

    def on_data(self, lwg, src, payload, size):
        self.total += payload

    def get_state(self, lwg):
        return self.total

    def on_state(self, lwg, state):
        self.got_state = state
        self.total = state


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


def test_recovered_process_rejoins_and_catches_up():
    cluster = Cluster(num_processes=3, seed=121)
    apps = [Counter() for _ in range(3)]
    handles = [cluster.service(i).join("g", apps[i]) for i in range(3)]
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=15 * SECOND)
    for value in (10, 20, 30):
        handles[0].send(value, size=16)
    cluster.run_for_seconds(1)
    assert apps[1].total == 60

    # p2 fail-stops; the survivors reconfigure and keep counting.
    cluster.crash(2)
    assert cluster.run_until(lambda: converged(handles[:2], 2), timeout_us=20 * SECOND)
    handles[0].send(40, size=16)
    cluster.run_for_seconds(1)
    assert apps[0].total == 100

    # p2 recovers with a clean slate and rejoins: state transfer brings
    # it back to the group's current total.
    cluster.recover(2)
    cluster.run_for_seconds(1)
    apps[2] = Counter()
    handles[2] = cluster.service(2).join("g", apps[2])
    assert cluster.run_until(
        lambda: converged(handles, 3) and apps[2].got_state is not None,
        timeout_us=30 * SECOND,
    )
    assert apps[2].total == 100
    handles[2].send(1, size=16)
    cluster.run_for_seconds(1)
    assert all(app.total == 101 for app in apps)


def test_recovered_name_server_and_process_together():
    cluster = Cluster(num_processes=2, seed=122, num_name_servers=2)
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=15 * SECOND)
    cluster.env.failures.crash_now("ns0")
    cluster.crash(1)
    assert cluster.run_until(lambda: converged(handles[:1], 1), timeout_us=20 * SECOND)
    cluster.env.failures.recover_now("ns0")
    cluster.recover(1)
    cluster.run_for_seconds(1)
    handles[1] = cluster.service(1).join("g")
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=30 * SECOND)
