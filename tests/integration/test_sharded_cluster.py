"""Whole-stack tests of a sharded naming deployment (PROTOCOLS.md §18).

The full LWG stack runs against name servers that each hold only their
owned shards.  Partition and heal must converge *shard by shard* — the
sharded branch of :class:`NamingConvergenceChecker` — with the recovery
checker auditing every server's per-shard durable store along the way.
"""

from repro.core import LwgConfig
from repro.sim import SECOND
from repro.workloads import Cluster


def fast_config():
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return config


def make_cluster(seed=11, num_processes=4, num_name_servers=4,
                 replication_factor=2):
    return Cluster(
        num_processes=num_processes,
        seed=seed,
        num_name_servers=num_name_servers,
        replication_factor=replication_factor,
        lwg_config=fast_config(),
    )


def settled(cluster, groups, members_of):
    for group in groups:
        for node in members_of[group]:
            local = cluster.service(node).table.local(f"lwg:{group}")
            if local is None or not local.is_member or local.view is None:
                return False
        views = {
            cluster.service(node).table.local(f"lwg:{group}").view.view_id
            for node in members_of[group]
        }
        if len(views) != 1:
            return False
    return True


def test_sharded_cluster_builds_shard_map():
    cluster = make_cluster()
    assert cluster.shard_map is not None
    for server in cluster.name_servers.values():
        assert server.owned is not None
        assert len(server.owned) < 256  # a strict subset per server
    for client in cluster.clients.values():
        assert client.shard_map is cluster.shard_map


def test_rf_covering_roster_stays_fully_replicated():
    cluster = Cluster(
        num_processes=1, seed=3, num_name_servers=2, replication_factor=2
    )
    # rf >= roster: servers behave exactly like the legacy deployment.
    for server in cluster.name_servers.values():
        assert server.owned is None


def test_sharded_groups_converge_and_pass_checkers():
    cluster = make_cluster()
    groups = ("g0", "g1", "g2")
    members_of = {
        "g0": set(cluster.process_ids),
        "g1": set(cluster.process_ids[:2]),
        "g2": set(cluster.process_ids[2:]),
    }
    for group in groups:
        for node in members_of[group]:
            cluster.service(node).join(group)
    assert cluster.run_until(
        lambda: settled(cluster, groups, members_of), timeout_us=40 * SECOND
    )
    cluster.run_for_seconds(5)  # drain the anti-entropy tail
    cluster.check_invariants()  # sharded convergence + recovery branches


def test_sharded_partition_heal_converges_shard_by_shard():
    cluster = make_cluster()
    groups = ("g0", "g1")
    members_of = {
        "g0": set(cluster.process_ids),
        "g1": set(cluster.process_ids[:3]),
    }
    for group in groups:
        for node in members_of[group]:
            cluster.service(node).join(group)
    assert cluster.run_until(
        lambda: settled(cluster, groups, members_of), timeout_us=40 * SECOND
    )
    # Split the name servers two and two, processes with either side,
    # churn memberships while divided, then heal.
    side_a = ["p0", "p1", "ns0", "ns1"]
    side_b = ["p2", "p3", "ns2", "ns3"]
    cluster.partition(side_a, side_b)
    cluster.service("p1").leave("g1")
    members_of["g1"].discard("p1")
    cluster.run_for_seconds(8)
    cluster.heal()
    assert cluster.run_until(
        lambda: settled(cluster, groups, members_of), timeout_us=60 * SECOND
    )
    cluster.run_for_seconds(5)
    cluster.check_invariants()


def test_sharded_server_crash_recovery_passes_checkers():
    cluster = make_cluster()
    members = set(cluster.process_ids)
    for node in members:
        cluster.service(node).join("g0")
    assert cluster.run_until(
        lambda: settled(cluster, ("g0",), {"g0": members}),
        timeout_us=40 * SECOND,
    )
    # Crash-recover one server: it reloads only its owned shards from
    # its per-shard snapshot+journal.
    cluster.crash("ns1")
    cluster.run_for_seconds(2)
    cluster.recover("ns1")
    cluster.run_for_seconds(8)
    cluster.check_invariants()
