"""Recovery edge cases: crashes landing in protocol-window blind spots.

Each test aims a crash (or corruption) at a specific in-flight window —
a merge round, a Merkle descent, a view installation, a batch
flush/ack gap — and asserts the system heals back to full convergence
with every invariant checker still armed.
"""

from repro.core import LwgListener
from repro.core.ids import lwg_id
from repro.naming.persistence import inject_corruption
from repro.sim import SECOND
from repro.vsync.hwg import EndpointState
from repro.vsync.messages import InstallView
from repro.workloads import Cluster


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


class Counter(LwgListener):
    def __init__(self):
        self.total = 0

    def on_data(self, lwg, src, payload, size):
        self.total += payload

    def get_state(self, lwg):
        return self.total

    def on_state(self, lwg, state):
        self.total = state


# ----------------------------------------------------------------------
# 1. Crash-recover in the middle of an in-flight merge round
# ----------------------------------------------------------------------
def test_rejoin_during_inflight_merge_round():
    """A member crashing mid-merge must not wedge the round; it rejoins."""
    cluster = Cluster(num_processes=4, seed=31, num_name_servers=2)
    cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "ns1"])
    handles = [cluster.service(i).join("g") for i in range(4)]
    assert cluster.run_until(
        lambda: converged(handles[:2], 2) and converged(handles[2:], 2),
        timeout_us=30 * SECOND,
    )
    merge_seen = []
    cluster.env.tracer.subscribe(
        lambda r: merge_seen.append(r) if r.event == "merge_views_triggered" else None
    )
    cluster.heal()
    # Step until a merge round is actually in flight, then yank p3.
    assert cluster.run_until(lambda: bool(merge_seen), timeout_us=30 * SECOND)
    cluster.crash("p3")
    cluster.run_for_seconds(1)
    cluster.recover("p3")
    assert cluster.run_until(
        lambda: converged(handles[:3], 3), timeout_us=60 * SECOND
    )
    # The recovered node rejoins from scratch and the group re-forms.
    handles[3] = cluster.service("p3").join("g")
    assert cluster.run_until(lambda: converged(handles, 4), timeout_us=60 * SECOND)
    cluster.run_for_seconds(5)
    cluster.check_invariants()


# ----------------------------------------------------------------------
# 2. Corruption detected in the middle of a Merkle descent
# ----------------------------------------------------------------------
def test_corruption_mid_merkle_descent():
    """Corrupting + crashing a server mid-descent still converges.

    The in-flight descent session dies with the server (peers' stale
    steps are answered by fresh self-describing sessions); the reload
    quarantines the damage and the next gossip tick re-reconciles.
    """
    cluster = Cluster(num_processes=4, seed=33, num_name_servers=2)
    cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "ns1"])
    handles_a = [cluster.service(i).join("ga") for i in range(2)]
    handles_b = [cluster.service(i).join("gb") for i in range(2, 4)]
    assert cluster.run_until(
        lambda: converged(handles_a, 2) and converged(handles_b, 2),
        timeout_us=30 * SECOND,
    )
    ns0 = cluster.name_servers["ns0"]
    ns1 = cluster.name_servers["ns1"]
    assert ns0.db.content_hash() != ns1.db.content_hash()
    cluster.heal()
    # An active session on ns0 IS a descent in flight.
    assert cluster.run_until(lambda: bool(ns0._sessions), timeout_us=10 * SECOND)
    rng = cluster.env.rng.stream("test:corrupt")
    detail = inject_corruption(ns0.store, "bit_flip", rng, db=ns0.db)
    cluster.env.tracer.emit(
        "recovery", "store_corrupted", node="ns0", mode="bit_flip", detail=detail
    )
    cluster.crash("ns0")
    assert not ns0._sessions  # in-flight descent died with the process
    cluster.run_for_seconds(1)
    cluster.recover("ns0")
    assert cluster.run_until(
        lambda: ns0.db.content_hash() == ns1.db.content_hash(),
        timeout_us=60 * SECOND,
    )
    cluster.run_for_seconds(5)
    cluster.check_invariants()


# ----------------------------------------------------------------------
# 3. Incarnation bump vs a stale InstallView from the previous life
# ----------------------------------------------------------------------
def test_stale_install_view_rejected_after_incarnation_bump():
    """A delayed InstallView from the dead life must not resurrect it."""
    cluster = Cluster(num_processes=3, seed=35)
    handles = [cluster.service(i).join("g") for i in range(3)]
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=20 * SECOND)
    stack = cluster.stack("p2")
    local = cluster.service("p2").table.local(lwg_id("g"))
    hwg = local.hwg
    old_view = stack.endpoints[hwg].current_view
    old_incarnation = stack.transport.incarnation
    assert "p2" in old_view.members

    cluster.crash("p2")
    cluster.run_for_seconds(2)
    cluster.recover("p2")
    # The new life is durably distinguishable from the old one, and the
    # durable view history brands the pre-crash view as stale.
    assert stack.transport.incarnation > old_incarnation
    assert stack.is_stale_view(hwg, old_view.view_id)

    rejected = []
    cluster.env.tracer.subscribe(
        lambda r: rejected.append(r) if r.event == "stale_install_rejected" else None
    )
    handles[2] = cluster.service("p2").join("g")
    # While the endpoint is (re)joining, replay the pre-crash install as
    # if it had been delayed in the fabric across the crash.
    injected = []

    def poke():
        endpoint = stack.endpoints.get(hwg)
        if endpoint is not None and endpoint.state is EndpointState.JOINING:
            endpoint.apply_install(
                "p0", InstallView(group=hwg, view=old_view, via_branch=None)
            )
            injected.append(True)
            return endpoint.current_view is None
        return False

    assert cluster.run_until(poke, timeout_us=20 * SECOND, step_us=5_000)
    assert injected and rejected, "stale install never exercised"
    # The real join still completes — on a view minted by the new life.
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=40 * SECOND)
    assert handles[2].view.view_id != old_view.view_id
    cluster.run_for_seconds(5)
    cluster.check_invariants()


# ----------------------------------------------------------------------
# 3b. Fast rejoin under the failure detector's radar
# ----------------------------------------------------------------------
def test_fast_rejoin_evicts_stale_membership_first():
    """A restart quicker than the FD timeout must not reuse the old seat.

    The dead incarnation still sits in the current view, holding a dedup
    floor that would swallow the new life's restarted sender numbering —
    the coordinator must evict it before re-admitting the node as a
    genuine joiner (fresh floor, state snapshot).
    """
    cluster = Cluster(num_processes=3, seed=35)
    handles = [cluster.service(i).join("g") for i in range(3)]
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=20 * SECOND)
    evictions = []
    cluster.env.tracer.subscribe(
        lambda r: evictions.append(r)
        if r.event == "rejoin_evicts_stale_member"
        else None
    )
    cluster.crash("p2")
    cluster.run_for_seconds(2)  # well under the suspicion timeout
    cluster.recover("p2")
    handles[2] = cluster.service("p2").join("g")
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=90 * SECOND)
    assert evictions, "stale membership was never evicted"
    cluster.run_for_seconds(5)
    cluster.check_invariants()


# ----------------------------------------------------------------------
# 4. Crash between a batch flush and its acks
# ----------------------------------------------------------------------
def test_crash_between_batch_flush_and_ack():
    """The sender dies right after its batch left; survivors agree."""
    cluster = Cluster(num_processes=3, seed=37)
    apps = [Counter() for _ in range(3)]
    handles = [cluster.service(i).join("g", apps[i]) for i in range(3)]
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=20 * SECOND)
    for value in (1, 2, 3):
        handles[0].send(value, size=16)
    # The batch window is 2ms: at +3ms the flush has been multicast but
    # its acks are still in flight back to p0.
    cluster.run_for(3_000)
    cluster.crash("p0")
    assert cluster.run_until(
        lambda: converged(handles[1:], 2), timeout_us=30 * SECOND
    )
    # Virtual synchrony: whatever the survivors delivered of the dying
    # batch, they delivered identically (the view-change flush settles
    # it); the delivery/transition checkers stay armed throughout.
    assert apps[1].total == apps[2].total
    cluster.recover("p0")
    cluster.run_for_seconds(1)
    apps[0] = Counter()
    handles[0] = cluster.service("p0").join("g", apps[0])
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=40 * SECOND)
    cluster.run_for_seconds(5)
    cluster.check_invariants()
    assert apps[0].total == apps[1].total == apps[2].total
