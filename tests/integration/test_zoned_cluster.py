"""Whole-stack tests of the zoned membership topology (PROTOCOLS.md §20).

The full LWG stack runs with ``VsyncConfig.topology = "zoned"``: gossip
failure detection inside each zone, relay pairs bridging cross-zone
traffic, and zone-scoped liveness state.  Every test finishes with the
standard checker suite's quiesce audit, which includes the zone-scope
monitor (relay election, zone-bounded tracking, directory/network
liveness agreement).
"""

from repro.core import LwgConfig
from repro.sim import SECOND
from repro.vsync import VsyncConfig
from repro.vsync.failure_detector import GossipFailureDetector
from repro.vsync.zones import ZoneMap
from repro.workloads import Cluster


def fast_config():
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return config


#: Two zones, two processes each — fixed so the cross-zone layout never
#: depends on how the hash happens to spread four node ids.
EXPLICIT_ZONES = {"p0": 0, "p1": 0, "p2": 1, "p3": 1, "ns0": 0, "ns1": 1}


def make_cluster(seed=17, num_processes=4):
    return Cluster(
        num_processes=num_processes,
        seed=seed,
        vsync_config=VsyncConfig(topology="zoned", num_zones=2),
        zone_map=ZoneMap(num_zones=2, explicit=EXPLICIT_ZONES),
        lwg_config=fast_config(),
    )


def settled(cluster, groups, members_of):
    for group in groups:
        for node in members_of[group]:
            local = cluster.service(node).table.local(f"lwg:{group}")
            if local is None or not local.is_member or local.view is None:
                return False
        views = {
            cluster.service(node).table.local(f"lwg:{group}").view.view_id
            for node in members_of[group]
        }
        if len(views) != 1:
            return False
    return True


def test_zoned_cluster_wires_the_zone_layer():
    cluster = make_cluster()
    assert cluster.zone_directory is not None
    for node in cluster.process_ids:
        stack = cluster.stack(node)
        assert stack.zones is not None
        assert stack.zones.zone == EXPLICIT_ZONES[node]
        assert isinstance(stack.fd, GossipFailureDetector)
    assert cluster.zone_directory.relays(0) == ("p0", "p1")
    assert cluster.zone_directory.relays(1) == ("p2", "p3")


def test_flat_default_has_no_zone_layer():
    cluster = Cluster(num_processes=2, seed=17, lwg_config=fast_config())
    assert cluster.zone_directory is None
    for node in cluster.process_ids:
        assert cluster.stack(node).zones is None
        assert not isinstance(cluster.stack(node).fd, GossipFailureDetector)


def test_cross_zone_group_converges_and_passes_checkers():
    cluster = make_cluster()
    members = set(cluster.process_ids)  # spans both zones
    for node in members:
        cluster.service(node).join("g0")
    assert cluster.run_until(
        lambda: settled(cluster, ("g0",), {"g0": members}),
        timeout_us=40 * SECOND,
    )
    cluster.run_for_seconds(5)
    cluster.check_invariants()


def test_relay_crash_fails_over_and_regroups():
    cluster = make_cluster()
    members = set(cluster.process_ids)
    for node in members:
        cluster.service(node).join("g0")
    assert cluster.run_until(
        lambda: settled(cluster, ("g0",), {"g0": members}),
        timeout_us=40 * SECOND,
    )
    primary = cluster.zone_directory.primary_relay(0)
    assert primary == "p0"
    cluster.crash(primary)
    members.discard(primary)
    # The survivors re-form the group and the relay pair re-elects.
    assert cluster.run_until(
        lambda: settled(cluster, ("g0",), {"g0": members}),
        timeout_us=60 * SECOND,
    )
    assert cluster.zone_directory.primary_relay(0) == "p1"
    cluster.run_for_seconds(5)
    cluster.check_invariants()


def test_zone_partition_heals_and_passes_checkers():
    cluster = make_cluster()
    members = set(cluster.process_ids)
    for node in members:
        cluster.service(node).join("g0")
    assert cluster.run_until(
        lambda: settled(cluster, ("g0",), {"g0": members}),
        timeout_us=40 * SECOND,
    )
    # Cut exactly along the zone boundary — the worst case for a zoned
    # deployment, since every cross-zone liveness path dies at once.
    cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "ns1"])
    cluster.run_for_seconds(10)
    cluster.heal()
    assert cluster.run_until(
        lambda: settled(cluster, ("g0",), {"g0": members}),
        timeout_us=90 * SECOND,
    )
    cluster.run_for_seconds(5)
    cluster.check_invariants()
