"""Smoke tests: every bundled example must run to completion.

Examples are the library's living documentation — these tests keep them
from rotting.  Output is captured and a few key lines asserted.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / f"{name}.py"), run_name="__main__")
    return buffer.getvalue()


def test_quickstart():
    output = run_example("quickstart")
    assert "both LWGs ride the same HWG" in output
    assert "Done." in output


def test_trading_system():
    output = run_example("trading_system")
    assert "24 user groups on" in output
    assert "heavy-weight" in output
    assert "Done." in output


def test_collaboration():
    output = run_example("collaboration")
    assert "every member saw the same edit order: True" in output
    assert "Done." in output


def test_partition_healing():
    output = run_example("partition_healing")
    assert "MULTIPLE-MAPPINGS callback" in output
    assert "switch to highest-gid HWG" in output
    assert "merged (one flush)" in output
    assert "delivered at 4/4 members" in output


def test_replicated_kv():
    output = run_example("replicated_kv")
    assert "received snapshot" in output
    assert "Done." in output
