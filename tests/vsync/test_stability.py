"""Tests for message-stability tracking and ordered-log garbage collection."""

from tests.helpers import converged, make_group, run_until

from repro.sim import SECOND


def test_logs_are_pruned_under_continuous_traffic(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    # Pump messages over several stability periods.
    for burst in range(10):
        for endpoint in endpoints:
            endpoint.send(("m", burst, endpoint.node), size=64)
        env.sim.run_until(env.sim.now + 600_000)
    env.sim.run_until(env.sim.now + 2 * SECOND)
    for endpoint in endpoints:
        assert endpoint.channel.log_pruned > 0, endpoint.node
        # The retained log is a small suffix, not the whole history.
        assert len(endpoint.channel.log) < endpoint.channel.delivered_upto + 1


def test_stability_floor_never_exceeds_slowest_member(env):
    stacks, endpoints, _ = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    for i in range(20):
        endpoints[0].send(("m", i), size=64)
    env.sim.run_until(env.sim.now + 3 * SECOND)
    for endpoint in endpoints:
        floor = endpoint.channel.stable_upto
        assert floor <= min(e.channel.delivered_upto for e in endpoints)


def test_flush_still_correct_after_pruning(env):
    """A view change after heavy (pruned) traffic must still equalise."""
    stacks, endpoints, listeners = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    for i in range(30):
        endpoints[i % 3].send(("m", i), size=64)
    env.sim.run_until(env.sim.now + 3 * SECOND)
    assert endpoints[0].channel.log_pruned > 0
    # Force a flush via a join.
    from repro.vsync import ProtocolStack
    from tests.helpers import RecordingListener

    late_stack = ProtocolStack(env, "late", stacks[0].addressing)
    late = late_stack.endpoint("g", RecordingListener("late"))
    late.join()
    assert run_until(env, lambda: converged(endpoints + [late], 4), timeout_s=15)
    # All original members delivered all 30 messages exactly once.
    for listener in listeners:
        payloads = [p for _, p in listener.data]
        assert len(payloads) == 30
        assert len(set(payloads)) == 30


def test_stability_state_resets_on_view_change(env):
    stacks, endpoints, _ = make_group(env, 2)
    assert run_until(env, lambda: converged(endpoints, 2))
    for i in range(5):
        endpoints[0].send(("m", i), size=64)
    env.sim.run_until(env.sim.now + 2 * SECOND)
    old_floor = endpoints[0].channel.stable_upto
    assert old_floor >= 0
    endpoints[1].leave()
    assert run_until(env, lambda: converged(endpoints[:1], 1))
    assert endpoints[0].channel.stable_upto == -1  # fresh view, fresh floor
