"""Property-based tests of the virtual-synchrony guarantees.

Random partition schedules and traffic are generated with hypothesis;
after every run the trace of (view, delivered-messages) histories is
checked against the classic invariants:

* **agreement on delivery prefix** — two processes that install the same
  view V and then both install the same successor V' delivered the same
  set of messages between V and V';
* **self-inclusion** — every installed view contains the installer;
* **no duplicate delivery** — per (sender, payload-id), at most one
  delivery per process;
* **genealogy sanity** — a process's consecutive views are connected by
  parent edges.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import RecordingListener, make_group, run_until

from repro.sim import SECOND, SimEnv
from repro.vsync import HwgListener


class HistoryListener(HwgListener):
    """Records the full interleaved history of views and deliveries."""

    def __init__(self, node):
        self.node = node
        self.history = []  # ("view", View) | ("data", (src, payload))

    def on_view(self, group, view):
        self.history.append(("view", view))

    def on_data(self, group, src, payload, size):
        self.history.append(("data", (src, payload)))


def segments(history):
    """Split a history into {view_id: (view, frozenset(messages))}."""
    out = {}
    current = None
    bucket = []
    for kind, item in history:
        if kind == "view":
            if current is not None:
                out[current.view_id] = (current, frozenset(bucket))
            current = item
            bucket = []
        else:
            bucket.append(item)
    if current is not None:
        out[current.view_id] = (current, frozenset(bucket))
    return out


def successor_pairs(history):
    """(view_id, next_view_id) pairs in installation order."""
    ids = [item.view_id for kind, item in history if kind == "view"]
    return list(zip(ids, ids[1:]))


PARTITION_CHOICES = [
    [["p0", "p1"], ["p2", "p3"]],
    [["p0", "p2"], ["p1", "p3"]],
    [["p0"], ["p1", "p2", "p3"]],
    [["p0", "p1", "p2"], ["p3"]],
]


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    schedule=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # partition choice
            st.integers(min_value=600_000, max_value=2_000_000),  # hold time
            st.lists(st.integers(min_value=0, max_value=3), max_size=4),  # senders
        ),
        min_size=1,
        max_size=3,
    ),
)
def test_virtual_synchrony_under_random_partitions(seed, schedule):
    env = SimEnv.create(seed=seed)
    from repro.vsync import GroupAddressing, ProtocolStack

    addressing = GroupAddressing()
    stacks = [ProtocolStack(env, f"p{i}", addressing) for i in range(4)]
    listeners = [HistoryListener(s.node) for s in stacks]
    endpoints = [s.endpoint("g", listeners[i]) for i, s in enumerate(stacks)]
    for endpoint in endpoints:
        endpoint.join()
    env.sim.run_until(3 * SECOND)
    payload_counter = 0
    for choice, hold_us, senders in schedule:
        env.network.set_partitions(PARTITION_CHOICES[choice])
        for sender in senders:
            payload_counter += 1
            endpoints[sender].send(("m", sender, payload_counter))
        env.sim.run_until(env.sim.now + hold_us)
        env.network.heal()
        env.sim.run_until(env.sim.now + 2 * SECOND)
    env.sim.run_until(env.sim.now + 4 * SECOND)

    histories = {l.node: l.history for l in listeners}
    # Self-inclusion.
    for node, history in histories.items():
        for kind, item in history:
            if kind == "view":
                assert node in item.members, f"{node} installed a view excluding itself"
    # No duplicate delivery per process.
    for node, history in histories.items():
        messages = [item for kind, item in history if kind == "data"]
        assert len(messages) == len(set(messages)), f"duplicate delivery at {node}"
    # Agreement on messages between identical consecutive views.
    segs = {node: segments(history) for node, history in histories.items()}
    pairs = {node: successor_pairs(history) for node, history in histories.items()}
    nodes = list(histories)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            shared = set(pairs[a]) & set(pairs[b])
            for view_id, _next in shared:
                _, msgs_a = segs[a][view_id]
                _, msgs_b = segs[b][view_id]
                assert msgs_a == msgs_b, (
                    f"{a} and {b} disagree on messages in view {view_id}: "
                    f"{msgs_a ^ msgs_b}"
                )
    # Genealogy: consecutive local views are linked by parent edges.
    for node, history in histories.items():
        views = [item for kind, item in history if kind == "view"]
        for previous, nxt in zip(views, views[1:]):
            assert previous.view_id in nxt.parents, (
                f"{node}: view {nxt.view_id} does not descend from {previous.view_id}"
            )
