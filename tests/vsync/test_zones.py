"""Zone layer unit tests: assignment, directory, relay election.

The :class:`ZoneAgent` rides on a full vsync stack, so its behaviour is
covered by the zoned integration tests; this file pins down the pure
pieces — the deterministic zone hash, the directory bookkeeping and the
relay-pair election — which everything else (checkers, fuzz relay_crash
steps, benchmarks) depends on.
"""

from repro.vsync.zones import ZoneDirectory, ZoneMap, zone_hash


def test_zone_hash_is_deterministic_and_in_range():
    for node in ("p0", "p1", "ns0", "some-long-name"):
        for zones in (1, 2, 4, 7, 64):
            first = zone_hash(node, zones)
            assert first == zone_hash(node, zones)
            assert 0 <= first < zones


def test_zone_hash_spreads_nodes_across_zones():
    nodes = [f"p{i}" for i in range(256)]
    zones = {zone_hash(node, 4) for node in nodes}
    assert zones == {0, 1, 2, 3}  # 256 nodes never all land in one zone


def test_zone_map_explicit_override_beats_the_hash():
    zmap = ZoneMap(num_zones=4, explicit={"p0": 3})
    assert zmap.zone_of("p0") == 3
    hashed = ZoneMap(num_zones=4)
    assert zmap.zone_of("p1") == hashed.zone_of("p1")


def test_directory_registration_is_order_independent():
    nodes = [f"p{i}" for i in range(12)]
    forward = ZoneDirectory(ZoneMap(num_zones=3))
    backward = ZoneDirectory(ZoneMap(num_zones=3))
    for node in nodes:
        forward.register(node)
    for node in reversed(nodes):
        backward.register(node)
    for zone in forward.zones():
        assert forward.members(zone) == backward.members(zone)
        assert forward.relays(zone) == backward.relays(zone)


def test_relay_pair_election_and_failover():
    directory = ZoneDirectory(ZoneMap(num_zones=1))
    for node in ("a", "b", "c", "d"):
        directory.register(node)
    assert directory.members(0) == ("a", "b", "c", "d")
    assert directory.relays(0) == ("a", "b")
    assert directory.primary_relay(0) == "a"
    # The primary crashes: the pair re-forms from the remaining actives.
    directory.set_active("a", False)
    assert directory.relays(0) == ("b", "c")
    assert directory.primary_relay(0) == "b"
    # It recovers: election is positional, so it resumes primary duty.
    directory.set_active("a", True)
    assert directory.primary_relay(0) == "a"


def test_empty_zone_has_no_relays():
    directory = ZoneDirectory(ZoneMap(num_zones=2, explicit={"a": 0}))
    directory.register("a")
    assert directory.relays(1) == ()
    assert directory.primary_relay(1) is None
    directory.set_active("a", False)
    assert directory.primary_relay(0) is None


def test_all_relays_unions_every_zone_pair():
    explicit = {"a": 0, "b": 0, "c": 1, "d": 1, "e": 1}
    directory = ZoneDirectory(ZoneMap(num_zones=2, explicit=explicit))
    for node in explicit:
        directory.register(node)
    assert directory.all_relays() == {"a", "b", "c", "d"}
