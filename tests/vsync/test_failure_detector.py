"""Tests for the shared heartbeat failure detector."""

from repro.sim import SimEnv
from repro.vsync.failure_detector import FailureDetector
from repro.vsync.messages import Heartbeat


class Harness:
    """Two failure detectors wired through the simulated network."""

    def __init__(self, env, nodes=("a", "b")):
        self.env = env
        self.fds = {}
        self.events = []
        for node in nodes:
            fd = FailureDetector(
                env,
                node,
                send_multicast=lambda peers, msg, size, n=node: env.network.multicast(
                    n, peers, msg, msg.size_bytes()
                ),
                heartbeat_period_us=50_000,
                timeout_us=200_000,
            )
            fd.subscribe(lambda peer, suspected, n=node: self.events.append((n, peer, suspected)))
            self.fds[node] = fd
            env.network.attach(node, self._receiver(node))

    def _receiver(self, node):
        def deliver(src, payload, size):
            if isinstance(payload, Heartbeat):
                self.fds[node].on_heartbeat(src)

        return deliver

    def drive(self, duration_us, tick_us=50_000):
        end = self.env.sim.now + duration_us
        while self.env.sim.now < end:
            for fd in self.fds.values():
                fd.tick_heartbeat()
                fd.tick_check()
            self.env.sim.run_until(self.env.sim.now + tick_us)


def test_no_suspicion_while_heartbeats_flow(env):
    h = Harness(env)
    h.fds["a"].monitor("b")
    h.fds["b"].monitor("a")
    h.drive(1_000_000)
    assert not h.fds["a"].is_suspected("b")
    assert not h.fds["b"].is_suspected("a")


def test_suspicion_after_partition(env):
    h = Harness(env)
    h.fds["a"].monitor("b")
    h.fds["b"].monitor("a")
    h.drive(300_000)
    env.network.set_partitions([["a"], ["b"]])
    h.drive(500_000)
    assert h.fds["a"].is_suspected("b")
    assert h.fds["b"].is_suspected("a")
    assert ("a", "b", True) in h.events


def test_suspicion_revised_after_heal(env):
    h = Harness(env)
    h.fds["a"].monitor("b")
    h.fds["b"].monitor("a")
    env.network.set_partitions([["a"], ["b"]])
    h.drive(500_000)
    assert h.fds["a"].is_suspected("b")
    env.network.heal()
    h.drive(500_000)
    assert not h.fds["a"].is_suspected("b")
    assert ("a", "b", False) in h.events


def test_monitor_is_refcounted(env):
    h = Harness(env)
    fd = h.fds["a"]
    fd.monitor("b")
    fd.monitor("b")
    fd.unmonitor("b")
    assert "b" in fd.monitored_peers()
    fd.unmonitor("b")
    assert "b" not in fd.monitored_peers()


def test_unmonitored_peer_never_suspected(env):
    h = Harness(env)
    env.network.set_partitions([["a"], ["b"]])
    h.drive(1_000_000)
    assert not h.fds["a"].is_suspected("b")


def test_self_is_never_monitored(env):
    h = Harness(env)
    h.fds["a"].monitor("a")
    assert "a" not in h.fds["a"].monitored_peers()


def test_any_traffic_counts_as_liveness(env):
    h = Harness(env)
    fd = h.fds["a"]
    fd.monitor("b")
    env.network.set_partitions([["a"], ["b"]])
    h.drive(500_000)
    assert fd.is_suspected("b")
    fd.on_heartbeat("b")  # e.g. a data message arrived
    assert not fd.is_suspected("b")


def test_grace_period_on_fresh_monitor(env):
    h = Harness(env)
    env.sim.run_until(10_000_000)  # long silence beforehand
    h.fds["a"].monitor("b")
    h.fds["a"].tick_check()
    assert not h.fds["a"].is_suspected("b")


def test_reset_clears_everything(env):
    h = Harness(env)
    fd = h.fds["a"]
    fd.monitor("b")
    env.network.set_partitions([["a"], ["b"]])
    h.drive(500_000)
    fd.reset()
    assert fd.monitored_peers() == set()
    assert fd.suspected_peers() == set()


def test_unmonitor_underflow_is_harmless(env):
    h = Harness(env)
    fd = h.fds["a"]
    fd.unmonitor("b")  # never monitored
    fd.monitor("b")
    fd.unmonitor("b")
    fd.unmonitor("b")  # one drop too many
    assert "b" not in fd.monitored_peers()
    # The extra drop must not leave a negative refcount behind: the next
    # monitor starts a fresh count of one, which one unmonitor releases.
    fd.monitor("b")
    assert "b" in fd.monitored_peers()
    fd.unmonitor("b")
    assert "b" not in fd.monitored_peers()


def test_unmonitor_while_suspected_clears_suspicion_exactly_once(env):
    h = Harness(env)
    fd = h.fds["a"]
    fd.monitor("b")
    env.network.set_partitions([["a"], ["b"]])
    h.drive(500_000)
    assert fd.is_suspected("b")
    before = list(h.events)
    fd.unmonitor("b")
    assert not fd.is_suspected("b")
    assert fd.suspected_peers() == set()
    # No further notifications: the clear is silent (the caller asked to
    # stop watching) and later checks never resurrect the stale entry.
    h.drive(500_000)
    assert h.events == before
    assert not fd.is_suspected("b")


def test_remonitor_after_same_tick_unmonitor_gets_fresh_grace(env):
    h = Harness(env)
    fd = h.fds["a"]
    fd.monitor("b")
    env.network.set_partitions([["a"], ["b"]])
    h.drive(500_000)
    assert fd.is_suspected("b")
    # Drop and re-add within the same tick (endpoint churn does this when
    # a group reforms): the new registration starts with a fresh grace
    # window instead of inheriting the stale last-heard time.
    fd.unmonitor("b")
    fd.monitor("b")
    fd.tick_check()
    assert not fd.is_suspected("b")
    # Grace is a window, not immunity: continued silence re-suspects.
    h.drive(500_000)
    assert fd.is_suspected("b")
