"""Tests for the SWIM-style gossip failure detector (zoned topology).

The harness wires several :class:`GossipFailureDetector` instances
through the simulated network, dispatching the three gossip message
kinds the way the vsync stack does.  All target selection is rendezvous
hashing — no RNG draws — so every assertion here is deterministic.
"""

from repro.vsync.failure_detector import (
    GossipFailureDetector,
    gossip_fanout,
    rendezvous_pick,
)
from repro.vsync.messages import LivenessDigest, ProbePing, ProbeRequest


class GossipHarness:
    """N gossip detectors sharing one simulated network."""

    def __init__(self, env, nodes, period_us=50_000, timeout_us=200_000,
                 probe_timeout_us=100_000):
        self.env = env
        self.nodes = list(nodes)
        self.fds = {}
        self.events = []
        for node in self.nodes:
            fd = GossipFailureDetector(
                env,
                node,
                send_multicast=lambda peers, msg, size, n=node: env.network.multicast(
                    n, peers, msg, size
                ),
                heartbeat_period_us=period_us,
                timeout_us=timeout_us,
                probe_timeout_us=probe_timeout_us,
            )
            fd.subscribe(
                lambda peer, suspected, n=node: self.events.append(
                    (n, peer, suspected)
                )
            )
            self.fds[node] = fd
            env.network.attach(node, self._receiver(node))

    def _receiver(self, node):
        def deliver(src, payload, size):
            fd = self.fds[node]
            if isinstance(payload, LivenessDigest):
                fd.on_digest(src, payload)
            elif isinstance(payload, ProbeRequest):
                fd.on_probe_request(src, payload)
            elif isinstance(payload, ProbePing):
                fd.on_probe_ping(src, payload)

        return deliver

    def substrate(self, members=None):
        members = set(members if members is not None else self.nodes)
        for node in self.nodes:
            self.fds[node].set_substrate(members)

    def drive(self, duration_us, tick_us=50_000, skip=()):
        end = self.env.sim.now + duration_us
        while self.env.sim.now < end:
            for node, fd in self.fds.items():
                if node in skip:
                    continue
                fd.tick_heartbeat()
                fd.tick_check()
            self.env.sim.run_until(self.env.sim.now + tick_us)


# ----------------------------------------------------------------------
# Pure helpers
# ----------------------------------------------------------------------
def test_gossip_fanout_is_log_bounded():
    assert gossip_fanout(0) == 0
    assert gossip_fanout(1) == 1
    assert gossip_fanout(2) == 2
    assert gossip_fanout(4) == 2
    assert gossip_fanout(16) == 4
    assert gossip_fanout(256) == 8
    assert gossip_fanout(1024) == 10


def test_rendezvous_pick_is_deterministic_and_salt_sensitive():
    candidates = {f"p{i}" for i in range(20)}
    first = rendezvous_pick("salt|1", candidates, 4)
    again = rendezvous_pick("salt|1", candidates, 4)
    other = rendezvous_pick("salt|2", candidates, 4)
    assert first == again
    assert len(first) == 4
    assert set(first) <= candidates
    assert first != other  # different salt rotates the choice
    everyone = rendezvous_pick("salt|1", candidates, 99)
    assert everyone == sorted(candidates)


# ----------------------------------------------------------------------
# Protocol behaviour
# ----------------------------------------------------------------------
def test_no_suspicion_while_gossip_flows(env):
    h = GossipHarness(env, [f"p{i}" for i in range(6)])
    h.substrate()
    h.drive(1_000_000)
    for fd in h.fds.values():
        assert fd.suspected_peers() == set()


def test_gossip_round_targets_log_fanout_not_everyone(env):
    nodes = [f"p{i}" for i in range(16)]
    h = GossipHarness(env, nodes)
    h.substrate()
    sent = []
    fd = h.fds["p0"]
    fd._send_multicast = lambda peers, msg, size: sent.append(set(peers))
    fd.tick_heartbeat()
    assert len(sent) == 1
    # 15 live substrate peers -> ceil(log2(15)) = 4 targets, not 15.
    assert len(sent[0]) == gossip_fanout(15) == 4
    assert "p0" not in sent[0]


def test_silent_peer_is_probed_before_suspected(env):
    nodes = [f"p{i}" for i in range(5)]
    h = GossipHarness(env, nodes)
    h.substrate()
    h.drive(200_000)
    env.failures.crash_now("p4")
    watcher = h.fds["p0"]
    probes_before = watcher.probes_sent
    # Relayed rows about the dead peer can restart the staleness clock
    # once (peers gossip the last counter they saw), so drive tick by
    # tick until the entry actually goes stale and a probe opens.
    for _ in range(40):
        h.drive(50_000, skip=("p4",))
        if watcher.probes_sent > probes_before:
            break
    assert watcher.probes_sent > probes_before
    # The probe window is still open: no suspicion yet.
    assert not watcher.is_suspected("p4")
    # After the probe expires with no answer, suspicion lands.
    h.drive(400_000, skip=("p4",))
    assert watcher.is_suspected("p4")
    assert ("p0", "p4", True) in h.events


def test_suspicion_spreads_transitively_through_digests(env):
    # p0 and p3 never exchange gossip directly (fan-out 2 of a 4-node
    # substrate can miss pairs), yet every live node converges on
    # suspecting the crashed peer because digests carry suspicion rows.
    nodes = [f"p{i}" for i in range(8)]
    h = GossipHarness(env, nodes)
    h.substrate()
    h.drive(200_000)
    env.failures.crash_now("p7")
    h.drive(1_500_000, skip=("p7",))
    for node in nodes[:-1]:
        assert h.fds[node].is_suspected("p7"), node


def test_recovered_peer_is_unsuspected_via_gossip(env):
    nodes = [f"p{i}" for i in range(5)]
    h = GossipHarness(env, nodes)
    h.substrate()
    env.failures.crash_now("p4")
    h.drive(1_000_000, skip=("p4",))
    assert h.fds["p0"].is_suspected("p4")
    env.failures.recover_now("p4")
    h.drive(1_000_000)
    assert not h.fds["p0"].is_suspected("p4")
    assert ("p0", "p4", False) in h.events


def test_refutation_bumps_counter_on_self_suspicion(env):
    h = GossipHarness(env, ["a", "b"])
    h.substrate()
    fd = h.fds["a"]
    before = fd._counter
    slander = LivenessDigest(
        group="_fd",
        sender="b",
        round_no=9,
        entries=(("a", fd.incarnation, before + 5, True),),
    )
    fd.on_digest("b", slander)
    # The refuting counter outruns the slandered version, so the next
    # digest we gossip is provably fresher than the suspicion row.
    assert fd._counter > before + 5


def test_out_of_scope_digest_rows_are_pruned(env):
    h = GossipHarness(env, ["a", "b"])
    h.fds["a"].set_substrate({"a", "b"})
    rows = tuple((f"z{i}", 0, 3, False) for i in range(50))
    gossip = LivenessDigest(group="_fd", sender="b", round_no=1, entries=rows)
    h.fds["a"].on_digest("b", gossip)
    # None of the 50 out-of-zone peers got a liveness row: tracked state
    # stays O(zone + monitored), the zoned topology's whole point.
    assert h.fds["a"].tracked_peer_count() == 1  # just b


def test_monitored_cross_zone_peer_is_gossiped_directly(env):
    h = GossipHarness(env, ["a", "b", "x"])
    h.fds["a"].set_substrate({"a", "b"})
    h.fds["a"].monitor("x")  # cross-zone view member
    sent = []
    h.fds["a"]._send_multicast = lambda peers, msg, size: sent.append(set(peers))
    h.fds["a"].tick_heartbeat()
    assert any("x" in peers for peers in sent)


def test_unmonitor_keeps_substrate_rows(env):
    h = GossipHarness(env, ["a", "b", "x"])
    h.fds["a"].set_substrate({"a", "b"})
    fd = h.fds["a"]
    fd.monitor("b")
    fd.monitor("x")
    assert fd.tracked_peer_count() == 2
    fd.unmonitor("b")
    fd.unmonitor("x")
    # b stays tracked (it is substrate); x is dropped outright.
    assert fd.tracked_peer_count() == 1
    assert "x" not in fd._table


def test_stale_incarnation_rows_lose_to_fresher_versions(env):
    h = GossipHarness(env, ["a", "b", "c"])
    h.fds["a"].set_substrate({"a", "b", "c"})
    fd = h.fds["a"]
    fresh = LivenessDigest(
        group="_fd", sender="b", round_no=1, entries=(("c", 2, 10, False),)
    )
    fd.on_digest("b", fresh)
    state = fd._table["c"]
    assert state.version() == (2, 10)
    stale = LivenessDigest(
        group="_fd", sender="b", round_no=2, entries=(("c", 1, 99, True),)
    )
    fd.on_digest("b", stale)
    assert fd._table["c"].version() == (2, 10)  # older incarnation lost
    assert not fd._table["c"].suspect
