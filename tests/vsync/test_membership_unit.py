"""Unit tests for ViewChangeManager decision logic (fake endpoint)."""

from repro.sim import SimEnv
from repro.vsync.flush import FlushParticipant
from repro.vsync.membership import EndpointState, ViewChangeManager
from repro.vsync.stack import VsyncConfig
from repro.vsync.messages import (
    InstallView,
    LeaveRequest,
    MergeDecline,
    MergeRequest,
    Presence,
)
from repro.vsync.total_order import OrderedChannel
from repro.vsync.view import View, ViewId


class FakeFd:
    def __init__(self):
        self.suspected = set()

    def is_suspected(self, peer):
        return peer in self.suspected


class FakeStack:
    def __init__(self):
        self.seq = 100
        self.config = VsyncConfig()

    def next_view_seq(self):
        self.seq += 1
        return self.seq


class FakeEndpoint:
    def __init__(self, env, node, view):
        self.env = env
        self.node = node
        self.group = "g"
        self.state = EndpointState.MEMBER
        self.current_view = view
        self.known_ancestors = set()
        self.fd = FakeFd()
        self.stack = FakeStack()
        self.sent = []
        self.installed = []
        self.seceded = 0
        self.channel = OrderedChannel(self)
        self.channel.install_view(view, {})
        self.participant = FlushParticipant(self)

    # messaging used by the manager and flush machinery
    def reliable_send(self, dst, msg):
        self.sent.append((dst, msg))

    def multicast_view(self, msg, size):
        pass

    def deliver_data(self, *args):
        pass

    def raise_stop(self):
        self.participant.stop_acknowledged()

    def handle_stop_locally(self, stop):
        self.participant.on_stop(stop)

    def handle_fill_locally(self, fill):
        self.participant.on_fill(fill)

    def route_flush_state_locally(self, state):
        if self.vcm.round is not None and self.vcm.round.flush is not None:
            self.vcm.round.flush.on_flush_state(state)
        elif self.vcm.subordinate is not None and self.vcm.subordinate.flush is not None:
            self.vcm.subordinate.flush.on_flush_state(state)

    def route_flush_done_locally(self, done):
        if self.vcm.round is not None and self.vcm.round.flush is not None:
            self.vcm.round.flush.on_flush_done(done)
        elif self.vcm.subordinate is not None and self.vcm.subordinate.flush is not None:
            self.vcm.subordinate.flush.on_flush_done(done)

    def apply_install(self, src, msg):
        self.installed.append(msg)

    def capture_state(self):
        return None

    def secede(self):
        self.seceded += 1

    def trace(self, event, **fields):
        pass


def make(env, node="p0", members=("p0", "p1", "p2")):
    view = View("g", ViewId(members[0], 1), tuple(members))
    endpoint = FakeEndpoint(env, node, view)
    endpoint.vcm = ViewChangeManager(endpoint)
    return endpoint


def presence(view_id, members, ):
    return Presence(group="g", view_id=view_id, members=tuple(members))


def test_acting_coordinator_skips_suspects(env):
    endpoint = make(env, node="p1")
    assert endpoint.vcm.acting_coordinator() == "p0"
    endpoint.fd.suspected.add("p0")
    assert endpoint.vcm.acting_coordinator() == "p1"
    assert endpoint.vcm.am_leader()


def test_self_is_never_skipped_as_coordinator(env):
    endpoint = make(env, node="p0")
    # Even if (absurdly) we appear in the suspected set, we count ourselves.
    endpoint.fd.suspected.add("p0")
    assert endpoint.vcm.acting_coordinator() == "p0"


def test_merge_duel_rule_smaller_id_leads(env):
    endpoint = make(env, node="p0")  # coordinator, id p0
    foreign = presence(ViewId("p5", 3), ["p5", "p6"])
    endpoint.vcm.on_presence("p5", foreign)
    # p0 < p5: we lead — a round with a MergeRequest goes out.
    requests = [m for _, m in endpoint.sent if isinstance(m, MergeRequest)]
    assert len(requests) == 1
    assert requests[0].target_view_id == foreign.view_id


def test_merge_duel_rule_larger_id_waits(env):
    endpoint = make(env, node="p5", members=("p5", "p6"))
    foreign = presence(ViewId("p0", 3), ["p0", "p1"])
    endpoint.vcm.on_presence("p0", foreign)
    requests = [m for _, m in endpoint.sent if isinstance(m, MergeRequest)]
    assert requests == []  # p0 will lead; we answer its MergeRequest


def test_stale_beacon_from_ancestor_ignored(env):
    endpoint = make(env, node="p0")
    old_id = ViewId("p9", 1)
    endpoint.known_ancestors.add(old_id)
    endpoint.vcm.on_presence("p9", presence(old_id, ["p9"]))
    assert endpoint.vcm.pending_merges == {}


def test_abandonment_needs_two_sightings(env):
    endpoint = make(env, node="p2")
    # Our own coordinator p0 beacons a view that excludes us.
    foreign = presence(ViewId("p0", 9), ["p0", "p1"])
    endpoint.vcm.on_presence("p0", foreign)
    assert endpoint.seceded == 0  # first sighting: remembered only
    endpoint.vcm.on_presence("p0", foreign)
    assert endpoint.seceded == 1  # second sighting: secede


def test_abandonment_ignores_non_coordinator_beacons(env):
    endpoint = make(env, node="p2")
    foreign = presence(ViewId("p9", 9), ["p9"])  # someone else's view
    endpoint.vcm.on_presence("p9", foreign)
    endpoint.vcm.on_presence("p9", foreign)
    assert endpoint.seceded == 0
    # Non-leaders do not collect merge candidates either — merging is the
    # acting coordinator's job.
    assert endpoint.vcm.pending_merges == {}


def test_merge_request_declined_when_not_leader(env):
    endpoint = make(env, node="p1")  # not the coordinator
    request = MergeRequest(
        group="g", leader="p0", leader_view_id=ViewId("p0", 5),
        target_view_id=endpoint.current_view.view_id, epoch=1,
    )
    endpoint.vcm.on_merge_request("p0", request)
    declines = [m for _, m in endpoint.sent if isinstance(m, MergeDecline)]
    assert len(declines) == 1


def test_merge_request_declined_on_stale_target_view(env):
    endpoint = make(env, node="p0")
    request = MergeRequest(
        group="g", leader="pA", leader_view_id=ViewId("pA", 5),
        target_view_id=ViewId("p0", 99), epoch=1,  # not our current view
    )
    endpoint.vcm.on_merge_request("pA", request)
    declines = [m for _, m in endpoint.sent if isinstance(m, MergeDecline)]
    assert len(declines) == 1


def test_merge_request_declined_when_leader_id_larger(env):
    endpoint = make(env, node="p0")
    request = MergeRequest(
        group="g", leader="p9", leader_view_id=ViewId("p9", 5),
        target_view_id=endpoint.current_view.view_id, epoch=1,
    )
    endpoint.vcm.on_merge_request("p9", request)
    declines = [m for _, m in endpoint.sent if isinstance(m, MergeDecline)]
    assert len(declines) == 1  # duel rule: smaller id leads, p9 may not


def test_merge_request_accepted_starts_subordinate_flush(env):
    endpoint = make(env, node="p1", members=("p1", "p2"))
    request = MergeRequest(
        group="g", leader="p0", leader_view_id=ViewId("p0", 5),
        target_view_id=endpoint.current_view.view_id, epoch=7,
    )
    endpoint.vcm.on_merge_request("p0", request)
    assert endpoint.vcm.subordinate is not None
    assert endpoint.vcm.subordinate.leader == "p0"
    declines = [m for _, m in endpoint.sent if isinstance(m, MergeDecline)]
    assert declines == []


def test_no_round_without_triggers(env):
    endpoint = make(env, node="p0")
    endpoint.vcm.maybe_start()
    assert endpoint.vcm.round is None


def test_refresh_request_starts_identity_round(env):
    endpoint = make(env, node="p0")
    endpoint.vcm.request_refresh()
    assert endpoint.vcm.round is not None


def test_leave_request_from_forgotten_node_gets_release(env):
    """A leaver the view already excluded must be released, not ignored.

    Regression: a node that started leaving while partitioned away is
    excluded from the view as a suspect; after the heal its leave
    retries target a view that forgot it, and without an explicit
    release its endpoint stays wedged in LEAVING forever (and can never
    rejoin the group).
    """
    endpoint = make(env, node="p0")  # view members p0,p1,p2 — no p9
    endpoint.vcm.on_leave_request(LeaveRequest(group="g", leaver="p9"))
    releases = [
        (dst, m) for dst, m in endpoint.sent
        if isinstance(m, InstallView) and m.view is None
    ]
    assert releases == [("p9", releases[0][1])]
    assert endpoint.vcm.round is None  # no view change for a ghost leaver


def test_leave_request_from_member_still_starts_round(env):
    endpoint = make(env, node="p0")
    endpoint.vcm.on_leave_request(LeaveRequest(group="g", leaver="p2"))
    assert endpoint.vcm.round is not None
    assert "p2" in endpoint.vcm.round.leaves
    # No release short-circuit for a live member.
    assert not any(
        isinstance(m, InstallView) and m.view is None for _, m in endpoint.sent
    )


def test_leave_request_at_non_leader_member_is_ignored(env):
    endpoint = make(env, node="p1")  # p0 coordinates
    endpoint.vcm.on_leave_request(LeaveRequest(group="g", leaver="p2"))
    assert endpoint.vcm.round is None
    assert endpoint.sent == []
