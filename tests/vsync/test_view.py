"""Tests for views, view identifiers and the genealogy DAG."""

import pytest

from repro.vsync import View, ViewGenealogy, ViewId, merge_member_order


def vid(coord, seq):
    return ViewId(coord, seq)


def test_view_id_equality_and_order():
    assert vid("p0", 1) == vid("p0", 1)
    assert vid("p0", 1) < vid("p0", 2)
    assert vid("p0", 9) < vid("p1", 1)


def test_view_id_str():
    assert str(vid("p3", 7)) == "p3#7"


def test_view_requires_members():
    with pytest.raises(ValueError):
        View("g", vid("p0", 1), ())


def test_view_rejects_duplicate_members():
    with pytest.raises(ValueError):
        View("g", vid("p0", 1), ("a", "a"))


def test_view_coordinator_is_first_member():
    view = View("g", vid("p9", 1), ("b", "a"))
    assert view.coordinator == "b"


def test_view_rank_and_contains():
    view = View("g", vid("p0", 1), ("x", "y", "z"))
    assert view.rank_of("y") == 1
    assert view.contains("z")
    assert not view.contains("w")


def test_merge_member_order_is_deterministic():
    v1 = View("g", vid("p0", 5), ("a", "b"))
    v2 = View("g", vid("p9", 2), ("c", "d"))
    order1 = merge_member_order([v1, v2])
    order2 = merge_member_order([v2, v1])
    assert order1 == order2


def test_merge_member_order_sorts_branches_by_view_id():
    older = View("g", vid("a", 1), ("x", "y"))
    newer = View("g", vid("z", 1), ("q", "r"))
    assert merge_member_order([newer, older]) == ("x", "y", "q", "r")


def test_merge_member_order_dedupes():
    v1 = View("g", vid("a", 1), ("x", "y"))
    v2 = View("g", vid("b", 1), ("y", "z"))
    assert merge_member_order([v1, v2]) == ("x", "y", "z")


def test_merge_member_order_preserves_branch_seniority():
    v1 = View("g", vid("a", 1), ("b", "a"))  # b senior to a
    assert merge_member_order([v1]) == ("b", "a")


# ----------------------------------------------------------------------
# Genealogy
# ----------------------------------------------------------------------
def chain(genealogy, *ids):
    """Record a linear ancestry: ids[0] <- ids[1] <- ..."""
    for parent, child in zip(ids, ids[1:]):
        genealogy.record(child, [parent])


def test_ancestor_direct():
    g = ViewGenealogy()
    chain(g, vid("p", 1), vid("p", 2))
    assert g.is_ancestor(vid("p", 1), vid("p", 2))
    assert not g.is_ancestor(vid("p", 2), vid("p", 1))


def test_ancestor_transitive():
    g = ViewGenealogy()
    chain(g, vid("p", 1), vid("p", 2), vid("p", 3), vid("p", 4))
    assert g.is_ancestor(vid("p", 1), vid("p", 4))


def test_self_is_not_ancestor():
    g = ViewGenealogy()
    chain(g, vid("p", 1), vid("p", 2))
    assert not g.is_ancestor(vid("p", 1), vid("p", 1))


def test_merge_has_two_ancestries():
    g = ViewGenealogy()
    merged = vid("m", 1)
    g.record(merged, [vid("a", 1), vid("b", 1)])
    assert g.is_ancestor(vid("a", 1), merged)
    assert g.is_ancestor(vid("b", 1), merged)


def test_concurrent_views():
    g = ViewGenealogy()
    root = vid("r", 1)
    g.record(vid("a", 1), [root])
    g.record(vid("b", 1), [root])
    assert g.concurrent(vid("a", 1), vid("b", 1))
    assert not g.concurrent(root, vid("a", 1))
    assert not g.concurrent(vid("a", 1), vid("a", 1))


def test_unknown_views_are_concurrent():
    g = ViewGenealogy()
    assert g.concurrent(vid("x", 1), vid("y", 1))


def test_ancestors_of_collects_full_history():
    g = ViewGenealogy()
    chain(g, vid("p", 1), vid("p", 2), vid("p", 3))
    assert g.ancestors_of(vid("p", 3)) == {vid("p", 1), vid("p", 2)}


def test_record_accumulates_parents():
    g = ViewGenealogy()
    g.record(vid("c", 1), [vid("a", 1)])
    g.record(vid("c", 1), [vid("b", 1)])
    assert set(g.parents_of(vid("c", 1))) == {vid("a", 1), vid("b", 1)}


def test_merge_from_absorbs_other_genealogy():
    g1, g2 = ViewGenealogy(), ViewGenealogy()
    chain(g1, vid("p", 1), vid("p", 2))
    chain(g2, vid("q", 1), vid("q", 2))
    g1.merge_from(g2)
    assert g1.is_ancestor(vid("q", 1), vid("q", 2))
    assert g1.is_ancestor(vid("p", 1), vid("p", 2))


def test_known_views_includes_parents_and_children():
    g = ViewGenealogy()
    g.record(vid("c", 1), [vid("a", 1)])
    assert g.known_views() == {vid("c", 1), vid("a", 1)}


def test_record_view_uses_view_parents():
    g = ViewGenealogy()
    view = View("g", vid("n", 2), ("x",), parents=(vid("n", 1),))
    g.record_view(view)
    assert g.is_ancestor(vid("n", 1), vid("n", 2))
