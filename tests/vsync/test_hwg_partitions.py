"""Partition behaviour of the HWG substrate: splits, merges, crashes."""

from tests.helpers import RecordingListener, converged, make_group, run_until

from repro.sim import SECOND


def split(env, endpoints, listeners, sides):
    """Partition and wait until each side has its own full view."""
    env.network.set_partitions(sides)
    by_node = {e.node: e for e in endpoints}
    for side in sides:
        eps = [by_node[n] for n in side if n in by_node]
        assert run_until(env, lambda eps=eps, k=len(eps): converged(eps, k), timeout_s=15)


def test_partition_forms_concurrent_views(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    split(env, endpoints, listeners, [["p0", "p1"], ["p2", "p3"]])
    left = endpoints[0].current_view
    right = endpoints[2].current_view
    assert left.view_id != right.view_id
    assert set(left.members) == {"p0", "p1"}
    assert set(right.members) == {"p2", "p3"}


def test_both_sides_keep_delivering_during_partition(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    split(env, endpoints, listeners, [["p0", "p1"], ["p2", "p3"]])
    endpoints[0].send("left")
    endpoints[3].send("right")
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert ("p0", "left") in listeners[1].data
    assert ("p3", "right") in listeners[2].data
    assert ("p0", "left") not in listeners[2].data


def test_heal_merges_views_with_genealogy(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    split(env, endpoints, listeners, [["p0", "p1"], ["p2", "p3"]])
    left_id = endpoints[0].current_view.view_id
    right_id = endpoints[2].current_view.view_id
    env.network.heal()
    assert run_until(env, lambda: converged(endpoints, 4), timeout_s=20)
    merged = endpoints[0].current_view
    assert left_id in merged.parents
    assert right_id in merged.parents


def test_merged_view_has_union_membership(env):
    stacks, endpoints, listeners = make_group(env, 5)
    assert run_until(env, lambda: converged(endpoints, 5), timeout_s=15)
    split(env, endpoints, listeners, [["p0", "p1", "p2"], ["p3", "p4"]])
    env.network.heal()
    assert run_until(env, lambda: converged(endpoints, 5), timeout_s=25)
    assert set(endpoints[0].current_view.members) == {"p0", "p1", "p2", "p3", "p4"}


def test_three_way_partition_and_heal(env):
    stacks, endpoints, listeners = make_group(env, 6)
    assert run_until(env, lambda: converged(endpoints, 6), timeout_s=15)
    split(
        env, endpoints, listeners,
        [["p0", "p1"], ["p2", "p3"], ["p4", "p5"]],
    )
    ids = {e.current_view.view_id for e in endpoints}
    assert len(ids) == 3
    env.network.heal()
    assert run_until(env, lambda: converged(endpoints, 6), timeout_s=40)


def test_coordinator_crash_promotes_next_member(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    coordinator = endpoints[0].current_view.coordinator
    index = int(coordinator[1:])
    env.failures.crash_now(coordinator)
    survivors = [e for e in endpoints if e.node != coordinator]
    assert run_until(env, lambda: converged(survivors, 3), timeout_s=15)
    assert coordinator not in survivors[0].current_view.members


def test_member_crash_shrinks_view(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    victim = endpoints[0].current_view.members[-1]  # most junior member
    env.failures.crash_now(victim)
    survivors = [e for e in endpoints if e.node != victim]
    assert run_until(env, lambda: converged(survivors, 3), timeout_s=15)


def test_messages_in_flight_at_partition_do_not_split_brains(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    endpoints[0].send("last-gasp")
    env.network.set_partitions([["p0", "p1"], ["p2", "p3"]])
    assert run_until(env, lambda: converged(endpoints[:2], 2), timeout_s=15)
    assert run_until(env, lambda: converged(endpoints[2:], 2), timeout_s=15)
    # Within each surviving branch, delivery is consistent.
    assert listeners[0].data == listeners[1].data
    assert listeners[2].data == listeners[3].data


def test_repeated_split_heal_cycles(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    for _ in range(3):
        split(env, endpoints, listeners, [["p0", "p1"], ["p2", "p3"]])
        env.network.heal()
        assert run_until(env, lambda: converged(endpoints, 4), timeout_s=30)


def test_virtual_partition_short_lived(env):
    """A partition that heals before suspicion must cause no view change."""
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    stable_view = endpoints[0].current_view.view_id
    env.network.set_partitions([["p0", "p1"], ["p2", "p3"]])
    env.sim.run_until(env.sim.now + 100_000)  # well under the FD timeout
    env.network.heal()
    env.sim.run_until(env.sim.now + 2 * SECOND)
    assert all(e.current_view.view_id == stable_view for e in endpoints)


def test_crash_during_partition_then_heal(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    env.network.set_partitions([["p0", "p1"], ["p2", "p3"]])
    assert run_until(env, lambda: converged(endpoints[:2], 2), timeout_s=15)
    env.failures.crash_now("p3")
    assert run_until(env, lambda: converged(endpoints[2:3], 1), timeout_s=15)
    env.network.heal()
    survivors = endpoints[:3]
    assert run_until(env, lambda: converged(survivors, 3), timeout_s=30)
