"""Unit tests for the coordinator-sequencer ordered channel.

These drive :class:`OrderedChannel` directly through a fake host, so
ordering, dedup-floor and flush-support logic are tested without the
membership machinery.
"""

import pytest

from repro.sim import SimEnv
from repro.vsync.messages import Nack, Ordered, Publish
from repro.vsync.total_order import OrderedChannel
from repro.vsync.view import View, ViewId


class FakeHost:
    """Collects the channel's outputs instead of using a network."""

    def __init__(self, env, node, group="g"):
        self.env = env
        self.node = node
        self.group = group
        self.multicasts = []
        self.reliable = []
        self.delivered = []

    def multicast_view(self, msg, size):
        self.multicasts.append(msg)

    def reliable_send(self, dst, msg):
        self.reliable.append((dst, msg))

    def deliver_data(self, sender, payload, size):
        self.delivered.append((sender, payload))


@pytest.fixture
def seq_host(env):
    """A channel whose host is the view coordinator (sequencer)."""
    host = FakeHost(env, "p0")
    channel = OrderedChannel(host)
    view = View("g", ViewId("p0", 1), ("p0", "p1"))
    channel.install_view(view, {})
    return host, channel, view


def feed_own_multicasts(channel, host):
    """Loop the sequencer's multicasts back into the channel."""
    while host.multicasts:
        channel.on_ordered(host.multicasts.pop(0))


def test_sequencer_orders_and_multicasts(seq_host):
    host, channel, _ = seq_host
    channel.send("m1", 10)
    channel.send("m2", 10)
    assert [m.seq for m in host.multicasts] == [0, 1]
    assert [m.payload for m in host.multicasts] == ["m1", "m2"]


def test_non_coordinator_publishes_to_sequencer(env):
    host = FakeHost(env, "p1")
    channel = OrderedChannel(host)
    channel.install_view(View("g", ViewId("p0", 1), ("p0", "p1")), {})
    channel.send("m", 10)
    assert len(host.reliable) == 1
    dst, msg = host.reliable[0]
    assert dst == "p0" and isinstance(msg, Publish)


def test_delivery_in_sequence_order(seq_host):
    host, channel, view = seq_host
    channel.send("a", 1)
    channel.send("b", 1)
    # Deliver out of order: the channel must reorder.
    second, first = host.multicasts[1], host.multicasts[0]
    channel.on_ordered(second)
    assert host.delivered == []
    channel.on_ordered(first)
    assert [p for _, p in host.delivered] == ["a", "b"]


def test_duplicate_ordered_ignored(seq_host):
    host, channel, _ = seq_host
    channel.send("a", 1)
    msg = host.multicasts[0]
    channel.on_ordered(msg)
    channel.on_ordered(msg)
    assert len(host.delivered) == 1


def test_gap_triggers_nack_after_delay(seq_host):
    host, channel, view = seq_host
    channel.send("a", 1)
    channel.send("b", 1)
    channel.on_ordered(host.multicasts[1])  # only seq 1; gap at 0
    host.env.sim.run_until(100_000)
    nacks = [m for _, m in host.reliable if isinstance(m, Nack)]
    assert nacks and nacks[0].from_seq == 0


def test_sequencer_retransmits_on_nack(seq_host):
    host, channel, view = seq_host
    channel.send("a", 1)
    feed_own_multicasts(channel, host)
    nack = Nack(group="g", view_id=view.view_id, from_seq=0, to_seq=0, requester="p1")
    channel.on_nack(nack)
    assert any(
        dst == "p1" and isinstance(m, Ordered) and m.seq == 0
        for dst, m in host.reliable
    )


def test_publish_dedup_within_view(seq_host):
    host, channel, view = seq_host
    publish = Publish(group="g", view_id=view.view_id, sender="p1", sender_seq=1, payload="x")
    channel.on_publish("p1", publish)
    channel.on_publish("p1", publish)
    assert len(host.multicasts) == 1


def test_stale_view_publish_ignored(seq_host):
    host, channel, _ = seq_host
    stale = Publish(group="g", view_id=ViewId("old", 9), sender="p1", sender_seq=1, payload="x")
    channel.on_publish("p1", stale)
    assert host.multicasts == []


def test_frozen_channel_queues_sends(seq_host):
    host, channel, view = seq_host
    channel.freeze()
    channel.send("queued", 1)
    assert host.multicasts == []
    # New view: pending messages are re-published.
    new_view = View("g", ViewId("p0", 2), ("p0", "p1"), parents=(view.view_id,))
    channel.install_view(new_view, {})
    assert [m.payload for m in host.multicasts] == ["queued"]


def test_dedup_floor_from_install_suppresses_republish(seq_host):
    host, channel, view = seq_host
    channel.freeze()
    channel.send("dup", 1)
    # The flush reveals this message was already delivered elsewhere.
    new_view = View("g", ViewId("p0", 2), ("p0", "p1"), parents=(view.view_id,))
    channel.install_view(new_view, {"p0": channel.my_send_seq})
    assert host.multicasts == []


def test_own_delivery_clears_pending(seq_host):
    host, channel, _ = seq_host
    channel.send("a", 1)
    assert channel.pending
    feed_own_multicasts(channel, host)
    assert not channel.pending


def test_floor_prevents_cross_view_duplicate_delivery(seq_host):
    host, channel, view = seq_host
    channel.send("a", 1)
    feed_own_multicasts(channel, host)
    assert len(host.delivered) == 1
    # A new view carries our floor; a replayed Ordered must not deliver.
    floor = channel.floor_snapshot()
    new_view = View("g", ViewId("p0", 2), ("p0", "p1"), parents=(view.view_id,))
    channel.install_view(new_view, floor)
    replay = Publish(group="g", view_id=new_view.view_id, sender="p0", sender_seq=1, payload="a")
    channel.on_publish("p0", replay)
    assert host.multicasts == []


# ----------------------------------------------------------------------
# Flush support
# ----------------------------------------------------------------------
def test_have_upto_reflects_contiguous_prefix(seq_host):
    host, channel, _ = seq_host
    channel.send("a", 1)
    channel.send("b", 1)
    channel.on_ordered(host.multicasts[0])
    assert channel.have_upto() == 0
    channel.on_ordered(host.multicasts[1])
    assert channel.have_upto() == 1


def test_messages_above_returns_copies(seq_host):
    host, channel, _ = seq_host
    for payload in ("a", "b", "c"):
        channel.send(payload, 1)
    for msg in host.multicasts:
        channel.on_ordered(msg)
    above = channel.messages_above(0)
    assert sorted(above) == [1, 2]


def test_apply_fill_delivers_to_cut_and_drops_beyond(seq_host):
    host, channel, _ = seq_host
    for payload in ("a", "b", "c"):
        channel.send(payload, 1)
    messages = list(host.multicasts)
    channel.on_ordered(messages[0])      # delivered: a
    channel.on_ordered(messages[2])      # held out of order: c
    channel.apply_fill(cut=1, missing={1: messages[1]})
    assert [p for _, p in host.delivered] == ["a", "b"]
    assert 2 not in channel.log  # beyond the cut: dropped (will re-publish)


def test_apply_fill_raises_if_cut_unreachable(seq_host):
    host, channel, _ = seq_host
    channel.send("a", 1)
    with pytest.raises(RuntimeError):
        channel.apply_fill(cut=5, missing={})
