"""Integration tests for HWG endpoints on a live simulated network."""

from tests.helpers import RecordingListener, converged, make_group, run_until

from repro.sim import SECOND, SimEnv
from repro.vsync import EndpointState, GroupAddressing, ProtocolStack


def test_single_join_founds_singleton_view(env):
    stacks, endpoints, listeners = make_group(env, 1)
    env.sim.run_until(1 * SECOND)
    view = endpoints[0].current_view
    assert view is not None
    assert view.members == ("p0",)
    assert view.parents == ()
    assert listeners[0].views[0] is view


def test_two_joiners_converge(env):
    stacks, endpoints, _ = make_group(env, 2)
    assert run_until(env, lambda: converged(endpoints, 2))


def test_five_joiners_converge(env):
    stacks, endpoints, _ = make_group(env, 5)
    assert run_until(env, lambda: converged(endpoints, 5), timeout_s=15)


def test_staggered_join(env):
    stacks, endpoints, _ = make_group(env, 2)
    assert run_until(env, lambda: converged(endpoints, 2))
    late_stack = ProtocolStack(env, "late", stacks[0].addressing)
    late_listener = RecordingListener("late")
    late = late_stack.endpoint("g", late_listener)
    late.join()
    assert run_until(env, lambda: converged(endpoints + [late], 3))
    # Existing members observed the join as a view change, not a reset.
    assert endpoints[0].current_view.parents != ()


def test_all_members_deliver_same_ordered_sequence(env):
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    endpoints[0].send("a")
    endpoints[1].send("b")
    endpoints[2].send("c")
    env.sim.run_until(env.sim.now + 2 * SECOND)
    sequences = [tuple(l.data) for l in listeners]
    assert all(len(s) == 3 for s in sequences)
    assert len(set(sequences)) == 1  # identical order everywhere


def test_sender_receives_own_messages(env):
    stacks, endpoints, listeners = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    endpoints[0].send("self-delivery")
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert ("p0", "self-delivery") in listeners[0].data


def test_send_before_join_completes_is_buffered(env):
    """Sends while joining are queued and delivered in the first view.

    The first view may predate other joiners (virtual synchrony: a
    message belongs to the view it is sent in), so the guarantee is
    delivery at the sender's own first view membership — not at members
    that only arrive later.
    """
    stacks, endpoints, listeners = make_group(env, 2)
    endpoints[0].send("early")  # both still joining
    assert run_until(env, lambda: converged(endpoints, 2))
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert ("p0", "early") in listeners[0].data


def test_send_while_idle_raises(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    endpoint = stack.endpoint("g")
    try:
        endpoint.send("x")
        raised = False
    except RuntimeError:
        raised = True
    assert raised


def test_leave_shrinks_view(env):
    stacks, endpoints, listeners = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    endpoints[2].leave()
    assert run_until(env, lambda: converged(endpoints[:2], 2))
    assert run_until(env, lambda: listeners[2].lefts == 1)
    assert endpoints[2].state is EndpointState.IDLE
    assert "p2" not in endpoints[0].current_view.members


def test_coordinator_leave_hands_over(env):
    stacks, endpoints, listeners = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    coordinator = endpoints[0].current_view.coordinator
    index = int(coordinator[1:])
    endpoints[index].leave()
    survivors = [e for i, e in enumerate(endpoints) if i != index]
    assert run_until(env, lambda: converged(survivors, 2))
    assert survivors[0].current_view.coordinator != coordinator


def test_last_member_leave_dissolves_group(env):
    stacks, endpoints, listeners = make_group(env, 1)
    env.sim.run_until(1 * SECOND)
    endpoints[0].leave()
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert endpoints[0].state is EndpointState.IDLE
    assert listeners[0].lefts == 1


def test_stop_upcall_raised_during_view_change(env):
    stacks, endpoints, listeners = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    stops_before = listeners[0].stops
    late_stack = ProtocolStack(env, "late", stacks[0].addressing)
    late = late_stack.endpoint("g", RecordingListener("late"))
    late.join()
    assert run_until(env, lambda: converged(endpoints + [late], 4))
    assert listeners[0].stops > stops_before


def test_rejoin_after_leave(env):
    stacks, endpoints, listeners = make_group(env, 2)
    assert run_until(env, lambda: converged(endpoints, 2))
    endpoints[1].leave()
    assert run_until(env, lambda: listeners[1].lefts == 1)
    endpoints[1].join()
    assert run_until(env, lambda: converged(endpoints, 2))


def test_force_refresh_installs_identity_view(env):
    stacks, endpoints, _ = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    old = endpoints[0].current_view
    coord = old.coordinator
    ep = next(e for e in endpoints if e.node == coord)
    ep.force_refresh()
    assert run_until(
        env,
        lambda: all(
            e.current_view is not None and e.current_view.view_id != old.view_id
            for e in endpoints
        ),
    )
    new = endpoints[0].current_view
    assert set(new.members) == set(old.members)
    assert old.view_id in new.parents


def test_views_installed_counter(env):
    stacks, endpoints, _ = make_group(env, 2)
    assert run_until(env, lambda: converged(endpoints, 2))
    assert endpoints[0].views_installed >= 1
