"""The Table-1 interface contract: Join, Leave, Send, View, Data, Stop, StopOk."""

from tests.helpers import converged, make_group, run_until

from repro.sim import SECOND
from repro.vsync import EndpointState, GroupAddressing, HwgListener, ProtocolStack


class ManualStopListener(HwgListener):
    """A listener that defers StopOk until told (exercises the handshake)."""

    def __init__(self):
        self.pending_stop_ok = []
        self.views = []
        self.data = []

    def on_view(self, group, view):
        self.views.append(view)

    def on_data(self, group, src, payload, size):
        self.data.append(payload)

    def on_stop(self, group, stop_ok):
        self.pending_stop_ok.append(stop_ok)

    @staticmethod
    def auto() -> HwgListener:
        """A listener with the default (auto-acknowledging) Stop handling."""
        return HwgListener()


def test_join_is_a_downcall_with_async_view_upcall(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    listener = ManualStopListener()
    endpoint = stack.endpoint("g", listener)
    endpoint.join()
    assert listener.views == []  # nothing synchronous
    env.sim.run_until(1 * SECOND)
    assert len(listener.views) == 1


def test_join_is_idempotent(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    endpoint = stack.endpoint("g")
    endpoint.join()
    endpoint.join()
    env.sim.run_until(1 * SECOND)
    assert endpoint.state is EndpointState.MEMBER


def test_stop_blocks_view_change_until_stop_ok(env):
    stacks, endpoints, _ = make_group(env, 2)
    assert run_until(env, lambda: converged(endpoints, 2))
    manual = ManualStopListener()
    endpoints[1].listener = manual
    view_before = endpoints[0].current_view.view_id
    # A third process joins, forcing a view change (and thus a flush).
    late_stack = ProtocolStack(env, "late", stacks[0].addressing)
    late = late_stack.endpoint("g")
    late.join()
    # Hold StopOk briefly (shorter than the flush-stall exclusion window).
    env.sim.run_until(env.sim.now + 300_000)
    assert manual.pending_stop_ok
    assert endpoints[0].current_view.view_id == view_before  # change held back
    while manual.pending_stop_ok:
        manual.pending_stop_ok.pop()()  # StopOk downcall
    endpoints[1].listener = ManualStopListener.auto()
    assert run_until(env, lambda: converged(endpoints + [late], 3), timeout_s=15)


def test_member_that_never_stop_oks_is_excluded_then_reunited(env):
    """A wedged member is dropped from the flush; once it acknowledges,
    abandonment detection secedes it and the merge path reunites it."""
    stacks, endpoints, _ = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))
    manual = ManualStopListener()
    endpoints[2].listener = manual
    late_stack = ProtocolStack(env, "late", stacks[0].addressing)
    late = late_stack.endpoint("g")
    late.join()
    # p2 never answers: the others move on without it.
    others = [endpoints[0], endpoints[1], late]
    assert run_until(env, lambda: converged(others, 3), timeout_s=15)
    assert "p2" not in others[0].current_view.members
    # p2 finally wakes up; it secedes and the views re-merge.
    while manual.pending_stop_ok:
        manual.pending_stop_ok.pop()()
    endpoints[2].listener = ManualStopListener.auto()
    assert run_until(env, lambda: converged(endpoints + [late], 4), timeout_s=30)


def test_default_listener_auto_acknowledges_stop(env):
    stacks, endpoints, _ = make_group(env, 3)
    assert run_until(env, lambda: converged(endpoints, 3))


def test_leave_while_not_member_is_noop(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    endpoint = stack.endpoint("g")
    endpoint.leave()  # never joined
    assert endpoint.state is EndpointState.IDLE


def test_data_upcall_carries_source_and_payload(env):
    stacks, endpoints, listeners = make_group(env, 2)
    assert run_until(env, lambda: converged(endpoints, 2))
    endpoints[1].send({"k": 1}, size=64)
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert ("p1", {"k": 1}) in listeners[0].data
