"""Unit tests for the flush engine, driven through a fake host."""

import pytest

from repro.sim import SimEnv
from repro.vsync.flush import BranchFlushLeader, FlushParticipant
from repro.vsync.messages import FlushDone, FlushFill, FlushState, Ordered, Stop
from repro.vsync.total_order import OrderedChannel
from repro.vsync.view import View, ViewId


class FakeHost:
    """Host stub wiring a real OrderedChannel to captured sends."""

    def __init__(self, env, node, view):
        self.env = env
        self.node = node
        self.group = "g"
        self.current_view = view
        self.reliable = []
        self.multicasts = []
        self.delivered = []
        self.local_stops = []
        self.local_fills = []
        self.local_states = []
        self.local_dones = []
        self.stop_raised = 0
        self.active_leader = None  # set when this host leads a flush
        self.channel = OrderedChannel(self)
        self.channel.install_view(view, {})
        self.participant = FlushParticipant(self)

    # messaging
    def reliable_send(self, dst, msg):
        self.reliable.append((dst, msg))

    def multicast_view(self, msg, size):
        self.multicasts.append(msg)

    def deliver_data(self, sender, payload, size):
        self.delivered.append((sender, payload))

    # leader-local routing
    def handle_stop_locally(self, stop):
        self.local_stops.append(stop)
        self.participant.on_stop(stop)

    def handle_fill_locally(self, fill):
        self.local_fills.append(fill)
        self.participant.on_fill(fill)

    def route_flush_state_locally(self, state):
        self.local_states.append(state)
        if self.active_leader is not None:
            self.active_leader.on_flush_state(state)

    def route_flush_done_locally(self, done):
        self.local_dones.append(done)
        if self.active_leader is not None:
            self.active_leader.on_flush_done(done)

    def raise_stop(self):
        self.stop_raised += 1
        self.participant.stop_acknowledged()


def make_view(*members):
    return View("g", ViewId(members[0], 1), tuple(members))


def ordered(view, seq, payload="x"):
    return Ordered(group="g", view_id=view.view_id, seq=seq, sender="p0",
                   sender_seq=seq + 1, payload=payload, payload_size=8)


def test_leader_stop_goes_to_all_participants(env):
    view = make_view("p0", "p1", "p2")
    host = FakeHost(env, "p0", view)
    leader = BranchFlushLeader(
        host, view, round_no=1, participants={"p0", "p1", "p2"},
        on_complete=lambda s, d: None, on_stall=lambda m: None,
    )
    host.active_leader = leader
    leader.start()
    remote_stops = [d for d, m in host.reliable if isinstance(m, Stop)]
    assert sorted(remote_stops) == ["p1", "p2"]
    assert len(host.local_stops) == 1  # self handled locally
    assert host.stop_raised == 1


def test_leader_requires_self_participation(env):
    view = make_view("p0", "p1")
    host = FakeHost(env, "p0", view)
    with pytest.raises(ValueError):
        BranchFlushLeader(
            host, view, 1, {"p1"},
            on_complete=lambda s, d: None, on_stall=lambda m: None,
        )


def test_cut_is_union_coverage(env):
    """Leader holds 0..1; p1 holds 0..3: the cut must be 3 with fills."""
    view = make_view("p0", "p1")
    host = FakeHost(env, "p0", view)
    # Leader delivered 0..1.
    host.channel.on_ordered(ordered(view, 0))
    host.channel.on_ordered(ordered(view, 1))
    done = []
    leader = BranchFlushLeader(
        host, view, 1, {"p0", "p1"},
        on_complete=lambda s, d: done.append(s), on_stall=lambda m: None,
    )
    host.active_leader = leader
    leader.start()
    # p1 reports messages 2..3 beyond the leader's prefix.
    state = FlushState(
        group="g", view_id=view.view_id, round_no=1, member="p1",
        have_upto=3, extra={2: ordered(view, 2), 3: ordered(view, 3)},
    )
    leader.on_flush_state(state)
    assert leader.cut == 3
    # The leader filled itself and delivered to the cut.
    assert host.channel.delivered_upto == 3
    # p1 needs nothing (it already holds everything): its fill is empty.
    fills = [(d, m) for d, m in host.reliable if isinstance(m, FlushFill)]
    assert fills and fills[0][0] == "p1" and fills[0][1].missing == {}
    # Completion after both dones.
    leader.on_flush_done(FlushDone(group="g", view_id=view.view_id, round_no=1, member="p1"))
    assert done and set(done[0]) == {"p0", "p1"}


def test_stale_round_messages_ignored(env):
    view = make_view("p0", "p1")
    host = FakeHost(env, "p0", view)
    leader = BranchFlushLeader(
        host, view, 5, {"p0", "p1"},
        on_complete=lambda s, d: None, on_stall=lambda m: None,
    )
    host.active_leader = leader
    leader.start()
    stale = FlushState(group="g", view_id=view.view_id, round_no=4, member="p1", have_upto=-1)
    leader.on_flush_state(stale)
    assert leader.cut is None  # not counted


def test_stall_reports_missing_members(env):
    view = make_view("p0", "p1", "p2")
    host = FakeHost(env, "p0", view)
    stalled = []
    leader = BranchFlushLeader(
        host, view, 1, {"p0", "p1", "p2"},
        on_complete=lambda s, d: None, on_stall=lambda m: stalled.append(m),
    )
    host.active_leader = leader
    leader.start()
    env.sim.run_until(env.sim.now + 1_000_000)
    assert stalled and stalled[0] == {"p1", "p2"}


def test_abort_stops_reactions(env):
    view = make_view("p0", "p1")
    host = FakeHost(env, "p0", view)
    completed = []
    leader = BranchFlushLeader(
        host, view, 1, {"p0", "p1"},
        on_complete=lambda s, d: completed.append(True), on_stall=lambda m: None,
    )
    host.active_leader = leader
    leader.start()
    leader.abort()
    state = FlushState(group="g", view_id=view.view_id, round_no=1, member="p1", have_upto=-1)
    leader.on_flush_state(state)
    assert leader.cut is None
    assert not completed


def test_participant_round_precedence(env):
    """A higher round supersedes; an equal round from a junior leader not."""
    view = make_view("p0", "p1", "p2")
    host = FakeHost(env, "p1", view)
    stop_a = Stop(group="g", view_id=view.view_id, round_no=1, leader="p2")
    host.participant.on_stop(stop_a)
    assert host.participant.leader == "p2"
    # Same round from the more senior p0 takes over.
    stop_b = Stop(group="g", view_id=view.view_id, round_no=1, leader="p0")
    host.participant.on_stop(stop_b)
    assert host.participant.leader == "p0"
    # Same round from the junior p2 again is ignored.
    host.participant.on_stop(stop_a)
    assert host.participant.leader == "p0"
    # A higher round from anyone wins.
    stop_c = Stop(group="g", view_id=view.view_id, round_no=2, leader="p2")
    host.participant.on_stop(stop_c)
    assert host.participant.leader == "p2"


def test_participant_restarted_round_resends_state_without_new_stop_upcall(env):
    view = make_view("p0", "p1")
    host = FakeHost(env, "p1", view)
    host.participant.on_stop(Stop(group="g", view_id=view.view_id, round_no=1, leader="p0"))
    assert host.stop_raised == 1
    states = [m for d, m in host.reliable if isinstance(m, FlushState)]
    assert len(states) == 1
    host.participant.on_stop(Stop(group="g", view_id=view.view_id, round_no=2, leader="p0"))
    assert host.stop_raised == 1  # the user already acknowledged
    states = [m for d, m in host.reliable if isinstance(m, FlushState)]
    assert len(states) == 2


def test_participant_ignores_foreign_view(env):
    view = make_view("p0", "p1")
    host = FakeHost(env, "p1", view)
    foreign = Stop(group="g", view_id=ViewId("zz", 9), round_no=1, leader="p0")
    host.participant.on_stop(foreign)
    assert host.participant.leader is None
