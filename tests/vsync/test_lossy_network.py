"""Full-stack behaviour over a lossy network.

The default scenarios run loss-free (partitions and crashes are the
paper's failure model), but every protocol must survive message loss:
NACK-driven gap repair on the ordered channel, retransmission on the
control plane, retried rounds in membership.
"""

import pytest

from tests.helpers import RecordingListener, converged, run_until

from repro.sim import LinkModel, SECOND, SimEnv
from repro.vsync import GroupAddressing, ProtocolStack


def lossy_group(n, loss, seed=7):
    env = SimEnv.create(seed=seed, link=LinkModel(loss_probability=loss, jitter_us=100))
    addressing = GroupAddressing()
    stacks = [ProtocolStack(env, f"p{i}", addressing) for i in range(n)]
    listeners = [RecordingListener(s.node) for s in stacks]
    endpoints = [s.endpoint("g", listeners[i]) for i, s in enumerate(stacks)]
    for endpoint in endpoints:
        endpoint.join()
    return env, stacks, endpoints, listeners


@pytest.mark.parametrize("loss", [0.05, 0.15])
def test_group_converges_under_loss(loss):
    env, stacks, endpoints, _ = lossy_group(3, loss)
    assert run_until(env, lambda: converged(endpoints, 3), timeout_s=30)


def test_ordered_delivery_complete_under_loss():
    env, stacks, endpoints, listeners = lossy_group(3, 0.10)
    assert run_until(env, lambda: converged(endpoints, 3), timeout_s=30)
    for i in range(30):
        endpoints[i % 3].send(("m", i), size=64)
    assert run_until(
        env,
        lambda: all(len(l.data) == 30 for l in listeners),
        timeout_s=60,
    ), [len(l.data) for l in listeners]
    # Identical order everywhere, no duplicates.
    sequences = {tuple(l.data) for l in listeners}
    assert len(sequences) == 1
    only = next(iter(sequences))
    assert len(set(only)) == 30


def test_view_change_completes_under_loss():
    env, stacks, endpoints, listeners = lossy_group(3, 0.10)
    assert run_until(env, lambda: converged(endpoints, 3), timeout_s=30)
    endpoints[2].leave()
    assert run_until(env, lambda: converged(endpoints[:2], 2), timeout_s=40)


def test_no_spurious_view_changes_under_mild_loss():
    """5% loss must not fool the failure detector into suspicions."""
    env, stacks, endpoints, _ = lossy_group(4, 0.05, seed=9)
    assert run_until(env, lambda: converged(endpoints, 4), timeout_s=30)
    stable = endpoints[0].current_view.view_id
    env.sim.run_until(env.sim.now + 10 * SECOND)
    assert all(e.current_view.view_id == stable for e in endpoints)
