"""Tests for the group-address registry."""

from repro.vsync import GroupAddressing


def test_subscribe_and_query():
    addressing = GroupAddressing()
    addressing.subscribe("g", "a")
    addressing.subscribe("g", "b")
    assert addressing.subscribers("g") == {"a", "b"}


def test_unsubscribe():
    addressing = GroupAddressing()
    addressing.subscribe("g", "a")
    addressing.unsubscribe("g", "a")
    assert addressing.subscribers("g") == set()


def test_unsubscribe_unknown_is_noop():
    addressing = GroupAddressing()
    addressing.unsubscribe("g", "ghost")


def test_unsubscribe_all():
    addressing = GroupAddressing()
    addressing.subscribe("g1", "a")
    addressing.subscribe("g2", "a")
    addressing.subscribe("g2", "b")
    addressing.unsubscribe_all("a")
    assert addressing.subscribers("g1") == set()
    assert addressing.subscribers("g2") == {"b"}


def test_groups_of():
    addressing = GroupAddressing()
    addressing.subscribe("g1", "a")
    addressing.subscribe("g2", "a")
    assert addressing.groups_of("a") == {"g1", "g2"}


def test_subscribers_returns_copy():
    addressing = GroupAddressing()
    addressing.subscribe("g", "a")
    copy = addressing.subscribers("g")
    copy.add("evil")
    assert addressing.subscribers("g") == {"a"}
