"""Extended-virtual-synchrony semantics: what partitions may do to messages.

These tests document (and pin down) the *allowed* weaker behaviours of a
partitionable group layer — the cases where classic virtual synchrony
cannot hold and extended VS defines what happens instead.
"""

from tests.helpers import RecordingListener, converged, make_group, run_until

from repro.sim import SECOND


def test_message_may_deliver_on_one_side_only(env):
    """A message racing a partition may reach only the sequencer's side —
    but each side's members agree among themselves."""
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    sequencer = endpoints[0].current_view.coordinator
    sequencer_side = ["p0", "p1"] if sequencer in ("p0", "p1") else ["p2", "p3"]
    other_side = [n for n in ("p0", "p1", "p2", "p3") if n not in sequencer_side]
    # Send from the sequencer side and partition immediately.
    sender = next(e for e in endpoints if e.node == sequencer)
    sender.send("racer")
    env.network.set_partitions([sequencer_side, other_side])
    assert run_until(
        env,
        lambda: converged([e for e in endpoints if e.node in sequencer_side], 2)
        and converged([e for e in endpoints if e.node in other_side], 2),
        timeout_s=20,
    )
    env.sim.run_until(env.sim.now + 2 * SECOND)
    by_node = {l.node: [p for _, p in l.data] for l in listeners}
    for side in (sequencer_side, other_side):
        # Intra-side agreement is mandatory.
        assert by_node[side[0]] == by_node[side[1]], side
    # The sequencer side definitely has it; the other side may not.
    assert "racer" in by_node[sequencer_side[0]]


def test_no_duplicates_across_heal(env):
    """Whatever a partition did, a heal never duplicates deliveries."""
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    for i in range(5):
        endpoints[i % 4].send(("pre", i))
    env.network.set_partitions([["p0", "p1"], ["p2", "p3"]])
    env.sim.run_until(env.sim.now + 1 * SECOND)
    endpoints[0].send(("left", 0))
    endpoints[2].send(("right", 0))
    assert run_until(env, lambda: converged(endpoints[:2], 2), timeout_s=20)
    assert run_until(env, lambda: converged(endpoints[2:], 2), timeout_s=20)
    env.network.heal()
    assert run_until(env, lambda: converged(endpoints, 4), timeout_s=30)
    for i in range(5):
        endpoints[i % 4].send(("post", i))
    env.sim.run_until(env.sim.now + 3 * SECOND)
    for listener in listeners:
        payloads = [p for _, p in listener.data]
        assert len(payloads) == len(set(payloads)), (
            f"duplicates at {listener.node}: {payloads}"
        )
        # Everyone got the 5 post-heal messages.
        assert sum(1 for p in payloads if p[0] == "post") == 5


def test_sender_pending_resend_after_heal(env):
    """A message frozen out by a partition-era view change is re-published
    in the sender's next view rather than lost (as long as the sender
    survives in that lineage)."""
    stacks, endpoints, listeners = make_group(env, 4)
    assert run_until(env, lambda: converged(endpoints, 4))
    # Cut p3 off alone; the survivors reconfigure.
    env.network.set_partitions([["p0", "p1", "p2"], ["p3"]])
    assert run_until(env, lambda: converged(endpoints[:3], 3), timeout_s=20)
    # p0 sends in the 3-member view; p3 obviously misses it.
    endpoints[0].send("survivor-news")
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert ("p0", "survivor-news") in listeners[1].data
    assert ("p0", "survivor-news") not in listeners[3].data
    env.network.heal()
    assert run_until(env, lambda: converged(endpoints, 4), timeout_s=30)
    # Post-heal messages reach everyone, including p3.
    endpoints[0].send("after-heal")
    env.sim.run_until(env.sim.now + 2 * SECOND)
    assert ("p0", "after-heal") in listeners[3].data
