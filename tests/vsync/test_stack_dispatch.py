"""Tests for the protocol stack's message dispatch and handler registry."""

from tests.helpers import RecordingListener, converged, make_group, run_until

from repro.sim import SECOND
from repro.vsync import GroupAddressing, ProtocolStack
from repro.vsync.messages import Ordered, VsyncMessage
from repro.vsync.view import ViewId


def test_extra_handler_consumes_before_vsync(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    seen = []

    def handler(src, msg):
        if msg == "custom":
            seen.append((src, msg))
            return True
        return False

    stack.register_handler(handler)
    other = ProtocolStack(env, "p1", addressing)
    other.send("p0", "custom")
    env.sim.run_until(10_000)
    assert seen == [("p1", "custom")]


def test_unconsumed_non_vsync_payloads_are_dropped(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    other = ProtocolStack(env, "p1", addressing)
    other.send("p0", {"random": "dict"})
    env.sim.run_until(10_000)  # no exception: silently ignored


def test_message_for_unknown_group_is_ignored(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    other = ProtocolStack(env, "p1", addressing)
    stray = Ordered(group="ghost", view_id=ViewId("x", 1), seq=0, sender="p1")
    other.send("p0", stray)
    env.sim.run_until(10_000)  # dropped without error


def test_any_traffic_feeds_the_failure_detector(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    other = ProtocolStack(env, "p1", addressing)
    stack.fd.monitor("p1")
    # Starve heartbeats by cutting p1's timers: simply never run long
    # enough for HB, but send an unrelated message.
    other.send("p0", {"noise": True})
    env.sim.run_until(10_000)
    assert not stack.fd.is_suspected("p1")


def test_two_groups_on_one_stack_are_independent(env):
    addressing = GroupAddressing()
    stacks = [ProtocolStack(env, f"p{i}", addressing) for i in range(2)]
    listeners_a = [RecordingListener(s.node) for s in stacks]
    listeners_b = [RecordingListener(s.node) for s in stacks]
    group_a = [s.endpoint("ga", listeners_a[i]) for i, s in enumerate(stacks)]
    group_b = [s.endpoint("gb", listeners_b[i]) for i, s in enumerate(stacks)]
    for endpoint in group_a + group_b:
        endpoint.join()
    assert run_until(env, lambda: converged(group_a, 2) and converged(group_b, 2))
    group_a[0].send("for-a")
    group_b[1].send("for-b")
    env.sim.run_until(env.sim.now + 1 * SECOND)
    assert [p for _, p in listeners_a[1].data] == ["for-a"]
    assert [p for _, p in listeners_b[0].data] == ["for-b"]


def test_view_seq_is_monotonic_across_groups(env):
    addressing = GroupAddressing()
    stack = ProtocolStack(env, "p0", addressing)
    values = [stack.next_view_seq() for _ in range(10)]
    assert values == sorted(values)
    assert len(set(values)) == 10
