"""Durable store unit tests: round-trips, corruption salvage, node meta."""

import pytest

from repro.naming import (
    CORRUPTION_MODES,
    DurableStore,
    FileStorage,
    MappingRecord,
    MemoryStorage,
    NamingDatabase,
    inject_corruption,
)
from repro.naming.persistence import (
    AREA_LOG,
    AREA_SNAPSHOT,
    AREA_SNAPSHOT_OLD,
    decode_record,
    encode_record,
)
from repro.vsync.view import ViewId

import random


def record(lwg="lwg:a", coord="p0", seq=1, hwg="hwg:x", version=1, deleted=False):
    return MappingRecord(
        lwg=lwg,
        lwg_view=ViewId(coord, seq),
        lwg_members=(coord, "p9"),
        hwg=hwg,
        hwg_view=ViewId("h", 1),
        version=version,
        writer=coord,
        deleted=deleted,
    )


def attached_store(**kwargs):
    store = DurableStore(MemoryStorage(), **kwargs)
    db = NamingDatabase()
    store.attach(db)
    return store, db


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def test_record_codec_round_trips():
    original = record(deleted=True, version=7)
    assert decode_record(encode_record(original)) == original


# ----------------------------------------------------------------------
# Log + snapshot round-trips
# ----------------------------------------------------------------------
def test_empty_store_loads_empty_clean():
    store = DurableStore(MemoryStorage())
    assert not store.has_state()
    result = store.load()
    assert result.clean
    assert len(result.db) == 0


def test_log_replay_restores_records_and_genealogy():
    store, db = attached_store()
    parent, child = ViewId("p0", 1), ViewId("p0", 2)
    db.apply(record(seq=1))
    db.apply(record(seq=2, version=2), (parent,))
    assert store.has_state()
    result = store.load()
    assert result.clean
    assert result.log_entries == 2
    # Genealogy replay lets GC collect the superseded record, exactly
    # as the live database did.
    assert result.db.content_hash() == db.content_hash()
    assert ("lwg:a", child) in {r.key for r in result.db.snapshot()}


def test_snapshot_compaction_preserves_content_and_clears_log():
    store, db = attached_store(snapshot_every=4)
    for seq in range(1, 10):
        db.apply(record(coord="p1", seq=seq, version=seq))
    assert store.snapshots_written >= 1
    assert store.log_entries < 4
    result = store.load()
    assert result.clean and result.snapshot_used
    assert result.db.content_hash() == db.content_hash()


def test_absorb_genealogy_is_journaled():
    store, db = attached_store()
    db.apply(record(seq=1))
    db.apply(record(seq=2, version=2))
    db.absorb_genealogy({ViewId("p0", 2): (ViewId("p0", 1),)})
    db.garbage_collect()  # what reconciliation.absorb does after edges land
    reloaded = store.load().db
    assert reloaded.content_hash() == db.content_hash()
    assert len(reloaded) == 1  # the parent got collected on both sides


def test_file_storage_round_trips(tmp_path):
    store = DurableStore(FileStorage(tmp_path / "node"))
    db = NamingDatabase()
    store.attach(db)
    db.apply(record())
    store.write_snapshot(db)
    db.apply(record(seq=2, version=2))
    # A second store over the same directory models an OS-process restart.
    reborn = DurableStore(FileStorage(tmp_path / "node"))
    assert reborn.has_state()
    result = reborn.load()
    assert result.clean
    assert result.db.content_hash() == db.content_hash()


# ----------------------------------------------------------------------
# Corruption: every mode is salvageable and detected
# ----------------------------------------------------------------------
def populated_store(entries=6):
    store, db = attached_store()
    for seq in range(1, entries + 1):
        db.apply(record(coord="p2", seq=seq, version=seq))
    return store, db


def test_truncated_log_detected_and_prefix_salvaged():
    store, db = populated_store()
    detail = inject_corruption(store, "truncated_log", random.Random(1), db=db)
    assert "truncated" in detail
    result = store.load()
    assert result.log_truncated or result.quarantined
    assert not result.clean
    assert result.log_entries < 6


def test_bit_flip_quarantines_one_line():
    store, db = populated_store()
    detail = inject_corruption(store, "bit_flip", random.Random(2), db=db)
    assert "flip@" in detail
    result = store.load()
    assert not result.clean
    # At most the framing of one entry is lost; the rest replays.
    assert result.quarantined + result.log_entries + int(result.log_truncated) >= 6


def test_stale_snapshot_rolls_back_to_previous_generation():
    store, db = attached_store()
    db.apply(record(seq=1))
    store.write_snapshot(db)
    db.apply(record(seq=2, version=2), (ViewId("p0", 1),))
    store.write_snapshot(db)
    assert store.storage.read(AREA_SNAPSHOT_OLD)
    inject_corruption(store, "stale_snapshot", random.Random(3), db=db)
    result = store.load()
    assert result.clean  # rollback is *silent* data loss, not dirt
    assert result.db.content_hash() != db.content_hash()
    assert ("lwg:a", ViewId("p0", 1)) in {r.key for r in result.db.snapshot()}


def test_orphan_mapping_plants_well_formed_ghost():
    store, db = populated_store()
    detail = inject_corruption(store, "orphan_mapping", random.Random(4), db=db)
    assert detail.startswith("orphan:")
    result = store.load()
    assert result.clean  # the ghost is syntactically legitimate
    assert any(r.lwg == "lwg:orphan" for r in result.db.snapshot())


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
def test_every_mode_still_loads_without_raising(mode):
    store, db = populated_store()
    store.write_snapshot(db)
    db.apply(record(coord="p2", seq=20, version=20))
    inject_corruption(store, mode, random.Random(5), db=db)
    result = store.load()  # must never raise, whatever the damage
    assert result.db.verify_integrity() == []


def test_corruption_is_deterministic_under_equal_rng():
    outcomes = []
    for _ in range(2):
        store, db = populated_store()
        inject_corruption(store, "bit_flip", random.Random(42), db=db)
        outcomes.append(
            (store.storage.read(AREA_LOG), store.storage.read(AREA_SNAPSHOT))
        )
    assert outcomes[0] == outcomes[1]


def test_unknown_mode_rejected():
    store, _ = populated_store()
    with pytest.raises(ValueError, match="unknown corruption mode"):
        inject_corruption(store, "gamma_ray", random.Random(0))


# ----------------------------------------------------------------------
# Node meta: incarnation, view-seq, view history
# ----------------------------------------------------------------------
def test_incarnation_bumps_monotonically():
    store = DurableStore(MemoryStorage())
    assert store.incarnation() == 0
    assert store.bump_incarnation() == 1
    assert store.bump_incarnation() == 2
    # A surviving volatile counter ratchets the floor.
    assert store.bump_incarnation(at_least=10) == 11
    assert store.incarnation() == 11


def test_incarnation_survives_meta_corruption():
    store = DurableStore(MemoryStorage())
    store.bump_incarnation()
    store.storage.write("meta", b"\x00 garbage")
    reborn = DurableStore(store.storage)
    # Durable value is lost, but the volatile floor still forces progress.
    assert reborn.bump_incarnation(at_least=1) == 2


def test_view_seq_persists_and_never_regresses():
    store = DurableStore(MemoryStorage())
    store.persist_view_seq(5)
    store.persist_view_seq(3)  # must not regress
    assert DurableStore(store.storage).view_seq() == 5


def test_view_history_is_bounded_and_ordered():
    from repro.naming.persistence import VIEW_HISTORY_LIMIT

    store = DurableStore(MemoryStorage())
    for seq in range(1, VIEW_HISTORY_LIMIT + 10):
        store.record_view("g", ViewId("p0", seq), incarnation=1)
    history = store.view_history()
    assert len(history) == VIEW_HISTORY_LIMIT
    assert history[-1][1] == ViewId("p0", VIEW_HISTORY_LIMIT + 9)
