"""Naming-service behaviour under server crashes."""

from tests.helpers import run_until

from repro.core import LwgListener
from repro.sim import SECOND
from repro.workloads import Cluster


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


def test_client_survives_one_server_crash():
    cluster = Cluster(num_processes=2, seed=81, num_name_servers=2)
    cluster.env.failures.crash_now("ns0")
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=15 * SECOND)
    # All traffic landed on the surviving replica.
    assert len(cluster.name_servers["ns1"].db) >= 1


def test_recovered_server_catches_up_via_gossip():
    cluster = Cluster(num_processes=2, seed=82, num_name_servers=2)
    cluster.env.failures.crash_now("ns1")
    handles = [cluster.service(i).join("g") for i in range(2)]
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=15 * SECOND)
    cluster.run_for_seconds(1)
    cluster.env.failures.recover_now("ns1")
    assert cluster.run_until(
        lambda: len(cluster.name_servers["ns1"].db.live_records("lwg:g")) == 1,
        timeout_us=10 * SECOND,
    )


def test_all_servers_down_joins_stall_then_recover():
    cluster = Cluster(num_processes=2, seed=83, num_name_servers=1)
    cluster.env.failures.crash_now("ns0")
    handles = [cluster.service(i).join("g") for i in range(2)]
    cluster.run_for_seconds(4)
    # Creation needs the naming service: nobody is a member yet.
    assert not any(h.is_member for h in handles)
    cluster.env.failures.recover_now("ns0")
    assert cluster.run_until(lambda: converged(handles, 2), timeout_us=20 * SECOND)


def test_lwg_operations_continue_while_naming_degraded():
    """Once mapped, data flow does not depend on the naming service."""
    cluster = Cluster(num_processes=3, seed=84, num_name_servers=1)

    class Recorder(LwgListener):
        def __init__(self):
            self.data = []

        def on_data(self, lwg, src, payload, size):
            self.data.append(payload)

    recorder = Recorder()
    handles = [cluster.service(i).join("g") for i in range(2)]
    handles.append(cluster.service(2).join("g", recorder))
    assert cluster.run_until(lambda: converged(handles, 3), timeout_us=15 * SECOND)
    cluster.env.failures.crash_now("ns0")
    handles[0].send("no-naming-needed")
    cluster.run_for_seconds(2)
    assert "no-naming-needed" in recorder.data
