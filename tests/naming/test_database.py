"""Tests for the naming database: LWW, genealogy GC, conflicts."""

from repro.naming import MappingRecord, NamingDatabase
from repro.vsync.view import ViewId


def rec(lwg, view, hwg, version=1, writer="w", members=("m0", "m1"), deleted=False,
        hwg_view=None):
    return MappingRecord(
        lwg=lwg,
        lwg_view=view,
        lwg_members=members,
        hwg=hwg,
        hwg_view=hwg_view or ViewId("h", 1),
        version=version,
        writer=writer,
        deleted=deleted,
    )


def test_apply_inserts_record():
    db = NamingDatabase()
    assert db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1"))
    assert len(db) == 1


def test_apply_lww_by_version():
    db = NamingDatabase()
    view = ViewId("p0", 1)
    db.apply(rec("lwg:a", view, "hwg:1", version=2))
    assert not db.apply(rec("lwg:a", view, "hwg:OLD", version=1))
    assert db.apply(rec("lwg:a", view, "hwg:NEW", version=3))
    assert db.live_records("lwg:a")[0].hwg == "hwg:NEW"


def test_apply_lww_tie_broken_by_writer():
    db = NamingDatabase()
    view = ViewId("p0", 1)
    db.apply(rec("lwg:a", view, "hwg:1", version=1, writer="a"))
    assert db.apply(rec("lwg:a", view, "hwg:2", version=1, writer="b"))
    assert not db.apply(rec("lwg:a", view, "hwg:3", version=1, writer="a"))


def test_concurrent_views_coexist():
    """Table 3: the merged database holds both partitions' mappings."""
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1"))
    db.apply(rec("lwg:a", ViewId("p5", 1), "hwg:2"))
    assert len(db.live_records("lwg:a")) == 2


def test_gc_removes_ancestor_mappings():
    """Table 4 stage 4: registering the merged view deletes its parents."""
    db = NamingDatabase()
    left, right = ViewId("p0", 1), ViewId("p5", 1)
    merged = ViewId("p0", 2)
    db.apply(rec("lwg:a", left, "hwg:1"))
    db.apply(rec("lwg:a", right, "hwg:2"))
    db.apply(rec("lwg:a", merged, "hwg:2", version=2), parents=[left, right])
    records = db.live_records("lwg:a")
    assert len(records) == 1
    assert records[0].lwg_view == merged


def test_gc_is_transitive():
    db = NamingDatabase()
    v1, v2, v3 = ViewId("p", 1), ViewId("p", 2), ViewId("p", 3)
    db.apply(rec("lwg:a", v1, "hwg:1"))
    db.apply(rec("lwg:a", v3, "hwg:1", version=3), parents=[v2])
    # v2's ancestry arrives later (e.g. via gossip): v1 <- v2.
    db.absorb_genealogy({v2: (v1,)})
    assert db.garbage_collect() == 1
    assert [r.lwg_view for r in db.live_records("lwg:a")] == [v3]


def test_gc_does_not_cross_lwgs():
    db = NamingDatabase()
    v1, v2 = ViewId("p", 1), ViewId("p", 2)
    db.apply(rec("lwg:a", v1, "hwg:1"))
    db.apply(rec("lwg:b", v2, "hwg:1"), parents=[v1])
    # v1 is an ancestor of v2, but they belong to different LWGs.
    assert len(db.live_records("lwg:a")) == 1


def test_conflicts_require_different_hwgs():
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1"))
    db.apply(rec("lwg:a", ViewId("p5", 1), "hwg:1"))  # same HWG: no conflict
    assert db.conflicts() == {}
    db.apply(rec("lwg:a", ViewId("p9", 1), "hwg:2"))
    assert "lwg:a" in db.conflicts()


def test_deleted_records_are_not_live():
    db = NamingDatabase()
    view = ViewId("p0", 1)
    db.apply(rec("lwg:a", view, "hwg:1", version=1))
    db.apply(rec("lwg:a", view, "hwg:1", version=2, deleted=True))
    assert db.live_records("lwg:a") == []
    assert db.lwgs() == set()


def test_digest_and_missing_records():
    db1, db2 = NamingDatabase(), NamingDatabase()
    r1 = rec("lwg:a", ViewId("p0", 1), "hwg:1", version=1)
    r2 = rec("lwg:b", ViewId("p1", 1), "hwg:2", version=1)
    db1.apply(r1)
    db1.apply(r2)
    db2.apply(r1)
    missing = db1.records_missing_from(db2.digest())
    assert missing == [r2]


def test_missing_records_include_newer_versions():
    db1, db2 = NamingDatabase(), NamingDatabase()
    view = ViewId("p0", 1)
    db1.apply(rec("lwg:a", view, "hwg:NEW", version=5))
    db2.apply(rec("lwg:a", view, "hwg:OLD", version=1))
    missing = db1.records_missing_from(db2.digest())
    assert len(missing) == 1 and missing[0].hwg == "hwg:NEW"


def test_live_records_sorted_deterministically():
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("z", 1), "hwg:2"))
    db.apply(rec("lwg:a", ViewId("a", 1), "hwg:1"))
    records = db.live_records("lwg:a")
    assert records[0].lwg_view == ViewId("a", 1)


def test_snapshot_lists_everything_including_tombstones():
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p", 1), "hwg:1", deleted=True))
    assert len(db.snapshot()) == 1
    assert db.live_records("lwg:a") == []


def test_content_hash_independent_of_insertion_order():
    db1, db2 = NamingDatabase(), NamingDatabase()
    a = rec("lwg:a", ViewId("p0", 1), "hwg:1")
    b = rec("lwg:b", ViewId("p1", 1), "hwg:2")
    db1.apply(a)
    db1.apply(b)
    db2.apply(b)
    db2.apply(a)
    assert db1.content_hash() == db2.content_hash()


def test_content_hash_changes_on_every_mutation_path():
    db = NamingDatabase()
    empty = db.content_hash()
    v1, v2 = ViewId("p", 1), ViewId("p", 2)
    db.apply(rec("lwg:a", v1, "hwg:1"))
    after_apply = db.content_hash()
    assert after_apply != empty
    # Genealogy-only knowledge is content too: a replica that knows the
    # ancestry differs from one that does not, even with equal records.
    db.absorb_genealogy({v2: (v1,)})
    after_edges = db.content_hash()
    assert after_edges != after_apply
    # GC triggered by a later record flows through apply(); a bare
    # garbage_collect() that removes something must also invalidate.
    db.apply(rec("lwg:a", v2, "hwg:2", version=2))
    assert db.garbage_collect() == 0  # apply already collected v1
    assert db.content_hash() not in (empty, after_apply, after_edges)


def test_content_hash_distinguishes_tombstones():
    live, dead = NamingDatabase(), NamingDatabase()
    view = ViewId("p", 1)
    live.apply(rec("lwg:a", view, "hwg:1"))
    dead.apply(rec("lwg:a", view, "hwg:1", deleted=True))
    assert live.content_hash() != dead.content_hash()


def test_content_hash_is_cached_until_mutation():
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p", 1), "hwg:1"))
    assert db.content_hash() is db.content_hash()  # cache hit, same object
    assert not db.apply(rec("lwg:a", ViewId("p", 1), "hwg:OLD", version=0))
    # A rejected stale write leaves the content (and its hash) alone.
    assert db.content_hash() == db.content_hash()


def test_lww_losing_record_with_new_genealogy_still_collects():
    """Regression: GC must run when a rejected record carried new edges.

    A replica already holds the merged view's mapping at a high version
    plus a stale pre-merge mapping whose ancestry it does not know yet.
    An older copy of the merged record arrives (loses last-writer-wins)
    but carries the merge genealogy.  The edges are new knowledge that
    obsoletes the pre-merge record; before the fix apply() returned
    False without collecting, so the stale mapping lingered until an
    unrelated mutation of the same LWG.
    """
    db = NamingDatabase()
    old, merged = ViewId("p0", 1), ViewId("p0", 2)
    db.apply(rec("lwg:a", old, "hwg:1"))
    db.apply(rec("lwg:a", merged, "hwg:2", version=5))
    assert len(db.live_records("lwg:a")) == 2  # ancestry unknown yet
    losing = rec("lwg:a", merged, "hwg:STALE", version=2)
    assert not db.apply(losing, parents=[old])
    records = db.live_records("lwg:a")
    assert [r.lwg_view for r in records] == [merged]
    assert records[0].hwg == "hwg:2"  # the losing copy itself was rejected


def test_lww_losing_record_without_genealogy_skips_gc_scan():
    db = NamingDatabase()
    view = ViewId("p0", 1)
    db.apply(rec("lwg:a", view, "hwg:1", version=3))
    before = db.content_hash()
    assert not db.apply(rec("lwg:a", view, "hwg:OLD", version=1))
    assert db.content_hash() == before
