"""Property-based tests of the naming database's replication semantics.

The reconciliation design rests on three algebraic properties of the
store: applying records is *commutative* (any delivery order converges),
*idempotent* (retries are free) and *monotone under gossip* (push-pull
exchanges always converge replicas to the same state).  Hypothesis
drives them with random record batches.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.naming import MappingRecord, NamingDatabase, absorb, databases_consistent
from repro.naming.reconciliation import genealogy_to_send, records_to_send
from repro.vsync.view import ViewId

lwg_ids = st.sampled_from(["lwg:a", "lwg:b", "lwg:c"])
writers = st.sampled_from(["p0", "p1", "p2"])
hwgs = st.sampled_from(["hwg:x", "hwg:y", "hwg:z"])


@st.composite
def records(draw):
    lwg = draw(lwg_ids)
    writer = draw(writers)
    seq = draw(st.integers(min_value=1, max_value=4))
    return MappingRecord(
        lwg=lwg,
        lwg_view=ViewId(writer, seq),
        lwg_members=(writer,),
        hwg=draw(hwgs),
        hwg_view=ViewId("h", draw(st.integers(min_value=1, max_value=3))),
        version=draw(st.integers(min_value=1, max_value=5)),
        writer=writer,
        deleted=draw(st.booleans()),
    )


record_batches = st.lists(records(), min_size=0, max_size=12)


@settings(max_examples=60, deadline=None)
@given(batch=record_batches, order_seed=st.randoms(use_true_random=False))
def test_apply_order_does_not_matter(batch, order_seed):
    forward = NamingDatabase()
    shuffled_db = NamingDatabase()
    for record in batch:
        forward.apply(record)
    shuffled = list(batch)
    order_seed.shuffle(shuffled)
    for record in shuffled:
        shuffled_db.apply(record)
    assert forward.snapshot() == shuffled_db.snapshot()


@settings(max_examples=60, deadline=None)
@given(batch=record_batches)
def test_apply_is_idempotent(batch):
    once = NamingDatabase()
    twice = NamingDatabase()
    for record in batch:
        once.apply(record)
    for record in batch + batch:
        twice.apply(record)
    assert once.snapshot() == twice.snapshot()


def push_pull(a: NamingDatabase, b: NamingDatabase) -> None:
    absorb(a, records_to_send(b, a.digest()), genealogy_to_send(b, a.genealogy_edges()))
    absorb(b, records_to_send(a, b.digest()), genealogy_to_send(a, b.genealogy_edges()))


@settings(max_examples=40, deadline=None)
@given(batch_a=record_batches, batch_b=record_batches)
def test_push_pull_converges_two_replicas(batch_a, batch_b):
    a, b = NamingDatabase(), NamingDatabase()
    for record in batch_a:
        a.apply(record)
    for record in batch_b:
        b.apply(record)
    push_pull(a, b)
    assert databases_consistent([a, b])


@settings(max_examples=25, deadline=None)
@given(
    batches=st.lists(record_batches, min_size=3, max_size=3),
    pair_order=st.permutations([(0, 1), (1, 2), (0, 2)]),
)
def test_gossip_rounds_converge_three_replicas(batches, pair_order):
    replicas = [NamingDatabase() for _ in range(3)]
    for replica, batch in zip(replicas, batches):
        for record in batch:
            replica.apply(record)
    # Two sweeps over all pairs always suffice for 3 replicas.
    for _ in range(2):
        for i, j in pair_order:
            push_pull(replicas[i], replicas[j])
    assert databases_consistent(replicas)


@settings(max_examples=40, deadline=None)
@given(batch=record_batches)
def test_gc_never_removes_maximal_views(batch):
    """GC only ever removes records whose view has a recorded descendant."""
    db = NamingDatabase()
    for record in batch:
        db.apply(record)
    # Link every view of each lwg into a chain ordered by (writer, seq)
    views_by_lwg = {}
    for record in db.snapshot():
        views_by_lwg.setdefault(record.lwg, []).append(record.lwg_view)
    for lwg, views in views_by_lwg.items():
        ordered = sorted(set(views))
        for parent, child in zip(ordered, ordered[1:]):
            db.absorb_genealogy({child: (parent,)})
    db.garbage_collect()
    for lwg, views in views_by_lwg.items():
        keys = [k for k in (r.key for r in db.snapshot()) if k[0] == lwg]
        if views:
            assert (lwg, max(set(views))) in keys  # the maximum survives
