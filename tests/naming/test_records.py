"""Tests for mapping records."""

from repro.naming import MappingRecord
from repro.vsync.view import ViewId


def make(version=1, writer="w", deleted=False):
    return MappingRecord(
        lwg="lwg:a", lwg_view=ViewId("p0", 1), lwg_members=("p0", "p1"),
        hwg="hwg:x", hwg_view=ViewId("p0", 9), version=version, writer=writer,
        deleted=deleted,
    )


def test_key_is_lwg_and_view():
    record = make()
    assert record.key == ("lwg:a", ViewId("p0", 1))


def test_coordinator_is_first_member():
    assert make().coordinator == "p0"


def test_newer_than_by_version_then_writer():
    assert make(version=2).newer_than(make(version=1))
    assert make(version=1, writer="z").newer_than(make(version=1, writer="a"))
    assert not make(version=1).newer_than(make(version=1))


def test_str_marks_deleted():
    assert "[deleted]" in str(make(deleted=True))
    assert "[deleted]" not in str(make())


def test_records_are_immutable_and_hashable():
    record = make()
    assert hash(record) == hash(make())
