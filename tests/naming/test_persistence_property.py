"""Property tests: persist -> load is the identity on database content.

Whatever mutation sequence a replica lives through — interleaved record
applies (with or without genealogy parents), bulk edge absorption and
snapshot compactions at arbitrary points — reloading its durable state
must reproduce the exact content hash and Merkle root.  This is the
contract the whole recovery path rests on: a restarted node's Merkle
descent against its peers starts from precisely the state it had
persisted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.naming import DurableStore, MappingRecord, MemoryStorage, NamingDatabase
from repro.vsync.view import ViewId

lwg_ids = st.sampled_from(["lwg:a", "lwg:b", "lwg:c"])
writers = st.sampled_from(["p0", "p1", "p2"])
hwgs = st.sampled_from(["hwg:x", "hwg:y"])
view_ids = st.builds(
    ViewId,
    coordinator=writers,
    seq=st.integers(min_value=1, max_value=6),
)


@st.composite
def apply_ops(draw):
    writer = draw(writers)
    record = MappingRecord(
        lwg=draw(lwg_ids),
        lwg_view=ViewId(writer, draw(st.integers(min_value=1, max_value=6))),
        lwg_members=(writer,),
        hwg=draw(hwgs),
        hwg_view=ViewId("h", draw(st.integers(min_value=1, max_value=3))),
        version=draw(st.integers(min_value=1, max_value=8)),
        writer=writer,
        deleted=draw(st.booleans()),
    )
    parents = draw(st.lists(view_ids, max_size=2, unique=True))
    return ("apply", record, tuple(parents))


@st.composite
def edge_ops(draw):
    edges = draw(
        st.dictionaries(view_ids, st.lists(view_ids, max_size=2, unique=True), max_size=3)
    )
    return ("edges", {c: tuple(p) for c, p in edges.items()}, None)


ops = st.lists(
    st.one_of(apply_ops(), edge_ops(), st.just(("compact", None, None))),
    max_size=20,
)


def run_ops(store, db, sequence):
    for kind, payload, parents in sequence:
        if kind == "apply":
            db.apply(payload, parents)
        elif kind == "edges":
            if payload:
                db.absorb_genealogy(payload)
                db.garbage_collect()
        elif kind == "compact":
            store.write_snapshot(db)


@settings(max_examples=80, deadline=None)
@given(sequence=ops)
def test_persist_load_preserves_content_hash_and_merkle_root(sequence):
    store = DurableStore(MemoryStorage(), snapshot_every=5)
    db = NamingDatabase()
    store.attach(db)
    run_ops(store, db, sequence)
    # load() ends with a full GC sweep; compare against the live
    # database's own fully-collected fixed point.
    db.garbage_collect()
    reloaded = store.load().db
    assert reloaded.content_hash() == db.content_hash()
    assert reloaded.merkle.root_hash() == db.merkle.root_hash()
    assert reloaded.verify_integrity() == []


@settings(max_examples=40, deadline=None)
@given(sequence=ops)
def test_load_is_idempotent_and_read_only(sequence):
    store = DurableStore(MemoryStorage(), snapshot_every=5)
    db = NamingDatabase()
    store.attach(db)
    run_ops(store, db, sequence)
    first = store.load().db
    second = store.load().db
    assert first.content_hash() == second.content_hash()
    assert [r for r in first.snapshot()] == [r for r in second.snapshot()]


@settings(max_examples=40, deadline=None)
@given(sequence=ops)
def test_serialized_bytes_are_canonical(sequence):
    """Two replicas applying the same mutations persist identical bytes."""
    blobs = []
    for _ in range(2):
        store = DurableStore(MemoryStorage(), snapshot_every=1000)
        db = NamingDatabase()
        store.attach(db)
        run_ops(store, db, sequence)
        store.write_snapshot(db)
        blobs.append(store.storage.read("snapshot"))
    assert blobs[0] == blobs[1]
