"""End-to-end tests of the sharded naming service (PROTOCOLS.md §18)."""

from tests.helpers import run_until

from repro.naming import MappingRecord, NameServer, NamingClient, ShardMap
from repro.naming.sharding import shard_of_lwg
from repro.sim import SECOND
from repro.vsync import GroupAddressing, ProtocolStack
from repro.vsync.view import ViewId


def setup(env, num_servers=4, replication_factor=2, clients=("p0",),
          sharded_clients=True):
    server_ids = [f"ns{i}" for i in range(num_servers)]
    shard_map = ShardMap(server_ids, replication_factor)
    servers = {
        i: NameServer(env, i, peers=server_ids, shard_map=shard_map)
        for i in server_ids
    }
    addressing = GroupAddressing()
    stacks = {c: ProtocolStack(env, c, addressing) for c in clients}
    naming_clients = {
        c: NamingClient(
            stacks[c], server_ids,
            shard_map=shard_map if sharded_clients else None,
        )
        for c in clients
    }
    return shard_map, servers, naming_clients


def rec(client, lwg, view, hwg, members=("p0",)):
    return MappingRecord(
        lwg=lwg, lwg_view=view, lwg_members=members, hwg=hwg,
        hwg_view=ViewId("h", 1), version=client.next_version(), writer=client.node,
    )


def holders(servers, lwg):
    return sorted(
        node for node, s in servers.items() if s.db.live_records(lwg)
    )


def test_write_lands_only_on_owners(env):
    shard_map, servers, clients = setup(env)
    client = clients["p0"]
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"))
    env.sim.run_until(3 * SECOND)
    owners = sorted(shard_map.owners_for_lwg("lwg:a"))
    assert holders(servers, "lwg:a") == owners
    # Single-owner fast path: exactly one request, zero retries.
    assert client.requests_sent == 1
    assert client.retries == 0


def test_read_routes_to_replica_set(env):
    shard_map, servers, clients = setup(env)
    client = clients["p0"]
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"))
    env.sim.run_until(2 * SECOND)
    replies = []
    client.read("lwg:a", lambda records: replies.append(records))
    env.sim.run_until(3 * SECOND)
    assert replies and replies[0][0].hwg == "hwg:1"
    # Only the owners ever served a request.
    for node, server in servers.items():
        if node not in shard_map.owners_for_lwg("lwg:a"):
            assert server.requests_served == 0


def test_client_fails_over_when_replica_dies_mid_request(env):
    shard_map, servers, clients = setup(env)
    client = clients["p0"]
    owners = shard_map.owners_for_lwg("lwg:a")
    first = owners[client._server_offset % len(owners)]
    replies = []
    client.set(
        rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"),
        on_reply=lambda records: replies.append(records),
    )
    # The request is in flight; its target dies before answering.
    env.failures.crash_now(first)
    assert run_until(env, lambda: bool(replies), timeout_s=5)
    assert client.retries >= 1
    # The surviving co-replica served and stored the write.
    survivor = [o for o in owners if o != first][0]
    assert servers[survivor].db.live_records("lwg:a")


def test_legacy_client_requests_are_forwarded_to_owners(env):
    # A map-less client sprays the whole roster; non-owners must relay
    # to the replica set and the owner answers the client directly.
    shard_map, servers, clients = setup(env, sharded_clients=False)
    client = clients["p0"]
    # Pick an LWG whose legacy first-choice server is NOT an owner.
    lwg = next(
        name
        for name in (f"lwg:{i}" for i in range(64))
        if client.servers[client._server_offset % len(client.servers)]
        not in shard_map.owners_for_lwg(name)
    )
    replies = []
    client.set(
        rec(client, lwg, ViewId("p0", 1), "hwg:1"),
        on_reply=lambda records: replies.append(records),
    )
    assert run_until(env, lambda: bool(replies), timeout_s=5)
    assert sum(s.requests_forwarded for s in servers.values()) >= 1
    env.sim.run_until(env.sim.now + 2 * SECOND)
    assert holders(servers, lwg) == sorted(shard_map.owners_for_lwg(lwg))


def test_scoped_gossip_converges_owners_after_partition(env):
    shard_map, servers, clients = setup(env, clients=("p0",))
    client = clients["p0"]
    lwg = "lwg:a"
    owners = shard_map.owners_for_lwg(lwg)
    assert len(owners) == 2
    client.set(rec(client, lwg, ViewId("p0", 1), "hwg:1"))
    env.sim.run_until(2 * SECOND)
    # Isolate one owner, overwrite the mapping on the other side.
    isolated = owners[-1]
    rest = [n for n in servers if n != isolated] + ["p0"]
    env.network.set_partitions([rest, [isolated]])
    client.set(rec(client, lwg, ViewId("p0", 2), "hwg:2"), parents=(ViewId("p0", 1),))
    env.sim.run_until(4 * SECOND)
    env.network.heal()

    shard = shard_of_lwg(lwg)

    def owners_identical():
        hashes = {servers[o].db.merkle.node_hash(shard) for o in owners}
        return len(hashes) == 1

    assert run_until(env, owners_identical, timeout_s=10)
    for owner in owners:
        live = servers[owner].db.live_records(lwg)
        assert [(str(r.lwg_view), r.hwg) for r in live] == [("p0#2", "hwg:2")]
    # Non-owners never absorbed the shard.
    for node, server in servers.items():
        if node not in owners:
            assert not server.db.live_records(lwg)


def test_scoped_sync_short_circuits_on_scope_hash(env):
    shard_map, servers, clients = setup(env)
    client = clients["p0"]
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"))
    env.sim.run_until(3 * SECOND)
    before = {i: s.syncs_short_circuited for i, s in servers.items()}
    env.sim.run_until(env.sim.now + 5 * SECOND)
    shorted = sum(s.syncs_short_circuited - before[i] for i, s in servers.items())
    # Quiet cluster: every scoped exchange ends at the hash handshake.
    assert shorted >= 4
