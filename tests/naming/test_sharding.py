"""Unit and property tests for the LWG-name shard map (PROTOCOLS.md §18)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.naming.merkle import key_digest
from repro.naming.sharding import (
    ALL_SHARDS,
    NUM_SHARDS,
    SHARD_PREFIX_LEN,
    ShardMap,
    shard_of_key,
    shard_of_lwg,
)
from repro.vsync.view import ViewId


def roster(n):
    return [f"ns{i}" for i in range(n)]


# ----------------------------------------------------------------------
# Shard naming
# ----------------------------------------------------------------------
def test_shard_of_lwg_is_stable_and_prefix_shaped():
    shard = shard_of_lwg("lwg:a")
    assert shard == "4c"  # pinned: seed-independent sha256 prefix
    assert len(shard) == SHARD_PREFIX_LEN
    assert shard in ALL_SHARDS


def test_shard_is_a_merkle_subtree():
    # The shard of an LWG is exactly the first SHARD_PREFIX_LEN chars of
    # every record key digest for that LWG — a shard *is* a subtree.
    for seq in (1, 2, 7):
        digest = key_digest(("lwg:a", ViewId("p0", seq)))
        assert digest.startswith(shard_of_lwg("lwg:a"))
    assert shard_of_key(("lwg:a", ViewId("p9", 3))) == shard_of_lwg("lwg:a")


def test_all_shards_enumeration():
    assert len(ALL_SHARDS) == NUM_SHARDS == 16**SHARD_PREFIX_LEN
    assert ALL_SHARDS == tuple(sorted(ALL_SHARDS))


# ----------------------------------------------------------------------
# Replica-set assignment
# ----------------------------------------------------------------------
def test_rf_larger_than_roster_degenerates_to_full_replication():
    shard_map = ShardMap(roster(3), replication_factor=5)
    assert shard_map.fully_replicated
    for shard in shard_map.shards:
        assert set(shard_map.owners(shard)) == set(roster(3))
    # Full replication keeps the legacy whole-tree anti-entropy scope.
    assert shard_map.scope("ns0", "ns1") == ("",)


def test_roster_of_one_owns_everything():
    shard_map = ShardMap(["ns0"], replication_factor=3)
    assert shard_map.fully_replicated
    assert shard_map.owned_shards("ns0") == ALL_SHARDS
    for shard in ALL_SHARDS:
        assert shard_map.owners(shard) == ("ns0",)


def test_invalid_construction():
    with pytest.raises(ValueError):
        ShardMap([], replication_factor=2)
    with pytest.raises(ValueError):
        ShardMap(roster(3), replication_factor=0)


def test_map_is_deterministic_and_order_insensitive():
    a = ShardMap(roster(8), replication_factor=3)
    b = ShardMap(list(reversed(roster(8))), replication_factor=3)
    for shard in ALL_SHARDS:
        assert a.owners(shard) == b.owners(shard)


def test_owned_shards_inverts_owners():
    shard_map = ShardMap(roster(8), replication_factor=3)
    for server in shard_map.servers:
        for shard in shard_map.owned_shards(server):
            assert server in shard_map.owners(shard)
    total = sum(len(shard_map.owned_shards(s)) for s in shard_map.servers)
    assert total == NUM_SHARDS * 3


def test_scope_is_symmetric_and_shared():
    shard_map = ShardMap(roster(8), replication_factor=3)
    mine = set(shard_map.owned_shards("ns0"))
    theirs = set(shard_map.owned_shards("ns1"))
    scope = shard_map.scope("ns0", "ns1")
    assert set(scope) == mine & theirs
    assert set(shard_map.scope("ns1", "ns0")) == set(scope)


def test_co_replicas_share_at_least_one_shard():
    shard_map = ShardMap(roster(8), replication_factor=2)
    for peer in shard_map.co_replicas("ns0"):
        assert shard_map.scope("ns0", peer)


def test_rendezvous_stability_on_roster_growth():
    """Adding one of n servers moves ~1/n of the shard->owner slots."""
    before = ShardMap(roster(8), replication_factor=3)
    after = ShardMap(roster(9), replication_factor=3)
    moved = sum(
        1
        for shard in ALL_SHARDS
        for owner in before.owners(shard)
        if owner not in after.owners(shard)
    )
    slots = NUM_SHARDS * 3
    # Expect ~slots/9 slots to move to the new server; allow 2x slack
    # for hash variance, and require *some* movement (the new server
    # must take real load).
    assert 0 < moved <= 2 * slots / 9
    gained = len(after.owned_shards("ns8"))
    assert gained == moved  # every vacated slot went to the newcomer


def test_rendezvous_stability_on_roster_shrink():
    before = ShardMap(roster(8), replication_factor=3)
    after = ShardMap(roster(7), replication_factor=3)
    # Surviving servers keep every shard they had; they only *gain*.
    for server in roster(7):
        assert set(before.owned_shards(server)) <= set(
            after.owned_shards(server)
        )


@settings(max_examples=60, deadline=None)
@given(
    num_servers=st.integers(min_value=1, max_value=12),
    replication_factor=st.integers(min_value=1, max_value=6),
    lwg=st.text(min_size=1, max_size=24),
)
def test_every_key_has_exactly_min_rf_n_distinct_owners(
    num_servers, replication_factor, lwg
):
    shard_map = ShardMap(roster(num_servers), replication_factor)
    owners = shard_map.owners_for_lwg(lwg)
    assert len(owners) == len(set(owners)) == min(replication_factor, num_servers)
    assert set(owners) <= set(shard_map.servers)
    # Ownership agrees with the per-server view.
    shard = shard_of_lwg(lwg)
    for owner in owners:
        assert shard_map.owns(owner, shard)
        assert shard in shard_map.owned_shards(owner)
