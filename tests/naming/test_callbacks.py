"""Tests for the MULTIPLE-MAPPINGS conflict notifier."""

from repro.naming import ConflictNotifier, MappingRecord, NamingDatabase
from repro.vsync.view import ViewId


def rec(lwg, view, hwg, coordinator="c0", version=1):
    return MappingRecord(
        lwg=lwg, lwg_view=view, lwg_members=(coordinator, "m1"), hwg=hwg,
        hwg_view=ViewId("h", 1), version=version, writer=coordinator,
    )


class Clock:
    def __init__(self):
        self.t = 0

    def __call__(self):
        return self.t


def make(renotify=1000):
    sent = []
    clock = Clock()
    notifier = ConflictNotifier(
        "ns0", lambda target, msg: sent.append((target, msg)), clock,
        renotify_period_us=renotify,
    )
    return notifier, sent, clock


def test_notifies_all_view_coordinators():
    notifier, sent, _ = make()
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1", coordinator="p0"))
    db.apply(rec("lwg:a", ViewId("p5", 1), "hwg:2", coordinator="p5"))
    count = notifier.check(db)
    assert count == 2
    targets = {t for t, _ in sent}
    assert targets == {"p0", "p5"}
    # The message carries all the stored mappings (Section 6.1).
    assert len(sent[0][1].records) == 2


def test_no_notification_without_conflict():
    notifier, sent, _ = make()
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1"))
    assert notifier.check(db) == 0
    assert sent == []


def test_same_conflict_not_renotified_immediately():
    notifier, sent, _ = make()
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1", coordinator="p0"))
    db.apply(rec("lwg:a", ViewId("p5", 1), "hwg:2", coordinator="p5"))
    notifier.check(db)
    assert notifier.check(db) == 0


def test_persistent_conflict_renotified_after_period():
    notifier, sent, clock = make(renotify=1000)
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1", coordinator="p0"))
    db.apply(rec("lwg:a", ViewId("p5", 1), "hwg:2", coordinator="p5"))
    notifier.check(db)
    clock.t = 2000
    assert notifier.check(db) == 2


def test_changed_conflict_renotified_immediately():
    notifier, sent, _ = make()
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1", coordinator="p0"))
    db.apply(rec("lwg:a", ViewId("p5", 1), "hwg:2", coordinator="p5"))
    notifier.check(db)
    db.apply(rec("lwg:a", ViewId("p9", 1), "hwg:3", coordinator="p9"))
    assert notifier.check(db) == 3


def test_resolved_conflict_clears_state():
    notifier, sent, clock = make(renotify=1000)
    db = NamingDatabase()
    left, right = ViewId("p0", 1), ViewId("p5", 1)
    db.apply(rec("lwg:a", left, "hwg:1", coordinator="p0"))
    db.apply(rec("lwg:a", right, "hwg:2", coordinator="p5"))
    notifier.check(db)
    merged = ViewId("p0", 2)
    db.apply(rec("lwg:a", merged, "hwg:2", version=2), parents=[left, right])
    clock.t = 5000
    assert notifier.check(db) == 0
