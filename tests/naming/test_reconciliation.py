"""Tests for the pure reconciliation arithmetic."""

from repro.naming import (
    MappingRecord,
    NamingDatabase,
    absorb,
    databases_consistent,
    databases_identical,
)
from repro.naming.reconciliation import genealogy_to_send, records_to_send
from repro.vsync.view import ViewId


def rec(lwg, view, hwg, version=1, writer="w", deleted=False):
    return MappingRecord(
        lwg=lwg, lwg_view=view, lwg_members=("m",), hwg=hwg,
        hwg_view=ViewId("h", 1), version=version, writer=writer,
        deleted=deleted,
    )


def test_absorb_applies_new_records():
    db = NamingDatabase()
    result = absorb(db, [rec("lwg:a", ViewId("p", 1), "hwg:1")], {})
    assert result.applied == 1
    assert result.touched_lwgs == {"lwg:a"}


def test_absorb_ignores_stale_records():
    db = NamingDatabase()
    view = ViewId("p", 1)
    db.apply(rec("lwg:a", view, "hwg:NEW", version=5))
    result = absorb(db, [rec("lwg:a", view, "hwg:OLD", version=1)], {})
    assert result.applied == 0 and result.ignored == 1


def test_absorb_genealogy_first_enables_gc():
    """A record plus the genealogy that obsoletes an old one, in one batch."""
    db = NamingDatabase()
    old_view, new_view = ViewId("p", 1), ViewId("p", 2)
    db.apply(rec("lwg:a", old_view, "hwg:1"))
    result = absorb(
        db,
        [rec("lwg:a", new_view, "hwg:2", version=2)],
        {new_view: (old_view,)},
    )
    assert result.applied == 1
    assert [r.lwg_view for r in db.live_records("lwg:a")] == [new_view]


def test_genealogy_only_update_can_gc():
    db = NamingDatabase()
    v1, v2 = ViewId("p", 1), ViewId("p", 2)
    db.apply(rec("lwg:a", v1, "hwg:1"))
    db.apply(rec("lwg:a", v2, "hwg:2", version=2))
    result = absorb(db, [], {v2: (v1,)})
    assert result.gc_removed == 1


def test_push_pull_exchange_converges_two_replicas():
    db1, db2 = NamingDatabase(), NamingDatabase()
    db1.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1"))
    db2.apply(rec("lwg:b", ViewId("p5", 1), "hwg:2"))
    # Simulate the 3-message exchange.
    to_db1 = records_to_send(db2, db1.digest())
    absorb(db1, to_db1, genealogy_to_send(db2, db1.genealogy_edges()))
    to_db2 = records_to_send(db1, db2.digest())
    absorb(db2, to_db2, genealogy_to_send(db1, db2.genealogy_edges()))
    assert databases_consistent([db1, db2])
    assert len(db1.live_records("lwg:a")) == 1
    assert len(db1.live_records("lwg:b")) == 1


def test_genealogy_to_send_skips_known_children():
    db = NamingDatabase()
    child = ViewId("p", 2)
    db.absorb_genealogy({child: (ViewId("p", 1),)})
    assert genealogy_to_send(db, [child]) == {}
    assert child in genealogy_to_send(db, [])


def test_databases_consistent_detects_divergence():
    db1, db2 = NamingDatabase(), NamingDatabase()
    db1.apply(rec("lwg:a", ViewId("p", 1), "hwg:1"))
    assert not databases_consistent([db1, db2])
    assert databases_consistent([db1])


def test_idempotent_absorb():
    db = NamingDatabase()
    record = rec("lwg:a", ViewId("p", 1), "hwg:1")
    absorb(db, [record], {})
    result = absorb(db, [record], {})
    assert result.applied == 0
    assert len(db) == 1


# ----------------------------------------------------------------------
# Delta selection edge cases
# ----------------------------------------------------------------------
def test_records_to_send_against_empty_digest_ships_everything():
    db = NamingDatabase()
    db.apply(rec("lwg:a", ViewId("p", 1), "hwg:1"))
    db.apply(rec("lwg:b", ViewId("p", 2), "hwg:2"))
    assert len(records_to_send(db, {})) == 2
    assert records_to_send(NamingDatabase(), {}) == []


def test_records_to_send_skips_keys_the_remote_holds_newer():
    """Concurrent updates to one key: only the LWW winner travels."""
    mine, theirs = NamingDatabase(), NamingDatabase()
    view = ViewId("p", 1)
    mine.apply(rec("lwg:a", view, "hwg:OLD", version=1, writer="a"))
    theirs.apply(rec("lwg:a", view, "hwg:NEW", version=2, writer="b"))
    assert records_to_send(mine, theirs.digest()) == []
    winners = records_to_send(theirs, mine.digest())
    assert [r.hwg for r in winners] == ["hwg:NEW"]


def test_delta_selection_under_concurrent_updates_converges():
    """Both sides write while partitioned — including the same key —
    then a digest-driven delta exchange must reach one common LWW state."""
    left, right = NamingDatabase(), NamingDatabase()
    shared_view = ViewId("p", 1)
    left.apply(rec("lwg:a", shared_view, "hwg:L", version=2, writer="l"))
    right.apply(rec("lwg:a", shared_view, "hwg:R", version=2, writer="r"))
    left.apply(rec("lwg:b", ViewId("pl", 1), "hwg:1"))
    right.apply(rec("lwg:c", ViewId("pr", 1), "hwg:2"))
    absorb(right, records_to_send(left, right.digest()),
           genealogy_to_send(left, right.genealogy_edges()))
    absorb(left, records_to_send(right, left.digest()),
           genealogy_to_send(right, left.genealogy_edges()))
    assert databases_identical([left, right])
    # version tie broken by writer: "r" > "l".
    assert left.live_records("lwg:a")[0].hwg == "hwg:R"


def test_genealogy_to_send_from_empty_database_is_empty():
    assert genealogy_to_send(NamingDatabase(), []) == {}
    assert genealogy_to_send(NamingDatabase(), [ViewId("p", 1)]) == {}


# ----------------------------------------------------------------------
# Delta exchange vs full-database exchange
# ----------------------------------------------------------------------
def populate_diverged_pair():
    """Replicas sharing history, then partitioned: disjoint writes plus
    a view-succession chain whose GC evidence lives on one side only."""
    left, right = NamingDatabase(), NamingDatabase()
    base = rec("lwg:shared", ViewId("p0", 1), "hwg:1")
    for db in (left, right):
        db.apply(base)
    old, new = ViewId("q", 1), ViewId("q", 2)
    left.apply(rec("lwg:evolving", old, "hwg:2"))
    left.apply(rec("lwg:evolving", new, "hwg:3", version=2), parents=[old])
    right.apply(rec("lwg:evolving", old, "hwg:2"))
    right.apply(rec("lwg:right-only", ViewId("r", 1), "hwg:4", deleted=True))
    return left, right


def exchange_deltas(a, b):
    """The wire protocol's 3-message push-pull, as pure computation."""
    absorb(a, records_to_send(b, a.digest()),
           genealogy_to_send(b, a.genealogy_edges()))
    absorb(b, records_to_send(a, b.digest()),
           genealogy_to_send(a, b.genealogy_edges()))


def exchange_full(a, b):
    """The naive alternative: ship both complete databases."""
    absorb(a, b.snapshot(), b.genealogy_edges())
    absorb(b, a.snapshot(), a.genealogy_edges())


def test_delta_exchange_converges_to_the_full_exchange_state():
    delta_pair = populate_diverged_pair()
    full_pair = populate_diverged_pair()
    exchange_deltas(*delta_pair)
    exchange_full(*full_pair)
    assert databases_identical(delta_pair)
    assert databases_identical(full_pair)
    # Same fixed point either way, byte for byte.
    assert databases_identical([*delta_pair, *full_pair])
    # ... and it is the interesting one: GC evidence crossed over, so the
    # superseded lwg:evolving mapping is gone everywhere.
    for db in (*delta_pair, *full_pair):
        assert [r.lwg_view for r in db.live_records("lwg:evolving")] == [
            ViewId("q", 2)
        ]


# ----------------------------------------------------------------------
# Merkle-prefix descent (PROTOCOLS.md §16)
# ----------------------------------------------------------------------
def _exchange(left, right):
    from repro.naming.reconciliation import merkle_exchange

    transcript = merkle_exchange(left, right)
    assert databases_identical([left, right])
    return transcript


def test_merkle_exchange_between_identical_replicas_is_one_step():
    left, right = NamingDatabase(), NamingDatabase()
    shared = rec("lwg:a", ViewId("p", 1), "hwg:1")
    left.apply(shared)
    right.apply(shared)
    transcript = _exchange(left, right)
    # The opener travels; the receiver sees equal hashes everywhere and
    # has nothing to say back (the server short-circuits even earlier,
    # on content_hash, before any descent message is built).
    assert len(transcript) == 1


def test_merkle_exchange_one_sided_divergence():
    left, right = NamingDatabase(), NamingDatabase()
    for i in range(12):
        shared = rec(f"lwg:s{i}", ViewId("p", i + 1), "hwg:1")
        left.apply(shared)
        right.apply(shared)
    left.apply(rec("lwg:only-left", ViewId("pl", 1), "hwg:2"))
    _exchange(left, right)
    assert right.record_for(("lwg:only-left", ViewId("pl", 1))) is not None


def test_merkle_exchange_into_empty_replica_ships_everything():
    left, right = NamingDatabase(), NamingDatabase()
    for i in range(20):
        left.apply(rec(f"lwg:{i}", ViewId("p", i + 1), "hwg:1"))
    _exchange(left, right)
    assert len(right) == 20


def test_merkle_exchange_tombstone_only_divergence():
    """A deletion is content: the tombstone must travel and win LWW."""
    left, right = NamingDatabase(), NamingDatabase()
    view = ViewId("p", 1)
    shared = rec("lwg:a", view, "hwg:1")
    left.apply(shared)
    right.apply(shared)
    left.apply(rec("lwg:a", view, "hwg:1", version=2, deleted=True))
    assert not databases_identical([left, right])
    _exchange(left, right)
    assert right.record_for(("lwg:a", view)).deleted
    assert right.live_records("lwg:a") == []


def test_merkle_exchange_remote_newer_digest_entries():
    """Both directions of a same-key version race resolve to the winner."""
    left, right = NamingDatabase(), NamingDatabase()
    va, vb = ViewId("p", 1), ViewId("p", 2)
    for db in (left, right):
        db.apply(rec("lwg:a", va, "hwg:1"))
        db.apply(rec("lwg:b", vb, "hwg:1"))
    left.apply(rec("lwg:a", va, "hwg:NEW-A", version=3))
    right.apply(rec("lwg:b", vb, "hwg:NEW-B", version=3))
    _exchange(left, right)
    for db in (left, right):
        assert db.record_for(("lwg:a", va)).hwg == "hwg:NEW-A"
        assert db.record_for(("lwg:b", vb)).hwg == "hwg:NEW-B"


def test_merkle_exchange_genealogy_only_divergence():
    """Edges with no record delta still travel and still trigger GC."""
    left, right = NamingDatabase(), NamingDatabase()
    old, new = ViewId("p", 1), ViewId("p", 2)
    for db in (left, right):
        db.apply(rec("lwg:a", old, "hwg:1"))
        db.apply(rec("lwg:a", new, "hwg:2", version=2))
    # Only left learns the ancestry (e.g. from the registering writer):
    # it garbage-collects the old mapping immediately.
    left.absorb_genealogy({new: (old,)})
    assert left.garbage_collect() == 1
    assert not databases_identical([left, right])
    _exchange(left, right)
    # Right learned the edge through the exchange and collected too.
    assert [r.lwg_view for r in right.live_records("lwg:a")] == [new]


def test_merkle_exchange_bidirectional_bulk_divergence():
    left, right = NamingDatabase(), NamingDatabase()
    for i in range(50):
        shared = rec(f"lwg:s{i}", ViewId("ps", i + 1), "hwg:1")
        left.apply(shared)
        right.apply(shared)
    for i in range(7):
        left.apply(rec(f"lwg:l{i}", ViewId("pl", i + 1), "hwg:2"))
        right.apply(rec(f"lwg:r{i}", ViewId("pr", i + 1), "hwg:3"))
    transcript = _exchange(left, right)
    assert len(left) == len(right) == 64
    # Only the divergent records travel, not the shared base.
    shipped = sum(len(delta.records) for _, delta in transcript)
    assert shipped == 14


def test_merkle_exchange_respects_round_cap():
    from repro.naming.reconciliation import merkle_exchange

    left, right = NamingDatabase(), NamingDatabase()
    for i in range(10):
        left.apply(rec(f"lwg:l{i}", ViewId("pl", i + 1), "hwg:1"))
        right.apply(rec(f"lwg:r{i}", ViewId("pr", i + 1), "hwg:2"))
    transcript = merkle_exchange(left, right, max_rounds=1)
    assert len(transcript) == 1  # opener only — no convergence
    assert not databases_identical([left, right])


def test_merkle_session_answers_steps_without_prior_state():
    """Steps are self-describing: a fresh session can answer any of them."""
    from repro.naming.reconciliation import MerkleSession

    left, right = NamingDatabase(), NamingDatabase()
    for i in range(6):
        left.apply(rec(f"lwg:{i}", ViewId("p", i + 1), "hwg:1"))
    opener = MerkleSession(left).opener()
    # The responder session is created, answers, and is thrown away
    # between every step (simulating crash/teardown on its side).
    step = opener
    sides = [right, left]
    for hop in range(16):
        out = MerkleSession(sides[hop % 2]).handle(step)
        if out is None:
            break
        step = out
    assert databases_identical([left, right])
