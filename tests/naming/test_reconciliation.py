"""Tests for the pure reconciliation arithmetic."""

from repro.naming import MappingRecord, NamingDatabase, absorb, databases_consistent
from repro.naming.reconciliation import genealogy_to_send, records_to_send
from repro.vsync.view import ViewId


def rec(lwg, view, hwg, version=1, writer="w"):
    return MappingRecord(
        lwg=lwg, lwg_view=view, lwg_members=("m",), hwg=hwg,
        hwg_view=ViewId("h", 1), version=version, writer=writer,
    )


def test_absorb_applies_new_records():
    db = NamingDatabase()
    result = absorb(db, [rec("lwg:a", ViewId("p", 1), "hwg:1")], {})
    assert result.applied == 1
    assert result.touched_lwgs == {"lwg:a"}


def test_absorb_ignores_stale_records():
    db = NamingDatabase()
    view = ViewId("p", 1)
    db.apply(rec("lwg:a", view, "hwg:NEW", version=5))
    result = absorb(db, [rec("lwg:a", view, "hwg:OLD", version=1)], {})
    assert result.applied == 0 and result.ignored == 1


def test_absorb_genealogy_first_enables_gc():
    """A record plus the genealogy that obsoletes an old one, in one batch."""
    db = NamingDatabase()
    old_view, new_view = ViewId("p", 1), ViewId("p", 2)
    db.apply(rec("lwg:a", old_view, "hwg:1"))
    result = absorb(
        db,
        [rec("lwg:a", new_view, "hwg:2", version=2)],
        {new_view: (old_view,)},
    )
    assert result.applied == 1
    assert [r.lwg_view for r in db.live_records("lwg:a")] == [new_view]


def test_genealogy_only_update_can_gc():
    db = NamingDatabase()
    v1, v2 = ViewId("p", 1), ViewId("p", 2)
    db.apply(rec("lwg:a", v1, "hwg:1"))
    db.apply(rec("lwg:a", v2, "hwg:2", version=2))
    result = absorb(db, [], {v2: (v1,)})
    assert result.gc_removed == 1


def test_push_pull_exchange_converges_two_replicas():
    db1, db2 = NamingDatabase(), NamingDatabase()
    db1.apply(rec("lwg:a", ViewId("p0", 1), "hwg:1"))
    db2.apply(rec("lwg:b", ViewId("p5", 1), "hwg:2"))
    # Simulate the 3-message exchange.
    to_db1 = records_to_send(db2, db1.digest())
    absorb(db1, to_db1, genealogy_to_send(db2, db1.genealogy_edges()))
    to_db2 = records_to_send(db1, db2.digest())
    absorb(db2, to_db2, genealogy_to_send(db1, db2.genealogy_edges()))
    assert databases_consistent([db1, db2])
    assert len(db1.live_records("lwg:a")) == 1
    assert len(db1.live_records("lwg:b")) == 1


def test_genealogy_to_send_skips_known_children():
    db = NamingDatabase()
    child = ViewId("p", 2)
    db.absorb_genealogy({child: (ViewId("p", 1),)})
    assert genealogy_to_send(db, [child]) == {}
    assert child in genealogy_to_send(db, [])


def test_databases_consistent_detects_divergence():
    db1, db2 = NamingDatabase(), NamingDatabase()
    db1.apply(rec("lwg:a", ViewId("p", 1), "hwg:1"))
    assert not databases_consistent([db1, db2])
    assert databases_consistent([db1])


def test_idempotent_absorb():
    db = NamingDatabase()
    record = rec("lwg:a", ViewId("p", 1), "hwg:1")
    absorb(db, [record], {})
    result = absorb(db, [record], {})
    assert result.applied == 0
    assert len(db) == 1
