"""Unit tests for the Merkle-prefix digest tree."""

import pytest

from repro.naming.merkle import (
    DEFAULT_DEPTH,
    EMPTY_HASH,
    MerklePrefixTree,
    key_digest,
)
from repro.vsync.view import ViewId


def key(i, coord="p"):
    return (f"lwg:{i}", ViewId(coord, i))


def order(version=1, writer="w"):
    return (version, writer)


def filled(n, **kwargs):
    tree = MerklePrefixTree(**kwargs)
    for i in range(n):
        tree.update(key(i), order())
    return tree


def test_empty_tree_hashes_to_empty():
    tree = MerklePrefixTree()
    assert tree.root_hash() == EMPTY_HASH
    assert tree.children("") == {}
    assert len(tree) == 0


def test_key_digest_is_seed_independent():
    # A fixed pin: if this ever changes, replicas of different builds
    # would place keys in different buckets and never converge.  The
    # first two characters are the LWG's shard (sha256 of the bare
    # name), so every view of one LWG shares a depth-2 subtree.
    assert key_digest(("lwg:a", ViewId("p0", 1))).startswith("4c79921b")
    assert key_digest(("lwg:a", ViewId("p0", 1))) == key_digest(
        ("lwg:a", ViewId("p0", 1))
    )
    assert key_digest(("lwg:a", ViewId("p0", 1))) != key_digest(
        ("lwg:a", ViewId("p0", 2))
    )
    # ...but different views of one LWG stay in the same shard prefix.
    assert key_digest(("lwg:a", ViewId("p0", 2))).startswith("4c")


def test_same_contents_same_hash_any_insertion_order():
    a = MerklePrefixTree()
    b = MerklePrefixTree()
    for i in range(30):
        a.update(key(i), order())
    for i in reversed(range(30)):
        b.update(key(i), order())
    assert a.root_hash() == b.root_hash()
    assert a.children("") == b.children("")


def test_update_changes_root_and_remove_restores_it():
    tree = filled(10)
    before = tree.root_hash()
    tree.update(key(99), order())
    assert tree.root_hash() != before
    tree.remove(key(99))
    assert tree.root_hash() == before


def test_order_key_change_changes_hash():
    tree = filled(5)
    before = tree.root_hash()
    tree.update(key(2), order(version=2))
    assert tree.root_hash() != before
    tree.update(key(2), order(version=2))  # idempotent re-update
    after = tree.root_hash()
    tree.update(key(2), order(version=2))
    assert tree.root_hash() == after


def test_remove_unknown_key_is_a_noop():
    tree = filled(3)
    before = tree.root_hash()
    tree.remove(key(999))
    assert tree.root_hash() == before and len(tree) == 3


def test_children_are_sparse():
    tree = MerklePrefixTree()
    tree.update(key(1), order())
    prefix = key_digest(key(1))[:1]
    kids = tree.children("")
    assert set(kids) == {prefix}
    assert kids[prefix] != EMPTY_HASH
    assert tree.node_hash("f" * DEFAULT_DEPTH) in (EMPTY_HASH,) or True


def test_divergence_is_localized_to_one_subtree():
    a, b = filled(40), filled(40)
    extra = key(1000)
    a.update(extra, order())
    bucket = key_digest(extra)[:DEFAULT_DEPTH]
    for level in range(DEFAULT_DEPTH + 1):
        prefix = bucket[:level]
        assert a.node_hash(prefix) != b.node_hash(prefix)
    # Every sibling subtree off the divergent path still agrees.
    for level in range(DEFAULT_DEPTH):
        parent = bucket[:level]
        for child, digest in a.children(parent).items():
            if parent + child != bucket[: level + 1]:
                assert b.node_hash(parent + child) == digest


def test_keys_under_and_leaf_digest():
    tree = filled(25)
    assert sorted(tree.keys_under("")) == sorted(key(i) for i in range(25))
    digest = tree.leaf_digest("")
    assert len(digest) == 25 and digest[key(3)] == order()
    bucket = key_digest(key(7))[:DEFAULT_DEPTH]
    assert key(7) in tree.keys_under(bucket)
    assert key(7) in tree.leaf_digest(bucket[:2])


def test_contains_and_len():
    tree = filled(4)
    assert key(2) in tree and key(44) not in tree
    assert len(tree) == 4


def test_is_bucket():
    tree = MerklePrefixTree(depth=2)
    assert not tree.is_bucket("a")
    assert tree.is_bucket("ab")
    assert tree.is_bucket("abc")  # at-or-below bucket depth


def test_depth_must_be_positive():
    with pytest.raises(ValueError):
        MerklePrefixTree(depth=0)


def test_clone_is_independent():
    tree = filled(12)
    root = tree.root_hash()
    copy = tree.clone()
    assert copy.root_hash() == root
    copy.update(key(77), order())
    assert copy.root_hash() != root
    assert tree.root_hash() == root  # original untouched
    assert key(77) not in tree
    tree.remove(key(0))
    assert key(0) in copy


def test_trees_of_different_depth_stay_internally_consistent():
    shallow = filled(20, depth=1)
    deep = filled(20, depth=6)
    assert len(shallow) == len(deep) == 20
    assert sorted(shallow.keys_under("")) == sorted(deep.keys_under(""))
