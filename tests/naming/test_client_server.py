"""End-to-end tests of naming client and servers over the sim network."""

from tests.helpers import run_until

from repro.naming import MappingRecord, NameServer, NamingClient, databases_consistent
from repro.sim import SECOND
from repro.vsync import GroupAddressing, ProtocolStack
from repro.vsync.view import ViewId


def setup(env, num_servers=2, clients=("p0",)):
    server_ids = [f"ns{i}" for i in range(num_servers)]
    servers = {i: NameServer(env, i, peers=server_ids) for i in server_ids}
    addressing = GroupAddressing()
    stacks = {c: ProtocolStack(env, c, addressing) for c in clients}
    naming_clients = {c: NamingClient(stacks[c], server_ids) for c in clients}
    return servers, stacks, naming_clients


def rec(client, lwg, view, hwg, members=("p0",)):
    return MappingRecord(
        lwg=lwg, lwg_view=view, lwg_members=members, hwg=hwg,
        hwg_view=ViewId("h", 1), version=client.next_version(), writer=client.node,
    )


def test_set_then_read(env):
    servers, stacks, clients = setup(env)
    client = clients["p0"]
    replies = []
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"))
    client.read("lwg:a", lambda records: replies.append(records))
    env.sim.run_until(1 * SECOND)
    assert replies and replies[0][0].hwg == "hwg:1"


def test_testset_returns_existing_mapping(env):
    servers, stacks, clients = setup(env)
    client = clients["p0"]
    replies = []
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"))
    env.sim.run_until(1 * SECOND)
    proposal = rec(client, "lwg:a", ViewId("p0", 99), "hwg:LOSER")
    client.testset(proposal, on_reply=lambda records: replies.append(records))
    env.sim.run_until(2 * SECOND)
    hwgs = {r.hwg for r in replies[0]}
    assert "hwg:1" in hwgs
    # The losing proposal was not installed at the contacted server.
    assert all(not db_has(servers, "hwg:LOSER") for _ in [0])


def db_has(servers, hwg):
    return any(
        any(r.hwg == hwg for r in s.db.snapshot()) for s in servers.values()
    )


def test_testset_installs_when_absent(env):
    servers, stacks, clients = setup(env)
    client = clients["p0"]
    replies = []
    proposal = rec(client, "lwg:new", ViewId("p0", 1), "hwg:mine")
    client.testset(proposal, on_reply=lambda records: replies.append(records))
    env.sim.run_until(1 * SECOND)
    assert replies[0][0].hwg == "hwg:mine"


def test_eager_push_replicates_writes(env):
    servers, stacks, clients = setup(env)
    client = clients["p0"]
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"))
    env.sim.run_until(1 * SECOND)
    assert databases_consistent([s.db for s in servers.values()])
    assert all(len(s.db) == 1 for s in servers.values())


def test_unset_tombstones_mapping(env):
    servers, stacks, clients = setup(env)
    client = clients["p0"]
    view = ViewId("p0", 1)
    client.set(rec(client, "lwg:a", view, "hwg:1"))
    env.sim.run_until(1 * SECOND)
    tombstone = MappingRecord(
        lwg="lwg:a", lwg_view=view, lwg_members=("p0",), hwg="hwg:1",
        hwg_view=ViewId("h", 1), version=client.next_version(),
        writer=client.node, deleted=True,
    )
    client.unset(tombstone)
    env.sim.run_until(2 * SECOND)
    assert all(s.db.live_records("lwg:a") == [] for s in servers.values())


def test_client_retries_on_unreachable_server(env):
    servers, stacks, clients = setup(env, num_servers=2)
    client = clients["p0"]
    # Cut the client off from whichever server it would try first;
    # rotation must find the other one.
    env.network.set_partitions([["p0", "ns1"], ["ns0"]])
    replies = []
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"),
               on_reply=lambda records: replies.append(records))
    assert run_until(env, lambda: bool(replies), timeout_s=5)
    assert client.retries >= 0  # rotation may or may not have been needed
    assert len(servers["ns1"].db) == 1


def test_gossip_reconciles_after_partition(env):
    servers, stacks, clients = setup(env, num_servers=2, clients=("p0", "p5"))
    env.network.set_partitions([["p0", "ns0"], ["p5", "ns1"]])
    c0, c5 = clients["p0"], clients["p5"]
    c0.set(rec(c0, "lwg:a", ViewId("p0", 1), "hwg:1"))
    c5.set(rec(c5, "lwg:a", ViewId("p5", 1), "hwg:2", members=("p5",)))
    env.sim.run_until(2 * SECOND)
    assert len(servers["ns0"].db) == 1
    assert len(servers["ns1"].db) == 1
    env.network.heal()
    assert run_until(
        env,
        lambda: databases_consistent([servers["ns0"].db, servers["ns1"].db])
        and len(servers["ns0"].db) == 2,
        timeout_s=5,
    )


def test_multiple_mappings_callback_reaches_coordinators(env):
    servers, stacks, clients = setup(env, num_servers=2, clients=("p0", "p5"))
    callbacks = {"p0": [], "p5": []}
    for node, client in clients.items():
        client.on_multiple_mappings = (
            lambda msg, n=node: callbacks[n].append(msg)
        )
    env.network.set_partitions([["p0", "ns0"], ["p5", "ns1"]])
    c0, c5 = clients["p0"], clients["p5"]
    c0.set(rec(c0, "lwg:a", ViewId("p0", 1), "hwg:1", members=("p0",)))
    c5.set(rec(c5, "lwg:a", ViewId("p5", 1), "hwg:2", members=("p5",)))
    env.sim.run_until(2 * SECOND)
    env.network.heal()
    assert run_until(env, lambda: callbacks["p0"] and callbacks["p5"], timeout_s=5)
    message = callbacks["p0"][0]
    assert message.lwg == "lwg:a"
    assert len(message.records) == 2


def test_synced_servers_short_circuit_gossip(env):
    """Once replicas match byte-for-byte, anti-entropy degenerates to a
    hash handshake: in_sync replies, no digests or records shipped."""
    servers, stacks, clients = setup(env)
    client = clients["p0"]
    client.set(rec(client, "lwg:a", ViewId("p0", 1), "hwg:1"))
    env.sim.run_until(2 * SECOND)  # push + at least one full exchange
    from repro.naming import databases_identical
    assert databases_identical([s.db for s in servers.values()])
    before = {i: s.syncs_short_circuited for i, s in servers.items()}
    env.sim.run_until(5 * SECOND)  # several quiet gossip periods
    shorted = sum(
        s.syncs_short_circuited - before[i] for i, s in servers.items()
    )
    assert shorted >= 4
    assert databases_identical([s.db for s in servers.values()])
    # A fresh write breaks the fixed point; gossip must still converge it.
    client.set(rec(client, "lwg:b", ViewId("p0", 2), "hwg:2"))
    assert run_until(
        env,
        lambda: databases_identical([s.db for s in servers.values()])
        and len(servers["ns0"].db) == 2,
        timeout_s=5,
    )


def test_three_servers_converge(env):
    servers, stacks, clients = setup(env, num_servers=3)
    client = clients["p0"]
    for i in range(5):
        client.set(rec(client, f"lwg:g{i}", ViewId("p0", i + 1), f"hwg:{i}"))
    assert run_until(
        env,
        lambda: databases_consistent([s.db for s in servers.values()])
        and len(servers["ns0"].db) == 5,
        timeout_s=5,
    )
