"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and
prints it in paper shape (rows = parameter points, columns = service
flavours).  Absolute numbers come from the simulator's cost model, not
the authors' 1996 testbed — the assertions check the *shape*: who wins,
by roughly what factor, and how curves grow with n.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

FLAVOURS = ("none", "static", "dynamic")

#: The group-count axis of Figure 2 (the paper sweeps the number of
#: groups per set; we use powers of two up to 8 to keep runs quick).
FIGURE2_NS = (1, 2, 4, 8)

SEED = 2000  # fixed seed: benchmarks are deterministic re-runs
