"""Soak benchmark: convergence under sustained randomized churn.

Drives the full stack with seeded random join/leave/crash/recover/
partition/heal schedules (the same driver as the soak tests) and
measures how long the system needs to quiesce after the churn stops —
every group back to one view with exactly the expected members and one
naming record.
"""

from conftest import SEED

from repro.core import LwgConfig
from repro.metrics import format_table, shape_check
from repro.sim import SECOND
from repro.workloads import ChurnDriver, ChurnModel, Cluster

SCHEDULES = (
    ("join/leave only", ChurnModel(crash_weight=0, recover_weight=0,
                                   partition_weight=0, heal_weight=0)),
    ("with crashes", ChurnModel(partition_weight=0, heal_weight=0)),
    ("with partitions", ChurnModel(crash_weight=0, recover_weight=0)),
    ("everything", ChurnModel()),
)


def run_soak():
    rows = []
    for label, model in SCHEDULES:
        config = LwgConfig()
        config.policy_period_us = 2 * SECOND
        config.shrink_grace_us = 1 * SECOND
        cluster = Cluster(
            num_processes=6, seed=SEED, num_name_servers=2,
            lwg_config=config, keep_trace=False,
        )
        driver = ChurnDriver(cluster, groups=["c0", "c1", "c2"], seed=SEED, model=model)
        driver.seed_membership(per_group=3)
        driver.run(steps=18)
        churn_end = cluster.env.now
        ok, detail = driver.wait_for_quiesce(timeout_seconds=150)
        assert ok, f"{label}: {detail}"
        quiesce_ms = (cluster.env.now - churn_end) / 1000
        actions = len(driver.log)
        rows.append([label, actions, f"{quiesce_ms:.0f} ms", "yes"])
    return rows


def test_churn_soak(benchmark):
    rows = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    print(
        format_table(
            "Soak — quiesce time after 18 random churn actions (6 procs, 3 groups)",
            ["schedule", "actions applied", "churn-end to quiesced", "consistent?"],
            rows,
        )
    )
    check = shape_check(
        "every schedule quiesces to the expected membership",
        all(row[3] == "yes" for row in rows),
    )
    print(check)
    assert check.startswith("[PASS]")
