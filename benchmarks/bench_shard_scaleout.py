"""Naming scale-out: sharded replica sets vs full replication.

PROTOCOLS.md §18 shards the naming service by LWG-name hash, pinning
each shard to a rendezvous-hashed replica set of ``replication_factor``
servers.  The payoff claimed there is *scale-out*: adding servers
divides the per-server load instead of multiplying the replication
bill.  This bench sweeps the roster 4 -> 16 -> 64 at rf=3 under a fixed
write campaign and checks both halves of that claim:

* per-server outbound naming bytes, message count and resident records
  all *fall* (or at worst stay flat) as the roster grows — the work is
  divided, not duplicated;
* at 16 servers the sharded deployment costs ≤0.35x the
  fully-replicated equivalent in per-server bytes and records.

The wall-clock twin lives in the CI-gated suite as
``naming.shard_scaleout`` (``python -m repro bench``), recorded in
``benchmarks/baseline.json``.
"""

from conftest import SEED

from repro.bench.suite import SCALEOUT_RF, SCALEOUT_SWEEP, shard_scaleout_workload
from repro.metrics import series_table, shape_check


def run_scaleout():
    sweep = [
        shard_scaleout_workload(SEED, n, SCALEOUT_RF) for n in SCALEOUT_SWEEP
    ]
    full_16 = shard_scaleout_workload(SEED, 16, 0)
    return sweep, full_16


def test_shard_scaleout(benchmark):
    sweep, full_16 = benchmark.pedantic(run_scaleout, rounds=1, iterations=1)
    by_n = dict(zip(SCALEOUT_SWEEP, sweep))
    print(
        series_table(
            f"Naming scale-out — n servers at rf={SCALEOUT_RF}, fixed write campaign",
            "n",
            list(SCALEOUT_SWEEP),
            {
                "bytes/server": [r["bytes_per_server"] for r in sweep],
                "msgs/server": [r["msgs_per_server"] for r in sweep],
                "records/server": [r["records_per_server"] for r in sweep],
                "records max": [r["records_max"] for r in sweep],
            },
            note=f"fully-replicated n=16 for comparison: "
            f"{full_16['bytes_per_server']:.0f} bytes/server, "
            f"{full_16['records_per_server']:.0f} records/server",
        )
    )
    bytes_ratio = by_n[16]["bytes_per_server"] / full_16["bytes_per_server"]
    records_ratio = by_n[16]["records_per_server"] / full_16["records_per_server"]
    checks = [
        shape_check(
            f"per-server bytes fall with roster growth "
            f"({by_n[4]['bytes_per_server']:.0f} -> {by_n[64]['bytes_per_server']:.0f})",
            by_n[64]["bytes_per_server"] <= 1.1 * by_n[4]["bytes_per_server"],
        ),
        shape_check(
            f"per-server records fall with roster growth "
            f"({by_n[4]['records_per_server']:.0f} -> {by_n[64]['records_per_server']:.0f})",
            by_n[64]["records_per_server"] <= 1.1 * by_n[4]["records_per_server"],
        ),
        shape_check(
            f"sharded/full bytes at n=16 ({bytes_ratio:.3f}) <= 0.35",
            bytes_ratio <= 0.35,
        ),
        shape_check(
            f"sharded/full records at n=16 ({records_ratio:.3f}) <= 0.35",
            records_ratio <= 0.35,
        ),
        shape_check(
            "no client retries at any roster size",
            all(r["client_retries"] == 0 for r in sweep),
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
