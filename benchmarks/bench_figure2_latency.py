"""Figure 2 (panel: data-transfer latency).

Paper: "In data transfer, a static LWG service is much worse than
dynamic LWG service or even no LWG service at all due to problems of
interference among unrelated groups."

Regenerates mean message latency vs the number of groups per set (n)
for the three services and checks the paper's ordering: static is
clearly worse; dynamic tracks the no-service baseline closely.
"""

import statistics

from conftest import FIGURE2_NS, FLAVOURS, SEED

from repro.metrics import series_table, shape_check
from repro.workloads import build_figure2, measure_latency


def run_latency_scan():
    results = {flavour: [] for flavour in FLAVOURS}
    for n in FIGURE2_NS:
        for flavour in FLAVOURS:
            setup = build_figure2(n=n, flavour=flavour, seed=SEED)
            stats = measure_latency(setup, probes_per_group=6)
            results[flavour].append(stats.mean_us / 1000.0)
    return results


def test_figure2_latency(benchmark):
    results = benchmark.pedantic(run_latency_scan, rounds=1, iterations=1)
    print(
        series_table(
            "Figure 2 — latency vs n (2 sets x n groups, 4 processes each)",
            "n",
            list(FIGURE2_NS),
            results,
            unit="ms",
            note="paper shape: static >> dynamic ~ none",
        )
    )
    static = statistics.fmean(results["static"])
    dynamic = statistics.fmean(results["dynamic"])
    none = statistics.fmean(results["none"])
    checks = [
        shape_check(
            f"static latency ({static:.2f}ms) > 1.2x dynamic ({dynamic:.2f}ms)",
            static > 1.2 * dynamic,
        ),
        shape_check(
            f"dynamic ({dynamic:.2f}ms) within 25% of none ({none:.2f}ms)",
            dynamic <= 1.25 * none,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
