"""Hot-path cost of the simulated network fabric.

Not a paper figure — this pins down the per-delivery cost of
:meth:`Network.multicast` and :meth:`Network.send` after the fan-out
rewrite:

* the per-call ``sorted(dsts)`` is memoized per distinct destination
  set (protocol layers multicast to the same view membership over and
  over);
* delivery callbacks are pooled slotted objects instead of one lambda
  closure per scheduled delivery;
* the per-destination loop inlines the reachability check and the
  delivery-time model with hoisted attribute lookups.

The workloads are shared with the headless suite behind
``python -m repro bench`` (``fabric.multicast_fanout`` and
``fabric.unicast_storm``), so numbers here and in
``benchmarks/baseline.json`` are directly comparable.

Run with::

    pytest benchmarks/bench_fabric.py --benchmark-only -s
"""

from __future__ import annotations

from repro.bench.suite import multicast_fanout_workload, unicast_storm_workload

from conftest import SEED

FANOUT_NODES = 24
FANOUT_ROUNDS = 1500
STORM_PAIRS = 8
STORM_MESSAGES = 12_000


def test_multicast_fanout(benchmark):
    """One sender multicasting to a fixed 23-receiver set, every ms."""

    def run():
        return multicast_fanout_workload(
            SEED, nodes=FANOUT_NODES, rounds=FANOUT_ROUNDS
        )

    net = benchmark(run)
    expected = FANOUT_ROUNDS * (FANOUT_NODES - 1)
    assert net.messages_delivered == expected
    assert net.deliveries_scheduled == expected
    print(f"\ndeliveries: {net.messages_delivered}")


def test_unicast_storm(benchmark):
    """Disjoint node pairs exchanging unicast messages back and forth."""

    def run():
        return unicast_storm_workload(
            SEED, pairs=STORM_PAIRS, messages=STORM_MESSAGES
        )

    net = benchmark(run)
    assert net.messages_delivered == STORM_MESSAGES
    print(f"\ndeliveries: {net.messages_delivered}")
