"""Ablation: failure-detector timeout vs recovery time and stability.

The FD timeout trades detection speed against false suspicions: the
paper's "virtual partitions" (Section 4) are exactly FD timeouts firing
on an overloaded-but-healthy network.  We sweep the timeout and measure

* total crash-recovery time (detection dominates — it should track the
  timeout almost 1:1), and
* false suspicions under heavy but healthy load (shorter timeouts start
  manufacturing virtual partitions).
"""

from conftest import SEED

from repro.metrics import series_table, shape_check
from repro.sim import MS, SECOND
from repro.vsync.stack import VsyncConfig
from repro.workloads import Cluster
from repro.workloads.traffic import probe_payload

TIMEOUTS_MS = (200, 350, 700)


def converged(handles, size):
    views = [h.view for h in handles]
    return (
        all(v is not None for v in views)
        and len({v.view_id for v in views}) == 1
        and all(len(v.members) == size for v in views)
    )


def run_sweep():
    recovery_ms = []
    false_suspicions = []
    for timeout_ms in TIMEOUTS_MS:
        vsync = VsyncConfig()
        vsync.fd_timeout_us = timeout_ms * MS
        cluster = Cluster(
            num_processes=4, seed=SEED, vsync_config=vsync, keep_trace=False
        )
        handles = [cluster.service(i).join("g") for i in range(4)]
        assert cluster.run_until(lambda: converged(handles, 4), timeout_us=20 * SECOND)
        cluster.run_for_seconds(1)
        # Heavy-but-healthy load phase: count spurious view changes.
        views_before = sum(
            cluster.stack(i).endpoints[handles[0].hwg].views_installed
            for i in range(4)
        )
        for burst in range(6):
            for i in range(4):
                for k in range(25):
                    handles[i].send(probe_payload(cluster.env, k), size=512)
            cluster.run_for_seconds(1)
        views_after = sum(
            cluster.stack(i).endpoints[handles[0].hwg].views_installed
            for i in range(4)
        )
        false_suspicions.append(views_after - views_before)
        # Crash-recovery phase.
        crash_at = cluster.env.now
        cluster.crash(3)
        assert cluster.run_until(
            lambda: converged(handles[:3], 3), timeout_us=30 * SECOND
        )
        recovery_ms.append((cluster.env.now - crash_at) / 1000.0)
    return recovery_ms, false_suspicions


def test_fd_timeout_ablation(benchmark):
    recovery_ms, false_suspicions = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print(
        series_table(
            "Ablation — FD timeout vs recovery and stability",
            "timeout (ms)",
            list(TIMEOUTS_MS),
            {
                "crash recovery (ms)": recovery_ms,
                "spurious view changes under load": [float(x) for x in false_suspicions],
            },
            note="recovery tracks the timeout; too-short timeouts manufacture "
            "virtual partitions under load",
        )
    )
    checks = [
        shape_check(
            f"recovery grows with the timeout ({recovery_ms[0]:.0f} -> {recovery_ms[-1]:.0f}ms)",
            recovery_ms[-1] > recovery_ms[0],
        ),
        shape_check(
            "recovery is timeout-dominated (within timeout + 200ms slack)",
            all(r <= t + 200 for r, t in zip(recovery_ms, TIMEOUTS_MS)),
        ),
        shape_check(
            f"the paper-scale timeout (350ms) is stable under load "
            f"(spurious={false_suspicions[1]})",
            false_suspicions[1] == 0,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
