"""Configuration B (precursor paper [8]): overlapping group sets.

Two sets of n groups over p0..p3 and p2..p5 (p2, p3 in both).  The
dynamic heuristics must find the *partial* sharing structure: one HWG
per membership class, with the overlap processes in both — a mapping the
static design cannot express and the no-service design pays 2n groups'
worth of machinery for.
"""

import statistics

from conftest import SEED

from repro.metrics import series_table, shape_check
from repro.workloads.overlap import (
    build_overlap,
    measure_overlap_latency,
    measure_overlap_recovery,
)

NS = (2, 4, 8)
FLAVOURS = ("none", "static", "dynamic", "optimizer")

#: Scan rows -> (cluster flavour, placement policy).  "optimizer" is
#: the dynamic service with the §19 global placement search instead of
#: the Figure-1 rules; it must find the same partial-sharing structure.
_VARIANTS = {
    "none": ("none", "paper"),
    "static": ("static", "paper"),
    "dynamic": ("dynamic", "paper"),
    "optimizer": ("dynamic", "optimizer"),
}


def class_pure(setup):
    """True if no HWG carries LWGs of both membership classes."""
    classes_on = {}
    for (group, _node), handle in setup.handles.items():
        cls = "A" if group in setup.groups_a else "B"
        classes_on.setdefault(handle.hwg, set()).add(cls)
    return all(len(cs) == 1 for cs in classes_on.values())


def run_overlap_scan():
    latency = {flavour: [] for flavour in FLAVOURS}
    recovery = {flavour: [] for flavour in FLAVOURS}
    hwg_counts = {flavour: [] for flavour in FLAVOURS}
    purity = []
    for n in NS:
        for flavour in FLAVOURS:
            cluster_flavour, placement = _VARIANTS[flavour]
            setup = build_overlap(
                n=n, flavour=cluster_flavour, seed=SEED, placement=placement
            )
            hwg_counts[flavour].append(len(setup.hwgs_in_use()))
            if flavour == "optimizer":
                purity.append(class_pure(setup))
            stats = measure_overlap_latency(setup)
            latency[flavour].append(stats.mean_us / 1000.0)
            fresh = build_overlap(
                n=n, flavour=cluster_flavour, seed=SEED, placement=placement
            )
            recovery[flavour].append(measure_overlap_recovery(fresh) / 1000.0)
    return latency, recovery, hwg_counts, purity


def test_overlap_configuration(benchmark):
    latency, recovery, hwg_counts, optimizer_purity = benchmark.pedantic(
        run_overlap_scan, rounds=1, iterations=1
    )
    print(
        series_table(
            "Configuration B — latency vs n (overlapping sets p0-p3 / p2-p5)",
            "n",
            list(NS),
            latency,
            unit="ms",
        )
    )
    print(
        series_table(
            "Configuration B — heavy-weight groups used",
            "n",
            list(NS),
            {f: [float(x) for x in hwg_counts[f]] for f in FLAVOURS},
        )
    )
    print(
        series_table(
            "Configuration B — crash recovery of an overlap member (p3) vs n",
            "n",
            list(NS),
            recovery,
            unit="ms",
            note="p3 belongs to BOTH classes: all 2n groups must reconfigure",
        )
    )
    static_lat = statistics.fmean(latency["static"])
    dynamic_lat = statistics.fmean(latency["dynamic"])
    none_lat = statistics.fmean(latency["none"])
    none_rec_first, none_rec_last = recovery["none"][0], recovery["none"][-1]
    dynamic_rec_last = recovery["dynamic"][-1]
    checks = [
        shape_check(
            "dynamic stabilises on 2 HWGs (one per membership class, "
            f"not collapsed across the 50% overlap): {hwg_counts['dynamic']}",
            all(c == 2 for c in hwg_counts["dynamic"]),
        ),
        shape_check(
            f"no-service uses 2n HWGs: {hwg_counts['none']}",
            hwg_counts["none"] == [2 * n for n in NS],
        ),
        shape_check(
            f"static latency ({static_lat:.2f}ms) >= dynamic ({dynamic_lat:.2f}ms)",
            static_lat >= dynamic_lat,
        ),
        shape_check(
            "no-service recovery grows with n "
            f"({none_rec_first:.1f} -> {none_rec_last:.1f}ms)",
            none_rec_last > 1.5 * none_rec_first,
        ),
        shape_check(
            f"dynamic recovery far below no-service at n={NS[-1]} "
            f"({dynamic_rec_last:.1f} vs {none_rec_last:.1f}ms)",
            dynamic_rec_last < 0.6 * none_rec_last,
        ),
        shape_check(
            f"dynamic latency within 30% of none ({dynamic_lat:.2f} vs {none_lat:.2f}ms)",
            dynamic_lat <= 1.3 * none_lat,
        ),
        shape_check(
            "optimizer never collapses across the 50% overlap "
            f"(every HWG single-class): {optimizer_purity}",
            all(optimizer_purity),
        ),
        shape_check(
            "optimizer keeps a bounded per-class pool, not 2n like "
            # The §19 cost model may split a hot class in two for load
            # balance (skew term) — partial sharing is preserved, the
            # pool never grows with n the way no-service's does.
            f"no-service: {hwg_counts['optimizer']} vs {hwg_counts['none']}",
            all(c <= 4 for c in hwg_counts["optimizer"])
            and hwg_counts["optimizer"][0] == 2,
        ),
        shape_check(
            "optimizer latency within 30% of the Figure-1 rules "
            f"({statistics.fmean(latency['optimizer']):.2f} vs {dynamic_lat:.2f}ms)",
            statistics.fmean(latency["optimizer"]) <= 1.3 * dynamic_lat,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
