"""Scalability: how many LWGs can one HWG carry, and how many nodes
can one deployment carry?

The repo's scalability story now has three independent axes:

* **group axis** (this file) — LWGs multiplexed onto one HWG.  The
  service's whole premise is that co-mapping is cheap, so each
  additional group must cost ~nothing in join latency and background
  traffic;
* **node axis** (this file) — simulated nodes in one deployment, flat
  vs zoned membership (PROTOCOLS.md §20).  Flat failure detection is
  O(n²) datagrams/period and O(n) tracked peers; the zoned gossip
  substrate must cut both enough to make n=1024 affordable;
* **naming-roster axis** (``bench_shard_scaleout.py``) — name servers
  added to a sharded deployment (PROTOCOLS.md §18).  Per-server naming
  load must *fall* as the roster grows, not replicate.

A regression on one axis says nothing about the others — the shape
checks below are labelled per axis so CI failures name the right
one.  The group-axis bench sweeps the number of LWGs multiplexed onto
a single 4-member HWG and measures what each additional group costs:

* join latency for the k-th group (naming round-trip + one ordered view
  message — must stay flat);
* per-message delivery latency with all k groups active (the ordered
  channel is shared, so load rises with k);
* background traffic rate (heartbeats/beacons/stability are *per HWG*,
  not per LWG — the sharing win over one-HWG-per-group).
"""

from conftest import SEED

from repro.metrics import series_table, shape_check
from repro.sim import MS, SECOND
from repro.workloads import Cluster
from repro.workloads.traffic import ProbeHub, ProbeListener, probe_payload

K_VALUES = (1, 4, 16, 64)


def run_scaling():
    join_ms = []
    latency_ms = []
    background_msgs_per_s = []
    for k in K_VALUES:
        cluster = Cluster(num_processes=4, seed=SEED + k, keep_trace=False)
        hub = ProbeHub(env=cluster.env)
        handles = {}
        # First group establishes the HWG.
        for i in range(4):
            handles[("g0", i)] = cluster.service(i).join(
                "g0", ProbeListener(hub, cluster.node_id(i))
            )
        cluster.run_for_seconds(5)
        # Add groups 1..k-1 and time the last join.
        last_join_ms = 0.0
        for g in range(1, k):
            name = f"g{g}"
            start = cluster.env.now
            for i in range(4):
                handles[(name, i)] = cluster.service(i).join(
                    name, ProbeListener(hub, cluster.node_id(i))
                )
            assert cluster.run_until(
                lambda n=name: all(
                    handles[(n, i)].view is not None
                    and len(handles[(n, i)].view.members) == 4
                    for i in range(4)
                ),
                timeout_us=20 * SECOND,
            ), name
            last_join_ms = (cluster.env.now - start) / 1000
        join_ms.append(last_join_ms)
        # All groups co-mapped?
        hwgs = {h.hwg for h in handles.values()}
        assert len(hwgs) == 1, hwgs
        # Light traffic on every group (paced: one send per 5ms so the
        # measurement reflects per-message cost, not a self-made burst).
        for round_no in range(3):
            for g in range(k):
                index = round_no * k + g
                cluster.env.sim.schedule(
                    index * 5 * MS,
                    lambda g=g, r=round_no: handles[(f"g{g}", 0)].send(
                        probe_payload(cluster.env, r)
                    ),
                )
        cluster.run_for(3 * k * 5 * MS + 2 * SECOND)
        stats = hub.latency.summary()
        latency_ms.append(stats.mean_us / 1000 if stats else 0.0)
        # Background (quiet) traffic rate.
        before = cluster.env.network.messages_sent
        cluster.run_for_seconds(5)
        background_msgs_per_s.append(
            (cluster.env.network.messages_sent - before) / 5
        )
    return join_ms, latency_ms, background_msgs_per_s


def test_lwgs_per_hwg_scaling(benchmark):
    join_ms, latency_ms, background = benchmark.pedantic(
        run_scaling, rounds=1, iterations=1
    )
    print(
        series_table(
            "Scalability — k LWGs multiplexed on one 4-member HWG",
            "k",
            list(K_VALUES),
            {
                "k-th join (ms)": join_ms,
                "delivery latency (ms)": latency_ms,
                "background msgs/s": background,
            },
            note="joins and background load must not grow with k "
            "(the resource-sharing premise)",
        )
    )
    checks = [
        shape_check(
            f"group axis: join latency flat in k "
            f"({join_ms[1]:.0f} -> {join_ms[-1]:.0f}ms)",
            join_ms[-1] <= 3 * max(join_ms[1], 1),
        ),
        # HWG machinery (heartbeats/beacons/stability) is per-HWG and
        # stays flat in k; the PR-7 coordinator mapping audit adds one
        # periodic naming read *per LWG*, so total background grows
        # mildly with k — the sharing win shows in the per-group rate
        # collapsing, not in a flat total.
        shape_check(
            f"group axis: background traffic sub-linear in k "
            f"({background[0]:.0f} -> {background[-1]:.0f}/s total; "
            f"{background[0]:.1f} -> {background[-1] / K_VALUES[-1]:.1f}/s per group)",
            background[-1] <= 3 * background[0] + 10
            and background[-1] / K_VALUES[-1] <= 0.2 * background[0],
        ),
        shape_check(
            f"group axis: delivery latency bounded "
            f"({latency_ms[0]:.2f} -> {latency_ms[-1]:.2f}ms)",
            latency_ms[-1] < 20,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)


# ----------------------------------------------------------------------
# Node axis: flat vs zoned membership at 64/256/1024 nodes (§20)
# ----------------------------------------------------------------------
N_VALUES = (64, 256, 1024)
N_ZONES = {64: 4, 256: 4, 1024: 8}


def run_node_scaling():
    from repro.workloads.scale import fd_census, fd_dynamics

    flat_dgrams, zoned_dgrams = [], []
    flat_tracked, zoned_tracked = [], []
    for n in N_VALUES:
        flat = fd_census(SEED, n, "flat")
        zoned = fd_census(SEED, n, "zoned", N_ZONES[n])
        flat_dgrams.append(flat["datagrams_per_period"])
        zoned_dgrams.append(zoned["datagrams_per_period"])
        flat_tracked.append(flat["tracked_peers_max"])
        zoned_tracked.append(zoned["tracked_peers_max"])
    # Heal dynamics on the real fabric.  Flat stops at n=64: its O(n²)
    # datagram load is the wall this axis exists to demonstrate (the
    # n=256 census already prices it at 65k datagrams per 100ms).
    heal_ms = {
        "flat-64": fd_dynamics(SEED, 64, "flat"),
        "zoned-64": fd_dynamics(SEED, 64, "zoned", 4),
        "zoned-256": fd_dynamics(SEED, 256, "zoned", 4),
    }
    heal_ms = {
        key: outcome["heal_convergence_us"] / 1000
        for key, outcome in heal_ms.items()
    }
    return flat_dgrams, zoned_dgrams, flat_tracked, zoned_tracked, heal_ms


def test_membership_node_scaling(benchmark):
    flat_dgrams, zoned_dgrams, flat_tracked, zoned_tracked, heal_ms = (
        benchmark.pedantic(run_node_scaling, rounds=1, iterations=1)
    )
    ratios = [z / f for z, f in zip(zoned_dgrams, flat_dgrams)]
    print(
        series_table(
            "Scalability — flat vs zoned membership, n nodes",
            "n",
            list(N_VALUES),
            {
                "flat FD datagrams/period": flat_dgrams,
                "zoned FD datagrams/period": zoned_dgrams,
                "zoned/flat ratio": ratios,
                "flat tracked peers (max)": flat_tracked,
                "zoned tracked peers (max)": zoned_tracked,
            },
            note="zoned heal convergence: "
            + ", ".join(f"{k}={v:.0f}ms" for k, v in heal_ms.items()),
        )
    )
    checks = [
        shape_check(
            f"node axis: zoned <= 0.25x flat FD datagrams at n=256 "
            f"(ratio {ratios[1]:.3f})",
            ratios[1] <= 0.25,
        ),
        shape_check(
            f"node axis: flat FD volume is the O(n²) wall "
            f"({flat_dgrams[0]} -> {flat_dgrams[-1]}/period), zoned stays "
            f"sub-quadratic ({zoned_dgrams[0]} -> {zoned_dgrams[-1]}/period)",
            flat_dgrams[-1] >= 200 * flat_dgrams[0]
            and zoned_dgrams[-1] <= 40 * zoned_dgrams[0],
        ),
        shape_check(
            f"node axis: zoned tracked-peer state is zone-local, not global "
            f"({zoned_tracked[-1]} of {N_VALUES[-1] - 1} peers at n=1024)",
            zoned_tracked[-1] <= N_VALUES[-1] // 4
            and flat_tracked[-1] == N_VALUES[-1] - 1,
        ),
        shape_check(
            "node axis: partition heal re-converges within 2s "
            + ", ".join(f"{k}={v:.0f}ms" for k, v in heal_ms.items()),
            all(0 < v <= 2000 for v in heal_ms.values()),
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
