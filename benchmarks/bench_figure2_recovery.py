"""Figure 2 (panel: crash-recovery time).

Paper: "the advantage of having dynamic LWGs over having no LWG service
are clear in the recovery time figure, which shows the benefits of
resource sharing."

A member of set A crashes while every group carries traffic.  Without
the service, each of the n affected user groups runs its own recovery
protocol (flush + view change); with the dynamic service a single HWG
reconfiguration covers them all.  We report the post-detection
*reconfiguration* time (failure detection itself is a process-wide
shared cost identical across flavours) and check the paper's shape:
the no-service curve grows with n, the dynamic curve stays flat.
"""

from conftest import FIGURE2_NS, FLAVOURS, SEED

from repro.metrics import series_table, shape_check
from repro.workloads import build_figure2, measure_recovery


def run_recovery_scan():
    reconfig = {flavour: [] for flavour in FLAVOURS}
    total = {flavour: [] for flavour in FLAVOURS}
    for n in FIGURE2_NS:
        for flavour in FLAVOURS:
            setup = build_figure2(n=n, flavour=flavour, seed=SEED)
            result = measure_recovery(setup)
            reconfig[flavour].append(result.reconfig_us / 1000.0)
            total[flavour].append(result.total_us / 1000.0)
    return reconfig, total


def test_figure2_recovery(benchmark):
    reconfig, total = benchmark.pedantic(run_recovery_scan, rounds=1, iterations=1)
    print(
        series_table(
            "Figure 2 — recovery (reconfiguration) time vs n",
            "n",
            list(FIGURE2_NS),
            reconfig,
            unit="ms",
            note="post-detection protocol work; detection (~350ms FD timeout) is common",
        )
    )
    print(
        series_table(
            "Figure 2 — recovery (crash-to-recovered, incl. detection) vs n",
            "n",
            list(FIGURE2_NS),
            total,
            unit="ms",
        )
    )
    none_first, none_last = reconfig["none"][0], reconfig["none"][-1]
    dyn_last = reconfig["dynamic"][-1]
    checks = [
        shape_check(
            f"no-service reconfiguration grows with n ({none_first:.1f} -> {none_last:.1f}ms)",
            none_last > 2 * none_first,
        ),
        shape_check(
            f"dynamic stays far below no-service at n={FIGURE2_NS[-1]} "
            f"({dyn_last:.1f} vs {none_last:.1f}ms)",
            dyn_last < 0.5 * none_last,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
