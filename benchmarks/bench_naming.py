"""Naming-service benchmarks (Section 5.2 / 6.1 design choices).

* **reconciliation cost** — merging two replicas that diverged by N
  mappings each: time and records exchanged, vs N.  Reconciliation is
  the heal-time hot path, so it must scale linearly in the delta.
* **callback vs poll** — Section 6.1 rejects periodic polling because it
  "could load the servers with unnecessary requests".  We count naming
  messages under the callback design and compare with the polling
  traffic the paper's alternative would generate.
* **Merkle descent at scale** — anti-entropy between two 100k-record
  replicas with a small divergence: bytes on the wire and rounds to
  convergence vs the flat-digest exchange it replaced (PROTOCOLS.md
  §16).
"""

from conftest import SEED

from repro.metrics import format_table, series_table, shape_check
from repro.naming import MappingRecord, NamingDatabase, absorb
from repro.naming.reconciliation import genealogy_to_send, records_to_send
from repro.sim import SECOND
from repro.vsync.view import ViewId
from repro.workloads import build_partition_scenario

DB_SIZES = (10, 100, 1000)


def build_diverged_pair(n):
    """Two replicas, each holding n mappings the other lacks."""
    left, right = NamingDatabase(), NamingDatabase()
    for i in range(n):
        left.apply(MappingRecord(
            lwg=f"lwg:l{i}", lwg_view=ViewId("pl", i), lwg_members=("pl",),
            hwg=f"hwg:l{i % 7}", hwg_view=ViewId("h", i), version=1, writer="pl",
        ), parents=[ViewId("pl", i - 1)] if i else [])
        right.apply(MappingRecord(
            lwg=f"lwg:r{i}", lwg_view=ViewId("pr", i), lwg_members=("pr",),
            hwg=f"hwg:r{i % 7}", hwg_view=ViewId("h", i), version=1, writer="pr",
        ), parents=[ViewId("pr", i - 1)] if i else [])
    return left, right


def reconcile_pair(left, right):
    """The 3-message push-pull exchange, as pure computation."""
    to_left = records_to_send(right, left.digest())
    absorb(left, to_left, genealogy_to_send(right, left.genealogy_edges()))
    to_right = records_to_send(left, right.digest())
    absorb(right, to_right, genealogy_to_send(left, right.genealogy_edges()))
    return len(to_left) + len(to_right)


def test_reconciliation_cost_scales_linearly(benchmark):
    def scan():
        rows = []
        for n in DB_SIZES:
            left, right = build_diverged_pair(n)
            exchanged = reconcile_pair(left, right)
            rows.append([n, exchanged, len(left), len(right)])
        return rows

    rows = benchmark.pedantic(scan, rounds=1, iterations=1)
    print(
        format_table(
            "Naming reconciliation — records exchanged vs divergence",
            ["mappings per side", "records exchanged", "left size", "right size"],
            rows,
        )
    )
    checks = [
        shape_check(
            "exchange volume is exactly the divergence (2n)",
            all(row[1] == 2 * row[0] for row in rows),
        ),
        shape_check(
            "replicas converge to the union",
            all(row[2] == row[3] == 2 * row[0] for row in rows),
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)


def test_reconcile_1000_mappings(benchmark):
    """Raw speed of a 1000-vs-1000 record reconciliation."""

    def run():
        left, right = build_diverged_pair(1000)
        return reconcile_pair(left, right)

    exchanged = benchmark(run)
    assert exchanged == 2000


def test_merkle_descent_100k(benchmark):
    """Anti-entropy at 100k records: the descent pays for the delta only.

    Same workload the CI-gated suite runs (``naming.reconcile_delta``):
    two replicas sharing 100k records, each with a few dozen fresh and
    re-versioned mappings, reconciled by the real ``MerkleSession``
    loop with every step priced at its wire size.
    """
    from repro.bench.suite import reconcile_delta_workload

    def run():
        return reconcile_delta_workload(SEED)

    # Two rounds: the first builds the shared base, the kept (best)
    # round forks clones from it — the steady-state reconcile cost.
    events, extra = benchmark.pedantic(run, rounds=2, iterations=1)
    print(
        format_table(
            "Merkle-prefix descent vs flat-digest exchange — "
            f"{extra['records']} records per replica",
            ["metric", "value"],
            [
                ["records diverged", extra["records_shipped"]],
                ["descent rounds", extra["rounds"]],
                ["descent bytes", extra["merkle_bytes"]],
                ["flat-exchange bytes", extra["flat_bytes"]],
                ["bytes ratio", extra["bytes_ratio"]],
                ["steady-state handshake bytes", extra["steady_bytes"]],
            ],
        )
    )
    checks = [
        shape_check(
            f"descent ships <= 0.1x the flat exchange "
            f"({extra['merkle_bytes']} vs {extra['flat_bytes']} bytes)",
            extra["merkle_bytes"] <= 0.1 * extra["flat_bytes"],
        ),
        shape_check(
            f"convergence in O(log n) rounds ({extra['rounds']})",
            extra["rounds"] <= 10,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)


def test_callback_vs_poll_traffic(benchmark):
    """Section 6.1: "One possible way is to require group members to
    periodically inquire one of the reachable name servers.
    Unfortunately, this could load the servers with unnecessary
    requests.  Instead, we use the callback approach."

    Steady-state comparison over a quiet window: a converged system with
    no partitions.  The callback design costs nothing while nothing
    changes; the rejected polling design pays one read per member per
    LWG per poll period, forever.
    """

    QUIET_SECONDS = 30
    POLL_PERIOD_S = 0.5  # a plausible discovery-poll period

    def run():
        scenario = build_partition_scenario(num_groups=2, seed=SEED)
        cluster = scenario.cluster
        cluster.heal()
        assert cluster.run_until(scenario.converged, timeout_us=60 * SECOND)
        cluster.run_for_seconds(3)  # post-heal dust settles
        served_before = sum(s.requests_served for s in cluster.name_servers.values())
        callbacks_before = sum(
            s.notifier.notifications_sent for s in cluster.name_servers.values()
        )
        cluster.run_for_seconds(QUIET_SECONDS)
        served = sum(s.requests_served for s in cluster.name_servers.values())
        callbacks = sum(
            s.notifier.notifications_sent for s in cluster.name_servers.values()
        )
        members = len(scenario.side_a) + len(scenario.side_b)
        poll_equivalent = int(
            members * len(scenario.groups) * QUIET_SECONDS / POLL_PERIOD_S
        )
        return served - served_before, callbacks - callbacks_before, poll_equivalent

    requests, callbacks, poll_equivalent = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        format_table(
            "Section 6.1 — steady-state discovery load on the name servers "
            f"({QUIET_SECONDS}s quiet window)",
            ["design", "server requests"],
            [
                ["callbacks (implemented)", requests],
                ["  ... of which push callbacks", callbacks],
                ["per-member polling (rejected)", poll_equivalent],
            ],
        )
    )
    check = shape_check(
        f"callback design far below the polling equivalent "
        f"({requests} vs {poll_equivalent})",
        requests < poll_equivalent / 10,
    )
    print(check)
    assert check.startswith("[PASS]")
