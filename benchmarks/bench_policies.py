"""Figure 1: the mapping heuristics — convergence and cost.

Two claims from Section 3.2 are checked:

* **stability** — after the system converges to a good mapping, further
  policy evaluations prescribe no actions (no oscillation);
* **negligible overhead** — one policy evaluation over a realistic local
  state costs microseconds of real CPU (the paper runs it once a minute
  precisely so its cost "is negligible").
"""

from conftest import SEED

from repro.core import LwgConfig, PolicyEngine, PolicySnapshot
from repro.metrics import format_table, shape_check
from repro.sim import SECOND
from repro.workloads import Cluster


def build_converged_cluster():
    """8 processes, two 4-process sets, 3 groups per set, fast policies."""
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(num_processes=8, seed=SEED, lwg_config=config)
    handles = []
    for g in range(3):
        for i in range(4):
            handles.append(cluster.service(i).join(f"a{g}"))
        for i in range(4, 8):
            handles.append(cluster.service(i).join(f"b{g}"))
    cluster.run_for_seconds(20)
    assert all(h.is_member for h in handles)
    return cluster, handles


def run_stability():
    cluster, handles = build_converged_cluster()
    # After convergence, policy evaluations must be empty at every node.
    actions_per_round = []
    for _ in range(3):
        cluster.run_for_seconds(3)
        round_actions = 0
        for node in cluster.process_ids:
            round_actions += len(cluster.service(node).run_policies_once())
        actions_per_round.append(round_actions)
    hwgs = {h.hwg for h in handles}
    return actions_per_round, hwgs, cluster


def test_figure1_policy_stability(benchmark):
    actions_per_round, hwgs, cluster = benchmark.pedantic(
        run_stability, rounds=1, iterations=1
    )
    print(
        format_table(
            "Figure 1 — policy actions after convergence (must be zero)",
            ["round", "actions prescribed (all 8 nodes)"],
            [[i + 1, count] for i, count in enumerate(actions_per_round)],
        )
    )
    checks = [
        shape_check(
            f"converged to 2 HWGs (one per membership class): {sorted(hwgs)}",
            len(hwgs) == 2,
        ),
        shape_check(
            f"no policy oscillation after convergence: {actions_per_round}",
            actions_per_round[-1] == 0,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)


def test_figure1_policy_evaluation_cost(benchmark):
    """Micro-benchmark: one evaluation over a 50-LWG/10-HWG local state."""
    members = {f"hwg:{i:02d}": frozenset(f"p{j}" for j in range(i % 6 + 2))
               for i in range(10)}
    snapshot = PolicySnapshot(
        node="p0",
        now_us=60_000_000,
        coordinated_lwgs={
            f"lwg:g{i}": (frozenset(f"p{j}" for j in range(i % 4 + 1)),
                          f"hwg:{i % 10:02d}")
            for i in range(50)
        },
        hwg_members=members,
        local_lwgs_per_hwg={h: 5 for h in members},
        hwg_idle_since={h: 0 for h in members},
    )
    engine = PolicyEngine(LwgConfig())
    result = benchmark(engine.evaluate, snapshot)
    assert isinstance(result, list)
