"""Figure 1: the mapping heuristics — convergence and cost.

Two claims from Section 3.2 are checked:

* **stability** — after the system converges to a good mapping, further
  policy evaluations prescribe no actions (no oscillation);
* **negligible overhead** — one policy evaluation over a realistic local
  state costs microseconds of real CPU (the paper runs it once a minute
  precisely so its cost "is negligible").

A third experiment goes past the paper: at high group counts the
Figure-1 rules converge to a mapping they can never escape (see
``repro/workloads/placement.py``), and the §19 global optimizer must
beat them on both steady-state fabric traffic and crash-churn flush
work — by at least 20% each, asserted below.
"""

from conftest import SEED

from repro.core import LwgConfig, PolicyEngine, PolicySnapshot
from repro.metrics import format_table, shape_check
from repro.sim import SECOND
from repro.workloads import Cluster
from repro.workloads.placement import build_placement_scenario, measure_placement

#: Scale for the placement-policy comparison: large enough that the
#: zone collapse dominates (the paper rules are stuck paying fan-out 12
#: for 4-8 member classes), small enough that *both* flavours converge
#: deterministically — the paper rules' join machinery itself starts
#: failing to converge past ~80 LWGs on the shared medium, which would
#: leave nothing to compare against.
PLACEMENT_LWGS = 40


def build_converged_cluster(
    num_processes: int = 8,
    set_size: int = 4,
    groups_per_set: int = 3,
    settle_seconds: float = 20.0,
):
    """Disjoint `set_size`-process sets, `groups_per_set` groups on each.

    Defaults reproduce the original Figure-1 harness: 8 processes, two
    4-process sets, 3 groups per set, fast policies.
    """
    assert num_processes % set_size == 0
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(num_processes=num_processes, seed=SEED, lwg_config=config)
    handles = []
    num_sets = num_processes // set_size
    for g in range(groups_per_set):
        for s in range(num_sets):
            base = s * set_size
            name = f"s{s}" if num_sets > 26 else chr(ord("a") + s)
            for i in range(base, base + set_size):
                handles.append(cluster.service(i).join(f"{name}{g}"))
    cluster.run_for_seconds(settle_seconds)
    assert all(h.is_member for h in handles)
    return cluster, handles


def run_stability():
    cluster, handles = build_converged_cluster()
    # After convergence, policy evaluations must be empty at every node.
    actions_per_round = []
    for _ in range(3):
        cluster.run_for_seconds(3)
        round_actions = 0
        for node in cluster.process_ids:
            round_actions += len(cluster.service(node).run_policies_once())
        actions_per_round.append(round_actions)
    hwgs = {h.hwg for h in handles}
    return actions_per_round, hwgs, cluster


def test_figure1_policy_stability(benchmark):
    actions_per_round, hwgs, cluster = benchmark.pedantic(
        run_stability, rounds=1, iterations=1
    )
    print(
        format_table(
            "Figure 1 — policy actions after convergence (must be zero)",
            ["round", "actions prescribed (all 8 nodes)"],
            [[i + 1, count] for i, count in enumerate(actions_per_round)],
        )
    )
    checks = [
        shape_check(
            f"converged to 2 HWGs (one per membership class): {sorted(hwgs)}",
            len(hwgs) == 2,
        ),
        shape_check(
            f"no policy oscillation after convergence: {actions_per_round}",
            actions_per_round[-1] == 0,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)


def test_figure1_policy_evaluation_cost(benchmark):
    """Micro-benchmark: one evaluation over a 50-LWG/10-HWG local state."""
    members = {f"hwg:{i:02d}": frozenset(f"p{j}" for j in range(i % 6 + 2))
               for i in range(10)}
    snapshot = PolicySnapshot(
        node="p0",
        now_us=60_000_000,
        coordinated_lwgs={
            f"lwg:g{i}": (frozenset(f"p{j}" for j in range(i % 4 + 1)),
                          f"hwg:{i % 10:02d}")
            for i in range(50)
        },
        hwg_members=members,
        local_lwgs_per_hwg={h: 5 for h in members},
        hwg_idle_since={h: 0 for h in members},
    )
    engine = PolicyEngine(LwgConfig())
    result = benchmark(engine.evaluate, snapshot)
    assert isinstance(result, list)


def run_placement_comparison():
    """Both placements over the identical Zipf-class zone scenario."""
    results = {}
    for placement in ("paper", "optimizer"):
        setup = build_placement_scenario(
            placement, num_lwgs=PLACEMENT_LWGS, seed=SEED
        )
        results[placement] = measure_placement(setup)
    return results


def test_placement_optimizer_vs_paper(benchmark):
    """§19 acceptance: the global optimizer beats the stuck Figure-1
    mapping by ≥20% on paced-phase fabric messages AND on crash-churn
    merge/flush work, over identical simulated windows."""
    results = benchmark.pedantic(run_placement_comparison, rounds=1, iterations=1)
    paper, opt = results["paper"], results["optimizer"]
    data_ratio = opt.data_messages / paper.data_messages
    flush_ratio = opt.flush_messages / paper.flush_messages
    print(
        format_table(
            f"Placement at {PLACEMENT_LWGS} LWGs / 24 processes — "
            "Figure-1 rules vs §19 optimizer",
            ["metric", "paper", "optimizer", "ratio"],
            [
                ["fabric messages (paced data phase, no heartbeats)",
                 paper.data_messages, opt.data_messages, round(data_ratio, 3)],
                ["merge/flush messages (crash+recover churn)",
                 paper.flush_messages, opt.flush_messages, round(flush_ratio, 3)],
                ["HWGs in use", paper.hwg_count, opt.hwg_count, ""],
                ["largest HWG", paper.max_hwg_size, opt.max_hwg_size, ""],
            ],
        )
    )
    checks = [
        shape_check(
            "paper rules are stuck on one HWG per zone: "
            f"{paper.hwg_count} HWGs, largest {paper.max_hwg_size}",
            paper.hwg_count == 2 and paper.max_hwg_size == 12,
        ),
        shape_check(
            "optimizer peels the sub-window classes onto their own HWGs: "
            f"{opt.hwg_count} HWGs",
            opt.hwg_count > paper.hwg_count,
        ),
        shape_check(
            f"optimizer fabric messages <= 0.8x paper ({data_ratio:.3f})",
            data_ratio <= 0.8,
        ),
        shape_check(
            f"optimizer merge/flush work <= 0.8x paper ({flush_ratio:.3f})",
            flush_ratio <= 0.8,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
