"""Section 6 claim: heal-to-convergence time of the full pipeline.

Sweeps the scenario along two axes the paper's design cares about:

* the number of LWGs that must be reconciled (shared-flush amortisation);
* the partition side size (bigger HWG merges and LWG views).

Also exercises *virtual partitions* (Section 4): a short-lived partition
that heals before failure detection must reconcile for free.
"""

from conftest import SEED

from repro.metrics import series_table, shape_check
from repro.sim import SECOND
from repro.workloads import Cluster, build_partition_scenario


def heal_time(num_groups, side_size, seed):
    scenario = build_partition_scenario(
        num_groups=num_groups, side_size=side_size, seed=seed
    )
    cluster = scenario.cluster
    heal_at = cluster.env.now
    cluster.heal()
    assert cluster.run_until(scenario.converged, timeout_us=90 * SECOND)
    return (cluster.env.now - heal_at) / 1000.0


def run_scan():
    by_groups = [heal_time(m, 2, SEED + m) for m in (1, 2, 4)]
    by_side = [heal_time(2, s, SEED + 10 + s) for s in (2, 3, 4)]
    return by_groups, by_side


def test_heal_convergence(benchmark):
    by_groups, by_side = benchmark.pedantic(run_scan, rounds=1, iterations=1)
    print(
        series_table(
            "Heal-to-convergence vs reconciled LWGs (side size 2)",
            "LWGs",
            [1, 2, 4],
            {"convergence": by_groups},
            unit="ms",
        )
    )
    print(
        series_table(
            "Heal-to-convergence vs partition side size (2 LWGs)",
            "side size",
            [2, 3, 4],
            {"convergence": by_side},
            unit="ms",
        )
    )
    checks = [
        shape_check(
            f"convergence sub-linear in LWG count ({by_groups[0]:.0f} -> {by_groups[-1]:.0f}ms for 4x groups)",
            by_groups[-1] <= 2.5 * max(by_groups[0], 1),
        ),
        shape_check(
            f"convergence bounded in side size ({by_side[0]:.0f} -> {by_side[-1]:.0f}ms)",
            by_side[-1] <= 4 * max(by_side[0], 1),
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)


def test_virtual_partition_costs_nothing(benchmark):
    """A partition shorter than the FD timeout must not disturb mappings."""

    def run():
        cluster = Cluster(num_processes=4, seed=SEED, num_name_servers=2)
        handles = [cluster.service(i).join("g") for i in range(4)]
        assert cluster.run_until(
            lambda: all(
                h.view is not None and len(h.view.members) == 4 for h in handles
            ),
            timeout_us=15 * SECOND,
        )
        view_before = handles[0].view.view_id
        switches_before = sum(cluster.service(i).stats.switches_started for i in range(4))
        cluster.partition(["p0", "p1", "ns0"], ["p2", "p3", "ns1"])
        cluster.run_for(100_000)  # 100ms << 350ms FD timeout
        cluster.heal()
        cluster.run_for_seconds(3)
        view_after = handles[0].view.view_id
        switches_after = sum(cluster.service(i).stats.switches_started for i in range(4))
        return view_before == view_after and switches_before == switches_after

    undisturbed = benchmark.pedantic(run, rounds=1, iterations=1)
    check = shape_check(
        "virtual partition (100ms) causes no view change and no switch",
        undisturbed,
    )
    print(check)
    assert check.startswith("[PASS]")
