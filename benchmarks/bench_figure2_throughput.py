"""Figure 2 (panel: data-transfer throughput).

Regenerates aggregate delivered messages/second under saturating load
vs the number of groups per set, for the three services.  The paper's
shape: the static service collapses as unrelated groups interfere on
the single shared HWG; the dynamic service stays close to running
without the service at all.
"""

import statistics

from conftest import FIGURE2_NS, FLAVOURS, SEED

from repro.metrics import series_table, shape_check
from repro.workloads import build_figure2, measure_throughput


def run_throughput_scan():
    results = {flavour: [] for flavour in FLAVOURS}
    for n in FIGURE2_NS:
        for flavour in FLAVOURS:
            setup = build_figure2(n=n, flavour=flavour, seed=SEED)
            throughput = measure_throughput(setup, burst_per_group=30)
            results[flavour].append(throughput)
    return results


def test_figure2_throughput(benchmark):
    results = benchmark.pedantic(run_throughput_scan, rounds=1, iterations=1)
    print(
        series_table(
            "Figure 2 — throughput vs n (2 sets x n groups, 4 processes each)",
            "n",
            list(FIGURE2_NS),
            results,
            unit="msg/s",
            note="paper shape: static collapses with n; dynamic ~ none",
        )
    )
    # Compare at the largest configuration, where interference bites.
    static = results["static"][-1]
    dynamic = results["dynamic"][-1]
    none = results["none"][-1]
    checks = [
        shape_check(
            f"dynamic ({dynamic:.0f}/s) > 2x static ({static:.0f}/s) at n={FIGURE2_NS[-1]}",
            dynamic > 2 * static,
        ),
        shape_check(
            f"dynamic ({dynamic:.0f}/s) within 25% of none ({none:.0f}/s)",
            dynamic >= 0.75 * none,
        ),
        shape_check(
            "static throughput does not grow with n (saturated shared HWG)",
            results["static"][-1] <= results["static"][0] * 1.5,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
