"""Figure 5: the merge-views protocol and its resource-sharing claim.

"the algorithm merges all concurrent views of all LWGs mapped in the
same HWG in a single flush operation.  Resource sharing is promoted
because a flush for each light-weight group is avoided."

We co-map m LWGs (m = 1..6) on the same HWG pair across a partition,
heal, and count the HWG view changes (each one is a flush) needed until
every LWG has a single merged view.  The count must stay flat in m —
the naive alternative (one flush per LWG) would grow linearly.
"""

from conftest import SEED

from repro.metrics import series_table, shape_check
from repro.sim import SECOND
from repro.workloads import build_partition_scenario

M_VALUES = (1, 2, 4, 6)


def merge_flush_points(cluster, node):
    """(# merge flush points, # LWG unifications) observed at ``node``.

    A unification is either a computed merge (``lwg_views_merged``) or
    the adoption of a merge computed in an earlier flush
    (``lwg_view_adopted``).  Both fire at HWG view installations (the
    flush points of Figure 5); events sharing a flush share a timestamp.
    The paper's claim is many unifications per flush point.
    """
    times = set()
    unifications = 0
    for record in cluster.env.tracer.records:
        if record.category != "lwg" or record.event not in (
            "lwg_views_merged",
            "lwg_view_adopted",
        ):
            continue
        if record.fields.get("node") == node:
            times.add(record.time)
            unifications += 1
    return len(times), unifications


def run_merge_scan():
    flush_points = []
    merged_lwgs = []
    convergence_ms = []
    for m in M_VALUES:
        scenario = build_partition_scenario(num_groups=m, seed=SEED + m)
        cluster = scenario.cluster
        cluster.env.tracer.clear()
        heal_at = cluster.env.now
        cluster.heal()
        assert cluster.run_until(scenario.converged, timeout_us=90 * SECOND), m
        cluster.run_for_seconds(1)
        observer = scenario.side_a[0]
        points, merges = merge_flush_points(cluster, observer)
        flush_points.append(points)
        merged_lwgs.append(merges)
        convergence_ms.append((cluster.env.now - heal_at) / 1000.0)
    return flush_points, merged_lwgs, convergence_ms


def test_figure5_merge_views(benchmark):
    flush_points, merged_lwgs, convergence_ms = benchmark.pedantic(
        run_merge_scan, rounds=1, iterations=1
    )
    print(
        series_table(
            "Figure 5 — merge flush points vs co-mapped LWGs (m)",
            "m",
            list(M_VALUES),
            {
                "LWG merges performed": merged_lwgs,
                "flush points used (measured)": flush_points,
                "flush points if one per LWG (naive)": list(M_VALUES),
                "heal-to-converged (ms)": convergence_ms,
            },
            note="one flush merges every co-mapped LWG: points << m",
        )
    )
    checks = [
        shape_check(
            f"every LWG merged exactly once at the observer ({merged_lwgs})",
            merged_lwgs == list(M_VALUES),
        ),
        shape_check(
            f"flush points grow sub-linearly ({flush_points[-1]} points for "
            f"m={M_VALUES[-1]}, naive would use {M_VALUES[-1]})",
            flush_points[-1] < M_VALUES[-1],
        ),
        shape_check(
            "convergence time roughly flat in m "
            f"({convergence_ms[0]:.0f}ms -> {convergence_ms[-1]:.0f}ms)",
            convergence_ms[-1] <= 3 * max(convergence_ms[0], 1),
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
