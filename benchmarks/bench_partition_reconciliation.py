"""Figures 3-4 and Tables 3-4: the partition-reconciliation walkthrough.

Regenerates the paper's worked example end-to-end and prints the
naming-service database at each stage of Table 4:

  (Fig 3)  crossed mappings established in concurrent partitions
  (Tab 3)  merged naming database holds both partitions' mappings
  (6.1/6.2) MULTIPLE-MAPPINGS callbacks and the highest-gid switch
  (6.3/6.4) local peer discovery and the merge-views protocol
  (Tab 4-4) one merged view per LWG, obsolete mappings garbage-collected

The benchmark figure is heal-to-convergence time.
"""

from conftest import SEED

from repro.metrics import format_table, shape_check
from repro.sim import SECOND
from repro.workloads import build_partition_scenario


def snapshot_rows(scenario, stage):
    db = scenario.cluster.name_servers["ns0"].db
    rows = []
    for group in scenario.groups:
        for record in db.live_records(f"lwg:{group}"):
            rows.append([stage, f"lwg:{group}", str(record.lwg_view),
                         f"{record.hwg}@{record.hwg_view}"])
    return rows


def run_reconciliation():
    scenario = build_partition_scenario(num_groups=2, seed=SEED)
    cluster = scenario.cluster
    stages = []
    stages += snapshot_rows(scenario, "partitioned (ns0 side only)")
    heal_at = cluster.env.now
    cluster.heal()
    converged = cluster.run_until(scenario.converged, timeout_us=60 * SECOND)
    assert converged, "reconciliation did not converge"
    convergence_us = cluster.env.now - heal_at
    cluster.run_for_seconds(3)  # let naming GC settle
    stages += snapshot_rows(scenario, "healed + reconciled")
    callbacks = sum(
        cluster.service(node).reconciler.callbacks_received
        for node in scenario.side_a + scenario.side_b
    )
    switches = sum(
        cluster.service(node).reconciler.switches_initiated
        for node in scenario.side_a + scenario.side_b
    )
    merges = sum(
        cluster.service(node).merge_mgr.merges_completed
        for node in scenario.side_a + scenario.side_b
    )
    return scenario, stages, convergence_us, callbacks, switches, merges


def test_partition_reconciliation(benchmark):
    scenario, stages, convergence_us, callbacks, switches, merges = benchmark.pedantic(
        run_reconciliation, rounds=1, iterations=1
    )
    print(
        format_table(
            "Tables 3-4 — naming database across the heal",
            ["stage", "LWG", "lwg view", "mapped onto"],
            stages,
        )
    )
    db = scenario.cluster.name_servers["ns0"].db
    checks = [
        shape_check(
            f"MULTIPLE-MAPPINGS callbacks reached coordinators ({callbacks})",
            callbacks >= 1,
        ),
        shape_check(f"reconciliation switches ran ({switches})", switches >= 1),
        shape_check(f"merge-views protocol merged views ({merges})", merges >= 2),
        shape_check(
            "final naming DB: exactly one mapping per LWG (Table 4 stage 4)",
            all(len(db.live_records(f"lwg:{g}")) == 1 for g in scenario.groups),
        ),
        shape_check(
            f"heal-to-convergence {convergence_us / 1000:.0f}ms < 20s",
            convergence_us < 20 * SECOND,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
