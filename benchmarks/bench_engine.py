"""Event-loop overhead of the discrete-event engine itself.

Not a paper figure — this pins down the per-event cost of the engine's
two hot paths after the O(1) ``pending_events`` counter and the
single-pop ``run_until`` rewrite:

* ``run_until`` used to ``_peek`` the head and then re-pop it through
  ``step`` — two heap operations per event;
* ``pending_events`` used to scan the whole heap, so any driver loop
  that polls for quiescence (the fuzz runner, ``Cluster.run_until``)
  went quadratic in the number of outstanding timers.

Run with::

    pytest benchmarks/bench_engine.py --benchmark-only -s
"""

from __future__ import annotations

from repro.sim import MS, Simulation

N_EVENTS = 20_000
N_STANDING_TIMERS = 5_000


def _schedule_chain(sim: Simulation, remaining: list) -> None:
    """Each event schedules its successor: a pure event-loop workload."""

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(MS, tick)

    sim.schedule(MS, tick)


def test_event_throughput(benchmark):
    """Per-event cost of draining a long chain through ``run_until``."""

    def run():
        sim = Simulation()
        remaining = [N_EVENTS]
        _schedule_chain(sim, remaining)
        sim.run_until(N_EVENTS * 2 * MS)
        assert remaining[0] == 0
        return sim

    sim = benchmark(run)
    print(f"\nevents run: {N_EVENTS}, final t={sim.now // MS}ms")


def test_quiescence_polling_with_standing_timers(benchmark):
    """A driver loop polling ``pending_events`` between small run slices.

    With ``N_STANDING_TIMERS`` long-dated timers outstanding (the shape a
    big cluster produces: every process holds retransmit/periodic
    timers), the old O(n) scan made each poll cost ~n and the whole loop
    O(polls * n); the live counter makes each poll O(1).
    """

    def run():
        sim = Simulation()
        for i in range(N_STANDING_TIMERS):
            sim.schedule(10_000 * MS + i, lambda: None)
        remaining = [2_000]
        _schedule_chain(sim, remaining)
        polls = 0
        while sim.pending_events > N_STANDING_TIMERS:
            sim.run_until(sim.now + 5 * MS)
            polls += 1
        return polls

    polls = benchmark(run)
    print(f"\npolls: {polls}, standing timers: {N_STANDING_TIMERS}")


def test_cancellation_churn(benchmark):
    """Schedule-then-cancel churn: the counter must stay exact and cheap."""

    def run():
        sim = Simulation()
        handles = [sim.schedule(MS + i, lambda: None) for i in range(10_000)]
        for handle in handles[::2]:
            handle.cancel()
        live = sim.pending_events
        sim.run_until(2 * MS + 10_000)
        assert live == 5_000 and sim.pending_events == 0
        return live

    benchmark(run)
