"""Ablation: the k_m / k_c hysteresis parameters of Figure 1.

The paper fixes ``k_m = k_c = 4`` and argues the resulting 75%/25%
hysteresis band prevents oscillation.  This ablation sweeps the
parameters on a workload with a borderline group (a 2-member LWG
co-mapped with a 4-member HWG — exactly half):

* aggressive settings (k_m = 2: "minority" at <= 50%) evict the small
  group into its own HWG;
* the paper's settings (k_m = 4: minority at <= 25%) leave it shared.

Both outcomes must be *stable* — no further switching once settled.
"""

from conftest import SEED

from repro.core import LwgConfig
from repro.metrics import format_table, shape_check
from repro.sim import SECOND
from repro.workloads import Cluster


def run_with_params(k_m, k_c):
    config = LwgConfig()
    config.k_m = k_m
    config.k_c = k_c
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    cluster = Cluster(num_processes=4, seed=SEED, lwg_config=config)
    big = [cluster.service(i).join("big") for i in range(4)]
    cluster.run_for_seconds(6)
    small = [cluster.service(i).join("small") for i in range(2)]
    cluster.run_for_seconds(6)
    co_mapped_initially = small[0].hwg == big[0].hwg
    cluster.run_for_seconds(20)
    switches = sum(
        cluster.service(i).stats.switches_committed for i in range(4)
    )
    cluster.run_for_seconds(10)
    switches_late = sum(
        cluster.service(i).stats.switches_committed for i in range(4)
    )
    return {
        "k_m": k_m,
        "k_c": k_c,
        "co_mapped_initially": co_mapped_initially,
        "separated": small[0].hwg != big[0].hwg,
        "switches": switches,
        "oscillating": switches_late > switches,
        "small_ok": all(h.is_member and len(h.view.members) == 2 for h in small),
    }


def run_sweep():
    return [run_with_params(k_m, k_c) for k_m, k_c in ((4, 4), (2, 2), (8, 8))]


def test_km_kc_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print(
        format_table(
            "Ablation — k_m/k_c hysteresis on a half-size co-mapped LWG",
            ["k_m", "k_c", "separated?", "switches", "oscillating?", "healthy?"],
            [
                [r["k_m"], r["k_c"], r["separated"], r["switches"],
                 r["oscillating"], r["small_ok"]]
                for r in rows
            ],
            note="paper defaults (4,4) keep the half-size group shared; "
            "aggressive (2,2) evicts it; both must settle",
        )
    )
    paper, aggressive, conservative = rows
    checks = [
        shape_check("paper defaults (4,4) keep the 50% group co-mapped",
                    not paper["separated"]),
        shape_check("aggressive (2,2) evicts the 50% group", aggressive["separated"]),
        shape_check("conservative (8,8) keeps it co-mapped",
                    not conservative["separated"]),
        shape_check("no configuration oscillates",
                    not any(r["oscillating"] for r in rows)),
        shape_check("the small LWG stays healthy in every configuration",
                    all(r["small_ok"] for r in rows)),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
