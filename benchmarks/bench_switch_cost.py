"""Ablation: the run-time cost of the switch protocol (Section 3.1).

The paper runs the heuristics "once every minute... this also makes the
overhead of executing the heuristics and running the switch protocol
negligible".  This bench quantifies a single switch:

* **blackout** — how long the group's senders are suspended (between
  ``SwitchStart`` and ``SwitchCommit`` members buffer sends);
* **no loss** — every message offered during the switch is delivered
  exactly once at every member;
* **bystander isolation** — a co-mapped LWG that is *not* switching
  keeps delivering throughout.
"""

from conftest import SEED

from repro.core import LwgConfig, LwgListener
from repro.metrics import format_table, shape_check
from repro.sim import MS, SECOND
from repro.workloads import Cluster


class Recorder(LwgListener):
    def __init__(self, env):
        self.env = env
        self.deliveries = []  # (time, payload)

    def on_data(self, lwg, src, payload, size):
        self.deliveries.append((self.env.now, payload))


def run_switch_measurement():
    config = LwgConfig()
    config.enable_policies = False  # we trigger the switch manually
    cluster = Cluster(num_processes=6, seed=SEED, lwg_config=config)
    moving = [cluster.service(i).join("moving") for i in range(2)]
    stayer = [cluster.service(i).join("stayer") for i in range(2, 4)]
    recorders = {
        "moving": Recorder(cluster.env),
        "stayer": Recorder(cluster.env),
    }
    cluster.service(1).join("moving", recorders["moving"])
    cluster.service(3).join("stayer", recorders["stayer"])
    cluster.run_for_seconds(8)
    assert moving[0].view is not None and len(moving[0].view.members) == 2
    # Put both groups on the same HWG for the bystander test.
    if stayer[0].hwg != moving[0].hwg:
        local = cluster.service(2).table.local("lwg:stayer")
        cluster.service(2).start_switch(local, moving[0].hwg, reason="setup")
        assert cluster.run_until(
            lambda: stayer[0].hwg == moving[0].hwg, timeout_us=15 * SECOND
        )
    cluster.run_for_seconds(2)

    # Continuous traffic on both groups (until stopped for the count).
    sent = {"moving": 0, "stayer": 0}
    pumping = {"on": True}

    def pump(group, handle, period):
        def tick():
            if not pumping["on"]:
                return
            sent[group] += 1
            handle.send((group, sent[group]), size=64)
            cluster.stack(0).set_timer(period, tick)

        tick()

    pump("moving", moving[0], 20 * MS)
    pump("stayer", stayer[0], 20 * MS)
    cluster.run_for_seconds(1)

    # Trigger the switch of "moving" to a fresh HWG.
    local = cluster.service(0).table.local("lwg:moving")
    switch_started = cluster.env.now
    cluster.service(0).start_switch(local, None, reason="bench")
    old_hwg = moving[0].hwg
    assert cluster.run_until(
        lambda: moving[0].hwg != old_hwg, timeout_us=20 * SECOND
    )
    switch_done = cluster.env.now
    cluster.run_for_seconds(1)
    pumping["on"] = False  # stop offering, then let everything drain
    cluster.run_for_seconds(3)

    # Blackout: the largest delivery gap at the member recorder around
    # the switch window.
    times = [t for t, (g, _) in recorders["moving"].deliveries if g == "moving"]
    gaps = [(b - a, a) for a, b in zip(times, times[1:])]
    blackout_us = max(
        (gap for gap, at in gaps if switch_started - SECOND <= at <= switch_done + SECOND),
        default=0,
    )
    stayer_times = [t for t, (g, _) in recorders["stayer"].deliveries if g == "stayer"]
    stayer_gap_us = max(
        (b - a for a, b in zip(stayer_times, stayer_times[1:])
         if switch_started - SECOND <= a <= switch_done + SECOND),
        default=0,
    )
    moving_payloads = [p for _, (g, p) in recorders["moving"].deliveries if g == "moving"]
    lost = sent["moving"] - len(moving_payloads)
    duplicated = len(moving_payloads) - len(set(moving_payloads))
    return {
        "switch_duration_ms": (switch_done - switch_started) / 1000,
        "blackout_ms": blackout_us / 1000,
        "bystander_gap_ms": stayer_gap_us / 1000,
        "lost": lost,
        "duplicated": duplicated,
    }


def test_switch_cost(benchmark):
    result = benchmark.pedantic(run_switch_measurement, rounds=1, iterations=1)
    print(
        format_table(
            "Switch protocol cost (one LWG re-mapped under traffic)",
            ["metric", "value"],
            [
                ["switch duration", f"{result['switch_duration_ms']:.0f} ms"],
                ["sender blackout (max delivery gap)", f"{result['blackout_ms']:.0f} ms"],
                ["co-mapped bystander max gap", f"{result['bystander_gap_ms']:.0f} ms"],
                ["messages lost", result["lost"]],
                ["messages duplicated", result["duplicated"]],
            ],
        )
    )
    checks = [
        shape_check("no message lost across the switch", result["lost"] == 0),
        shape_check("no message duplicated", result["duplicated"] == 0),
        shape_check(
            f"blackout bounded ({result['blackout_ms']:.0f}ms < 3s)",
            result["blackout_ms"] < 3000,
        ),
        shape_check(
            "bystander barely disturbed "
            f"({result['bystander_gap_ms']:.0f}ms < blackout + 500ms)",
            result["bystander_gap_ms"] <= result["blackout_ms"] + 500,
        ),
    ]
    print("\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks)
