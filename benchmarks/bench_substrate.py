"""Substrate characterization: the vsync layer and the simulator itself.

Not a paper figure — these pin down the baseline costs every other
benchmark builds on: ordered-multicast delivery latency in the HWG
substrate, view-change turnaround, and raw simulator event throughput.
"""

from conftest import SEED

from repro.metrics import format_table, shape_check
from repro.sim import SECOND, SimEnv, Simulation
from repro.vsync import GroupAddressing, HwgListener, ProtocolStack


class Counter(HwgListener):
    def __init__(self):
        self.delivered = 0
        self.views = 0

    def on_data(self, group, src, payload, size):
        self.delivered += 1

    def on_view(self, group, view):
        self.views += 1


def build_group(n, seed=SEED):
    env = SimEnv.create(seed=seed, keep_trace=False)
    addressing = GroupAddressing()
    stacks = [ProtocolStack(env, f"p{i}", addressing) for i in range(n)]
    listeners = [Counter() for _ in range(n)]
    endpoints = [s.endpoint("g", listeners[i]) for i, s in enumerate(stacks)]
    for endpoint in endpoints:
        endpoint.join()
    env.sim.run_until(4 * SECOND)
    ids = {e.current_view.view_id for e in endpoints if e.current_view}
    assert len(ids) == 1 and all(e.current_view for e in endpoints)
    return env, stacks, endpoints, listeners


def test_ordered_multicast_wall_throughput(benchmark):
    """Wall-clock cost of pushing 500 ordered multicasts through a
    4-member HWG (simulator + protocol overhead per message)."""
    def run():
        env, stacks, endpoints, listeners = build_group(4)
        for i in range(500):
            endpoints[i % 4].send(("m", i), size=200)
        env.sim.run_until(env.sim.now + 30 * SECOND)
        total = sum(l.delivered for l in listeners)
        assert total == 500 * 4, total
        return total

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 2000


def test_view_change_turnaround(benchmark):
    """Simulated time for one join-triggered view change in a 4-member HWG."""

    def run():
        env, stacks, endpoints, listeners = build_group(4)
        addressing = stacks[0].addressing
        start = env.sim.now
        late = ProtocolStack(env, "late", addressing)
        endpoint = late.endpoint("g", Counter())
        endpoint.join()
        while not (
            endpoint.current_view is not None
            and all(
                e.current_view is not None
                and e.current_view.view_id == endpoint.current_view.view_id
                for e in endpoints
            )
        ):
            if not env.sim.step():
                raise AssertionError("join never completed")
        return (env.sim.now - start) / 1000.0

    turnaround_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            "Substrate — join-triggered view change turnaround",
            ["metric", "value"],
            [["join-to-common-view (simulated)", f"{turnaround_ms:.1f} ms"]],
        )
    )
    assert turnaround_ms < 2000


def test_simulator_event_throughput(benchmark):
    """Raw event-loop speed: schedule/dispatch of 100k no-op events."""

    def run():
        sim = Simulation()
        count = 100_000
        for i in range(count):
            sim.schedule(i, lambda: None)
        return sim.run()

    assert benchmark(run) == 100_000


def test_view_change_cost_vs_group_size(benchmark):
    """Flush/view-change turnaround as the HWG grows (4 -> 16 members).

    View changes are the substrate's scarce resource — the LWG service
    exists to amortise them — so their cost growth with group size is
    the background against which sharing pays off.
    """
    from repro.metrics import series_table

    sizes = (4, 8, 16)

    def run():
        results = []
        for n in sizes:
            env, stacks, endpoints, _ = build_group(n, seed=SEED + n)
            addressing = stacks[0].addressing
            start = env.sim.now
            late = ProtocolStack(env, "zlate", addressing)
            endpoint = late.endpoint("g", Counter())
            endpoint.join()
            while not (
                endpoint.current_view is not None
                and all(
                    e.current_view is not None
                    and e.current_view.view_id == endpoint.current_view.view_id
                    for e in endpoints
                )
            ):
                if not env.sim.step():
                    raise AssertionError(f"join never completed at n={n}")
            results.append((env.sim.now - start) / 1000.0)
        return results

    turnarounds = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        series_table(
            "Substrate — join-triggered view change vs HWG size",
            "members",
            list(sizes),
            {"turnaround": turnarounds},
            unit="ms",
        )
    )
    # Sub-quadratic growth: the flush is linear in members (one
    # state+fill+done exchange each) plus shared-medium serialization.
    assert turnarounds[-1] < 8 * turnarounds[0]
