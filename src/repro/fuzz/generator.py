"""Random schedule generation from stream-split seeds.

One :class:`ScheduleGenerator` is built from a root seed; iteration
``i`` draws every choice from ``RngRegistry(root).fork(f"iter:{i}")``,
so:

* the whole campaign is reproducible from ``(seed, profile)`` alone;
* iterations are mutually independent — re-running iteration 17 never
  requires generating iterations 0..16 first;
* adding a new kind of random choice consumes from its own named stream
  and leaves existing draws untouched (runs stay comparable across
  fuzzer changes).

Profiles weight the step mix:

``partition``  multi-way splits, partial heals (re-partitions with
               coarser blocks), light churn;
``churn``      join/leave/crash/recover heavy, occasional splits;
``mixed``      everything, including message bursts (the default);
``recovery``   crash_recover/corrupt_state heavy — durable-state
               reloads, incarnation bumps and corrupted stores under
               concurrent partitions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..naming.persistence import CORRUPTION_MODES
from ..sim.engine import MS
from ..sim.rng import RngRegistry
from .schedule import Schedule, Step

PROFILES = ("partition", "churn", "mixed", "recovery")

#: step kind -> weight, per profile.
_PROFILE_WEIGHTS: Dict[str, Dict[str, float]] = {
    "partition": {
        "partition": 5.0,
        "heal": 3.0,
        "crash": 0.5,
        "recover": 0.5,
        "join": 1.5,
        "leave": 0.5,
        "burst": 1.5,
        "settle": 0.5,
    },
    "churn": {
        "partition": 0.5,
        "heal": 1.0,
        "crash": 1.5,
        "recover": 1.5,
        "join": 4.0,
        "leave": 2.5,
        "burst": 1.0,
        "settle": 0.5,
    },
    "mixed": {
        "partition": 1.5,
        "heal": 2.0,
        "crash": 1.0,
        "recover": 1.0,
        "join": 3.0,
        "leave": 2.0,
        "burst": 2.0,
        "settle": 0.5,
        "crash_recover": 0.7,
        "corrupt_state": 0.5,
    },
    "recovery": {
        "partition": 1.5,
        "heal": 2.0,
        "crash": 0.5,
        "recover": 0.5,
        "join": 2.0,
        "leave": 1.0,
        "burst": 1.0,
        "settle": 0.5,
        "crash_recover": 3.0,
        "corrupt_state": 2.5,
    },
}

_DELAY_CHOICES_US = (600 * MS, 1_000 * MS, 1_500 * MS, 2_000 * MS)

#: ``crash_recover``/``corrupt_state`` downtime choices.
_DOWN_CHOICES_US = (200 * MS, 500 * MS, 1_000 * MS, 2_000 * MS)


@dataclass
class GeneratorConfig:
    """Shape of the generated scenarios."""

    num_processes: int = 6
    num_name_servers: int = 2
    #: 0 = legacy fully-replicated naming; >0 shards the namespace with
    #: this many replicas per shard (PROTOCOLS.md §18).
    replication_factor: int = 0
    #: LWG→HWG placement strategy ("paper" or "optimizer", §19).
    placement: str = "paper"
    #: Membership topology ("flat" or "zoned", §20) and the zone count
    #: when zoned.  Zoned campaigns also weight in ``relay_crash`` steps
    #: that fail-stop whichever node is a zone's primary relay at apply
    #: time, exercising relay fail-over.
    topology: str = "flat"
    zones: int = 0
    num_groups: int = 3
    min_steps: int = 8
    max_steps: int = 16
    max_partition_blocks: int = 3
    max_burst: int = 6
    #: Members initially joined per group (overlapping layouts emerge
    #: because groups sample from the same small process pool).
    initial_per_group: int = 3


class ScheduleGenerator:
    """Derives one deterministic :class:`Schedule` per iteration index."""

    def __init__(
        self,
        seed: int,
        profile: str = "mixed",
        config: GeneratorConfig | None = None,
    ):
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r} (want one of {PROFILES})")
        self.seed = int(seed)
        self.profile = profile
        self.config = config or GeneratorConfig()
        self.registry = RngRegistry(self.seed)

    # ------------------------------------------------------------------
    def generate(self, index: int) -> Schedule:
        """The schedule for iteration ``index`` (independent of others)."""
        fork = self.registry.fork(f"iter:{index}")
        rng = fork.stream("schedule")
        config = self.config
        processes = [f"p{i}" for i in range(config.num_processes)]
        servers = [f"ns{i}" for i in range(config.num_name_servers)]
        groups = tuple(f"s{i}" for i in range(config.num_groups))

        initial = self._initial_membership(rng, processes, groups)
        steps = self._steps(rng, processes, servers, groups, initial)
        # Non-default variants key the label (and thus the digest pins)
        # distinctly; the plain paper/flat form is byte-identical to the
        # pre-variant corpus.
        variant = []
        if config.placement != "paper":
            variant.append(config.placement)
        if config.topology == "zoned":
            variant.append(f"zoned{config.zones or 4}")
        tail = "-".join(variant + [f"{index:04d}"])
        return Schedule(
            seed=fork.stream("cluster-seed").randrange(2**31),
            num_processes=config.num_processes,
            num_name_servers=config.num_name_servers,
            replication_factor=config.replication_factor,
            placement=config.placement,
            topology=config.topology,
            zones=(config.zones or 4) if config.topology == "zoned" else 0,
            groups=groups,
            initial_members=initial,
            steps=steps,
            profile=self.profile,
            label=f"fuzz-{self.seed}-{self.profile}-{tail}",
        )

    # ------------------------------------------------------------------
    def _initial_membership(
        self,
        rng: random.Random,
        processes: Sequence[str],
        groups: Sequence[str],
    ) -> Dict[str, Tuple[str, ...]]:
        """Overlapping group layouts over one shared process pool."""
        per_group = min(self.config.initial_per_group, len(processes))
        layout: Dict[str, Tuple[str, ...]] = {}
        for group in groups:
            size = rng.randint(max(1, per_group - 1), per_group)
            members = rng.sample(list(processes), size)
            layout[group] = tuple(sorted(members))
        return layout

    def _random_blocks(
        self,
        rng: random.Random,
        processes: Sequence[str],
        servers: Sequence[str],
    ) -> Tuple[Tuple[str, ...], ...]:
        """A random multi-way split; every block gets a server while they
        last (round-robin), so minority blocks can still resolve names."""
        num_blocks = rng.randint(2, min(self.config.max_partition_blocks, len(processes)))
        pool = list(processes)
        rng.shuffle(pool)
        # Random block sizes that sum to len(pool), each >= 1 (singleton
        # blocks are an explicitly wanted case).
        cuts = sorted(rng.sample(range(1, len(pool)), num_blocks - 1))
        blocks: List[List[str]] = []
        previous = 0
        for cut in cuts + [len(pool)]:
            blocks.append(pool[previous:cut])
            previous = cut
        for index, server in enumerate(servers):
            blocks[index % len(blocks)].append(server)
        return tuple(tuple(block) for block in blocks)

    def _steps(
        self,
        rng: random.Random,
        processes: Sequence[str],
        servers: Sequence[str],
        groups: Sequence[str],
        initial: Dict[str, Tuple[str, ...]],
    ) -> List[Step]:
        weights = _PROFILE_WEIGHTS[self.profile]
        if self.config.topology == "zoned":
            # Flat campaigns keep the original weight table untouched, so
            # their draw sequence (and digest pins) never move.
            weights = dict(weights)
            weights["relay_crash"] = 1.0
        kinds = list(weights)
        weight_values = [weights[kind] for kind in kinds]
        count = rng.randint(self.config.min_steps, self.config.max_steps)
        steps: List[Step] = []
        for _ in range(count):
            kind = rng.choices(kinds, weight_values)[0]
            delay = rng.choice(_DELAY_CHOICES_US)
            if kind == "partition":
                steps.append(
                    Step(
                        kind="partition",
                        blocks=self._random_blocks(rng, processes, servers),
                        delay_us=delay,
                    )
                )
            elif kind == "burst":
                steps.append(
                    Step(
                        kind="burst",
                        node=rng.choice(list(processes)),
                        group=rng.choice(list(groups)),
                        count=rng.randint(1, self.config.max_burst),
                        delay_us=delay,
                    )
                )
            elif kind in ("join", "leave"):
                steps.append(
                    Step(
                        kind=kind,
                        node=rng.choice(list(processes)),
                        group=rng.choice(list(groups)),
                        delay_us=delay,
                    )
                )
            elif kind in ("crash", "recover"):
                steps.append(
                    Step(kind=kind, node=rng.choice(list(processes)), delay_us=delay)
                )
            elif kind == "crash_recover":
                # Processes and name servers alike restart from disk.
                steps.append(
                    Step(
                        kind="crash_recover",
                        node=rng.choice(list(processes) + list(servers)),
                        down_us=rng.choice(_DOWN_CHOICES_US),
                        delay_us=delay,
                    )
                )
            elif kind == "corrupt_state":
                steps.append(
                    Step(
                        kind="corrupt_state",
                        node=rng.choice(list(servers)),
                        mode=rng.choice(list(CORRUPTION_MODES)),
                        down_us=rng.choice(_DOWN_CHOICES_US),
                        delay_us=delay,
                    )
                )
            elif kind == "relay_crash":
                steps.append(
                    Step(
                        kind="relay_crash",
                        zone=rng.randrange(max(1, self.config.zones or 4)),
                        delay_us=delay,
                    )
                )
            else:  # heal / settle
                steps.append(Step(kind=kind, delay_us=delay))
        return steps
