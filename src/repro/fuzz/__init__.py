"""Deterministic scenario fuzzing for the LWG stack.

The fuzzer composes random fault schedules — multi-way partitions,
partial heals, fail-stop crashes and recoveries, LWG create/join/leave
churn, overlapping group layouts, message bursts — from stream-split
seeds, replays each on a checker-enabled
:class:`~repro.workloads.cluster.Cluster`, and classifies the outcome.
Failures are shrunk to minimal standalone reproducers.

Entry points:

* ``python -m repro fuzz --seed N --iters K --profile mixed`` — CLI;
* :func:`run_schedule` / :class:`Schedule` — programmatic replay;
* :class:`ScheduleGenerator` — schedule generation;
* :func:`shrink` — delta-debugging minimization.
"""

from .artifacts import write_artifact
from .generator import PROFILES, GeneratorConfig, ScheduleGenerator
from .runner import (
    CLEAN,
    NON_CONVERGENCE,
    VIOLATION,
    FuzzOutcome,
    ScheduleRunner,
    run_schedule,
)
from .schedule import DEFAULT_DELAY_US, Schedule, Step
from .shrink import ShrinkResult, reproducer_for, shrink

__all__ = [
    "CLEAN",
    "DEFAULT_DELAY_US",
    "FuzzOutcome",
    "GeneratorConfig",
    "NON_CONVERGENCE",
    "PROFILES",
    "Schedule",
    "ScheduleGenerator",
    "ScheduleRunner",
    "ShrinkResult",
    "Step",
    "VIOLATION",
    "reproducer_for",
    "run_schedule",
    "shrink",
    "write_artifact",
]
