"""The fuzzer's schedule grammar and its canonical JSON form.

A :class:`Schedule` is a *complete, self-contained* description of one
fuzz run: the cluster shape (process/name-server counts, group layout,
initial membership), the root seed every random stream derives from, and
an ordered list of :class:`Step`\\ s — fault and workload actions applied
one after another with a simulated pause between them.

Because the cluster, the link model and every protocol timer draw all
randomness from the schedule's seed through the stream-split
:class:`~repro.sim.rng.RngRegistry`, replaying a schedule reproduces the
original run *bit for bit*: same event interleaving, same trace stream,
same outcome.  That is what makes shrinking and frozen regression
corpora possible.

Step kinds
----------

``partition``   install the given blocks (lists of node ids; processes
                and name servers alike).  Issued while already
                partitioned it *re*-partitions, so a schedule expresses
                partial heals as successive ``partition`` steps with
                coarser blocks.
``heal``        merge all blocks back into one network.
``crash``       fail-stop ``node`` (no-op if already crashed).
``recover``     restart ``node`` with a clean slate (no-op if alive).
``join``        ``node`` joins LWG ``group`` (no-op if member/crashed).
``leave``       ``node`` leaves LWG ``group`` (no-op if not a member).
``burst``       ``node`` multicasts ``count`` messages to ``group``.
``settle``      nothing — just advance time by ``delay_us``.
``crash_recover``  fail-stop ``node``, keep it down for ``down_us``,
                then restart it *in one atomic step* — with durable
                stores the restart reloads the node's snapshot+log and
                bumps its incarnation.  Works on processes and name
                servers alike.
``corrupt_state``  corrupt ``node``'s durable store per ``mode`` (one
                of the :data:`~repro.naming.persistence.CORRUPTION_MODES`),
                then crash-recover it so the corrupted bytes are loaded.
                Name servers only (processes have no naming database).
``relay_crash``  zoned topology only: fail-stop the *primary relay* of
                ``zone`` as elected at apply time — the targeted
                version of ``crash`` that exercises relay fail-over
                (PROTOCOLS.md §20).  No-op on flat schedules or when
                the zone has no active members.

Every step carries ``delay_us``: how far the simulation advances after
the action is applied.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..sim.engine import MS

STEP_KINDS = (
    "partition",
    "heal",
    "crash",
    "recover",
    "join",
    "leave",
    "burst",
    "settle",
    "crash_recover",
    "corrupt_state",
    "relay_crash",
)

#: Default pause after a step (microseconds).
DEFAULT_DELAY_US = 1_200 * MS

#: Schema version stamped into every serialized schedule.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Step:
    """One fault/workload action in a schedule."""

    kind: str
    node: str = ""
    group: str = ""
    blocks: Tuple[Tuple[str, ...], ...] = ()
    count: int = 0
    delay_us: int = DEFAULT_DELAY_US
    #: ``crash_recover``/``corrupt_state``: simulated downtime between
    #: the crash and the restart.
    down_us: int = 0
    #: ``corrupt_state``: which corruption to inject.
    mode: str = ""
    #: ``relay_crash``: the zone whose primary relay fail-stops.  -1
    #: (unused) is omitted from the JSON form, keeping the pre-zoning
    #: corpus byte-canonical.
    zone: int = -1

    def __post_init__(self) -> None:
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown step kind {self.kind!r}")

    def describe(self) -> str:
        """Compact one-line rendering, used in logs and artifacts."""
        if self.kind == "partition":
            body = "|".join(",".join(block) for block in self.blocks)
        elif self.kind == "burst":
            body = f"{self.node}->{self.group} x{self.count}"
        elif self.kind in ("join", "leave"):
            body = f"{self.node}:{self.group}"
        elif self.kind in ("crash", "recover"):
            body = self.node
        elif self.kind == "crash_recover":
            body = f"{self.node} down {self.down_us // 1000}ms"
        elif self.kind == "corrupt_state":
            body = f"{self.node}:{self.mode} down {self.down_us // 1000}ms"
        elif self.kind == "relay_crash":
            body = f"zone {self.zone}"
        else:
            body = ""
        suffix = f" +{self.delay_us // 1000}ms"
        return f"{self.kind}({body}){suffix}"

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "delay_us": self.delay_us}
        if self.node:
            out["node"] = self.node
        if self.group:
            out["group"] = self.group
        if self.blocks:
            out["blocks"] = [list(block) for block in self.blocks]
        if self.count:
            out["count"] = self.count
        if self.down_us:
            out["down_us"] = self.down_us
        if self.mode:
            out["mode"] = self.mode
        if self.zone >= 0:
            out["zone"] = self.zone
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "Step":
        return cls(
            kind=data["kind"],
            node=data.get("node", ""),
            group=data.get("group", ""),
            blocks=tuple(tuple(block) for block in data.get("blocks", ())),
            count=int(data.get("count", 0)),
            delay_us=int(data.get("delay_us", DEFAULT_DELAY_US)),
            down_us=int(data.get("down_us", 0)),
            mode=data.get("mode", ""),
            zone=int(data.get("zone", -1)),
        )


@dataclass
class Schedule:
    """A complete, replayable fuzz scenario."""

    seed: int
    num_processes: int = 6
    num_name_servers: int = 2
    #: Shards-per-server replication (PROTOCOLS.md §18).  0 means the
    #: legacy fully-replicated deployment (no shard map) — the default,
    #: so every pre-sharding corpus schedule replays unchanged.
    replication_factor: int = 0
    #: LWG→HWG placement strategy ("paper" or "optimizer", PROTOCOLS.md
    #: §19).  The paper default is omitted from the JSON form, so every
    #: pre-optimizer corpus schedule stays byte-canonical.
    placement: str = "paper"
    #: Membership topology ("flat" or "zoned", PROTOCOLS.md §20) and the
    #: zone count when zoned.  Both defaults are omitted from the JSON
    #: form, so every pre-zoning corpus schedule stays byte-canonical;
    #: zone assignment under "zoned" is the sha256 hash form, derivable
    #: from the schedule alone.
    topology: str = "flat"
    zones: int = 0
    groups: Tuple[str, ...] = ("s0", "s1", "s2")
    #: group -> nodes joined before the fault schedule starts.
    initial_members: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Time to converge the initial membership before step 0.
    settle_us: int = 8_000 * MS
    #: Time allowed for quiescence after the last step (simulated).
    quiesce_timeout_us: int = 120_000 * MS
    steps: List[Step] = field(default_factory=list)
    profile: str = "mixed"
    label: str = ""

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    @property
    def process_ids(self) -> List[str]:
        return [f"p{i}" for i in range(self.num_processes)]

    @property
    def name_server_ids(self) -> List[str]:
        return [f"ns{i}" for i in range(self.num_name_servers)]

    def describe(self) -> str:
        lines = [
            f"schedule {self.label or '(unnamed)'}: seed={self.seed} "
            f"profile={self.profile} processes={self.num_processes} "
            f"groups={list(self.groups)} steps={len(self.steps)}"
        ]
        for index, step in enumerate(self.steps):
            lines.append(f"  [{index:02d}] {step.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Canonical JSON form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        out = {
            "version": SCHEMA_VERSION,
            "label": self.label,
            "profile": self.profile,
            "seed": self.seed,
            "num_processes": self.num_processes,
            "num_name_servers": self.num_name_servers,
            "groups": list(self.groups),
            "initial_members": {
                group: list(members)
                for group, members in sorted(self.initial_members.items())
            },
            "settle_us": self.settle_us,
            "quiesce_timeout_us": self.quiesce_timeout_us,
            "steps": [step.to_dict() for step in self.steps],
        }
        # Written only when sharding is on, so every pre-sharding corpus
        # file stays byte-canonical.
        if self.replication_factor:
            out["replication_factor"] = self.replication_factor
        if self.placement != "paper":
            out["placement"] = self.placement
        if self.topology != "flat":
            out["topology"] = self.topology
            out["zones"] = self.zones
        return out

    def to_json(self) -> str:
        """Canonical serialized form (stable key order, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict) -> "Schedule":
        version = int(data.get("version", SCHEMA_VERSION))
        if version > SCHEMA_VERSION:
            raise ValueError(f"schedule schema version {version} not supported")
        return cls(
            seed=int(data["seed"]),
            num_processes=int(data.get("num_processes", 6)),
            num_name_servers=int(data.get("num_name_servers", 2)),
            replication_factor=int(data.get("replication_factor", 0)),
            placement=data.get("placement", "paper"),
            topology=data.get("topology", "flat"),
            zones=int(data.get("zones", 0)),
            groups=tuple(data.get("groups", ())),
            initial_members={
                group: tuple(members)
                for group, members in data.get("initial_members", {}).items()
            },
            settle_us=int(data.get("settle_us", 8_000 * MS)),
            quiesce_timeout_us=int(data.get("quiesce_timeout_us", 120_000 * MS)),
            steps=[Step.from_dict(step) for step in data.get("steps", [])],
            profile=data.get("profile", "mixed"),
            label=data.get("label", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    def replace_steps(self, steps: Sequence[Step]) -> "Schedule":
        """A copy of this schedule with a different step list."""
        return Schedule(
            seed=self.seed,
            num_processes=self.num_processes,
            num_name_servers=self.num_name_servers,
            replication_factor=self.replication_factor,
            placement=self.placement,
            topology=self.topology,
            zones=self.zones,
            groups=self.groups,
            initial_members=dict(self.initial_members),
            settle_us=self.settle_us,
            quiesce_timeout_us=self.quiesce_timeout_us,
            steps=list(steps),
            profile=self.profile,
            label=self.label,
        )
