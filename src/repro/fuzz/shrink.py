"""Delta-debugging shrinker for violating schedules.

Given a schedule whose replay trips an invariant, :func:`shrink` finds a
smaller schedule that still trips the *same* invariant, by:

1. **ddmin step removal** — try deleting chunks of the step list,
   halving the chunk size each round until single steps, keeping every
   deletion that still reproduces.  Step validity is never a concern:
   the runner's guards turn any now-meaningless step into a no-op.
2. **step simplification** — for each surviving step, try cheaper
   variants in order: a burst of one message instead of many, a two-way
   split instead of a multi-way one, the minimum inter-step delay.

Every candidate is checked by *fully replaying it from its seed* — the
only oracle that matters — so the result is a standalone minimal
reproducer, not a heuristic guess.  The replay count is bounded by
``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.engine import MS
from .schedule import Schedule, Step

#: Predicate: does this candidate schedule still reproduce the failure?
Reproduces = Callable[[Schedule], bool]

_MIN_DELAY_US = 400 * MS


@dataclass
class ShrinkResult:
    """Outcome of a shrink session."""

    schedule: Schedule
    original_steps: int
    attempts: int
    exhausted: bool = False  # hit the attempt budget before a fixpoint

    @property
    def final_steps(self) -> int:
        return len(self.schedule.steps)


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _simplified_variants(step: Step) -> List[Step]:
    """Cheaper variants of one step, most aggressive first."""
    variants: List[Step] = []
    if step.kind == "burst" and step.count > 1:
        variants.append(
            Step(kind="burst", node=step.node, group=step.group, count=1,
                 delay_us=step.delay_us)
        )
    if step.kind == "partition" and len(step.blocks) > 2:
        merged = tuple(
            node for block in step.blocks[1:] for node in block
        )
        variants.append(
            Step(kind="partition", blocks=(step.blocks[0], merged),
                 delay_us=step.delay_us)
        )
    if step.delay_us > _MIN_DELAY_US:
        base = variants[0] if variants else step
        variants.append(
            Step(kind=base.kind, node=base.node, group=base.group,
                 blocks=base.blocks, count=base.count, delay_us=_MIN_DELAY_US)
        )
    return variants


def shrink(
    schedule: Schedule,
    reproduces: Reproduces,
    max_attempts: int = 120,
) -> ShrinkResult:
    """Minimize ``schedule`` while ``reproduces`` stays true.

    ``reproduces`` must replay its argument from scratch and return True
    iff the original failure (same invariant) fires again.  The input
    schedule is assumed to reproduce; the result always does.
    """
    budget = _Budget(max_attempts)
    current = list(schedule.steps)

    # Phase 1: ddmin chunk removal.
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        removed_any = True
        while removed_any and len(current) > 0:
            removed_any = False
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk:]
                if not budget.take():
                    return ShrinkResult(
                        schedule.replace_steps(current),
                        original_steps=len(schedule.steps),
                        attempts=budget.used,
                        exhausted=True,
                    )
                if reproduces(schedule.replace_steps(candidate)):
                    current = candidate
                    removed_any = True
                    # Re-test the same start index against the shorter list.
                else:
                    start += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)

    # Phase 2: per-step simplification, to a fixpoint per step (a burst
    # first drops to one message, then to the minimum delay).
    index = 0
    while index < len(current):
        improved = True
        while improved:
            improved = False
            for variant in _simplified_variants(current[index]):
                candidate = current[:index] + [variant] + current[index + 1:]
                if not budget.take():
                    return ShrinkResult(
                        schedule.replace_steps(current),
                        original_steps=len(schedule.steps),
                        attempts=budget.used,
                        exhausted=True,
                    )
                if reproduces(schedule.replace_steps(candidate)):
                    current = candidate
                    improved = True
                    break
        index += 1

    return ShrinkResult(
        schedule.replace_steps(current),
        original_steps=len(schedule.steps),
        attempts=budget.used,
    )


def reproducer_for(
    invariant: str,
    run: Callable[[Schedule], "object"],
) -> Reproduces:
    """Build a :data:`Reproduces` predicate matching one invariant.

    ``run`` replays a schedule and returns a
    :class:`~repro.fuzz.runner.FuzzOutcome`; the predicate holds when the
    replay is classified as a violation of the same ``invariant``.
    """

    def predicate(candidate: Schedule) -> bool:
        outcome = run(candidate)
        return (
            getattr(outcome, "classification", "") == "violation"
            and getattr(outcome, "invariant", "") == invariant
        )

    return predicate
