"""Replay a :class:`~repro.fuzz.schedule.Schedule` on a checker-enabled cluster.

The runner is the deterministic heart of the fuzzer: given the same
schedule (and the same code), it produces the same
:class:`FuzzOutcome` — including the SHA-256 digest of the full trace
stream — every single time.  Three outcomes are possible:

* ``clean`` — the schedule ran, the network healed, every group
  converged on its expected membership, and the at-quiesce invariant
  checks passed;
* ``violation`` — an online or at-quiesce invariant checker raised
  :class:`~repro.checkers.InvariantViolation` (the outcome records which
  invariant, at which step);
* ``non-convergence`` — no invariant fired, but the system failed to
  reach the expected quiescent state within the schedule's simulated
  timeout budget.

Validity guards mirror :class:`~repro.workloads.churn.ChurnDriver`: a
``join`` by an existing member, a ``crash`` of a crashed node and so on
are deterministic no-ops, so the shrinker can delete steps freely
without ever producing an ill-formed run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..checkers import InvariantViolation
from ..core.config import LwgConfig
from ..core.ids import lwg_id
from ..naming.persistence import CORRUPTION_MODES, inject_corruption
from ..sim.engine import MS, SECOND
from ..vsync.stack import VsyncConfig
from ..workloads.cluster import Cluster
from .schedule import Schedule, Step

#: Called once the initial membership has settled; used by the checker
#: self-tests to sabotage a live component before the fault schedule runs.
Sabotage = Callable[[Cluster], None]

#: Never crash below this many live processes (mirrors ChurnModel).
MIN_ALIVE = 2

#: Downtime for crash_recover/corrupt_state steps that don't specify one.
DEFAULT_DOWN_US = 300 * MS

CLEAN = "clean"
VIOLATION = "violation"
NON_CONVERGENCE = "non-convergence"


@dataclass
class FuzzOutcome:
    """Classification of one schedule replay."""

    classification: str
    detail: str = ""
    #: Name of the violated invariant ("" unless classification=violation).
    invariant: str = ""
    #: Index of the step being applied when the violation fired (-1 if it
    #: fired during settle/quiesce or there was no violation).
    step_index: int = -1
    #: SHA-256 (hex, truncated) over the full trace event stream.
    digest: str = ""
    steps_applied: int = 0
    sim_time_us: int = 0

    @property
    def is_clean(self) -> bool:
        return self.classification == CLEAN

    def summary(self) -> str:
        extra = ""
        if self.classification == VIOLATION:
            extra = f" invariant={self.invariant!r} at step {self.step_index}"
        elif self.classification == NON_CONVERGENCE:
            extra = f" ({self.detail})"
        return (
            f"outcome={self.classification} digest={self.digest} "
            f"sim={self.sim_time_us / SECOND:.1f}s{extra}"
        )


class _TraceDigest:
    """Rolling hash over every trace record's canonical rendering."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.records = 0

    def on_record(self, record) -> None:
        self._hash.update(str(record).encode("utf-8", "replace"))
        self._hash.update(b"\n")
        self.records += 1

    def hexdigest(self, length: int = 16) -> str:
        return self._hash.hexdigest()[:length]


def _scaled_config(placement: str = "paper") -> LwgConfig:
    """Fuzz-friendly timers (same scaling the soak tests use)."""
    config = LwgConfig(placement_policy=placement)
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return config


class ScheduleRunner:
    """Applies one schedule and classifies the result.

    A runner is single-use: construct, :meth:`run`, inspect.  The
    cluster is exposed (:attr:`cluster`) so tests can poke at component
    state after a run.
    """

    def __init__(self, schedule: Schedule, sabotage: Optional[Sabotage] = None):
        self.schedule = schedule
        self.sabotage = sabotage
        self.digest = _TraceDigest()
        self.cluster = Cluster(
            num_processes=schedule.num_processes,
            seed=schedule.seed,
            num_name_servers=schedule.num_name_servers,
            replication_factor=schedule.replication_factor or None,
            lwg_config=_scaled_config(schedule.placement),
            vsync_config=VsyncConfig(
                heal_hardening=(schedule.placement == "optimizer"),
                topology=schedule.topology,
                num_zones=schedule.zones or 4,
            ),
            keep_trace=False,
        )
        self.cluster.env.tracer.subscribe(self.digest.on_record)
        #: group -> membership the system should converge to.
        self.expected: Dict[str, Set[str]] = {g: set() for g in schedule.groups}
        self.crashed: Set[str] = set()
        self.partitioned = False
        self.steps_applied = 0

    # ------------------------------------------------------------------
    # Step application (validity-guarded, deterministic no-ops)
    # ------------------------------------------------------------------
    def _apply(self, step: Step) -> None:
        kind = step.kind
        if kind == "join":
            self._join(step.node, step.group)
        elif kind == "leave":
            self._leave(step.node, step.group)
        elif kind == "crash":
            self._crash(step.node)
        elif kind == "recover":
            self._recover(step.node)
        elif kind == "partition":
            self._partition(step.blocks)
        elif kind == "heal":
            self._heal()
        elif kind == "burst":
            self._burst(step.node, step.group, step.count)
        elif kind == "crash_recover":
            self._crash_recover(step.node, step.down_us)
        elif kind == "corrupt_state":
            self._corrupt_state(step.node, step.mode, step.down_us)
        elif kind == "relay_crash":
            self._relay_crash(step.zone)
        # "settle" applies nothing; the post-step delay does the work.

    def _join(self, node: str, group: str) -> None:
        if group not in self.expected:
            return
        if node in self.crashed or node in self.expected[group]:
            return
        if node not in self.cluster.services:
            return
        self.cluster.services[node].join(group)
        self.expected[group].add(node)

    def _leave(self, node: str, group: str) -> None:
        if group not in self.expected:
            return
        if node in self.crashed or node not in self.expected[group]:
            return
        self.cluster.services[node].leave(group)
        self.expected[group].discard(node)

    def _crash(self, node: str) -> None:
        if node not in self.cluster.stacks or node in self.crashed:
            return
        if len(self.cluster.process_ids) - len(self.crashed) <= MIN_ALIVE:
            return
        self.cluster.crash(node)
        self.crashed.add(node)
        for members in self.expected.values():
            members.discard(node)

    def _recover(self, node: str) -> None:
        if node not in self.crashed:
            return
        self.cluster.recover(node)
        self.crashed.discard(node)
        # A recovered process restarts with a clean slate; it joins
        # nothing until the schedule says so.

    def _crash_recover(self, node: str, down_us: int) -> None:
        """Atomic crash + downtime + restart (durable-state reload).

        Atomicity keeps the step shrinker-safe: deleting any *other*
        step can never leave the node permanently down, and the restart
        always exercises the recovery path (snapshot+log reload for name
        servers, incarnation bump for both).
        """
        down = down_us or DEFAULT_DOWN_US
        if node in self.cluster.name_servers:
            self.cluster.crash(node)
            self.cluster.run_for(down)
            self.cluster.recover(node)
            return
        if node not in self.cluster.stacks or node in self.crashed:
            return
        if len(self.cluster.process_ids) - len(self.crashed) <= MIN_ALIVE:
            return
        self.cluster.crash(node)
        # The restarted process comes back with a clean slate and joins
        # nothing until the schedule says so (same contract as recover).
        for members in self.expected.values():
            members.discard(node)
        self.cluster.run_for(down)
        self.cluster.recover(node)

    def _corrupt_state(self, node: str, mode: str, down_us: int) -> None:
        """Corrupt a name server's durable store, then crash-recover it.

        The crash-recover is part of the step so the corrupted bytes are
        always *loaded* — corruption that nobody reads back tests
        nothing.  All randomness (offsets, bits) comes from a dedicated
        schedule-seeded stream, so replay corrupts identical bytes.
        """
        if mode not in CORRUPTION_MODES:
            return
        server = self.cluster.name_servers.get(node)
        if server is None or server.store is None:
            return
        rng = self.cluster.env.rng.stream("fuzz:corrupt")
        detail = inject_corruption(server.store, mode, rng, db=server.db)
        self.cluster.env.tracer.emit(
            "recovery", "store_corrupted", node=node, mode=mode, detail=detail
        )
        self.cluster.crash(node)
        self.cluster.run_for(down_us or DEFAULT_DOWN_US)
        self.cluster.recover(node)

    def _relay_crash(self, zone: int) -> None:
        """Fail-stop a zone's primary relay as elected *right now*.

        The target is resolved at apply time, so the step always hits a
        relay even after earlier crashes shifted the election — the
        fail-over path is what it exists to exercise.  Deterministic
        no-op on flat schedules or empty zones, so the shrinker can
        delete surrounding steps freely.
        """
        directory = self.cluster.zone_directory
        if directory is None:
            return
        relay = directory.primary_relay(zone)
        if relay is None:
            return
        self._crash(relay)

    def _partition(self, blocks: Tuple[Tuple[str, ...], ...]) -> None:
        known = set(self.cluster.process_ids) | set(self.cluster.name_server_ids)
        filtered = [
            [node for node in block if node in known] for block in blocks
        ]
        filtered = [block for block in filtered if block]
        if len(filtered) < 2:
            return
        self.cluster.partition(*filtered)
        self.partitioned = True

    def _heal(self) -> None:
        if not self.partitioned:
            return
        self.cluster.heal()
        self.partitioned = False

    def _burst(self, node: str, group: str, count: int) -> None:
        if group not in self.expected:
            return
        if node in self.crashed or node not in self.expected[group]:
            return
        service = self.cluster.services[node]
        for seq in range(count):
            service.send(group, f"fuzz:{node}:{seq}")

    # ------------------------------------------------------------------
    # Quiescence (mirrors ChurnDriver.quiesced)
    # ------------------------------------------------------------------
    def quiesced(self) -> Tuple[bool, str]:
        for group, members in self.expected.items():
            if not members:
                continue
            views = []
            for node in sorted(members):
                local = self.cluster.services[node].table.local(lwg_id(group))
                if local is None or not local.is_member or local.view is None:
                    return False, f"{group}: {node} not a member"
                views.append((node, local.view, local.hwg))
            ids = {view.view_id for _, view, _ in views}
            if len(ids) != 1:
                return False, (
                    f"{group}: divergent views "
                    f"{[(n, str(v.view_id)) for n, v, _ in views]}"
                )
            if set(views[0][1].members) != members:
                return False, (
                    f"{group}: members {views[0][1].members} != {sorted(members)}"
                )
            if len({hwg for _, _, hwg in views}) != 1:
                return False, f"{group}: divergent hwg mappings"
        return True, "ok"

    # ------------------------------------------------------------------
    # The run itself
    # ------------------------------------------------------------------
    def run(self) -> FuzzOutcome:
        schedule = self.schedule
        try:
            # Initial membership, then settle.
            for group, members in sorted(schedule.initial_members.items()):
                for node in members:
                    self._join(node, group)
            self.cluster.run_for(schedule.settle_us)
            if self.sabotage is not None:
                self.sabotage(self.cluster)
            # The fault schedule.
            for index, step in enumerate(schedule.steps):
                self._current_step = index
                self._apply(step)
                self.cluster.run_for(step.delay_us)
                self.steps_applied = index + 1
            self._current_step = -1
            # End state: healed network, recovered nodes stay down (their
            # membership expectations were already dropped at crash time).
            self._heal()
            converged = self.cluster.run_until(
                lambda: self.quiesced()[0], timeout_us=schedule.quiesce_timeout_us
            )
            if not converged:
                _, detail = self.quiesced()
                return self._outcome(NON_CONVERGENCE, detail=detail)
            # Settle the naming anti-entropy tail, then final checks.
            self.cluster.run_for_seconds(5)
            self.cluster.check_invariants()
        except InvariantViolation as violation:
            return self._outcome(
                VIOLATION,
                detail=str(violation),
                invariant=violation.invariant,
                step_index=getattr(self, "_current_step", -1),
            )
        return self._outcome(CLEAN)

    def _outcome(
        self,
        classification: str,
        detail: str = "",
        invariant: str = "",
        step_index: int = -1,
    ) -> FuzzOutcome:
        return FuzzOutcome(
            classification=classification,
            detail=detail,
            invariant=invariant,
            step_index=step_index,
            digest=self.digest.hexdigest(),
            steps_applied=self.steps_applied,
            sim_time_us=self.cluster.env.now,
        )


def run_schedule(
    schedule: Schedule, sabotage: Optional[Sabotage] = None
) -> FuzzOutcome:
    """Replay ``schedule`` from scratch and classify the outcome."""
    return ScheduleRunner(schedule, sabotage=sabotage).run()
