"""``python -m repro fuzz`` — the fuzz campaign driver.

Two modes:

* **generate** (default): derive ``--iters`` schedules from ``--seed``
  under ``--profile``, replay each on a checker-enabled cluster, print
  one deterministic line per iteration (classification + trace digest),
  shrink any failure and write repro artifacts to ``--out``;
* **replay** (``--replay PATH ...``): replay frozen schedule JSON files
  (or every ``*.json`` in a directory — e.g. the regression corpus) and
  report each outcome.

The process exit code is 0 iff every iteration/replay came back clean,
so the command slots directly into CI.  All output is derived from the
seeds — two runs with the same arguments print identical bytes.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional

from .artifacts import write_artifact
from .generator import PROFILES, GeneratorConfig, ScheduleGenerator
from .runner import CLEAN, VIOLATION, run_schedule
from .schedule import Schedule
from .shrink import reproducer_for, shrink


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="randomized fault-schedule fuzzing of the LWG stack",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign root seed")
    parser.add_argument("--iters", type=int, default=20, help="schedules to run")
    parser.add_argument(
        "--profile", choices=PROFILES, default="mixed", help="step-mix profile"
    )
    parser.add_argument(
        "--processes", type=int, default=6, help="cluster size per schedule"
    )
    parser.add_argument("--groups", type=int, default=3, help="LWGs per schedule")
    parser.add_argument(
        "--name-servers", type=int, default=2, help="name servers per schedule"
    )
    parser.add_argument(
        "--replication-factor",
        type=int,
        default=0,
        help=(
            "replicas per naming shard (PROTOCOLS.md §18); "
            "0 = legacy full replication"
        ),
    )
    parser.add_argument(
        "--placement",
        choices=("paper", "optimizer"),
        default="paper",
        help=(
            "LWG→HWG placement strategy (PROTOCOLS.md §19); "
            "paper = Figure-1 rules, optimizer = global placement search"
        ),
    )
    parser.add_argument(
        "--topology",
        choices=("flat", "zoned"),
        default="flat",
        help=(
            "membership topology (PROTOCOLS.md §20); flat = per-peer "
            "heartbeats, zoned = gossip failure detection + zone relays"
        ),
    )
    parser.add_argument(
        "--zones",
        type=int,
        default=0,
        help="zone count under --topology zoned (0 = default of 4)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=16, help="max schedule length"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("fuzz-artifacts"),
        help="directory for failure artifacts (JSON + pytest reproducer)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="emit failing schedules unshrunk",
    )
    parser.add_argument(
        "--shrink-attempts",
        type=int,
        default=120,
        help="replay budget for the shrinker, per failure",
    )
    parser.add_argument(
        "--replay",
        nargs="+",
        type=Path,
        metavar="PATH",
        help="replay schedule JSON files / directories instead of generating",
    )
    parser.add_argument(
        "--expect-digests",
        type=Path,
        metavar="JSON",
        help=(
            "JSON map of schedule label (campaign) or file name (replay) to "
            "expected trace digest; any mismatch fails the run.  Pins replay "
            "determinism across refactors: a digest drift means observable "
            "behaviour changed."
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print full schedules"
    )
    return parser


class _DigestExpectations:
    """Compare observed trace digests against a committed pin file.

    Keys absent from the pin file are ignored (new schedules may be added
    freely); a run that checks *zero* keys fails, because a pin file that
    matches nothing guards nothing.
    """

    def __init__(self, path: Path):
        self.expected: Dict[str, str] = json.loads(path.read_text(encoding="utf-8"))
        self.checked = 0
        self.mismatches: List[str] = []

    def check(self, key: str, digest: str) -> None:
        want = self.expected.get(key)
        if want is None:
            return
        self.checked += 1
        if digest != want:
            self.mismatches.append(f"{key}: expected {want}, got {digest}")

    def report(self) -> int:
        """Print the verdict; return the number of failures."""
        for line in self.mismatches:
            print(f"fuzz: digest mismatch — {line}")
        if self.checked == 0:
            print("fuzz: --expect-digests matched no schedules; nothing was pinned")
            return 1
        if not self.mismatches:
            print(f"fuzz: {self.checked} digest(s) match the pin file")
        return len(self.mismatches)


def _collect_replay_paths(paths: List[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    return files


def _replay(
    paths: List[Path],
    verbose: bool,
    expectations: Optional[_DigestExpectations] = None,
) -> int:
    files = _collect_replay_paths(paths)
    if not files:
        print("fuzz: no schedule files to replay")
        return 1
    failures = 0
    for path in files:
        schedule = Schedule.from_json(path.read_text(encoding="utf-8"))
        if verbose:
            print(schedule.describe())
        outcome = run_schedule(schedule)
        print(f"[replay] {path.name}: {outcome.summary()}")
        if expectations is not None:
            expectations.check(path.name, outcome.digest)
        if not outcome.is_clean:
            failures += 1
    print(
        f"fuzz replay: {len(files)} schedule(s), "
        f"{len(files) - failures} clean, {failures} failing"
    )
    if expectations is not None:
        failures += expectations.report()
    return 0 if failures == 0 else 1


def _handle_failure(
    schedule: Schedule,
    outcome,
    args: argparse.Namespace,
) -> None:
    """Shrink (unless disabled) and write artifacts for one failure."""
    final_schedule, final_outcome = schedule, outcome
    if outcome.classification == VIOLATION and not args.no_shrink:
        predicate = reproducer_for(outcome.invariant, run_schedule)
        result = shrink(schedule, predicate, max_attempts=args.shrink_attempts)
        final_schedule = result.schedule
        final_outcome = run_schedule(final_schedule)
        print(
            f"  shrunk {result.original_steps} -> {result.final_steps} steps "
            f"in {result.attempts} replays"
            + (" (budget exhausted)" if result.exhausted else "")
        )
    json_path, test_path = write_artifact(final_schedule, final_outcome, args.out)
    print(f"  artifact: {json_path}")
    print(f"  reproducer: {test_path}")
    for line in final_schedule.describe().splitlines():
        print(f"  | {line}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    expectations = (
        _DigestExpectations(args.expect_digests) if args.expect_digests else None
    )
    if args.replay:
        return _replay(args.replay, args.verbose, expectations)

    config = GeneratorConfig(
        num_processes=args.processes,
        num_name_servers=args.name_servers,
        replication_factor=args.replication_factor,
        placement=args.placement,
        topology=args.topology,
        zones=args.zones,
        num_groups=args.groups,
        max_steps=args.max_steps,
    )
    generator = ScheduleGenerator(args.seed, profile=args.profile, config=config)
    counts = {CLEAN: 0, VIOLATION: 0, "non-convergence": 0}
    for index in range(args.iters):
        schedule = generator.generate(index)
        if args.verbose:
            print(schedule.describe())
        outcome = run_schedule(schedule)
        counts[outcome.classification] = counts.get(outcome.classification, 0) + 1
        print(
            f"[iter {index:03d}] {schedule.label} steps={len(schedule.steps)} "
            f"{outcome.summary()}"
        )
        if expectations is not None:
            expectations.check(schedule.label, outcome.digest)
        if not outcome.is_clean:
            _handle_failure(schedule, outcome, args)
    total = args.iters
    print(
        f"fuzz: {total} iteration(s) — {counts[CLEAN]} clean, "
        f"{counts[VIOLATION]} violation(s), "
        f"{counts['non-convergence']} non-convergence "
        f"(seed={args.seed}, profile={args.profile})"
    )
    digest_failures = expectations.report() if expectations is not None else 0
    return 0 if counts[CLEAN] == total and digest_failures == 0 else 1
