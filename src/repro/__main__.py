"""Command-line entry point: run the bundled examples.

Usage::

    python -m repro                 # list examples
    python -m repro quickstart      # run one
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

EXAMPLES = {
    "quickstart": "joins, HWG sharing, ordered delivery, crash handling",
    "trading_system": "Swiss-Exchange-style subject groups with failover",
    "collaboration": "CCTL-style document sessions with churn",
    "partition_healing": "the Figure-3 -> Table-4 reconciliation, narrated",
    "replicated_kv": "replicated KV store with state transfer and partitions",
}


def main(argv) -> int:
    examples_dir = Path(__file__).resolve().parent.parent.parent / "examples"
    if len(argv) != 1 or argv[0] not in EXAMPLES:
        print("usage: python -m repro <example>\n\navailable examples:")
        for name, blurb in EXAMPLES.items():
            print(f"  {name:18s} {blurb}")
        return 0 if not argv else 1
    script = examples_dir / f"{argv[0]}.py"
    if not script.exists():
        print(f"example script not found: {script}", file=sys.stderr)
        return 1
    runpy.run_path(str(script), run_name="__main__")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
