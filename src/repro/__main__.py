"""Command-line entry point: bundled examples and the scenario fuzzer.

Usage::

    python -m repro                 # list examples
    python -m repro quickstart      # run one
    python -m repro fuzz --seed 7 --iters 50 --profile mixed
    python -m repro run --backend sim       # partition/heal demo, simulated
    python -m repro run --backend asyncio   # same demo over live UDP processes
    python -m repro bench --fast --check-against benchmarks/baseline.json
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path
from typing import List, Optional

EXAMPLES = {
    "quickstart": "joins, HWG sharing, ordered delivery, crash handling",
    "trading_system": "Swiss-Exchange-style subject groups with failover",
    "collaboration": "CCTL-style document sessions with churn",
    "partition_healing": "the Figure-3 -> Table-4 reconciliation, narrated",
    "replicated_kv": "replicated KV store with state transfer and partitions",
}


def candidate_example_dirs(
    package_file: Optional[str] = None, prefix: Optional[str] = None
) -> List[Path]:
    """Places the bundled examples may live, most specific first.

    * ``<repo>/examples`` next to the ``src/`` tree — a source checkout;
    * ``repro/examples`` inside the package — a wheel shipping them as
      package data;
    * ``<prefix>/share/repro/examples`` — a wheel/sdist installing them
      as data files (what ``setup.py`` configures).
    """
    package_path = Path(package_file or __file__).resolve()
    base_prefix = Path(prefix or sys.prefix)
    return [
        package_path.parent.parent.parent / "examples",
        package_path.parent / "examples",
        base_prefix / "share" / "repro" / "examples",
    ]


def find_examples_dir(
    package_file: Optional[str] = None, prefix: Optional[str] = None
) -> Optional[Path]:
    """First candidate directory that actually holds the examples."""
    for candidate in candidate_example_dirs(package_file, prefix):
        if (candidate / "quickstart.py").is_file():
            return candidate
    return None


def _usage() -> None:
    print("usage: python -m repro <example>")
    print("       python -m repro fuzz [--seed N --iters K --profile P ...]")
    print("       python -m repro run [--backend sim|asyncio ...]")
    print("       python -m repro bench [--fast --check-against BASELINE ...]")
    print("\navailable examples:")
    for name, blurb in EXAMPLES.items():
        print(f"  {name:18s} {blurb}")


def main(argv) -> int:
    if argv and argv[0] == "fuzz":
        from .fuzz.cli import main as fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "run":
        from .runtime.demo import main as demo_main

        return demo_main(argv[1:])
    if argv and argv[0] == "bench":
        from .bench.cli import main as bench_main

        return bench_main(argv[1:])
    if len(argv) != 1 or argv[0] not in EXAMPLES:
        _usage()
        return 0 if not argv else 1
    examples_dir = find_examples_dir()
    if examples_dir is None:
        searched = "\n  ".join(str(p) for p in candidate_example_dirs())
        print(
            "example scripts not found; searched:\n  " + searched, file=sys.stderr
        )
        return 1
    script = examples_dir / f"{argv[0]}.py"
    if not script.exists():
        print(f"example script not found: {script}", file=sys.stderr)
        return 1
    runpy.run_path(str(script), run_name="__main__")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
