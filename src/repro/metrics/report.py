"""Paper-style result formatting.

Benchmarks print their regenerated tables/series through these helpers
so the output reads like the paper's evaluation: one row per parameter
point, one column per service flavour.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table with a title banner."""
    header = [str(c) for c in columns]
    body = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = ["", "=" * max(len(title), 8), title, "=" * max(len(title), 8)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if note:
        lines.append(f"note: {note}")
    lines.append("")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def series_table(
    title: str,
    x_name: str,
    xs: Sequence[Number],
    series: Mapping[str, Sequence[Optional[Number]]],
    unit: str = "",
    note: Optional[str] = None,
) -> str:
    """Render one x column plus one column per named series (figure shape)."""
    columns = [x_name] + [f"{name}{f' ({unit})' if unit else ''}" for name in series]
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            value = series[name][i] if i < len(series[name]) else None
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(title, columns, rows, note=note)


def shape_check(
    description: str,
    condition: bool,
) -> str:
    """One-line pass/fail annotation for a paper-shape assertion."""
    marker = "PASS" if condition else "FAIL"
    return f"[{marker}] {description}"
