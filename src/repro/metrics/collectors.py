"""Measurement collectors used by examples, tests and benchmarks.

All measurement is *application-level*: latency is stamped into payloads
at send time and read back at delivery, recovery is the gap between a
crash and the installation of a view excluding the victim — the same
quantities the paper plots in Figure 2.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """The q-quantile of a sorted sample by the nearest-rank method.

    Rank ``ceil(q * n)`` (1-based), clamped to the first element; for
    q=0.5 this is the lower median, and the result is always an actual
    sample value.
    """
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


@dataclass
class SummaryStats:
    """Summary of a sample of microsecond measurements."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    max_us: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> Optional["SummaryStats"]:
        if not samples:
            return None
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean_us=statistics.fmean(ordered),
            p50_us=nearest_rank(ordered, 0.50),
            p95_us=nearest_rank(ordered, 0.95),
            max_us=ordered[-1],
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_us / 1000:.2f}ms "
            f"p50={self.p50_us / 1000:.2f}ms p95={self.p95_us / 1000:.2f}ms "
            f"max={self.max_us / 1000:.2f}ms"
        )


class LatencyCollector:
    """Collects send-to-delivery latencies, grouped by a string key."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    def record(self, key: str, sent_at_us: int, delivered_at_us: int) -> None:
        self._samples.setdefault(key, []).append(delivered_at_us - sent_at_us)

    def samples(self, key: Optional[str] = None) -> List[float]:
        if key is not None:
            return list(self._samples.get(key, []))
        return [s for samples in self._samples.values() for s in samples]

    def summary(self, key: Optional[str] = None) -> Optional[SummaryStats]:
        return SummaryStats.of(self.samples(key))

    def keys(self) -> List[str]:
        return sorted(self._samples)


class ThroughputMeter:
    """Counts deliveries within a measurement window."""

    def __init__(self) -> None:
        self.delivered = 0
        self._window_start_us: Optional[int] = None
        self._window_end_us: Optional[int] = None

    def open_window(self, now_us: int) -> None:
        self.delivered = 0
        self._window_start_us = now_us
        self._window_end_us = None

    def close_window(self, now_us: int) -> None:
        self._window_end_us = now_us

    def record_delivery(self) -> None:
        if self._window_start_us is not None and self._window_end_us is None:
            self.delivered += 1

    def throughput_per_second(self) -> float:
        if self._window_start_us is None or self._window_end_us is None:
            return 0.0
        duration = self._window_end_us - self._window_start_us
        if duration <= 0:
            return 0.0
        return self.delivered * 1_000_000 / duration


class RecoveryTimer:
    """Measures crash -> everyone-reconfigured intervals, per group."""

    def __init__(self) -> None:
        self.crash_at_us: Optional[int] = None
        self.victim: Optional[str] = None
        #: (group, observer) -> time the observer installed a victim-free view.
        self._recovered_at: Dict[Tuple[str, str], int] = {}
        self._expected: List[Tuple[str, str]] = []

    def arm(self, crash_at_us: int, victim: str, expected: Sequence[Tuple[str, str]]) -> None:
        """Start measuring: ``expected`` lists (group, observer) pairs."""
        self.crash_at_us = crash_at_us
        self.victim = victim
        self._recovered_at = {}
        self._expected = list(expected)

    def note_view(self, group: str, observer: str, members: Sequence[str], now_us: int) -> None:
        """Feed every view installation here; victim-free views count."""
        if self.crash_at_us is None or self.victim is None:
            return
        if now_us < self.crash_at_us or self.victim in members:
            return
        key = (group, observer)
        if key in self._expected and key not in self._recovered_at:
            self._recovered_at[key] = now_us

    @property
    def complete(self) -> bool:
        return bool(self._expected) and all(
            key in self._recovered_at for key in self._expected
        )

    def recovery_time_us(self) -> Optional[int]:
        """Crash-to-last-reconfiguration interval, if complete."""
        if not self.complete or self.crash_at_us is None:
            return None
        return max(self._recovered_at.values()) - self.crash_at_us

    def per_group_recovery_us(self) -> Dict[str, int]:
        """Crash-to-reconfiguration per group (max over its observers)."""
        assert self.crash_at_us is not None
        out: Dict[str, int] = {}
        for (group, _), at in self._recovered_at.items():
            out[group] = max(out.get(group, 0), at - self.crash_at_us)
        return out
