"""Measurement collectors and paper-style reporting."""

from .collectors import LatencyCollector, RecoveryTimer, SummaryStats, ThroughputMeter
from .report import format_table, series_table, shape_check

__all__ = [
    "LatencyCollector",
    "RecoveryTimer",
    "SummaryStats",
    "ThroughputMeter",
    "format_table",
    "series_table",
    "shape_check",
]
