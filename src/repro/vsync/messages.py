"""Wire messages of the partitionable virtual-synchrony substrate.

Every message names its group and (where applicable) the view and
membership round it belongs to, so endpoints can discard stale traffic
from superseded rounds or views — the key to restartable view changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .view import GroupId, ProcessId, View, ViewId

#: Fixed header estimate added to every vsync message's payload size.
HEADER_BYTES = 64


@dataclass(frozen=True)
class VsyncMessage:
    """Base class for all vsync wire messages."""

    group: GroupId

    def size_bytes(self) -> int:
        """Approximate wire size, used by the network cost model."""
        return HEADER_BYTES + 64


# ----------------------------------------------------------------------
# Heartbeats (failure detector)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Heartbeat(VsyncMessage):
    """Periodic liveness announcement.  ``group`` is the constant "_fd"."""

    sender: ProcessId = ""

    def size_bytes(self) -> int:
        return HEADER_BYTES


# ----------------------------------------------------------------------
# Gossip failure detection (zoned topology, PROTOCOLS.md §20)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LivenessDigest(VsyncMessage):
    """One gossip round's versioned liveness table.  ``group`` is "_fd".

    ``entries`` carries ``(peer, incarnation, counter, suspect)`` rows
    sorted by peer id; receivers merge rows whose ``(incarnation,
    counter)`` version exceeds their own and prune rows for peers
    outside their zone/monitoring scope, so per-node state stays
    O(zone + monitored) instead of O(roster).
    """

    sender: ProcessId = ""
    round_no: int = 0
    entries: Tuple[Tuple[ProcessId, int, int, bool], ...] = ()

    def size_bytes(self) -> int:
        return HEADER_BYTES + 24 * len(self.entries)


@dataclass(frozen=True)
class ProbeRequest(VsyncMessage):
    """Origin -> witness: please ping ``target`` on my behalf (SWIM).

    Sent when a liveness entry goes stale, before declaring suspicion:
    the witness forwards a :class:`ProbePing`, and any answer reaching
    the origin cancels the pending suspicion.
    """

    origin: ProcessId = ""
    target: ProcessId = ""

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class ProbePing(VsyncMessage):
    """Witness -> target: answer ``origin`` directly with your digest."""

    origin: ProcessId = ""
    witness: ProcessId = ""

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class ZoneSummary(VsyncMessage):
    """Relay -> other zones' relays: compressed state of one zone.

    ``group`` is the constant "_zone".  Non-relay nodes receive these
    re-broadcast by their own zone's primary relay, so every node holds
    a per-zone summary instead of per-node state for remote zones.
    """

    zone: int = -1
    version: int = 0
    origin: ProcessId = ""
    member_count: int = 0
    alive_count: int = 0
    suspects: Tuple[ProcessId, ...] = ()

    def size_bytes(self) -> int:
        return HEADER_BYTES + 16 + 16 * len(self.suspects)


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Presence(VsyncMessage):
    """Coordinator beacon announcing a live view of ``group``.

    Concurrent views of the same group discover one another by hearing
    each other's beacons once the network allows it ("peer-discovery at
    the HWG level", paper Section 4 item 1).

    ``origin`` is empty on a coordinator's own beacon; a zone relay that
    re-forwards a cross-zone beacon stamps the coordinator's id there so
    receivers attribute the view to its coordinator, not the relay
    (PROTOCOLS.md §20).
    """

    view_id: ViewId = ViewId("", 0)
    members: Tuple[ProcessId, ...] = ()
    origin: ProcessId = ""

    def size_bytes(self) -> int:
        return HEADER_BYTES + 16 * len(self.members)


@dataclass(frozen=True)
class JoinProbe(VsyncMessage):
    """A joining process asks any live coordinator to reveal itself.

    Coordinators answer by (re-)multicasting their :class:`Presence`
    beacon; a joiner that hears no beacon within its timeout founds a
    singleton view (bootstrap-by-merge).
    """

    joiner: ProcessId = ""


@dataclass(frozen=True)
class JoinRequest(VsyncMessage):
    """A process asks the coordinator to admit it to the group."""

    joiner: ProcessId = ""


@dataclass(frozen=True)
class LeaveRequest(VsyncMessage):
    """A member asks the coordinator to remove it from the group."""

    leaver: ProcessId = ""


# ----------------------------------------------------------------------
# Ordered data path (coordinator-sequencer)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Publish(VsyncMessage):
    """Member -> sequencer: please order this payload in view ``view_id``."""

    view_id: ViewId = ViewId("", 0)
    sender: ProcessId = ""
    sender_seq: int = 0  # per-sender dedup counter
    payload: Any = None
    payload_size: int = 0
    #: Piggybacked stability ack: the sender's contiguous delivered
    #: prefix at publish time.  Saves the periodic standalone
    #: :class:`StabilityAck` whenever the member is actively sending.
    acked_upto: int = -1

    def size_bytes(self) -> int:
        return HEADER_BYTES + self.payload_size


@dataclass(frozen=True)
class Ordered(VsyncMessage):
    """Sequencer -> view members: payload with its total-order sequence."""

    view_id: ViewId = ViewId("", 0)
    seq: int = 0
    sender: ProcessId = ""
    sender_seq: int = 0
    payload: Any = None
    payload_size: int = 0
    #: Piggybacked stability floor: the sequencer's ``stable_upto`` when
    #: this message was ordered.  Receivers prune their logs from it, so
    #: standalone :class:`StabilityAnnounce` messages are only needed on
    #: idle channels.  Retransmissions carry the floor of first emission;
    #: the receiver-side monotone guard makes that harmless.
    stable_floor: int = -1

    def size_bytes(self) -> int:
        return HEADER_BYTES + self.payload_size


@dataclass(frozen=True)
class StabilityAck(VsyncMessage):
    """Member -> sequencer: I have delivered up to ``delivered_upto``.

    Sent periodically; lets the sequencer compute the *stability floor*
    (the prefix every member has delivered) so ordered-message logs can
    be garbage-collected — without it, per-view logs grow without bound.
    """

    view_id: ViewId = ViewId("", 0)
    member: ProcessId = ""
    delivered_upto: int = -1

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class StabilityAnnounce(VsyncMessage):
    """Sequencer -> members: messages up to ``floor`` are stable.

    Everyone may prune their retransmission/flush logs up to the floor:
    no flush can ever need a message below the minimum delivered prefix.
    """

    view_id: ViewId = ViewId("", 0)
    floor: int = -1

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class Nack(VsyncMessage):
    """Receiver -> sequencer: retransmit ordered messages [from_seq, to_seq]."""

    view_id: ViewId = ViewId("", 0)
    from_seq: int = 0
    to_seq: int = 0
    requester: ProcessId = ""


# ----------------------------------------------------------------------
# View change: flush
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Stop(VsyncMessage):
    """Round leader -> members of an old view: stop traffic, start flushing.

    ``leader_have_upto`` is the leader's own contiguous prefix end; members
    reply with copies of every message they hold above it, so the leader
    can redistribute whatever any member is missing.
    """

    view_id: ViewId = ViewId("", 0)
    round_no: int = 0
    leader: ProcessId = ""
    leader_have_upto: int = -1


@dataclass(frozen=True)
class FlushState(VsyncMessage):
    """Member -> round leader: my delivery state for the old view.

    ``have_upto`` is the end of the member's contiguous delivered/held
    prefix; ``extra`` maps sequence numbers beyond the prefix to the
    :class:`Ordered` messages the member holds out of order.
    """

    view_id: ViewId = ViewId("", 0)
    round_no: int = 0
    member: ProcessId = ""
    have_upto: int = -1
    extra: Dict[int, "Ordered"] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + 32 + sum(m.size_bytes() for m in self.extra.values())


@dataclass(frozen=True)
class FlushFill(VsyncMessage):
    """Round leader -> member: ordered messages the member is missing."""

    view_id: ViewId = ViewId("", 0)
    round_no: int = 0
    cut: int = -1  # deliver everything up to and including this seq
    missing: Dict[int, "Ordered"] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + 16 + sum(m.size_bytes() for m in self.missing.values())


@dataclass(frozen=True)
class FlushDone(VsyncMessage):
    """Member -> round leader: I delivered everything up to the cut."""

    view_id: ViewId = ViewId("", 0)
    round_no: int = 0
    member: ProcessId = ""


# ----------------------------------------------------------------------
# View change: merge coordination between branch coordinators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MergeRequest(VsyncMessage):
    """Merge leader -> foreign branch coordinator: flush your view and report.

    ``epoch`` lets the leader match replies to the merge attempt.
    """

    leader: ProcessId = ""
    leader_view_id: ViewId = ViewId("", 0)
    target_view_id: ViewId = ViewId("", 0)
    epoch: int = 0


@dataclass(frozen=True)
class MergeDecline(VsyncMessage):
    """Foreign coordinator -> merge leader: busy or superseded, retry later."""

    decliner: ProcessId = ""
    epoch: int = 0


@dataclass(frozen=True)
class BranchFlushed(VsyncMessage):
    """Branch coordinator -> merge leader: my branch finished flushing.

    Carries the flushed branch view (with the members that actually
    completed the flush) and the branch's post-flush dedup floors, so the
    leader can compute the merged membership, genealogy and floors.
    """

    epoch: int = 0
    branch_view: Optional[View] = None
    survivors: Tuple[ProcessId, ...] = ()
    dedup: Dict[ProcessId, int] = field(default_factory=dict)
    branch_coordinator: ProcessId = ""


# ----------------------------------------------------------------------
# View installation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InstallView(VsyncMessage):
    """Leader -> every member of the new view: install it.

    ``via_branch`` names the old view through which the recipient reaches
    this new view (its flush context); joiners have ``via_branch=None``.
    """

    view: Optional[View] = None
    round_no: int = 0
    via_branch: Optional[ViewId] = None
    dedup: Dict[ProcessId, int] = field(default_factory=dict)
    #: Application state snapshot for joiners (state transfer): captured
    #: by the round leader *after* its branch flushed, i.e. exactly at
    #: the old view's delivery cut, so the joiner's state plus the new
    #: view's messages reproduce every member's state.
    app_state: Any = None
    app_state_size: int = 0

    def size_bytes(self) -> int:
        members = len(self.view.members) if self.view else 0
        return HEADER_BYTES + 32 + 16 * members + 24 * len(self.dedup) + self.app_state_size
