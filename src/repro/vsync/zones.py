"""Two-level zoned membership: zone assignment, relays, summaries (§20).

The flat substrate has every process heartbeat and monitor every peer it
shares an HWG with — O(n²) failure-detection traffic and O(n) per-node
membership state, the scalability wall measured in
``benchmarks/bench_scalability.py``.  The zoned topology splits the
roster into deterministic *zones*:

* full per-peer liveness state is kept only for the node's own zone
  (plus peers its endpoints explicitly monitor across zones), driven by
  the :class:`~repro.vsync.failure_detector.GossipFailureDetector`;
* each zone exposes a *relay pair* — the two lowest-id live members —
  that gossips with other zones' relays, exchanges compressed
  :class:`~repro.vsync.messages.ZoneSummary` state, and forwards
  cross-zone view/merge control (Presence beacons) into its zone;
* HWG pools are zone-local: fresh HWGs are minted with a zone tag and
  the mapping policies only co-map LWGs onto own-zone pools.

The :class:`ZoneDirectory` is a shared in-memory registry in the same
spirit as :class:`~repro.vsync.locator.GroupAddressing`: zone assignment
is a deterministic pure function, and activity bits mirror the failure
injector's crash state (a stand-in for the zone membership service a
real deployment would run).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..runtime.interfaces import NodeId

#: Pseudo-group id carried by zone control traffic (like "_fd").
ZONE_GROUP = "_zone"

#: Relays per zone: primary (lowest live id) plus one hot standby.
RELAY_PAIR_SIZE = 2


def zone_hash(node: NodeId, num_zones: int) -> int:
    """Deterministic, hash-seed-independent zone for ``node``."""
    digest = hashlib.sha256(f"zone|{node}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % max(1, num_zones)


@dataclass(frozen=True)
class ZoneMap:
    """Node → zone assignment: explicit table or sha256 hashing.

    Explicit assignments come from workloads that want contiguous zones
    (the scale benches partition along zone boundaries); the fuzz
    harness uses the hash form so assignment is derivable from the
    schedule alone.
    """

    num_zones: int
    explicit: Optional[Mapping[NodeId, int]] = None

    def zone_of(self, node: NodeId) -> int:
        if self.explicit is not None and node in self.explicit:
            return self.explicit[node] % max(1, self.num_zones)
        return zone_hash(node, self.num_zones)


class ZoneDirectory:
    """Shared zone registry: membership, activity, relay election.

    Relay election is a pure function of the registry: the relays of a
    zone are its ``RELAY_PAIR_SIZE`` lowest-id *active* members.  Crash
    transitions flip the activity bit (wired from the stacks' crash
    hooks), so election shifts deterministically the moment a relay
    fail-stops — no extra protocol rounds, mirroring how
    ``GroupAddressing`` stands in for IP-multicast subscription state.
    """

    def __init__(self, zone_map: ZoneMap):
        self.zone_map = zone_map
        self._zone_of: Dict[NodeId, int] = {}
        self._members: Dict[int, List[NodeId]] = {}
        self._active: Dict[NodeId, bool] = {}

    # ------------------------------------------------------------------
    # Registration / activity
    # ------------------------------------------------------------------
    def register(self, node: NodeId) -> int:
        zone = self.zone_map.zone_of(node)
        if node not in self._zone_of:
            self._zone_of[node] = zone
            members = self._members.setdefault(zone, [])
            members.append(node)
            members.sort()
        self._active[node] = True
        return zone

    def set_active(self, node: NodeId, active: bool) -> None:
        if node in self._zone_of:
            self._active[node] = active

    def is_active(self, node: NodeId) -> bool:
        return self._active.get(node, False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def zone_of(self, node: NodeId) -> Optional[int]:
        return self._zone_of.get(node)

    def zones(self) -> Tuple[int, ...]:
        return tuple(sorted(self._members))

    def members(self, zone: int) -> Tuple[NodeId, ...]:
        return tuple(self._members.get(zone, ()))

    def active_members(self, zone: int) -> Tuple[NodeId, ...]:
        return tuple(
            node for node in self._members.get(zone, ()) if self._active.get(node)
        )

    def relays(self, zone: int) -> Tuple[NodeId, ...]:
        """The zone's relay pair: its lowest-id active members."""
        return self.active_members(zone)[:RELAY_PAIR_SIZE]

    def primary_relay(self, zone: int) -> Optional[NodeId]:
        relays = self.relays(zone)
        return relays[0] if relays else None

    def all_relays(self) -> Set[NodeId]:
        out: Set[NodeId] = set()
        for zone in self._members:
            out.update(self.relays(zone))
        return out


class ZoneAgent:
    """Per-stack zone behaviour: substrate seeding, relaying, summaries.

    Owned by a :class:`~repro.vsync.stack.ProtocolStack` running with
    ``topology="zoned"``.  Periodic work rides the stack's beacon-period
    timer; everything here is deterministic given the directory state.
    """

    def __init__(self, stack, directory: ZoneDirectory):
        from .messages import Presence, ZoneSummary  # no cycle at runtime

        self._Presence = Presence
        self._ZoneSummary = ZoneSummary
        self.stack = stack
        self.directory = directory
        self.zone = directory.register(stack.node)
        self._summary_version = 0
        #: zone -> freshest compressed summary seen (own zone included).
        self.summaries: Dict[int, "ZoneSummary"] = {}
        self.summaries_sent = 0
        self.presence_forwarded = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def seed_substrate(self) -> None:
        """(Re-)install the zone gossip substrate into the detector."""
        peers = set(self.directory.members(self.zone)) - {self.stack.node}
        self.stack.fd.set_substrate(peers)
        self._update_relay_links()

    def on_crash(self) -> None:
        self.directory.set_active(self.stack.node, False)

    def on_recover(self) -> None:
        self.directory.set_active(self.stack.node, True)
        self.seed_substrate()

    # ------------------------------------------------------------------
    # Relay role
    # ------------------------------------------------------------------
    def is_relay(self) -> bool:
        return self.stack.node in self.directory.relays(self.zone)

    def is_primary_relay(self) -> bool:
        return self.directory.primary_relay(self.zone) == self.stack.node

    def _update_relay_links(self) -> None:
        """Relays gossip pairwise with every other zone's relay pair."""
        extras: Set[NodeId] = set()
        if self.is_relay():
            for zone in self.directory.zones():
                if zone != self.zone:
                    extras.update(self.directory.relays(zone))
        self.stack.fd.set_extras(extras)

    # ------------------------------------------------------------------
    # Periodic zone tick (beacon cadence)
    # ------------------------------------------------------------------
    def tick(self) -> None:
        self._update_relay_links()
        if not self.is_relay():
            return
        summary = self._own_summary()
        self.summaries[self.zone] = summary
        targets: Set[NodeId] = set()
        for zone in self.directory.zones():
            if zone != self.zone:
                targets.update(self.directory.relays(zone))
        if self.is_primary_relay():
            # Re-broadcast every known summary into the zone so each
            # member holds compressed per-zone state for the roster.
            locals_ = set(self.directory.members(self.zone)) - {self.stack.node}
            if locals_:
                for zone in sorted(self.summaries):
                    known = self.summaries[zone]
                    self.stack.multicast(locals_, known, known.size_bytes())
                    self.summaries_sent += 1
        if targets:
            self.stack.multicast(targets, summary, summary.size_bytes())
            self.summaries_sent += 1

    def _own_summary(self) -> "ZoneSummary":
        members = self.directory.members(self.zone)
        fd = self.stack.fd
        suspects = tuple(
            sorted(peer for peer in members if fd.is_suspected(peer))
        )
        self._summary_version += 1
        return self._ZoneSummary(
            group=ZONE_GROUP,
            zone=self.zone,
            version=self._summary_version,
            origin=self.stack.node,
            member_count=len(members),
            alive_count=len(members) - len(suspects),
            suspects=suspects,
        )

    # ------------------------------------------------------------------
    # Incoming zone control
    # ------------------------------------------------------------------
    def on_summary(self, src: NodeId, msg: "ZoneSummary") -> None:
        known = self.summaries.get(msg.zone)
        if known is not None and known.origin == msg.origin and msg.version <= known.version:
            return  # per-origin monotonicity; origin changes (relay
            # fail-over) always win so summaries keep flowing.
        self.summaries[msg.zone] = msg

    def maybe_forward_presence(self, src: NodeId, msg: "Presence") -> None:
        """Primary-relay duty: fan a cross-zone beacon into our zone.

        Coordinators beacon directly to same-zone subscribers, their own
        view members, and other zones' relay pairs; the receiving zone's
        primary relay forwards the beacon to local subscribers that are
        not already members of the advertised view.  ``origin`` stamps
        the true coordinator so membership logic attributes the view
        correctly, and guards against re-forwarding loops.
        """
        if msg.origin:
            return  # already forwarded once — never relay a relay
        if not self.is_primary_relay():
            return
        origin_zone = self.directory.zone_of(src)
        if origin_zone == self.zone:
            return  # same-zone beacons already reached everyone local
        members = set(msg.members)
        locals_ = self.stack.addressing.subscribers_in_zone(
            msg.group, self.directory, self.zone
        ) - members - {src, self.stack.node}
        if not locals_:
            return
        forwarded = self._Presence(
            group=msg.group,
            view_id=msg.view_id,
            members=msg.members,
            origin=src,
        )
        self.presence_forwarded += 1
        self.stack.multicast(locals_, forwarded, forwarded.size_bytes())
        if self.stack.env.tracer.enabled("zones"):
            self.stack.env.tracer.emit(
                "zones",
                "presence_forwarded",
                node=self.stack.node,
                group=msg.group,
                origin=src,
                zone=self.zone,
                targets=len(locals_),
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def tracked_peer_count(self) -> int:
        """Full per-peer rows + one compressed row per remote zone."""
        return self.stack.fd.tracked_peer_count() + len(
            [zone for zone in self.summaries if zone != self.zone]
        )
