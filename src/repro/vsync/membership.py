"""View-change orchestration: joins, leaves, suspicions and merges.

One :class:`ViewChangeManager` runs per endpoint.  It accumulates
*triggers* (pending joins, leaves, current suspicions, merge candidates
discovered through presence beacons) and, whenever this endpoint is the
*acting coordinator* of its view, runs restartable view-change rounds:

* flush the local branch (see :mod:`repro.vsync.flush`);
* for merges, ask each foreign branch coordinator to flush its own view
  and report back (``MergeRequest`` / ``BranchFlushed``);
* mint the new view — members in deterministic seniority order, view id
  ``(leader, seq)``, parents = all flushed branch view ids — and install
  it at every member.

The *acting coordinator* is the most senior view member not currently
suspected; when the real coordinator is partitioned away, seniority
hands leadership to the next survivor, which is how each partition side
keeps making progress and how concurrent views arise.

Failure handling is uniformly timeout-and-restart: stalled flushes are
retried once, then retried without the silent members; foreign branches
that never report are dropped from the merge; a branch coordinator that
flushed for a merge leader that then vanished installs a recovery view
of its own branch so its members are never stuck.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set, Tuple

from ..runtime.interfaces import NodeId
from .flush import BranchFlushLeader
from .messages import (
    BranchFlushed,
    InstallView,
    JoinRequest,
    LeaveRequest,
    MergeDecline,
    MergeRequest,
    Presence,
)
from .view import View, ViewId, merge_member_order

#: How long a merge leader waits for BranchFlushed replies.
MERGE_BRANCH_TIMEOUT_US = 900_000
#: How long a subordinate branch waits for the merge leader's InstallView.
INSTALL_TIMEOUT_US = 1_500_000

#: Hardened-mode (VsyncConfig.heal_hardening) overrides.  A mass heal
#: congests the shared medium far past the single-round-trip budgets
#: above: dropping branches at 900 ms when the wire is running
#: second-plus one-way latencies only restarts the chase and adds its
#: own retry traffic.  The leader waits several uncongested round
#: trips; the subordinate waits past the *leader's* whole round budget
#: (plus install latency) before concluding the leader is gone.
HARDENED_MERGE_TIMEOUT_US = 3 * MERGE_BRANCH_TIMEOUT_US
HARDENED_INSTALL_TIMEOUT_US = 2 * HARDENED_MERGE_TIMEOUT_US

#: Hardened abandoned-branch confirmation window: a member keeps
#: treating a coordinator beacon for an unknown view as inconclusive
#: until sightings of it span this long (a congested InstallView can
#: trail the beacons announcing it by seconds; seceding early shatters
#: a view that was about to complete).
ABANDONED_CONFIRM_US = 3_000_000

#: How long a hardened leader-eligible coordinator keeps deferring its
#: own merge rounds after sighting a beacon from a *smaller* live
#: coordinator (who will absorb us; our competing round would only add
#: traffic).  A few beacon periods: if the smaller leader dies, its
#: beacons stop and the window lapses.
MERGE_DEFER_WINDOW_US = 2_000_000


class EndpointState(enum.Enum):
    """Lifecycle of an endpoint's group membership."""

    IDLE = "idle"
    JOINING = "joining"
    MEMBER = "member"
    LEAVING = "leaving"


class _BranchStatus(enum.Enum):
    WAITING = "waiting"
    FLUSHED = "flushed"
    DROPPED = "dropped"


class _ForeignBranch:
    """Leader-side record of one foreign branch being merged in."""

    def __init__(self, coordinator: NodeId, view_id: ViewId):
        self.coordinator = coordinator
        self.view_id = view_id
        self.status = _BranchStatus.WAITING
        self.flushed: Optional[BranchFlushed] = None


class _Round:
    """One view-change attempt led by this endpoint."""

    def __init__(self, round_no: int, epoch: int):
        self.round_no = round_no
        self.epoch = epoch
        self.joins: Set[NodeId] = set()
        self.leaves: Set[NodeId] = set()
        self.suspects: Set[NodeId] = set()
        self.refresh = False
        self.foreign: Dict[NodeId, _ForeignBranch] = {}
        self.flush: Optional[BranchFlushLeader] = None
        self.own_done: Optional[Tuple[Tuple[NodeId, ...], Dict[NodeId, int]]] = None
        self.stalls_by_member: Dict[NodeId, int] = {}
        self.installing = False
        self.merge_timer = None


class _Subordinate:
    """State while flushing our branch on behalf of a foreign merge leader."""

    def __init__(self, leader: NodeId, epoch: int, round_no: int):
        self.leader = leader
        self.epoch = epoch
        self.round_no = round_no
        self.flush: Optional[BranchFlushLeader] = None
        self.reported = False
        self.install_timer = None
        #: Flush result, kept so a retrying leader can be re-reported
        #: under its fresh epoch without re-flushing.
        self.survivors: Tuple[NodeId, ...] = ()
        self.dedup: Dict[NodeId, int] = {}


class ViewChangeManager:
    """Coordinates all view changes for one endpoint.

    The ``endpoint`` is the owning :class:`~repro.vsync.hwg.HwgEndpoint`;
    the manager reads its ``node``, ``group``, ``env``, ``stack``,
    ``channel``, ``participant``, ``current_view``, ``state`` and
    ``known_ancestors`` attributes and calls its messaging/upcall helpers.
    """

    def __init__(self, endpoint) -> None:
        self.ep = endpoint
        self.pending_joins: Set[NodeId] = set()
        self.pending_leaves: Set[NodeId] = set()
        self.pending_merges: Dict[NodeId, Presence] = {}
        self.round: Optional[_Round] = None
        self.subordinate: Optional[_Subordinate] = None
        self.highest_round_seen = -1
        self._epoch_counter = 0
        self.refresh_requested = False
        self._abandoned_evidence: Optional[ViewId] = None
        self._abandoned_seen_at = 0
        #: Hardened mode: sim-time until which merge-only rounds are
        #: deferred because a smaller live coordinator was sighted.
        self._defer_until = 0

    @property
    def _hardened(self) -> bool:
        """Mass-heal hardening enabled (see VsyncConfig.heal_hardening)."""
        return self.ep.stack.config.heal_hardening

    # ------------------------------------------------------------------
    # Role queries
    # ------------------------------------------------------------------
    def acting_coordinator(self) -> Optional[NodeId]:
        """Most senior non-suspected member of the current view."""
        view = self.ep.current_view
        if view is None:
            return None
        for member in view.members:
            if member == self.ep.node or not self.ep.fd.is_suspected(member):
                return member
        return None

    def am_leader(self) -> bool:
        return self.acting_coordinator() == self.ep.node

    def _current_suspects(self) -> Set[NodeId]:
        view = self.ep.current_view
        if view is None:
            return set()
        return {m for m in view.members if m != self.ep.node and self.ep.fd.is_suspected(m)}

    # ------------------------------------------------------------------
    # Trigger intake
    # ------------------------------------------------------------------
    def on_join_request(self, msg: JoinRequest) -> None:
        if self.ep.state is not EndpointState.MEMBER or not self.am_leader():
            return  # the joiner retries against the right coordinator
        view = self.ep.current_view
        if view is not None and msg.joiner in view.members:
            # A JoinRequest from a *current* member means the node
            # restarted under the failure detector's radar: only a
            # JOINING endpoint sends these, so the membership entry is
            # its dead incarnation — still holding a dedup floor that
            # would silently swallow the new life's restarted sender
            # numbering if we re-admitted it as a continuing member.
            # Evict the stale entry first; the joiner keeps retrying and
            # is then admitted as a genuine joiner (fresh floor, state
            # snapshot) once the view has forgotten its previous life.
            self.ep.trace("rejoin_evicts_stale_member", joiner=msg.joiner)
            self.pending_leaves.add(msg.joiner)
            self.maybe_start()
            return
        self.pending_joins.add(msg.joiner)
        self.maybe_start()

    def on_leave_request(self, msg: LeaveRequest) -> None:
        if self.ep.state not in (EndpointState.MEMBER, EndpointState.LEAVING):
            return
        view = self.ep.current_view
        if view is None:
            return
        if msg.leaver not in view.members:
            # The group already moved on without the leaver: it was
            # excluded as a suspect (e.g. while partitioned away) and is
            # now retrying a leave against a view that forgot it, which
            # no round will ever answer.  Release it directly — an
            # InstallView with no view finishes the leave at a LEAVING
            # endpoint and is ignored in every other state.
            self.ep.trace("leave_release_stale", leaver=msg.leaver)
            self.ep.reliable_send(
                msg.leaver,
                InstallView(group=self.ep.group, view=None,
                            round_no=self.highest_round_seen),
            )
            return
        if not self.am_leader():
            return
        self.pending_leaves.add(msg.leaver)
        self.maybe_start()

    def on_suspicion_change(self, peer: NodeId, suspected: bool) -> None:
        """FD callback: suspicion state of ``peer`` changed."""
        view = self.ep.current_view
        if view is None or peer not in view.members:
            return
        if suspected:
            # Leadership may have shifted to us; a stalled round led by the
            # suspect will be superseded by ours thanks to round precedence.
            self.maybe_start()

    def on_presence(self, src: NodeId, msg: Presence) -> None:
        """A beacon from some view of our group arrived.

        ``src`` must be the *coordinator* that minted the beacon: under
        the zoned topology a cross-zone beacon arrives through a zone
        relay, whose stamp in ``msg.origin`` overrides the transport
        sender — abandonment evidence, merge duel-avoidance and the
        pending-merge table are all keyed by coordinator identity.
        """
        if msg.origin:
            src = msg.origin
        if self.ep.state is not EndpointState.MEMBER:
            return
        view = self.ep.current_view
        if view is None or msg.view_id == view.view_id:
            return
        if msg.view_id in self.ep.known_ancestors:
            return  # a stale beacon from a view we already superseded
        included = self.ep.node in msg.members
        if (not included or self._hardened) and src == self.acting_coordinator():
            # Our own coordinator is beaconing a view that is neither
            # ours nor one we superseded: it moved on without us.  Either
            # the view excludes us (we were dropped from a flush while
            # alive — a deferred StopOk, or a one-way reachability
            # glitch), or — under heal hardening — it *includes* us but
            # we never installed it (a leave/rejoin race: the
            # intermediate view that cut us was ignored while we sat in
            # MEMBER state, so the re-adding install arrived via a
            # branch we don't descend from and was refused).  Either way
            # we are deaf on a stale branch and no retransmission is
            # coming.  Two consecutive sightings (beacons are periodic;
            # a racing InstallView lands in between) confirm the strand
            # — then we secede into a singleton view and let the merge
            # machinery reunite us.  Hardened mode additionally demands
            # that the sightings span a real confirmation window: during
            # a congested mass heal an InstallView can trail the beacons
            # announcing it by several seconds, and seceding on two
            # quick sightings would shatter views the install was about
            # to complete.
            if self._abandoned_evidence == msg.view_id:
                if (
                    self._hardened
                    and self.ep.env.now - self._abandoned_seen_at
                    < ABANDONED_CONFIRM_US
                ):
                    return  # keep the evidence; the window is still open
                self._abandoned_evidence = None
                self.ep.trace("abandoned_secede", stale_view=str(view.view_id))
                self.ep.secede()
            else:
                self._abandoned_evidence = msg.view_id
                self._abandoned_seen_at = self.ep.env.now
            return
        if not self.am_leader():
            return
        # Deterministic duel-avoidance: the coordinator with the smaller
        # process id leads the merge.
        if self.ep.node < src:
            self.pending_merges[src] = msg
            self.maybe_start()
        elif self._hardened:
            # A smaller live coordinator is beaconing.  It will absorb
            # us (everyone yields to the smaller leader), so starting
            # our own merge round toward third parties only adds a
            # competing leader to the heal storm.  Defer merge-only
            # rounds while its beacons stay fresh.
            self._defer_until = self.ep.env.now + MERGE_DEFER_WINDOW_US

    def request_refresh(self) -> None:
        """Force a flush + identity view change (Figure-5 merge support).

        The upper layer (LWG merge protocol) uses this to create a
        synchronisation point: the flush equalises delivery of every
        in-transit ordered message, and the fresh view marks the instant
        at which all members merge their concurrent LWG views.
        """
        self.refresh_requested = True
        self.maybe_start()

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def maybe_start(self) -> None:
        """Start a view-change round if we lead and there is work to do."""
        if self.round is not None or self.subordinate is not None:
            return
        if self.ep.state not in (EndpointState.MEMBER, EndpointState.LEAVING):
            return
        if not self.am_leader():
            return
        suspects = self._current_suspects()
        view = self.ep.current_view
        assert view is not None
        joins = {j for j in self.pending_joins if j not in view.members}
        leaves = {l for l in self.pending_leaves if l in view.members}
        merges = dict(self.pending_merges)
        refresh = self.refresh_requested
        if not (suspects or joins or leaves or merges or refresh):
            return
        if (
            self._hardened
            and merges
            and not (suspects or joins or leaves or refresh)
            and self.ep.env.now < self._defer_until
        ):
            # Merge-only work while a smaller coordinator's beacons are
            # fresh: it will absorb us; hold our fire (pending merges
            # stay queued for when the window lapses).
            return
        self.refresh_requested = False
        self._epoch_counter += 1
        round_no = self.highest_round_seen + 1
        self.highest_round_seen = round_no
        rnd = _Round(round_no, self._epoch_counter)
        rnd.joins = joins
        rnd.leaves = leaves
        rnd.suspects = suspects
        rnd.refresh = refresh
        self.pending_joins -= joins
        self.pending_leaves -= leaves
        self.pending_merges.clear()
        self.round = rnd
        self.ep.trace("round_start", round_no=round_no, joins=sorted(joins),
                      leaves=sorted(leaves), suspects=sorted(suspects),
                      merges=sorted(merges))
        for coordinator, presence in merges.items():
            branch = _ForeignBranch(coordinator, presence.view_id)
            rnd.foreign[coordinator] = branch
            self.ep.reliable_send(
                coordinator,
                MergeRequest(
                    group=self.ep.group,
                    leader=self.ep.node,
                    leader_view_id=view.view_id,
                    target_view_id=presence.view_id,
                    epoch=rnd.epoch,
                ),
            )
        if rnd.foreign:
            rnd.merge_timer = self.ep.env.scheduler.schedule(
                HARDENED_MERGE_TIMEOUT_US if self._hardened
                else MERGE_BRANCH_TIMEOUT_US,
                lambda: self._merge_timeout(rnd),
            )
        self._start_own_flush(rnd)

    def _start_own_flush(self, rnd: _Round) -> None:
        view = self.ep.current_view
        assert view is not None
        participants = set(view.members) - rnd.suspects
        if self.ep.node not in participants:
            self._abandon_round(rnd)
            return
        rnd.flush = BranchFlushLeader(
            host=self.ep,
            old_view=view,
            round_no=rnd.round_no,
            participants=participants,
            on_complete=lambda survivors, dedup: self._own_flush_done(rnd, survivors, dedup),
            on_stall=lambda missing: self._own_flush_stalled(rnd, missing),
        )
        rnd.flush.start()

    def _own_flush_done(
        self, rnd: _Round, survivors: Tuple[NodeId, ...], dedup: Dict[NodeId, int]
    ) -> None:
        if self.round is not rnd:
            return
        rnd.own_done = (survivors, dedup)
        self._try_finish(rnd)

    def _own_flush_stalled(self, rnd: _Round, missing: Set[NodeId]) -> None:
        """Flush timed out waiting on ``missing``: retry, then exclude them."""
        if self.round is not rnd or rnd.own_done is not None:
            return
        retry_same = True
        for member in missing:
            count = rnd.stalls_by_member.get(member, 0) + 1
            rnd.stalls_by_member[member] = count
            if count > 1:
                retry_same = False
        assert rnd.flush is not None
        participants = set(rnd.flush.participants)
        rnd.flush.abort()
        if not retry_same:
            participants -= missing
            rnd.suspects |= missing
            self.ep.trace("flush_exclude", members=sorted(missing), round_no=rnd.round_no)
        if self.ep.node not in participants or not participants:
            self._abandon_round(rnd)
            return
        rnd.round_no = self.highest_round_seen + 1
        self.highest_round_seen = rnd.round_no
        view = self.ep.current_view
        assert view is not None
        rnd.flush = BranchFlushLeader(
            host=self.ep,
            old_view=view,
            round_no=rnd.round_no,
            participants=participants,
            on_complete=lambda survivors, dedup: self._own_flush_done(rnd, survivors, dedup),
            on_stall=lambda miss: self._own_flush_stalled(rnd, miss),
        )
        rnd.flush.start()

    def _merge_timeout(self, rnd: _Round) -> None:
        if self.round is not rnd:
            return
        for branch in rnd.foreign.values():
            if branch.status is _BranchStatus.WAITING:
                branch.status = _BranchStatus.DROPPED
                self.ep.trace("merge_branch_dropped", coordinator=branch.coordinator)
        self._try_finish(rnd)

    def on_branch_flushed(self, msg: BranchFlushed) -> None:
        rnd = self.round
        if rnd is None or msg.epoch > rnd.epoch:
            return
        if msg.epoch != rnd.epoch and not self._hardened:
            return
        # Under hardening, a report paired with an *older* epoch of ours
        # is still good:
        # the branch froze at its cut when it flushed and stays frozen
        # until our install, so a reply that congestion pushed past the
        # merge timeout of the round that requested it answers the
        # current round's request just as well.  (Requiring an exact
        # epoch match livelocks under load: every round's replies land
        # just after that round dropped its branches, forever.)  If the
        # branch moved on after all — it gave up waiting and installed
        # a recovery view — our install is refused over there and the
        # merged view's flush stall shrinks it back out.
        branch = rnd.foreign.get(msg.branch_coordinator)
        if branch is None or branch.status is not _BranchStatus.WAITING:
            return
        branch.status = _BranchStatus.FLUSHED
        branch.flushed = msg
        self._try_finish(rnd)

    def on_merge_decline(self, msg: MergeDecline) -> None:
        rnd = self.round
        if rnd is None or msg.epoch != rnd.epoch:
            return
        branch = rnd.foreign.get(msg.decliner)
        if branch is not None and branch.status is _BranchStatus.WAITING:
            branch.status = _BranchStatus.DROPPED
            self._try_finish(rnd)

    def _try_finish(self, rnd: _Round) -> None:
        if self.round is not rnd or rnd.installing or rnd.own_done is None:
            return
        if any(b.status is _BranchStatus.WAITING for b in rnd.foreign.values()):
            return
        rnd.installing = True
        if rnd.merge_timer is not None:
            rnd.merge_timer.cancel()
        self._install_new_view(rnd)

    # ------------------------------------------------------------------
    # New-view construction and installation
    # ------------------------------------------------------------------
    def _install_new_view(self, rnd: _Round) -> None:
        old_view = self.ep.current_view
        assert old_view is not None and rnd.own_done is not None
        survivors, dedup = rnd.own_done
        flushed_any = any(
            b.status is _BranchStatus.FLUSHED for b in rnd.foreign.values()
        )
        if (
            self._hardened
            and rnd.foreign
            and not flushed_any
            and not rnd.joins
            and not rnd.leaves
            and not rnd.refresh
            and tuple(survivors) == old_view.members == (self.ep.node,)
        ):
            # A merge-only singleton round whose every foreign branch
            # declined or timed out.  Minting an identity view here is
            # not harmless: it bumps our view id, which invalidates the
            # Presence every *other* leader is about to target us with —
            # N healing singletons churn each other's merge targets
            # forever (a beacon-lag livelock).  Keep the current view,
            # resume the channel, and retry on the next beacon.
            self.ep.trace("merge_round_noop", round_no=rnd.round_no)
            self.round = None
            self.ep.participant.reset()
            self.ep.channel.thaw()
            return
        branches = [
            View(self.ep.group, old_view.view_id, tuple(survivors), old_view.parents)
        ]
        merged_dedup: Dict[NodeId, int] = dict(dedup)
        for branch in rnd.foreign.values():
            if branch.status is not _BranchStatus.FLUSHED:
                continue
            flushed = branch.flushed
            assert flushed is not None and flushed.branch_view is not None
            ordered_survivors = tuple(
                m for m in flushed.branch_view.members if m in flushed.survivors
            )
            if not ordered_survivors:
                continue
            branches.append(
                View(
                    self.ep.group,
                    flushed.branch_view.view_id,
                    ordered_survivors,
                    flushed.branch_view.parents,
                )
            )
            for sender, floor in flushed.dedup.items():
                if floor > merged_dedup.get(sender, -1):
                    merged_dedup[sender] = floor
        base_order = merge_member_order(branches)
        members = [m for m in base_order if m not in rnd.leaves]
        for joiner in sorted(rnd.joins):
            if joiner not in members:
                members.append(joiner)
        leavers = set(rnd.leaves) & set(base_order)
        parents = tuple(sorted({b.view_id for b in branches}))
        if not members:
            # Everyone left: no successor view; just release the leavers.
            for leaver in leavers:
                self._send_install(leaver, None, rnd.round_no, old_view.view_id, {})
            self.ep.trace("group_dissolved", view=str(old_view.view_id))
            self.round = None
            return
        new_view = View(
            group=self.ep.group,
            view_id=ViewId(self.ep.node, self.ep.stack.next_view_seq()),
            members=tuple(members),
            parents=parents,
        )
        self.ep.trace(
            "view_minted",
            view=str(new_view.view_id),
            members=list(new_view.members),
            parents=[str(p) for p in parents],
        )
        recipients = set(members) | leavers
        via: Dict[NodeId, Optional[ViewId]] = {}
        for branch in branches:
            for member in branch.members:
                via[member] = branch.view_id
        # State transfer: joiners (no flush context) receive a snapshot
        # captured now — after our branch flushed, at the delivery cut.
        joiners = {m for m in new_view.members if via.get(m) is None}
        # A joiner starts a fresh channel incarnation (sender_seq restarts
        # from 1).  A floor remembered from a previous incarnation of the
        # same node — it left or seceded, then rejoined — would make the
        # sequencer silently swallow its first messages.
        for joiner in joiners:
            merged_dedup.pop(joiner, None)
        app_state = self.ep.capture_state() if joiners else None
        local_install: Optional[InstallView] = None
        for recipient in sorted(recipients):
            is_joiner = recipient in joiners
            install = InstallView(
                group=self.ep.group,
                view=new_view if recipient in new_view.members else None,
                round_no=rnd.round_no,
                via_branch=via.get(recipient),
                dedup=dict(merged_dedup),
                app_state=app_state if is_joiner else None,
                app_state_size=256 if (is_joiner and app_state is not None) else 0,
            )
            if recipient == self.ep.node:
                local_install = install
            else:
                self.ep.reliable_send(recipient, install)
        # Install locally last so self-state stays consistent while sending.
        if local_install is not None:
            self.ep.apply_install(self.ep.node, local_install)

    def _send_install(
        self,
        recipient: NodeId,
        view: Optional[View],
        round_no: int,
        via_branch: Optional[ViewId],
        dedup: Dict[NodeId, int],
    ) -> None:
        install = InstallView(
            group=self.ep.group, view=view, round_no=round_no,
            via_branch=via_branch, dedup=dedup,
        )
        if recipient == self.ep.node:
            self.ep.apply_install(self.ep.node, install)
        else:
            self.ep.reliable_send(recipient, install)

    def _abandon_round(self, rnd: _Round) -> None:
        if rnd.flush is not None:
            rnd.flush.abort()
        if rnd.merge_timer is not None:
            rnd.merge_timer.cancel()
        if self.round is rnd:
            self.round = None

    def round_completed(self) -> None:
        """Called by the endpoint after a view installs; clears round state."""
        if self.round is not None:
            self._abandon_round(self.round)
        if self.subordinate is not None:
            self._clear_subordinate()

    def observed_round(self, round_no: int) -> None:
        """Track the highest round number seen as a participant."""
        if round_no > self.highest_round_seen:
            self.highest_round_seen = round_no

    # ------------------------------------------------------------------
    # Subordinate side of a merge (we flush for a foreign leader)
    # ------------------------------------------------------------------
    def on_merge_request(self, src: NodeId, msg: MergeRequest) -> None:
        view = self.ep.current_view
        decline = MergeDecline(group=self.ep.group, decliner=self.ep.node, epoch=msg.epoch)
        if not self._hardened:
            # Conservative baseline: decline anything but an exact-target
            # request to an idle leader.
            if (
                self.ep.state is not EndpointState.MEMBER
                or view is None
                or view.view_id != msg.target_view_id
                or not self.am_leader()
                or self.round is not None
                or self.subordinate is not None
                or not (msg.leader < self.ep.node)
            ):
                self.ep.reliable_send(src, decline)
                return
            self._accept_merge(msg)
            return
        sub = self.subordinate
        if sub is not None:
            if sub.leader == msg.leader:
                # The leader's previous round moved on before our flush
                # report reached it and it is retrying.  Our branch is
                # frozen at the reported cut, so pair with the retry's
                # epoch (and re-report if the flush already finished)
                # instead of busy-declining — a mass heal would
                # otherwise burn one install timeout per absorbed
                # branch.
                sub.epoch = msg.epoch
                if sub.reported:
                    self.ep.trace("merge_rereport", leader=msg.leader, epoch=msg.epoch)
                    self._report_flush(sub)
                return
            self.ep.reliable_send(src, decline)
            return
        # Note: msg.target_view_id is deliberately *not* matched against
        # our current view.  The request targets whatever Presence the
        # leader saw last; under a mass heal our view id may have moved
        # on by the time it lands.  The flush covers our *current* view
        # and BranchFlushed carries that view explicitly, so a stale
        # hint is harmless — declining it would leave two healing
        # coordinators chasing each other's beacons forever.
        if (
            self.ep.state is not EndpointState.MEMBER
            or view is None
            or not self.am_leader()
            or not (msg.leader < self.ep.node)
        ):
            self.ep.reliable_send(src, decline)
            return
        if self.round is not None:
            # We lead our own round, but a *smaller* leader wants to
            # absorb us.  Busy-declining here livelocks a symmetric merge
            # storm (N singleton leaders each perpetually mid-round,
            # declining each other forever); yielding to the smaller id
            # makes the order total — the globally smallest leader never
            # yields, so some merge always completes.
            self.ep.trace("merge_yield", to=msg.leader)
            self._abandon_round(self.round)
        self._accept_merge(msg)

    def _accept_merge(self, msg: MergeRequest) -> None:
        """Become the subordinate of ``msg.leader``: flush our branch."""
        view = self.ep.current_view
        assert view is not None
        round_no = self.highest_round_seen + 1
        self.highest_round_seen = round_no
        sub = _Subordinate(leader=msg.leader, epoch=msg.epoch, round_no=round_no)
        self.subordinate = sub
        participants = set(view.members) - self._current_suspects()
        sub.flush = BranchFlushLeader(
            host=self.ep,
            old_view=view,
            round_no=round_no,
            participants=participants,
            on_complete=lambda survivors, dedup: self._subordinate_flushed(sub, survivors, dedup),
            on_stall=lambda missing: self._subordinate_stalled(sub, missing),
        )
        self.ep.trace("merge_accept", leader=msg.leader, epoch=msg.epoch)
        sub.flush.start()

    def _subordinate_flushed(
        self, sub: _Subordinate, survivors: Tuple[NodeId, ...], dedup: Dict[NodeId, int]
    ) -> None:
        if self.subordinate is not sub or sub.reported:
            return
        sub.reported = True
        sub.survivors = tuple(survivors)
        sub.dedup = dict(dedup)
        self._report_flush(sub)

    def _report_flush(self, sub: _Subordinate) -> None:
        """(Re-)send BranchFlushed to the merge leader and (re-)arm the
        install timeout."""
        view = self.ep.current_view
        assert view is not None
        self.ep.reliable_send(
            sub.leader,
            BranchFlushed(
                group=self.ep.group,
                epoch=sub.epoch,
                branch_view=view,
                survivors=sub.survivors,
                dedup=dict(sub.dedup),
                branch_coordinator=self.ep.node,
            ),
        )
        if sub.install_timer is not None:
            sub.install_timer.cancel()
        sub.install_timer = self.ep.env.scheduler.schedule(
            HARDENED_INSTALL_TIMEOUT_US if self._hardened else INSTALL_TIMEOUT_US,
            lambda: self._subordinate_install_timeout(sub, sub.survivors, sub.dedup),
        )

    def _subordinate_stalled(self, sub: _Subordinate, missing: Set[NodeId]) -> None:
        """A member of our branch went silent mid-merge-flush: shrink and retry."""
        if self.subordinate is not sub or sub.reported:
            return
        assert sub.flush is not None
        participants = set(sub.flush.participants) - missing
        sub.flush.abort()
        if self.ep.node not in participants or not participants:
            self._clear_subordinate()
            return
        sub.round_no = self.highest_round_seen + 1
        self.highest_round_seen = sub.round_no
        view = self.ep.current_view
        assert view is not None
        sub.flush = BranchFlushLeader(
            host=self.ep,
            old_view=view,
            round_no=sub.round_no,
            participants=participants,
            on_complete=lambda survivors, dedup: self._subordinate_flushed(sub, survivors, dedup),
            on_stall=lambda miss: self._subordinate_stalled(sub, miss),
        )
        sub.flush.start()

    def _subordinate_install_timeout(
        self, sub: _Subordinate, survivors: Tuple[NodeId, ...], dedup: Dict[NodeId, int]
    ) -> None:
        """The merge leader vanished after we flushed: self-install a recovery view."""
        if self.subordinate is not sub:
            return
        view = self.ep.current_view
        assert view is not None
        if (
            self._hardened
            and view.members == (self.ep.node,)
            and tuple(survivors) == view.members
        ):
            # Singleton branch: there is nobody a recovery *install*
            # would tell anything new — minting a fresh view id here
            # only invalidates the (still retrying, merely congested)
            # leader's round and restarts the chase.  Resume the current
            # view instead; the next MergeRequest re-flushes from
            # scratch, so messages published after the thaw are covered.
            self.ep.trace("merge_recovery_noop", round_no=sub.round_no)
            self._clear_subordinate()
            self.ep.participant.reset()
            self.ep.channel.thaw()
            return
        recovery = View(
            group=self.ep.group,
            view_id=ViewId(self.ep.node, self.ep.stack.next_view_seq()),
            members=tuple(m for m in view.members if m in survivors),
            parents=(view.view_id,),
        )
        self.ep.trace("merge_recovery_view", view=str(recovery.view_id))
        for member in recovery.members:
            self._send_install(member, recovery, sub.round_no, view.view_id, dict(dedup))

    def _clear_subordinate(self) -> None:
        sub = self.subordinate
        if sub is None:
            return
        if sub.flush is not None:
            sub.flush.abort()
        if sub.install_timer is not None:
            sub.install_timer.cancel()
        self.subordinate = None

    # ------------------------------------------------------------------
    # Reset (used on leave/crash)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every pending trigger and active round."""
        if self.round is not None:
            self._abandon_round(self.round)
        self._clear_subordinate()
        self.pending_joins.clear()
        self.pending_leaves.clear()
        self.pending_merges.clear()
