"""Heartbeat failure detector, shared by every group on a process.

One detector instance runs per process and monitors the union of peers
its endpoints care about.  Sharing the detector across groups is itself
one of the resource-sharing wins the light-weight group service is
built around (the paper's Section 1: groups with common members "can
share common services" such as failure detectors).

The detector is unreliable in the usual sense: a partition is reported
as a crash of everyone across the cut, and suspicions are revised when
heartbeats resume (used by merge discovery after a heal).
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Dict, List, Optional, Set

from ..runtime.interfaces import NodeId, Runtime
from .messages import Heartbeat, LivenessDigest, ProbePing, ProbeRequest

SuspicionListener = Callable[[NodeId, bool], None]  # (peer, suspected)

FD_GROUP = "_fd"


def rendezvous_pick(salt: str, candidates: Set[NodeId], count: int) -> List[NodeId]:
    """The ``count`` highest-scoring candidates under rendezvous hashing.

    Scores are sha256-based, so the choice is deterministic across runs
    and independent of interpreter hash seeds — gossip target selection
    must never perturb the replayable RNG streams.
    """
    if count >= len(candidates):
        return sorted(candidates)
    scored = sorted(
        candidates,
        key=lambda peer: (
            hashlib.sha256(f"{salt}|{peer}".encode("utf-8")).digest(),
            peer,
        ),
        reverse=True,
    )
    return sorted(scored[:count])


def gossip_fanout(substrate_size: int) -> int:
    """``max(2, ceil(log2(n)))`` gossip targets for an n-peer substrate."""
    if substrate_size <= 0:
        return 0
    return min(substrate_size, max(2, math.ceil(math.log2(max(2, substrate_size)))))


class FailureDetector:
    """Multicast-heartbeat failure detector with revisable suspicions."""

    def __init__(
        self,
        env: Runtime,
        node: NodeId,
        send_multicast: Callable[[Set[NodeId], Heartbeat, int], None],
        heartbeat_period_us: int = 100_000,
        timeout_us: int = 350_000,
    ):
        self.env = env
        self.node = node
        self._send_multicast = send_multicast
        self.heartbeat_period_us = heartbeat_period_us
        self.timeout_us = timeout_us
        self._monitored: Dict[NodeId, int] = {}  # peer -> refcount
        self._last_heard: Dict[NodeId, int] = {}
        self._suspected: Set[NodeId] = set()
        self._listeners: List[SuspicionListener] = []
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def subscribe(self, listener: SuspicionListener) -> None:
        """Register ``listener(peer, suspected)`` for suspicion changes."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Monitoring set (refcounted: several endpoints may watch one peer)
    # ------------------------------------------------------------------
    def monitor(self, peer: NodeId) -> None:
        """Add ``peer`` to the monitored set (refcounted)."""
        if peer == self.node:
            return
        previous = self._monitored.get(peer, 0)
        self._monitored[peer] = previous + 1
        if previous == 0:
            # Grace period: treat a newly monitored peer as alive now.
            self._last_heard[peer] = self.env.now

    def unmonitor(self, peer: NodeId) -> None:
        """Drop one reference to ``peer``; stop monitoring at zero."""
        count = self._monitored.get(peer, 0)
        if count <= 1:
            self._monitored.pop(peer, None)
            self._last_heard.pop(peer, None)
            self._suspected.discard(peer)
        else:
            self._monitored[peer] = count - 1

    def monitored_peers(self) -> Set[NodeId]:
        return set(self._monitored)

    # ------------------------------------------------------------------
    # Protocol driving (called by the stack's timers / dispatcher)
    # ------------------------------------------------------------------
    def tick_heartbeat(self) -> None:
        """Send one heartbeat round to all monitored peers."""
        peers = set(self._monitored)
        if not peers:
            return
        self.heartbeats_sent += 1
        self._send_multicast(peers, Heartbeat(group=FD_GROUP, sender=self.node), 0)

    def tick_check(self) -> None:
        """Re-evaluate suspicions against the timeout."""
        now = self.env.now
        for peer in list(self._monitored):
            last = self._last_heard.get(peer, 0)
            timed_out = (now - last) > self.timeout_us
            if timed_out and peer not in self._suspected:
                self._suspected.add(peer)
                self._notify(peer, True)
            elif not timed_out and peer in self._suspected:
                self._suspected.discard(peer)
                self._notify(peer, False)

    def on_heartbeat(self, src: NodeId) -> None:
        """Record an incoming heartbeat (or any traffic) from ``src``."""
        self._last_heard[src] = self.env.now
        if src in self._suspected:
            self._suspected.discard(src)
            self._notify(src, False)

    def _notify(self, peer: NodeId, suspected: bool) -> None:
        for listener in self._listeners:
            listener(peer, suspected)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_suspected(self, peer: NodeId) -> bool:
        return peer in self._suspected

    def suspected_peers(self) -> Set[NodeId]:
        return set(self._suspected)

    def reset(self) -> None:
        """Clear all state (process recovery)."""
        self._monitored.clear()
        self._last_heard.clear()
        self._suspected.clear()


class _Liveness:
    """One peer's row in the gossip liveness table."""

    __slots__ = ("incarnation", "counter", "suspect", "updated_at", "probe_deadline")

    def __init__(self, incarnation: int, counter: int, updated_at: int):
        self.incarnation = incarnation
        self.counter = counter
        self.suspect = False
        self.updated_at = updated_at
        #: When a pending indirect probe expires (None = no probe open).
        self.probe_deadline: Optional[int] = None

    def version(self) -> "tuple[int, int]":
        return (self.incarnation, self.counter)


class GossipFailureDetector:
    """SWIM-style gossip failure detector (zoned topology, §20).

    Drop-in replacement for :class:`FailureDetector` at the stack level
    (same monitor/unmonitor/tick/query surface), but instead of
    multicasting one heartbeat to every monitored peer per period, each
    period the node gossips a versioned liveness digest to
    ``max(2, ceil(log2(n)))`` rendezvous-chosen peers of its *substrate*
    (normally its zone).  Peers outside the substrate that endpoints
    explicitly monitor (cross-zone view members, peer relays) are
    gossiped pairwise, so every monitored peer still has a liveness
    path.  A stale entry triggers an indirect probe through two
    witnesses before the peer is declared suspected.
    """

    def __init__(
        self,
        env: Runtime,
        node: NodeId,
        send_multicast: Callable[[Set[NodeId], Heartbeat, int], None],
        heartbeat_period_us: int = 100_000,
        timeout_us: int = 350_000,
        probe_timeout_us: int = 150_000,
    ):
        self.env = env
        self.node = node
        self._send_multicast = send_multicast
        self.heartbeat_period_us = heartbeat_period_us
        self.timeout_us = timeout_us
        self.probe_timeout_us = probe_timeout_us
        #: Our own epoch, bumped by the stack on crash recovery so stale
        #: pre-crash rows about us lose to post-recovery ones.
        self.incarnation = 0
        self._counter = 0
        self._round = 0
        self._monitored: Dict[NodeId, int] = {}  # peer -> refcount
        self._substrate: Set[NodeId] = set()  # zone gossip peers
        self._extras: Set[NodeId] = set()  # direct targets beyond the zone
        self._table: Dict[NodeId, _Liveness] = {}
        self._suspected: Set[NodeId] = set()
        self._listeners: List[SuspicionListener] = []
        self.heartbeats_sent = 0
        self.digests_sent = 0
        self.probes_sent = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def subscribe(self, listener: SuspicionListener) -> None:
        self._listeners.append(listener)

    def set_substrate(self, peers: Set[NodeId]) -> None:
        """Install the gossip substrate (normally the node's zone)."""
        self._substrate = {peer for peer in peers if peer != self.node}
        now = self.env.now
        for peer in self._substrate:
            if peer not in self._table:
                self._table[peer] = _Liveness(0, 0, now)

    def set_extras(self, peers: Set[NodeId]) -> None:
        """Direct gossip targets beyond the substrate (e.g. peer relays)."""
        wanted = {peer for peer in peers if peer != self.node}
        for gone in sorted(self._extras - wanted):
            if gone not in self._substrate and gone not in self._monitored:
                self._table.pop(gone, None)
                self._suspected.discard(gone)
        now = self.env.now
        for added in sorted(wanted - self._extras):
            if added not in self._table:
                self._table[added] = _Liveness(0, 0, now)
        self._extras = wanted

    # ------------------------------------------------------------------
    # Monitoring set (same refcounted contract as FailureDetector)
    # ------------------------------------------------------------------
    def monitor(self, peer: NodeId) -> None:
        if peer == self.node:
            return
        previous = self._monitored.get(peer, 0)
        self._monitored[peer] = previous + 1
        if previous == 0 and peer not in self._table:
            # Grace period: a freshly monitored peer starts alive-now.
            self._table[peer] = _Liveness(0, 0, self.env.now)

    def unmonitor(self, peer: NodeId) -> None:
        count = self._monitored.get(peer, 0)
        if count <= 1:
            self._monitored.pop(peer, None)
            if peer not in self._substrate and peer not in self._extras:
                self._table.pop(peer, None)
                self._suspected.discard(peer)
        else:
            self._monitored[peer] = count - 1

    def monitored_peers(self) -> Set[NodeId]:
        return set(self._monitored)

    def tracked_peer_count(self) -> int:
        """Peers with full per-node liveness state on this node."""
        return len(self._table)

    # ------------------------------------------------------------------
    # Protocol driving
    # ------------------------------------------------------------------
    def _scope(self) -> Set[NodeId]:
        """Peers whose liveness this node keeps full state for."""
        return self._substrate | self._extras | set(self._monitored)

    def _digest(self) -> LivenessDigest:
        own = (self.node, self.incarnation, self._counter, False)
        rows = [own]
        for peer in sorted(self._table):
            state = self._table[peer]
            rows.append((peer, state.incarnation, state.counter, state.suspect))
        return LivenessDigest(
            group=FD_GROUP,
            sender=self.node,
            round_no=self._round,
            entries=tuple(rows),
        )

    def tick_heartbeat(self) -> None:
        """Run one gossip round: digest to fan-out + direct targets."""
        self._round += 1
        self._counter += 1
        substrate = self._substrate - self._suspected or self._substrate
        fanout = gossip_fanout(len(substrate))
        targets = set(rendezvous_pick(f"{self.node}|{self._round}", substrate, fanout))
        # Cross-zone monitored peers and peer relays are gossiped
        # pairwise every round — they have no shared substrate with us.
        targets |= self._extras
        # Cross-zone monitored peers (e.g. members of a group that spans
        # zones) share no substrate with us, so they need direct contact
        # — but not all of them every round: every zone-mate in the same
        # group keeps their rows in scope and relays them, so a
        # log-bounded rotation keeps a global group from reintroducing
        # the O(n) per-round traffic the zoned topology exists to avoid.
        cross = set(self._monitored) - self._substrate
        live_cross = cross - self._suspected or cross
        targets |= set(
            rendezvous_pick(
                f"x|{self.node}|{self._round}",
                live_cross,
                gossip_fanout(len(live_cross)),
            )
        )
        # Lifeline: one rotating target from the suspected set, so a
        # healed partition is rediscovered by the detector itself rather
        # than only by side traffic (SWIM keeps probing suspects for the
        # same reason).  Costs at most one datagram per round.
        suspected = sorted(self._suspected)
        if suspected:
            targets.add(suspected[self._round % len(suspected)])
        targets.discard(self.node)
        if not targets:
            return
        digest = self._digest()
        self.heartbeats_sent += 1
        self.digests_sent += 1
        self._send_multicast(targets, digest, digest.size_bytes())

    def tick_check(self) -> None:
        """Escalate stale entries: probe first, suspect on probe expiry."""
        now = self.env.now
        for peer in sorted(self._scope()):
            state = self._table.get(peer)
            if state is None:
                state = self._table[peer] = _Liveness(0, 0, now)
            stale = (now - state.updated_at) > self.timeout_us
            if not stale:
                if peer in self._suspected:
                    self._clear_suspicion(peer, state)
                continue
            if peer in self._suspected:
                continue
            if state.probe_deadline is None:
                self._start_probe(peer, state)
            elif now >= state.probe_deadline:
                state.probe_deadline = None
                state.suspect = True
                self._suspected.add(peer)
                self._notify(peer, True)

    def _start_probe(self, peer: NodeId, state: _Liveness) -> None:
        state.probe_deadline = self.env.now + self.probe_timeout_us
        witnesses = set(
            rendezvous_pick(
                f"probe|{self.node}|{self._round}|{peer}",
                (self._substrate - self._suspected) - {peer},
                2,
            )
        )
        request = ProbeRequest(group=FD_GROUP, origin=self.node, target=peer)
        if witnesses:
            self.probes_sent += 1
            self._send_multicast(witnesses, request, request.size_bytes())
        # Direct ping too: the digest doubles as the ping payload.
        digest = self._digest()
        self._send_multicast({peer}, digest, digest.size_bytes())

    # ------------------------------------------------------------------
    # Incoming traffic
    # ------------------------------------------------------------------
    def on_heartbeat(self, src: NodeId) -> None:
        """Any direct traffic from ``src`` is liveness evidence."""
        state = self._table.get(src)
        if state is None:
            if src not in self._scope():
                return
            state = self._table[src] = _Liveness(0, 0, self.env.now)
        self._refresh(src, state)

    def on_digest(self, src: NodeId, msg: LivenessDigest) -> None:
        scope = self._scope()
        for peer, incarnation, counter, suspect in msg.entries:
            if peer == self.node:
                # SWIM refutation: someone thinks we're suspect — make
                # our next digest provably fresher.
                if suspect and incarnation >= self.incarnation:
                    self._counter = max(self._counter, counter) + 1
                continue
            if peer not in scope:
                continue  # prune: state stays O(zone + monitored)
            state = self._table.get(peer)
            if state is None:
                state = self._table[peer] = _Liveness(
                    incarnation, counter, self.env.now
                )
                state.suspect = suspect
                continue
            if (incarnation, counter) > state.version():
                state.incarnation = incarnation
                state.counter = counter
                state.suspect = suspect
                self._refresh(peer, state)

    def on_probe_request(self, src: NodeId, msg: ProbeRequest) -> None:
        """Witness role: relay a ping so the target answers the origin."""
        if msg.target == self.node or not msg.target:
            return
        ping = ProbePing(group=FD_GROUP, origin=msg.origin, witness=self.node)
        self._send_multicast({msg.target}, ping, ping.size_bytes())

    def on_probe_ping(self, src: NodeId, msg: ProbePing) -> None:
        """Target role: answer the probing origin with a fresh digest."""
        if not msg.origin or msg.origin == self.node:
            return
        self._counter += 1
        digest = self._digest()
        self._send_multicast({msg.origin}, digest, digest.size_bytes())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh(self, peer: NodeId, state: _Liveness) -> None:
        state.updated_at = self.env.now
        state.probe_deadline = None
        if peer in self._suspected:
            self._clear_suspicion(peer, state)

    def _clear_suspicion(self, peer: NodeId, state: _Liveness) -> None:
        self._suspected.discard(peer)
        state.suspect = False
        self._notify(peer, False)

    def _notify(self, peer: NodeId, suspected: bool) -> None:
        for listener in self._listeners:
            listener(peer, suspected)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_suspected(self, peer: NodeId) -> bool:
        return peer in self._suspected

    def suspected_peers(self) -> Set[NodeId]:
        return set(self._suspected)

    def reset(self) -> None:
        """Clear all state (process recovery; the zone agent re-seeds)."""
        self._monitored.clear()
        self._substrate = set()
        self._extras = set()
        self._table.clear()
        self._suspected.clear()
