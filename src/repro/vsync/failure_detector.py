"""Heartbeat failure detector, shared by every group on a process.

One detector instance runs per process and monitors the union of peers
its endpoints care about.  Sharing the detector across groups is itself
one of the resource-sharing wins the light-weight group service is
built around (the paper's Section 1: groups with common members "can
share common services" such as failure detectors).

The detector is unreliable in the usual sense: a partition is reported
as a crash of everyone across the cut, and suspicions are revised when
heartbeats resume (used by merge discovery after a heal).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set

from ..runtime.interfaces import NodeId, Runtime
from .messages import Heartbeat

SuspicionListener = Callable[[NodeId, bool], None]  # (peer, suspected)

FD_GROUP = "_fd"


class FailureDetector:
    """Multicast-heartbeat failure detector with revisable suspicions."""

    def __init__(
        self,
        env: Runtime,
        node: NodeId,
        send_multicast: Callable[[Set[NodeId], Heartbeat, int], None],
        heartbeat_period_us: int = 100_000,
        timeout_us: int = 350_000,
    ):
        self.env = env
        self.node = node
        self._send_multicast = send_multicast
        self.heartbeat_period_us = heartbeat_period_us
        self.timeout_us = timeout_us
        self._monitored: Dict[NodeId, int] = {}  # peer -> refcount
        self._last_heard: Dict[NodeId, int] = {}
        self._suspected: Set[NodeId] = set()
        self._listeners: List[SuspicionListener] = []
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def subscribe(self, listener: SuspicionListener) -> None:
        """Register ``listener(peer, suspected)`` for suspicion changes."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Monitoring set (refcounted: several endpoints may watch one peer)
    # ------------------------------------------------------------------
    def monitor(self, peer: NodeId) -> None:
        """Add ``peer`` to the monitored set (refcounted)."""
        if peer == self.node:
            return
        previous = self._monitored.get(peer, 0)
        self._monitored[peer] = previous + 1
        if previous == 0:
            # Grace period: treat a newly monitored peer as alive now.
            self._last_heard[peer] = self.env.now

    def unmonitor(self, peer: NodeId) -> None:
        """Drop one reference to ``peer``; stop monitoring at zero."""
        count = self._monitored.get(peer, 0)
        if count <= 1:
            self._monitored.pop(peer, None)
            self._last_heard.pop(peer, None)
            self._suspected.discard(peer)
        else:
            self._monitored[peer] = count - 1

    def monitored_peers(self) -> Set[NodeId]:
        return set(self._monitored)

    # ------------------------------------------------------------------
    # Protocol driving (called by the stack's timers / dispatcher)
    # ------------------------------------------------------------------
    def tick_heartbeat(self) -> None:
        """Send one heartbeat round to all monitored peers."""
        peers = set(self._monitored)
        if not peers:
            return
        self.heartbeats_sent += 1
        self._send_multicast(peers, Heartbeat(group=FD_GROUP, sender=self.node), 0)

    def tick_check(self) -> None:
        """Re-evaluate suspicions against the timeout."""
        now = self.env.now
        for peer in list(self._monitored):
            last = self._last_heard.get(peer, 0)
            timed_out = (now - last) > self.timeout_us
            if timed_out and peer not in self._suspected:
                self._suspected.add(peer)
                self._notify(peer, True)
            elif not timed_out and peer in self._suspected:
                self._suspected.discard(peer)
                self._notify(peer, False)

    def on_heartbeat(self, src: NodeId) -> None:
        """Record an incoming heartbeat (or any traffic) from ``src``."""
        self._last_heard[src] = self.env.now
        if src in self._suspected:
            self._suspected.discard(src)
            self._notify(src, False)

    def _notify(self, peer: NodeId, suspected: bool) -> None:
        for listener in self._listeners:
            listener(peer, suspected)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_suspected(self, peer: NodeId) -> bool:
        return peer in self._suspected

    def suspected_peers(self) -> Set[NodeId]:
        return set(self._suspected)

    def reset(self) -> None:
        """Clear all state (process recovery)."""
        self._monitored.clear()
        self._last_heard.clear()
        self._suspected.clear()
