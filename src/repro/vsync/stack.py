"""Per-process protocol stack: transport, failure detector, endpoints.

One :class:`ProtocolStack` runs on every simulated process.  It owns

* a :class:`~repro.sim.transport.ReliableTransport` for control traffic,
* one shared :class:`~repro.vsync.failure_detector.FailureDetector`
  (shared across every group on the node — a resource the light-weight
  group service deliberately does *not* duplicate per group), and
* the node's :class:`~repro.vsync.hwg.HwgEndpoint` instances, one per
  heavy-weight group, with message dispatch by group id.

It also drives the periodic machinery: heartbeat emission, suspicion
checks and presence beacons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set

from ..naming.persistence import DurableStore
from ..runtime.interfaces import Addressing, NodeId, Runtime
from ..sim.process import Process
from ..sim.transport import ReliableTransport
from .failure_detector import FailureDetector, GossipFailureDetector
from .hwg import HwgEndpoint, HwgListener
from .locator import GroupAddressing
from .messages import (
    Heartbeat,
    LivenessDigest,
    Presence,
    ProbePing,
    ProbeRequest,
    VsyncMessage,
    ZoneSummary,
)
from .view import GroupId, ViewId
from .zones import ZoneAgent, ZoneDirectory


@dataclass
class VsyncConfig:
    """Tunable timers of the virtual-synchrony substrate (microseconds)."""

    heartbeat_period_us: int = 100_000
    fd_timeout_us: int = 350_000
    fd_check_period_us: int = 50_000
    beacon_period_us: int = 400_000
    stability_period_us: int = 500_000
    join_probe_timeout_us: int = 250_000
    join_retry_us: int = 800_000
    leave_retry_us: int = 800_000
    retransmit_timeout_us: int = 20_000
    #: Stability acks/floors piggyback on data traffic (Publish/Ordered
    #: headers); a standalone StabilityAck or StabilityAnnounce is only
    #: sent at a stability tick if the channel carried none for this
    #: long.  Kept below stability_period_us so an idle channel still
    #: converges within one tick.
    ack_idle_timeout_us: int = 400_000
    #: Mass-heal hardening for the merge machinery.  Off by default: the
    #: conservative rules are the validated baseline and every pinned
    #: trace digest was recorded under them.  The placement optimizer's
    #: switch churn can shatter HWGs into dozens of concurrently healing
    #: singleton views, where the conservative rules livelock (busy
    #: declines, beacon-lag target mismatches, view-id churn that
    #: invalidates in-flight merges); optimizer configurations turn this
    #: on to enable yield-to-smaller-leader, stale-target tolerance,
    #: flush re-reports, late-reply acceptance and no-op-round elision.
    heal_hardening: bool = False
    #: Membership topology: "flat" (the paper's all-to-all substrate,
    #: bit-identical to every pinned trace) or "zoned" (two-level zoned
    #: membership with gossip failure detection, PROTOCOLS.md §20).
    topology: str = "flat"
    #: Zone count when ``topology == "zoned"`` (ignored when flat).
    num_zones: int = 4
    #: How long a stale liveness entry waits on an indirect probe
    #: before being declared suspected (gossip detector only).
    fd_probe_timeout_us: int = 150_000

    #: Non-timer knobs excluded from :meth:`scaled`.
    _FLAGS = ("heal_hardening", "topology", "num_zones")

    def scaled(self, factor: float) -> "VsyncConfig":
        """A copy with every timer multiplied by ``factor``."""
        return VsyncConfig(
            **{
                name: int(getattr(self, name) * factor)
                for name in vars(self)
                if name not in self._FLAGS
            },
            heal_hardening=self.heal_hardening,
            topology=self.topology,
            num_zones=self.num_zones,
        )


class ProtocolStack(Process):
    """All vsync machinery hosted by one simulated process."""

    def __init__(
        self,
        env: Runtime,
        node: NodeId,
        addressing: Addressing,
        config: Optional[VsyncConfig] = None,
        node_store: Optional[DurableStore] = None,
        zone_directory: Optional[ZoneDirectory] = None,
    ):
        super().__init__(env, node)
        self.addressing = addressing
        self.config = config or VsyncConfig()
        #: Durable per-node vsync identity (incarnation, view-seq,
        #: installed-view history); None keeps the legacy volatile
        #: behaviour where a recovered stack reuses its counters.
        self.node_store = node_store
        self.transport = ReliableTransport(
            env, node, self._deliver_control,
            retransmit_timeout_us=self.config.retransmit_timeout_us,
        )
        #: Zone agent (zoned topology only): substrate seeding, relay
        #: duties, per-zone summaries.  None keeps the flat substrate
        #: byte-identical to every pinned trace.
        self.zones: Optional[ZoneAgent] = None
        if self.config.topology == "zoned" and zone_directory is not None:
            self.fd = GossipFailureDetector(
                env, node, self._fd_multicast,
                heartbeat_period_us=self.config.heartbeat_period_us,
                timeout_us=self.config.fd_timeout_us,
                probe_timeout_us=self.config.fd_probe_timeout_us,
            )
            self.zones = ZoneAgent(self, zone_directory)
        else:
            self.fd = FailureDetector(
                env, node, self._fd_multicast,
                heartbeat_period_us=self.config.heartbeat_period_us,
                timeout_us=self.config.fd_timeout_us,
            )
        self.fd.subscribe(self._on_suspicion_change)
        self.endpoints: Dict[GroupId, HwgEndpoint] = {}
        #: Bumped on every endpoint creation/drop/state change; lets the
        #: layers above cache endpoint-derived sets (e.g. the member-HWG
        #: list the mapping policies consult) without rescans.
        self.endpoint_epoch = 0
        # Components above vsync (naming client, LWG layer) register
        # handlers here; a handler returning True consumes the message.
        self.extra_handlers: list = []
        self._view_seq = 0
        if node_store is not None:
            # Booting over pre-existing meta IS a restart: resume the
            # view-seq counter (ViewIds must never repeat across lives)
            # and come up one incarnation past the previous life.
            self._view_seq = node_store.view_seq()
            previous = node_store.incarnation()
            if previous:
                self.transport.incarnation = node_store.bump_incarnation()
                self._trace_recovered()
        self.set_periodic(
            self.config.heartbeat_period_us,
            self.fd.tick_heartbeat,
            jitter_stream=f"hb:{node}",
        )
        self.set_periodic(self.config.fd_check_period_us, self.fd.tick_check)
        self.set_periodic(
            self.config.beacon_period_us, self._tick_beacons, jitter_stream=f"beacon:{node}"
        )
        self.set_periodic(
            self.config.stability_period_us,
            self._tick_stability,
            jitter_stream=f"stability:{node}",
        )
        if self.zones is not None:
            self.zones.seed_substrate()
            self.set_periodic(
                self.config.beacon_period_us,
                self.zones.tick,
                jitter_stream=f"zone:{node}",
            )

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------
    def endpoint(self, group: GroupId, listener: Optional[HwgListener] = None) -> HwgEndpoint:
        """Return (creating on first use) this node's endpoint for ``group``."""
        ep = self.endpoints.get(group)
        if ep is None:
            ep = HwgEndpoint(self, group, listener)
            self.endpoints[group] = ep
            self.endpoint_epoch += 1
        elif listener is not None:
            ep.listener = listener
        return ep

    def drop_endpoint(self, group: GroupId) -> None:
        """Forget an endpoint (after it left its group)."""
        self.endpoints.pop(group, None)
        self.endpoint_epoch += 1

    def next_view_seq(self) -> int:
        """Monotonic per-process counter for minting view identifiers.

        Persisted before use when a node store is attached, so a ViewId
        minted after a crash can never collide with one from a previous
        incarnation — which is what makes installed-view history a sound
        staleness judgement (see :meth:`is_stale_view`).
        """
        self._view_seq += 1
        if self.node_store is not None:
            self.node_store.persist_view_seq(self._view_seq)
        return self._view_seq

    def note_view_installed(self, group: GroupId, view_id: ViewId) -> None:
        """Record an installed view in the durable per-node history."""
        if self.node_store is not None:
            self.node_store.record_view(group, view_id, self.transport.incarnation)

    def is_stale_view(self, group: GroupId, view_id: ViewId) -> bool:
        """True if this node installed ``view_id`` in a *previous* life.

        A recovered node re-joins its groups from scratch; an InstallView
        for a view it already sat in before the crash is leftovers from
        the dead incarnation and must not be re-installed (the live
        members have moved on — re-accepting it would fork the group's
        view history).
        """
        if self.node_store is None:
            return False
        current = self.transport.incarnation
        for entry_group, entry_view, entry_incarnation in self.node_store.view_history():
            if (
                entry_group == group
                and entry_view == view_id
                and entry_incarnation < current
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Messaging helpers used by endpoints
    # ------------------------------------------------------------------
    def reliable_send(self, dst: NodeId, msg: VsyncMessage, size: int) -> None:
        if dst == self.node:
            # Local fast-path: still asynchronous to preserve event ordering.
            self.env.scheduler.schedule(1, lambda: self._deliver_control(self.node, msg, size))
            return
        self.transport.send(dst, msg, size)

    def raw_multicast(self, dsts: Set[NodeId], msg: VsyncMessage, size: int) -> None:
        self.multicast(dsts, msg, size)

    def _fd_multicast(self, peers: Set[NodeId], msg: Heartbeat, size: int) -> None:
        self.multicast(peers, msg, msg.size_bytes())

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: NodeId, msg: Any, size: int) -> None:
        self.fd.on_heartbeat(src)  # any traffic is evidence of liveness
        if ReliableTransport.is_segment(msg):
            self.transport.on_segment(src, msg)
            return
        self._dispatch(src, msg)

    def _deliver_control(self, src: NodeId, msg: Any, size: int) -> None:
        self._dispatch(src, msg)

    def _dispatch(self, src: NodeId, msg: Any) -> None:
        if isinstance(msg, Heartbeat):
            return
        if self.zones is not None and self._dispatch_zoned(src, msg):
            return
        for handler in self.extra_handlers:
            if handler(src, msg):
                return
        if not isinstance(msg, VsyncMessage):
            return
        endpoint = self.endpoints.get(msg.group)
        if endpoint is not None:
            endpoint.on_message(src, msg)

    def _dispatch_zoned(self, src: NodeId, msg: Any) -> bool:
        """Zoned-topology control traffic; True when consumed."""
        assert self.zones is not None
        fd = self.fd
        if isinstance(msg, LivenessDigest):
            fd.on_digest(src, msg)
            return True
        if isinstance(msg, ProbeRequest):
            fd.on_probe_request(src, msg)
            return True
        if isinstance(msg, ProbePing):
            fd.on_probe_ping(src, msg)
            return True
        if isinstance(msg, ZoneSummary):
            self.zones.on_summary(src, msg)
            return True
        if isinstance(msg, Presence):
            # Relay duty: fan cross-zone beacons into the local zone,
            # then fall through to normal endpoint handling.
            self.zones.maybe_forward_presence(src, msg)
        return False

    def register_handler(self, handler) -> None:
        """Register ``handler(src, msg) -> bool`` for non-vsync traffic."""
        self.extra_handlers.append(handler)

    # ------------------------------------------------------------------
    # Periodic machinery
    # ------------------------------------------------------------------
    def _tick_beacons(self) -> None:
        for endpoint in list(self.endpoints.values()):
            endpoint.beacon()

    def _tick_stability(self) -> None:
        for endpoint in list(self.endpoints.values()):
            endpoint.channel.tick_stability()

    def _on_suspicion_change(self, peer: NodeId, suspected: bool) -> None:
        for endpoint in list(self.endpoints.values()):
            endpoint.on_suspicion_change(peer, suspected)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        self.transport.stop()
        self.addressing.unsubscribe_all(self.node)
        self.endpoints.clear()
        self.fd.reset()
        if self.zones is not None:
            self.zones.on_crash()

    def on_recover(self) -> None:
        # A recovered process comes back with a clean slate: applications
        # re-join their groups, which the merge machinery treats like any
        # other concurrent-view bootstrap.
        self.transport.restart()
        if self.node_store is not None:
            # Fold the durable incarnation in: the new life must be
            # distinguishable even if the meta area was corrupted (the
            # bump is monotonic against the surviving volatile counter).
            self.transport.incarnation = self.node_store.bump_incarnation(
                at_least=self.transport.incarnation
            )
            self._trace_recovered()
        if self.zones is not None:
            self.zones.on_recover()
            self.fd.incarnation = self.transport.incarnation

    def _trace_recovered(self) -> None:
        self.env.tracer.emit(
            "recovery",
            "stack_recovered",
            node=self.node,
            incarnation=self.transport.incarnation,
        )
