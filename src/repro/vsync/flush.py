"""The flush procedure — the core of every view change.

"The core of these protocols is a *flush* procedure, that makes sure
that all in-transit messages are delivered before a new view is
installed" (paper Section 3.1).

A *branch* is one old view being flushed within one partition block.
The branch leader (its acting coordinator) drives three phases:

1. ``Stop`` to every participant — members stop sending, raise the
   ``Stop`` upcall to their user, and after ``StopOk`` report their
   delivery state (``FlushState``), including copies of every ordered
   message they hold beyond the leader's own prefix.
2. The leader computes the *cut*: the longest contiguous prefix covered
   by the union of all holdings (never less than anyone's delivered
   prefix), then sends each participant the messages it is missing
   (``FlushFill``).
3. Participants deliver up to the cut and acknowledge (``FlushDone``).

When every participant has acknowledged, all of them have delivered
exactly the same sequence of messages in the old view — the virtual
synchrony guarantee — and the leader may install the next view.

The engine is deliberately leader-crash-agnostic: it reports progress
and timeouts to the membership layer, which restarts rounds with a new
leader or a reduced participant set.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from ..runtime.interfaces import NodeId
from .messages import FlushDone, FlushFill, FlushState, Ordered, Stop
from .view import View, ViewId

#: Leader-side wait for FlushState / FlushDone before reporting a stall.
FLUSH_TIMEOUT_US = 400_000


class BranchFlushLeader:
    """Leader-side state machine flushing one branch (one old view).

    ``host`` must provide ``node``, ``group``, ``env``,
    ``reliable_send(dst, msg)``, and a local :class:`OrderedChannel` as
    ``host.channel``.  Completion and stalls are reported through the
    ``on_complete(survivors, dedup)`` and ``on_stall(missing)`` callbacks.
    """

    def __init__(
        self,
        host,
        old_view: View,
        round_no: int,
        participants: Set[NodeId],
        on_complete: Callable[[Tuple[NodeId, ...], Dict[NodeId, int]], None],
        on_stall: Callable[[Set[NodeId]], None],
    ):
        if host.node not in participants:
            raise ValueError("flush leader must participate in its own flush")
        self.host = host
        self.old_view = old_view
        self.round_no = round_no
        self.participants = set(participants)
        self.on_complete = on_complete
        self.on_stall = on_stall
        self._states: Dict[NodeId, FlushState] = {}
        self._done: Set[NodeId] = set()
        self.cut: Optional[int] = None
        self.finished = False
        self.aborted = False
        self._timer = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Send Stop to every participant (including ourselves, locally)."""
        stop = Stop(
            group=self.host.group,
            view_id=self.old_view.view_id,
            round_no=self.round_no,
            leader=self.host.node,
            leader_have_upto=self.host.channel.have_upto(),
        )
        for member in sorted(self.participants):
            if member == self.host.node:
                self.host.handle_stop_locally(stop)
            else:
                self.host.reliable_send(member, stop)
        self._arm_timer()

    def abort(self) -> None:
        """Stop reacting to further replies (round superseded)."""
        self.aborted = True
        if self._timer is not None:
            self._timer.cancel()

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()

        def check() -> None:
            if self.finished or self.aborted:
                return
            missing = self.missing_participants()
            if missing:
                self.on_stall(missing)

        self._timer = self.host.env.scheduler.schedule(FLUSH_TIMEOUT_US, check)

    def missing_participants(self) -> Set[NodeId]:
        """Participants we are still waiting on (states or dones)."""
        if self.cut is None:
            return self.participants - set(self._states)
        return self.participants - self._done

    # ------------------------------------------------------------------
    def on_flush_state(self, msg: FlushState) -> None:
        """Collect a participant's state; compute and send fills when complete."""
        if self.aborted or self.finished or self.cut is not None:
            return
        if msg.view_id != self.old_view.view_id or msg.round_no != self.round_no:
            return
        if msg.member not in self.participants:
            return
        self._states[msg.member] = msg
        if set(self._states) == self.participants:
            self._compute_and_fill()

    def _compute_and_fill(self) -> None:
        # Union of all held messages above the leader's prefix.
        union: Dict[int, Ordered] = {}
        for state in self._states.values():
            for seq, message in state.extra.items():
                union.setdefault(seq, message)
        leader_upto = self.host.channel.have_upto()
        for seq, message in self.host.channel.messages_above(-1).items():
            union.setdefault(seq, message)
        # The cut: longest contiguous coverage from sequence 0.
        cut = leader_upto
        while (cut + 1) in union:
            cut += 1
        self.cut = cut
        self._arm_timer()
        for member, state in self._states.items():
            needed = {
                seq: union[seq]
                for seq in range(state.have_upto + 1, cut + 1)
                if seq in union and seq not in state.extra
            }
            fill = FlushFill(
                group=self.host.group,
                view_id=self.old_view.view_id,
                round_no=self.round_no,
                cut=cut,
                missing=needed,
            )
            if member == self.host.node:
                self.host.handle_fill_locally(fill)
            else:
                self.host.reliable_send(member, fill)

    def on_flush_done(self, msg: FlushDone) -> None:
        """Collect completion acks; fire ``on_complete`` when all are in."""
        if self.aborted or self.finished or self.cut is None:
            return
        if msg.view_id != self.old_view.view_id or msg.round_no != self.round_no:
            return
        if msg.member not in self.participants:
            return
        self._done.add(msg.member)
        if self._done == self.participants:
            self.finished = True
            if self._timer is not None:
                self._timer.cancel()
            survivors = tuple(
                m for m in self.old_view.members if m in self.participants
            )
            self.on_complete(survivors, self.host.channel.floor_snapshot())


class FlushParticipant:
    """Member-side flush logic for one endpoint.

    Tracks the highest-precedence round seen for the current view so
    that restarted rounds (higher ``round_no``, or equal round from a
    more senior leader) supersede stale ones.
    """

    def __init__(self, host) -> None:
        self.host = host
        self.active_view_id: Optional[ViewId] = None
        self.round_no = -1
        self.leader: Optional[NodeId] = None
        self.stop_acked = False
        self._pending_stop: Optional[Stop] = None

    def reset(self) -> None:
        """Forget flush state (a new view was installed)."""
        self.active_view_id = None
        self.round_no = -1
        self.leader = None
        self.stop_acked = False
        self._pending_stop = None

    def _precedes(self, msg_round: int, msg_leader: NodeId) -> bool:
        """True if an incoming round supersedes (or equals) the current one."""
        if msg_round > self.round_no:
            return True
        if msg_round < self.round_no:
            return False
        if self.leader is None:
            return True
        view = self.host.current_view
        if view is None:
            return False
        try:
            return view.rank_of(msg_leader) <= view.rank_of(self.leader)
        except ValueError:
            return False

    # ------------------------------------------------------------------
    def on_stop(self, msg: Stop) -> None:
        """Handle a Stop: freeze, raise the Stop upcall, then report state."""
        view = self.host.current_view
        if view is None or msg.view_id != view.view_id:
            return
        if not self._precedes(msg.round_no, msg.leader):
            return
        is_new_round = (msg.round_no, msg.leader) != (self.round_no, self.leader)
        self.active_view_id = msg.view_id
        self.round_no = msg.round_no
        self.leader = msg.leader
        if not is_new_round and self._pending_stop is not None:
            return  # duplicate while awaiting StopOk
        self.host.channel.freeze()
        if self.stop_acked:
            # The user already StopOk'd for this view change; a restarted
            # round only needs a fresh state report.
            self._send_state(msg)
            return
        self._pending_stop = msg
        self.host.raise_stop()  # user calls back via stop_acknowledged()

    def stop_acknowledged(self) -> None:
        """The user confirmed Stop (StopOk downcall)."""
        if self.stop_acked or self._pending_stop is None:
            return
        self.stop_acked = True
        msg, self._pending_stop = self._pending_stop, None
        self._send_state(msg)

    def _send_state(self, stop: Stop) -> None:
        state = FlushState(
            group=self.host.group,
            view_id=stop.view_id,
            round_no=stop.round_no,
            member=self.host.node,
            have_upto=self.host.channel.have_upto(),
            extra=self.host.channel.messages_above(stop.leader_have_upto),
        )
        if stop.leader == self.host.node:
            self.host.route_flush_state_locally(state)
        else:
            self.host.reliable_send(stop.leader, state)

    def on_fill(self, msg: FlushFill) -> None:
        """Apply a fill: deliver to the cut, acknowledge FlushDone."""
        view = self.host.current_view
        if view is None or msg.view_id != view.view_id:
            return
        if msg.round_no != self.round_no:
            return
        self.host.channel.apply_fill(msg.cut, msg.missing)
        done = FlushDone(
            group=self.host.group,
            view_id=msg.view_id,
            round_no=msg.round_no,
            member=self.host.node,
        )
        if self.leader == self.host.node:
            self.host.route_flush_done_locally(done)
        else:
            assert self.leader is not None
            self.host.reliable_send(self.leader, done)
