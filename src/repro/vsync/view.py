"""Views and view identifiers for partitionable virtual synchrony.

Following the paper (Section 5.1), a view identifier is the pair
``(coordinator, view-sequence-number)`` where the sequence number is a
counter local to the coordinator.  Because concurrent views of the same
group can exist in different partitions, views also carry their *parent*
view identifiers — the views they directly succeeded or merged — forming
a genealogy DAG.  The naming service uses this partial order to discard
obsolete mappings (Section 5.2), and the LWG layer uses it to decide
whether two views are concurrent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

ProcessId = str
GroupId = str


@dataclass(frozen=True, order=True)
class ViewId:
    """Globally unique view identifier: ``(coordinator, sequence-number)``.

    Ordering is lexicographic and used only for deterministic tie-breaks,
    never as a causality judgement — concurrency is decided through the
    genealogy (see :class:`ViewGenealogy`).
    """

    coordinator: ProcessId
    seq: int

    def __str__(self) -> str:
        return f"{self.coordinator}#{self.seq}"


@dataclass(frozen=True)
class View:
    """An installed group view.

    Attributes:
        group: the group this view belongs to.
        view_id: unique identifier, minted by the installing coordinator.
        members: member processes in seniority order (oldest first); the
            first member is the view's coordinator by convention.
        parents: identifiers of the views this view directly succeeded.
            A view created by a partition-side view change has one parent
            (the pre-change view); a view created by a merge has one
            parent per merged branch; a founding singleton view has none.
    """

    group: GroupId
    view_id: ViewId
    members: Tuple[ProcessId, ...]
    parents: Tuple[ViewId, ...] = ()

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a view must have at least one member")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in view: {self.members}")

    @property
    def coordinator(self) -> ProcessId:
        """The process responsible for sequencing and view changes."""
        return self.members[0]

    @property
    def member_set(self) -> FrozenSet[ProcessId]:
        return frozenset(self.members)

    def contains(self, process: ProcessId) -> bool:
        return process in self.members

    def rank_of(self, process: ProcessId) -> int:
        """Seniority rank (0 = oldest/coordinator)."""
        return self.members.index(process)

    def __str__(self) -> str:
        return f"View({self.group}@{self.view_id}: {','.join(self.members)})"


def merge_member_order(branches: Sequence[View]) -> Tuple[ProcessId, ...]:
    """Deterministic seniority order for a merged view.

    Branch member lists are concatenated in ascending branch-view-id
    order, preserving each branch's internal seniority and dropping
    duplicates.  Every process that observes the same set of branches
    computes the same order, so merges need no extra agreement round.
    """
    ordered: List[ProcessId] = []
    seen: Set[ProcessId] = set()
    for view in sorted(branches, key=lambda v: v.view_id):
        for member in view.members:
            if member not in seen:
                seen.add(member)
                ordered.append(member)
    return tuple(ordered)


class ViewGenealogy:
    """A DAG of view ancestry used to answer obsolescence queries.

    The genealogy is *append-only knowledge*: callers record
    ``view -> parents`` edges as they learn them (view installations,
    naming-service updates) and ask whether one view is an ancestor of
    another.  Unknown views are treated as having no known ancestry,
    which errs on the side of keeping information — exactly what a
    weakly-consistent naming service needs.
    """

    def __init__(self) -> None:
        self._parents: Dict[ViewId, Tuple[ViewId, ...]] = {}

    def record(self, view_id: ViewId, parents: Iterable[ViewId]) -> None:
        """Record that ``view_id`` directly succeeded ``parents``."""
        existing = self._parents.get(view_id)
        merged = tuple(sorted(set(existing or ()) | set(parents)))
        self._parents[view_id] = merged

    def record_view(self, view: View) -> None:
        """Convenience: record a :class:`View`'s parent edges."""
        self.record(view.view_id, view.parents)

    def clone(self) -> "ViewGenealogy":
        """Independent copy (edge tuples are immutable and shared)."""
        out = ViewGenealogy()
        out._parents = dict(self._parents)
        return out

    def parents_of(self, view_id: ViewId) -> Tuple[ViewId, ...]:
        return self._parents.get(view_id, ())

    def ancestors_of(self, view_id: ViewId) -> Set[ViewId]:
        """All known strict ancestors of ``view_id``."""
        out: Set[ViewId] = set()
        stack = list(self._parents.get(view_id, ()))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._parents.get(current, ()))
        return out

    def is_ancestor(self, older: ViewId, newer: ViewId) -> bool:
        """True if ``older`` is a strict ancestor of ``newer``."""
        if older == newer:
            return False
        stack = list(self._parents.get(newer, ()))
        visited: Set[ViewId] = set()
        while stack:
            current = stack.pop()
            if current == older:
                return True
            if current in visited:
                continue
            visited.add(current)
            stack.extend(self._parents.get(current, ()))
        return False

    def concurrent(self, a: ViewId, b: ViewId) -> bool:
        """True if neither view is an ancestor of the other (and a != b)."""
        if a == b:
            return False
        return not self.is_ancestor(a, b) and not self.is_ancestor(b, a)

    def known_views(self) -> Set[ViewId]:
        """Every view id that appears in the genealogy (as child or parent)."""
        out: Set[ViewId] = set(self._parents)
        for parents in self._parents.values():
            out.update(parents)
        return out

    def merge_from(self, other: "ViewGenealogy") -> None:
        """Absorb every edge known by ``other`` (naming-service reconciliation)."""
        for view_id, parents in other._parents.items():
            self.record(view_id, parents)

    def edges(self) -> Dict[ViewId, Tuple[ViewId, ...]]:
        """A copy of the child -> parents edge map."""
        return dict(self._parents)
