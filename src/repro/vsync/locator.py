"""Group addressing: the simulated analogue of IP-multicast groups.

The paper's testbed uses UDP/IP with IP multicast: a sender transmits
once to a group address and the network delivers to current subscribers
that it can reach.  :class:`GroupAddressing` reproduces exactly that
split of responsibilities — it maintains the subscriber sets (a purely
local operation on real kernels, an in-memory registry here) while
*every transmission still crosses the simulated network*, so partitions
and crashes filter deliveries naturally.

It deliberately offers no reachability oracle: discovering who is alive
and reachable is done by the protocols above (heartbeats and presence
beacons), not by this layer.
"""

from __future__ import annotations

from typing import Dict, Set

from ..runtime.interfaces import NodeId
from .view import GroupId


class GroupAddressing:
    """Registry of group-address subscribers (one instance per network)."""

    def __init__(self) -> None:
        self._subscribers: Dict[GroupId, Set[NodeId]] = {}

    def subscribe(self, group: GroupId, node: NodeId) -> None:
        """Add ``node`` to the subscriber set of ``group``'s address."""
        self._subscribers.setdefault(group, set()).add(node)

    def unsubscribe(self, group: GroupId, node: NodeId) -> None:
        """Remove ``node`` from ``group``'s address."""
        members = self._subscribers.get(group)
        if members is not None:
            members.discard(node)
            if not members:
                del self._subscribers[group]

    def unsubscribe_all(self, node: NodeId) -> None:
        """Remove ``node`` from every group address (process teardown)."""
        for group in list(self._subscribers):
            self.unsubscribe(group, node)

    def subscribers(self, group: GroupId) -> Set[NodeId]:
        """Current subscriber set of ``group`` (reachability NOT applied)."""
        return set(self._subscribers.get(group, set()))

    def subscribers_in_zone(self, group: GroupId, directory, zone: int) -> Set[NodeId]:
        """Subscribers of ``group`` assigned to ``zone`` by ``directory``.

        Zoned-topology helper (PROTOCOLS.md §20): relays fan cross-zone
        control traffic to exactly this set, and coordinators use it to
        scope beacon fan-out to their own zone.
        """
        return {
            node
            for node in self._subscribers.get(group, set())
            if directory.zone_of(node) == zone
        }

    def groups_of(self, node: NodeId) -> Set[GroupId]:
        """Every group address ``node`` is subscribed to."""
        return {g for g, members in self._subscribers.items() if node in members}
