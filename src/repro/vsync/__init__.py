"""Partitionable virtually-synchronous group communication (HWG layer).

This package is the substrate the paper assumes (Section 5.1): a group
layer that "continues to deliver views in the presence of partitions,
allowing groups to split into concurrent views when a partition occurs
and these views to merge when the partition is healed", with flush-based
view changes, totally-ordered multicast, view identifiers of the form
``(coordinator, view-sequence-number)`` and view genealogy.
"""

from .failure_detector import FailureDetector
from .hwg import HwgEndpoint, HwgListener
from .locator import GroupAddressing
from .membership import EndpointState, ViewChangeManager
from .stack import ProtocolStack, VsyncConfig
from .total_order import OrderedChannel
from .view import GroupId, ProcessId, View, ViewGenealogy, ViewId, merge_member_order

__all__ = [
    "FailureDetector",
    "HwgEndpoint",
    "HwgListener",
    "GroupAddressing",
    "EndpointState",
    "ViewChangeManager",
    "ProtocolStack",
    "VsyncConfig",
    "OrderedChannel",
    "GroupId",
    "ProcessId",
    "View",
    "ViewGenealogy",
    "ViewId",
    "merge_member_order",
]
