"""The heavy-weight group endpoint: the paper's Table-1 interface.

:class:`HwgEndpoint` exposes exactly the primitives of a virtually
synchronous layer — ``Join``, ``Leave``, ``Send``, ``StopOk`` downcalls
and ``View``, ``Data``, ``Stop`` upcalls — over the partitionable
machinery of :mod:`~repro.vsync.total_order`, :mod:`~repro.vsync.flush`
and :mod:`~repro.vsync.membership`.

Group bootstrap is *merge-based*: a joiner probes the group address and,
hearing no coordinator, founds a singleton view; concurrent singletons
(or views separated by partitions) converge through the presence-beacon
merge path.  This uniformity is what makes partition healing "just
another merge".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..runtime.interfaces import NodeId
from .flush import FlushParticipant
from .membership import EndpointState, ViewChangeManager
from .messages import (
    BranchFlushed,
    FlushDone,
    FlushFill,
    FlushState,
    InstallView,
    JoinProbe,
    JoinRequest,
    LeaveRequest,
    MergeDecline,
    MergeRequest,
    Nack,
    Ordered,
    Presence,
    Publish,
    StabilityAck,
    StabilityAnnounce,
    Stop,
    VsyncMessage,
)
from .total_order import OrderedChannel
from .view import GroupId, View, ViewId


class HwgListener:
    """Upcall interface for users of an endpoint (paper Table 1).

    Subclass and override what you need; the default ``on_stop`` keeps
    the Stop/StopOk handshake invisible (auto-acknowledge), matching the
    paper's note that "Stop and StopOk may be hidden from the user".
    """

    def on_view(self, group: GroupId, view: View) -> None:
        """A new view was installed."""

    def on_data(self, group: GroupId, src: NodeId, payload: Any, size: int) -> None:
        """A totally-ordered multicast was delivered."""

    def on_stop(self, group: GroupId, stop_ok: Callable[[], None]) -> None:
        """Traffic must stop (view change in progress); call ``stop_ok()``."""
        stop_ok()

    def on_left(self, group: GroupId) -> None:
        """Our Leave completed (or the group dissolved under us)."""

    # -- optional state transfer ---------------------------------------
    def get_state(self, group: GroupId) -> Any:
        """Snapshot the application state for a joining member.

        Called at the view-change leader *after* its branch flushed —
        i.e. exactly at the old view's delivery cut — so the snapshot
        plus the new view's messages reconstruct the group state.
        Return None (the default) to disable state transfer.
        """
        return None

    def on_state(self, group: GroupId, state: Any) -> None:
        """Receive the state snapshot on join (before any Data upcall)."""


class HwgEndpoint:
    """One process's membership in one heavy-weight group."""

    def __init__(self, stack, group: GroupId, listener: Optional[HwgListener] = None):
        self.stack = stack
        self.env = stack.env
        self.node: NodeId = stack.node
        self.group = group
        self.listener = listener or HwgListener()
        self._state = EndpointState.IDLE
        self.current_view: Optional[View] = None
        self.known_ancestors: Set[ViewId] = set()
        self.channel = OrderedChannel(self)
        self.participant = FlushParticipant(self)
        self.vcm = ViewChangeManager(self)
        self._prejoin_sends: List[Tuple[Any, int]] = []
        # Peers currently monitored via the failure detector, kept as a
        # sorted tuple computed once per view install: every later
        # traversal (leave teardown, monitoring diffs) needs the sorted
        # order for determinism, so sorting at mutation time replaces a
        # ``sorted(set)`` per traversal on the view-change path.
        self._monitored: Tuple[NodeId, ...] = ()
        self._join_timer = None
        self._leave_timer = None
        self.views_installed = 0

    @property
    def state(self) -> EndpointState:
        return self._state

    @state.setter
    def state(self, value: EndpointState) -> None:
        # Every transition invalidates endpoint-derived caches above
        # (the stack-wide epoch backs e.g. the member-HWG set cache).
        self._state = value
        self.stack.endpoint_epoch += 1

    @property
    def fd(self):
        """The process-wide shared failure detector."""
        return self.stack.fd

    @property
    def addressing(self):
        return self.stack.addressing

    # ------------------------------------------------------------------
    # Table-1 downcalls
    # ------------------------------------------------------------------
    def join(self) -> None:
        """Join the group (async; completion surfaces as a View upcall)."""
        if self.state is not EndpointState.IDLE:
            return
        self.state = EndpointState.JOINING
        self.addressing.subscribe(self.group, self.node)
        self.trace("join_start")
        self._probe()

    def leave(self) -> None:
        """Leave the group (async; completion surfaces as on_left)."""
        if self.state is not EndpointState.MEMBER:
            return
        view = self.current_view
        if view is not None and view.members == (self.node,):
            self.trace("leave_singleton")
            self._finish_leave()
            return
        self.state = EndpointState.LEAVING
        self._leave_attempt()

    def send(self, payload: Any, size: int = 256) -> None:
        """Virtually synchronous totally-ordered multicast to the group."""
        if self.state is EndpointState.IDLE:
            raise RuntimeError(f"send on {self.group} before join")
        if self.state is EndpointState.JOINING or self.current_view is None:
            self._prejoin_sends.append((payload, size))
            return
        self.channel.send(payload, size)

    def stop_ok(self) -> None:
        """Confirm a Stop upcall (Table 1 StopOk)."""
        self.participant.stop_acknowledged()

    def secede(self) -> None:
        """Fall back to a singleton view of ourselves (abandonment recovery).

        Used when our own coordinator demonstrably moved on without us.
        The singleton descends from our current view, so beacons from the
        main view and ours discover each other and merge normally.
        """
        if self.state is not EndpointState.MEMBER or self.current_view is None:
            return
        singleton = View(
            group=self.group,
            view_id=ViewId(self.node, self.stack.next_view_seq()),
            members=(self.node,),
            parents=(self.current_view.view_id,),
        )
        self.trace(
            "seceded",
            view=str(singleton.view_id),
            parent=str(self.current_view.view_id),
        )
        self._install(singleton, self.channel.floor_snapshot())

    def force_refresh(self) -> None:
        """Force a flush and an identity view change (coordinator only).

        Used by the LWG merge-views protocol (Figure 5): "the coordinator
        of the HWG flushes the HWG".  A no-op at non-coordinators.
        """
        if self.state is EndpointState.MEMBER and self.vcm.am_leader():
            self.vcm.request_refresh()

    # ------------------------------------------------------------------
    # Join machinery
    # ------------------------------------------------------------------
    def _probe(self) -> None:
        if self.state is not EndpointState.JOINING:
            return
        others = self.addressing.subscribers(self.group) - {self.node}
        if others:
            probe = JoinProbe(group=self.group, joiner=self.node)
            self.stack.raw_multicast(others, probe, probe.size_bytes())
        self._join_timer = self.stack.set_timer(
            self.stack.config.join_probe_timeout_us, self._probe_timeout
        )

    def _probe_timeout(self) -> None:
        if self.state is not EndpointState.JOINING:
            return
        # Nobody answered: found the group as a singleton view.
        view = View(
            group=self.group,
            view_id=ViewId(self.node, self.stack.next_view_seq()),
            members=(self.node,),
            parents=(),
        )
        self.trace("founded_singleton", view=str(view.view_id))
        self._install(view, {})

    def _on_presence_while_joining(self, src: NodeId, msg: Presence) -> None:
        if self._join_timer is not None:
            self._join_timer.cancel()
        self.reliable_send(src, JoinRequest(group=self.group, joiner=self.node))
        self._join_timer = self.stack.set_timer(
            self.stack.config.join_retry_us, self._probe
        )

    # ------------------------------------------------------------------
    # Leave machinery
    # ------------------------------------------------------------------
    def _leave_attempt(self) -> None:
        if self.state is not EndpointState.LEAVING:
            return
        coordinator = self.vcm.acting_coordinator()
        msg = LeaveRequest(group=self.group, leaver=self.node)
        if coordinator == self.node:
            self.vcm.on_leave_request(msg)
        elif coordinator is not None:
            self.reliable_send(coordinator, msg)
        self._leave_timer = self.stack.set_timer(
            self.stack.config.leave_retry_us, self._leave_attempt
        )

    def _finish_leave(self) -> None:
        if self._leave_timer is not None:
            self._leave_timer.cancel()
        old_view = self.current_view
        self.addressing.unsubscribe(self.group, self.node)
        self.state = EndpointState.IDLE
        self.current_view = None
        self.vcm.reset()
        self.participant.reset()
        self.channel = OrderedChannel(self)
        for peer in self._monitored:  # already sorted (see __init__)
            self.fd.unmonitor(peer)
        self._monitored = ()
        self.trace("left", view=str(old_view.view_id) if old_view else None)
        self.listener.on_left(self.group)

    # ------------------------------------------------------------------
    # Message dispatch (called by the stack)
    # ------------------------------------------------------------------
    def on_message(self, src: NodeId, msg: VsyncMessage) -> None:
        """Route one group-addressed message to the right sub-machine."""
        if isinstance(msg, Publish):
            self.channel.on_publish(src, msg)
        elif isinstance(msg, Ordered):
            self.channel.on_ordered(msg)
        elif isinstance(msg, Nack):
            self.channel.on_nack(msg)
        elif isinstance(msg, StabilityAck):
            self.channel.on_stability_ack(msg)
        elif isinstance(msg, StabilityAnnounce):
            self.channel.on_stability_announce(msg)
        elif isinstance(msg, Stop):
            self.vcm.observed_round(msg.round_no)
            self.participant.on_stop(msg)
        elif isinstance(msg, FlushState):
            leader = self._active_flush_leader()
            if leader is not None:
                leader.on_flush_state(msg)
        elif isinstance(msg, FlushFill):
            self.participant.on_fill(msg)
        elif isinstance(msg, FlushDone):
            leader = self._active_flush_leader()
            if leader is not None:
                leader.on_flush_done(msg)
        elif isinstance(msg, InstallView):
            self.apply_install(src, msg)
        elif isinstance(msg, Presence):
            # A zone relay may have forwarded this beacon; attribute it
            # to the coordinator that minted it, not the relay.
            coordinator = msg.origin or src
            if self.state is EndpointState.JOINING:
                self._on_presence_while_joining(coordinator, msg)
            else:
                self.vcm.on_presence(coordinator, msg)
        elif isinstance(msg, JoinProbe):
            if self.state is EndpointState.MEMBER and self.vcm.am_leader():
                self.reliable_send(src, self._presence_message())
        elif isinstance(msg, JoinRequest):
            self.vcm.on_join_request(msg)
        elif isinstance(msg, LeaveRequest):
            self.vcm.on_leave_request(msg)
        elif isinstance(msg, MergeRequest):
            self.vcm.on_merge_request(src, msg)
        elif isinstance(msg, MergeDecline):
            self.vcm.on_merge_decline(msg)
        elif isinstance(msg, BranchFlushed):
            self.vcm.on_branch_flushed(msg)

    def _active_flush_leader(self):
        if self.vcm.round is not None and self.vcm.round.flush is not None:
            return self.vcm.round.flush
        if self.vcm.subordinate is not None and self.vcm.subordinate.flush is not None:
            return self.vcm.subordinate.flush
        return None

    # ------------------------------------------------------------------
    # View installation
    # ------------------------------------------------------------------
    def apply_install(self, src: NodeId, msg: InstallView) -> None:
        """Validate and apply an InstallView from ``src`` (possibly ourselves)."""
        if msg.view is None:
            if self.state is EndpointState.LEAVING:
                self._finish_leave()
            return
        view = msg.view
        if self.node not in view.members:
            if self.state is EndpointState.LEAVING:
                self._finish_leave()
            return
        if self.state is EndpointState.JOINING:
            if self.stack.is_stale_view(self.group, view.view_id):
                # Leftover InstallView from a previous incarnation of
                # this node (delayed in the fabric across our crash):
                # installing it would resurrect a view the surviving
                # members already superseded.
                self.trace("stale_install_rejected", view=str(view.view_id))
                return
            if msg.app_state is not None:
                self.listener.on_state(self.group, msg.app_state)
            self._install(view, msg.dedup)
            return
        if self.state in (EndpointState.MEMBER, EndpointState.LEAVING):
            current = self.current_view
            if current is None:
                return
            if msg.via_branch != current.view_id:
                return  # not a successor of our view: stale or foreign
            if not self.participant.stop_acked:
                return  # we never flushed for this change: refuse
            self._install(view, msg.dedup)

    def _install(self, view: View, dedup: Dict[NodeId, int]) -> None:
        old = self.current_view
        if old is not None:
            self.known_ancestors.add(old.view_id)
        self.known_ancestors.update(view.parents)
        self.current_view = view
        self.participant.reset()
        self.vcm.round_completed()
        self.channel.install_view(view, dedup)
        self._update_monitoring(view)
        was_joining = self.state is EndpointState.JOINING
        self.state = EndpointState.MEMBER
        if was_joining and self._join_timer is not None:
            self._join_timer.cancel()
        self.views_installed += 1
        self.stack.note_view_installed(self.group, view.view_id)
        self.trace(
            "view_installed",
            view=str(view.view_id),
            members=list(view.members),
            parents=[str(p) for p in view.parents],
        )
        self.listener.on_view(self.group, view)
        if self._prejoin_sends:
            queued, self._prejoin_sends = self._prejoin_sends, []
            for payload, size in queued:
                self.channel.send(payload, size)
        # New coordinators announce themselves immediately: this is what
        # accelerates convergence after a heal.
        if self.vcm.am_leader():
            self.beacon()
        self.vcm.maybe_start()

    def _update_monitoring(self, view: View) -> None:
        wanted = set(view.members) - {self.node}
        current = set(self._monitored)
        # Sorted iteration: monitor() order fixes the detector's internal
        # peer order and thus its suspicion-notification order, which
        # must not depend on hash-randomized set iteration.
        for peer in sorted(wanted - current):
            self.fd.monitor(peer)
        for peer in sorted(current - wanted):
            self.fd.unmonitor(peer)
        self._monitored = tuple(sorted(wanted))

    # ------------------------------------------------------------------
    # Presence beacons
    # ------------------------------------------------------------------
    def _presence_message(self) -> Presence:
        assert self.current_view is not None
        return Presence(
            group=self.group,
            view_id=self.current_view.view_id,
            members=self.current_view.members,
        )

    def beacon(self) -> None:
        """Multicast a presence beacon if we coordinate a live view.

        Flat topology beacons to every subscriber.  Zoned topology
        beacons directly only to same-zone subscribers and our own view
        members; subscribers in other zones are reached through their
        zone's relay pair, which re-forwards the beacon locally
        (PROTOCOLS.md §20) — cross-zone discovery fan-out drops from
        O(subscribers) to O(zones).
        """
        if self.state is not EndpointState.MEMBER or not self.vcm.am_leader():
            return
        targets = self.addressing.subscribers(self.group) - {self.node}
        zones = self.stack.zones
        if zones is not None and targets:
            assert self.current_view is not None
            directory = zones.directory
            members = set(self.current_view.members)
            direct = {
                peer
                for peer in targets
                if peer in members or directory.zone_of(peer) == zones.zone
            }
            for foreign in targets - direct:
                peer_zone = directory.zone_of(foreign)
                if peer_zone is None:
                    direct.add(foreign)  # unzoned node (e.g. test stub)
                else:
                    direct.update(directory.relays(peer_zone))
            targets = direct - {self.node}
        if targets:
            msg = self._presence_message()
            self.stack.raw_multicast(targets, msg, msg.size_bytes())

    # ------------------------------------------------------------------
    # Helpers used by sub-machines (host interface)
    # ------------------------------------------------------------------
    def reliable_send(self, dst: NodeId, msg: VsyncMessage) -> None:
        self.stack.reliable_send(dst, msg, msg.size_bytes())

    def multicast_view(self, msg: VsyncMessage, size: int) -> None:
        assert self.current_view is not None
        self.stack.raw_multicast(set(self.current_view.members), msg, size)

    def deliver_data(self, sender: NodeId, payload: Any, size: int) -> None:
        self.listener.on_data(self.group, sender, payload, size)

    def raise_stop(self) -> None:
        self.listener.on_stop(self.group, self.stop_ok)

    def capture_state(self) -> Any:
        """Ask the application for a state snapshot (state transfer)."""
        return self.listener.get_state(self.group)

    def handle_stop_locally(self, stop: Stop) -> None:
        self.vcm.observed_round(stop.round_no)
        self.participant.on_stop(stop)

    def handle_fill_locally(self, fill: FlushFill) -> None:
        self.participant.on_fill(fill)

    def route_flush_state_locally(self, state: FlushState) -> None:
        leader = self._active_flush_leader()
        if leader is not None:
            leader.on_flush_state(state)

    def route_flush_done_locally(self, done: FlushDone) -> None:
        leader = self._active_flush_leader()
        if leader is not None:
            leader.on_flush_done(done)

    def on_suspicion_change(self, peer: NodeId, suspected: bool) -> None:
        self.vcm.on_suspicion_change(peer, suspected)

    def trace(self, event: str, **fields) -> None:
        tracer = self.env.tracer
        if tracer.enabled("hwg"):
            tracer.emit("hwg", event, node=self.node, group=self.group, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        vid = str(self.current_view.view_id) if self.current_view else "-"
        return f"HwgEndpoint({self.node}/{self.group}, {self.state.value}, view={vid})"
