"""Totally-ordered delivery within an installed view.

Within each view the view coordinator acts as *sequencer*: members send
``Publish`` requests to it over reliable FIFO channels, the sequencer
assigns a view-local sequence number and multicasts ``Ordered`` messages
to the whole view.  Receivers deliver in sequence order and NACK gaps.

Cross-view safety is provided by two mechanisms used during flush:

* every member keeps the full ordered log of the current view, so any
  member can supply messages another member is missing;
* per-sender *dedup floors* ``(sender -> highest delivered sender_seq)``
  carried across views in ``InstallView`` make re-publication of
  unordered messages after a view change idempotent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..runtime.interfaces import NodeId
from .messages import Nack, Ordered, Publish, StabilityAck, StabilityAnnounce
from .view import View

#: How long a receiver waits on a sequence gap before NACKing, microseconds.
NACK_DELAY_US = 30_000

#: Fallback idle-ack timeout when the host exposes no stack config
#: (unit-test fake hosts).  Matches VsyncConfig.ack_idle_timeout_us.
DEFAULT_ACK_IDLE_TIMEOUT_US = 400_000


class OrderedChannel:
    """Sequencer-based total order for one endpoint in one group.

    The ``host`` must provide: ``node``, ``group``, ``env``,
    ``reliable_send(dst, msg)``, ``multicast_view(msg, size)`` and
    ``deliver_data(sender, payload, size)``.
    """

    def __init__(self, host) -> None:
        self.host = host
        self.view: Optional[View] = None
        self.log: Dict[int, Ordered] = {}
        self.delivered_upto = -1
        self.next_order_seq = 0  # meaningful at the sequencer only
        self.dedup_floor: Dict[NodeId, int] = {}
        self.my_send_seq = 0
        # sender_seq -> (payload, size): sent but not yet seen delivered.
        self.pending: "OrderedDict[int, Tuple[Any, int]]" = OrderedDict()
        self.frozen = False
        self._ordered_in_view: Set[Tuple[NodeId, int]] = set()
        self._nack_armed = False
        self.delivered_count = 0
        # Stability tracking: log entries at or below the floor are
        # delivered everywhere and can never be needed by a flush.
        self.stable_upto = -1
        self._member_delivered: Dict[NodeId, int] = {}  # sequencer only
        self.log_pruned = 0
        # Piggybacking bookkeeping: acks ride on outgoing Publish
        # headers and floors on Ordered headers; standalone stability
        # messages fire only when the channel has been idle.
        self._last_ack_sent_at = 0
        self._floor_distributed_upto = -1  # sequencer only
        self.acks_piggybacked = 0
        self.floors_piggybacked = 0
        self.standalone_acks = 0
        self.standalone_announces = 0

    # ------------------------------------------------------------------
    # View lifecycle
    # ------------------------------------------------------------------
    def install_view(self, view: View, dedup_floor: Dict[NodeId, int]) -> None:
        """Reset per-view state and re-publish still-pending messages."""
        self.view = view
        self.log.clear()
        self.delivered_upto = -1
        self.next_order_seq = 0
        self._ordered_in_view.clear()
        self.frozen = False
        self.stable_upto = -1
        self._member_delivered.clear()
        self._floor_distributed_upto = -1
        self._last_ack_sent_at = self.host.env.now
        # The carried floors are authoritative: the flush equalised every
        # continuing member to the branch cut (so a local floor can never
        # legitimately exceed the carried one), and a sender *missing*
        # from the carried map is a fresh incarnation — a member that
        # left/seceded and rejoined — whose restarted sender_seq numbering
        # a stale local floor would silently swallow.
        self.dedup_floor = dict(dedup_floor)
        my_floor = self.dedup_floor.get(self.host.node, -1)
        for sender_seq in [s for s in self.pending if s <= my_floor]:
            del self.pending[sender_seq]
        for sender_seq, (payload, size) in list(self.pending.items()):
            self._publish(sender_seq, payload, size)

    def freeze(self) -> None:
        """Stop ordering/publishing; called when a flush begins."""
        self.frozen = True

    def thaw(self) -> None:
        """Resume in the *same* view after an abandoned view change.

        Used when a flush completed but the round was dropped without
        installing a successor (e.g. a merge-only round whose foreign
        branches all declined).  Per-view state survives; sends queued
        while frozen are (re-)published — the sequencer's
        ``_ordered_in_view`` set makes replays idempotent.
        """
        self.frozen = False
        my_floor = self.dedup_floor.get(self.host.node, -1)
        for sender_seq, (payload, size) in list(self.pending.items()):
            if sender_seq > my_floor:
                self._publish(sender_seq, payload, size)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, payload: Any, size: int) -> None:
        """Multicast ``payload`` with total-order delivery in the current view.

        If the channel is frozen (view change in progress) the message is
        queued and re-published automatically in the next view.
        """
        self.my_send_seq += 1
        self.pending[self.my_send_seq] = (payload, size)
        if not self.frozen and self.view is not None:
            self._publish(self.my_send_seq, payload, size)

    def _publish(self, sender_seq: int, payload: Any, size: int) -> None:
        assert self.view is not None
        # Piggybacked stability ack: our delivered prefix rides in the
        # Publish header, so an actively-sending member never needs a
        # standalone StabilityAck (see tick_stability's idle fallback).
        msg = Publish(
            group=self.host.group,
            view_id=self.view.view_id,
            sender=self.host.node,
            sender_seq=sender_seq,
            payload=payload,
            payload_size=size,
            acked_upto=self.delivered_upto,
        )
        self._last_ack_sent_at = self.host.env.now
        self.acks_piggybacked += 1
        if self.host.node == self.view.coordinator:
            self.on_publish(self.host.node, msg)
        else:
            self.host.reliable_send(self.view.coordinator, msg)

    # ------------------------------------------------------------------
    # Sequencer side
    # ------------------------------------------------------------------
    def on_publish(self, src: NodeId, msg: Publish) -> None:
        """Sequencer: assign the next order number and multicast."""
        if self.view is None or msg.view_id != self.view.view_id:
            return  # stale view: sender will re-publish after install
        # Absorb the piggybacked ack even for messages the dedup logic
        # discards below — the sender's delivery progress is real either
        # way.  (Harmless at non-coordinators: _member_delivered is only
        # read by the sequencer's floor computation.)
        if msg.acked_upto > self._member_delivered.get(msg.sender, -1):
            self._member_delivered[msg.sender] = msg.acked_upto
        if self.frozen or self.host.node != self.view.coordinator:
            return
        if msg.sender_seq <= self.dedup_floor.get(msg.sender, -1):
            return
        if (msg.sender, msg.sender_seq) in self._ordered_in_view:
            return
        seq = self.next_order_seq
        self.next_order_seq += 1
        self._ordered_in_view.add((msg.sender, msg.sender_seq))
        # Piggybacked stability floor: every Ordered carries the current
        # floor, so members prune their logs from the data stream itself.
        ordered = Ordered(
            group=msg.group,
            view_id=msg.view_id,
            seq=seq,
            sender=msg.sender,
            sender_seq=msg.sender_seq,
            payload=msg.payload,
            payload_size=msg.payload_size,
            stable_floor=self.stable_upto,
        )
        if self.stable_upto > self._floor_distributed_upto:
            self._floor_distributed_upto = self.stable_upto
            self.floors_piggybacked += 1
        self.host.multicast_view(ordered, ordered.size_bytes())

    def on_nack(self, msg: Nack) -> None:
        """Sequencer: retransmit the requested range to the requester."""
        if self.view is None or msg.view_id != self.view.view_id:
            return
        for seq in range(msg.from_seq, msg.to_seq + 1):
            held = self.log.get(seq)
            if held is not None:
                self.host.reliable_send(msg.requester, held)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_ordered(self, msg: Ordered) -> None:
        """Receive an ordered message; deliver contiguously, NACK gaps."""
        if self.view is None or msg.view_id != self.view.view_id:
            return
        # Apply the piggybacked stability floor first — it is valid even
        # for duplicates and retransmissions (the monotone guard in
        # _apply_floor discards stale floors from log retransmits).
        self._apply_floor(msg.stable_floor)
        if self.frozen:
            # Mid-flush: we already reported our delivery state, so any
            # delivery now would diverge from the branch-wide cut.  The
            # fill supplies everything at or below the cut; anything
            # above it is re-published by its sender in the next view.
            return
        if msg.seq <= self.delivered_upto or msg.seq in self.log:
            return
        self.log[msg.seq] = msg
        self._try_deliver()
        if self.log_gap_exists() and not self._nack_armed:
            self._arm_nack()

    def _try_deliver(self) -> None:
        while self.delivered_upto + 1 in self.log:
            seq = self.delivered_upto + 1
            msg = self.log[seq]
            self.delivered_upto = seq
            self._deliver(msg)

    def _deliver(self, msg: Ordered) -> None:
        floor = self.dedup_floor.get(msg.sender, -1)
        if msg.sender_seq > floor:
            self.dedup_floor[msg.sender] = msg.sender_seq
        if msg.sender == self.host.node:
            self.pending.pop(msg.sender_seq, None)
        self.delivered_count += 1
        tracer = self.host.env.tracer
        # Hottest emit in the stack — one per delivered message.  The
        # ``enabled`` guard skips stringifying the view id and building
        # the kwargs dict when nobody watches the "hwg" category.
        if tracer.enabled("hwg"):
            tracer.emit(
                "hwg",
                "data_delivered",
                node=self.host.node,
                group=self.host.group,
                view=str(msg.view_id),
                seq=msg.seq,
                sender=msg.sender,
                sender_seq=msg.sender_seq,
            )
        self.host.deliver_data(msg.sender, msg.payload, msg.payload_size)

    def log_gap_exists(self) -> bool:
        """True if we hold out-of-order messages past a missing sequence."""
        return any(seq > self.delivered_upto + 1 for seq in self.log)

    def _arm_nack(self) -> None:
        self._nack_armed = True
        view_at_arm = self.view.view_id if self.view else None

        def fire() -> None:
            self._nack_armed = False
            if self.view is None or self.view.view_id != view_at_arm or self.frozen:
                return
            if not self.log_gap_exists():
                return
            missing_to = max(s for s in self.log if s > self.delivered_upto + 1) - 1
            nack = Nack(
                group=self.host.group,
                view_id=self.view.view_id,
                from_seq=self.delivered_upto + 1,
                to_seq=missing_to,
                requester=self.host.node,
            )
            self.host.reliable_send(self.view.coordinator, nack)
            self._arm_nack()  # keep nagging until the gap closes

        self.host.env.scheduler.schedule(NACK_DELAY_US, fire)

    # ------------------------------------------------------------------
    # Stability and log garbage collection
    # ------------------------------------------------------------------
    def _ack_idle_timeout(self) -> int:
        stack = getattr(self.host, "stack", None)
        config = getattr(stack, "config", None)
        return getattr(config, "ack_idle_timeout_us", DEFAULT_ACK_IDLE_TIMEOUT_US)

    def tick_stability(self) -> None:
        """Periodic: report delivery progress / announce the floor.

        Stability information normally piggybacks on the data stream —
        acks ride in Publish headers, floors in Ordered headers.  This
        tick is the *idle fallback*: a member sends a standalone
        :class:`StabilityAck` only if no Publish carried its ack for
        ``ack_idle_timeout_us``; the sequencer computes the floor from
        the collected (piggybacked or standalone) acks and multicasts a
        standalone :class:`StabilityAnnounce` only if no Ordered has
        distributed the current floor yet.
        """
        if self.view is None or self.frozen:
            return
        now = self.host.env.now
        if self.host.node == self.view.coordinator:
            self._compute_floor()
            if self.stable_upto > self._floor_distributed_upto:
                self._floor_distributed_upto = self.stable_upto
                self.standalone_announces += 1
                announce = StabilityAnnounce(
                    group=self.host.group,
                    view_id=self.view.view_id,
                    floor=self.stable_upto,
                )
                self.host.multicast_view(announce, announce.size_bytes())
        else:
            if now - self._last_ack_sent_at < self._ack_idle_timeout():
                return  # a recent Publish already carried our progress
            self._last_ack_sent_at = now
            self.standalone_acks += 1
            ack = StabilityAck(
                group=self.host.group,
                view_id=self.view.view_id,
                member=self.host.node,
                delivered_upto=self.delivered_upto,
            )
            self.host.reliable_send(self.view.coordinator, ack)

    def on_stability_ack(self, msg: StabilityAck) -> None:
        """Sequencer: record a member's delivery progress."""
        if self.view is None or msg.view_id != self.view.view_id:
            return
        previous = self._member_delivered.get(msg.member, -1)
        if msg.delivered_upto > previous:
            self._member_delivered[msg.member] = msg.delivered_upto

    def _compute_floor(self) -> None:
        """Sequencer: recompute the stability floor and apply it locally.

        The floor propagates to members piggybacked on subsequent
        Ordered messages; :meth:`tick_stability` falls back to a
        standalone announce when the channel idles before that happens.
        """
        assert self.view is not None
        others = [m for m in self.view.members if m != self.host.node]
        if any(m not in self._member_delivered for m in others):
            return  # not everyone has reported yet
        floor = min(
            [self.delivered_upto] + [self._member_delivered[m] for m in others]
        )
        self._apply_floor(floor)

    def _apply_floor(self, floor: int) -> None:
        """Advance ``stable_upto`` and prune the log (monotone, idempotent)."""
        if self.view is None or floor <= self.stable_upto:
            return
        self.stable_upto = floor
        for seq in [s for s in self.log if s <= floor]:
            del self.log[seq]
            self.log_pruned += 1

    def on_stability_announce(self, msg: StabilityAnnounce) -> None:
        """Prune the log up to the announced floor."""
        if self.view is None or msg.view_id != self.view.view_id:
            return
        self._apply_floor(msg.floor)

    # ------------------------------------------------------------------
    # Flush support
    # ------------------------------------------------------------------
    def have_upto(self) -> int:
        """End of the contiguous prefix of this view we hold (== delivered)."""
        return self.delivered_upto

    def messages_above(self, lo: int) -> Dict[int, Ordered]:
        """Copies of every held message with ``seq > lo`` (for FlushState)."""
        return {seq: msg for seq, msg in self.log.items() if seq > lo}

    def apply_fill(self, cut: int, missing: Dict[int, Ordered]) -> None:
        """Absorb ``missing``, deliver everything up to ``cut``, drop the rest.

        Dropped messages were never delivered by anyone in the branch
        (the cut is the maximum of every member's contiguous coverage);
        their senders re-publish them in the next view.
        """
        # Drop above-cut holdings FIRST: delivering them here would break
        # the branch-wide agreement on the delivered set.
        for seq in [s for s in self.log if s > cut]:
            del self.log[seq]
        for seq, msg in missing.items():
            if seq not in self.log and seq <= cut:
                self.log[seq] = msg
        self._try_deliver()
        if self.delivered_upto < cut:
            raise RuntimeError(
                f"flush fill incomplete: delivered {self.delivered_upto} < cut {cut} "
                f"(group={self.host.group}, node={self.host.node})"
            )

    def floor_snapshot(self) -> Dict[NodeId, int]:
        """Copy of the per-sender dedup floors (carried in InstallView)."""
        return dict(self.dedup_floor)
