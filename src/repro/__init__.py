"""repro — reproduction of "Partitionable Light-Weight Groups".

Rodrigues & Guo, 20th IEEE International Conference on Distributed
Computing Systems (ICDCS), 2000.

Layer map (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event network simulation
  (the testbed substitute: latency/bandwidth model, partitions, crashes).
* :mod:`repro.vsync` — partitionable virtually-synchronous group
  communication: the heavy-weight group (HWG) substrate.
* :mod:`repro.naming` — the weakly-consistent replicated naming service
  with reconciliation, genealogy GC and MULTIPLE-MAPPINGS callbacks.
* :mod:`repro.core` — the paper's contribution: the transparent dynamic
  partitionable light-weight group (LWG) service and its baselines.
* :mod:`repro.workloads` / :mod:`repro.metrics` — scenario builders and
  measurement used by the examples and benchmarks.

Quickstart::

    from repro.workloads import Cluster

    cluster = Cluster(num_processes=4, seed=7)
    handles = [cluster.service(i).join("chat") for i in range(4)]
    cluster.run_for_seconds(3)
    handles[0].send("hello, group")
    cluster.run_for_seconds(1)
"""

__version__ = "1.0.0"

from . import core, naming, sim, vsync  # noqa: F401

__all__ = ["core", "naming", "sim", "vsync", "__version__"]
