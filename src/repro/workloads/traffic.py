"""Traffic generation and probing listeners.

Probe payloads are ``(kind, seq, sent_at_us)`` tuples; the
:class:`ProbeListener` reads the timestamp back at delivery to feed the
latency collector, counts deliveries for throughput windows, and feeds
every view installation to the recovery timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.service import LwgListener
from ..metrics.collectors import LatencyCollector, RecoveryTimer, ThroughputMeter
from ..runtime.interfaces import Runtime
from ..vsync.view import View


@dataclass
class ProbeHub:
    """Shared measurement sinks for a scenario's probe listeners."""

    env: Runtime
    latency: LatencyCollector = field(default_factory=LatencyCollector)
    throughput: ThroughputMeter = field(default_factory=ThroughputMeter)
    recovery: RecoveryTimer = field(default_factory=RecoveryTimer)
    deliveries: int = 0
    views_seen: int = 0

    def delivered_in_group(self, group: str) -> int:
        return len(self.latency.samples(group))


class ProbeListener(LwgListener):
    """Per-(node, group) listener wired into a :class:`ProbeHub`."""

    def __init__(self, hub: ProbeHub, node: str):
        self.hub = hub
        self.node = node
        self.views: List[View] = []
        self.delivered: List[Tuple[str, Any]] = []

    def on_view(self, lwg: str, view: View) -> None:
        self.views.append(view)
        self.hub.views_seen += 1
        self.hub.recovery.note_view(lwg, self.node, view.members, self.hub.env.now)

    def on_data(self, lwg: str, src: str, payload: Any, size: int) -> None:
        self.delivered.append((src, payload))
        self.hub.deliveries += 1
        self.hub.throughput.record_delivery()
        if isinstance(payload, tuple) and len(payload) == 3 and payload[0] == "probe":
            _, _, sent_at = payload
            self.hub.latency.record(lwg, sent_at, self.hub.env.now)

    @property
    def current_view(self) -> Optional[View]:
        return self.views[-1] if self.views else None


def probe_payload(env: Runtime, seq: int) -> Tuple[str, int, int]:
    """A latency-probe payload carrying its send timestamp."""
    return ("probe", seq, env.now)


class PeriodicSender:
    """Sends probe payloads on a handle at a fixed period."""

    def __init__(
        self,
        env: Runtime,
        stack,
        handle,
        period_us: int,
        payload_size: int = 256,
        limit: Optional[int] = None,
    ):
        self.env = env
        self.stack = stack
        self.handle = handle
        self.period_us = period_us
        self.payload_size = payload_size
        self.limit = limit
        self.sent = 0
        self._stopped = False

    def start(self) -> None:
        self._tick()

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        if self.limit is not None and self.sent >= self.limit:
            return
        self.handle.send(probe_payload(self.env, self.sent), self.payload_size)
        self.sent += 1
        self.stack.set_timer(self.period_us, self._tick)
