"""Scenario builders, traffic generators and cluster assembly."""

from .churn import ChurnDriver, ChurnModel
from .cluster import Cluster
from .scenarios import (
    GROUP_SIZE,
    Figure2Setup,
    PartitionScenario,
    build_figure2,
    build_partition_scenario,
    measure_latency,
    measure_recovery,
    measure_throughput,
)
from .overlap import OverlapSetup, build_overlap
from .traffic import PeriodicSender, ProbeHub, ProbeListener, probe_payload

__all__ = [
    "ChurnDriver",
    "ChurnModel",
    "Cluster",
    "GROUP_SIZE",
    "Figure2Setup",
    "PartitionScenario",
    "build_figure2",
    "build_partition_scenario",
    "measure_latency",
    "measure_recovery",
    "measure_throughput",
    "OverlapSetup",
    "build_overlap",
    "PeriodicSender",
    "ProbeHub",
    "ProbeListener",
    "probe_payload",
]
