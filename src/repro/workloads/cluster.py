"""Cluster assembly: everything needed to run LWG scenarios.

A :class:`Cluster` wires together the full stack for ``n`` application
processes — simulation environment, group addressing, name servers,
per-process protocol stacks, naming clients and a light-weight group
service of the chosen *flavour* (dynamic / static / isolated / none) —
so tests, examples and benchmarks build scenarios in a few lines.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from ..checkers import CheckerSuite
from ..core.baselines import (
    NoLwgService,
    make_dynamic_service,
    make_isolated_service,
    make_static_service,
)
from ..core.config import LwgConfig
from ..core.service import LwgService
from ..naming.client import NamingClient
from ..naming.persistence import DurableStore, MemoryStorage
from ..naming.server import NameServer
from ..naming.sharding import ShardMap
from ..runtime.interfaces import SECOND, NodeId, Runtime
from ..sim.network import LinkModel
from ..sim.process import SimRuntime
from ..vsync.stack import ProtocolStack, VsyncConfig
from ..vsync.zones import ZoneDirectory, ZoneMap

ServiceFlavour = str  # "dynamic" | "static" | "isolated" | "none"


class Cluster:
    """A fully wired cluster of LWG-capable processes.

    By default the cluster runs on the deterministic discrete-event
    backend (:class:`~repro.sim.process.SimRuntime`).  Pass ``env`` to
    run the *same* wiring over a different runtime — e.g. an
    :class:`~repro.runtime.asyncio_backend.AsyncioRuntime`, where every
    node owns a real UDP socket and timers are wall-clock.  The cluster
    itself only touches the backend-agnostic runtime interfaces.
    """

    def __init__(
        self,
        num_processes: int,
        seed: int = 0,
        flavour: ServiceFlavour = "dynamic",
        num_name_servers: int = 1,
        lwg_config: Optional[LwgConfig] = None,
        vsync_config: Optional[VsyncConfig] = None,
        link: Optional[LinkModel] = None,
        shared_medium: bool = True,
        keep_trace: bool = True,
        process_prefix: str = "p",
        checkers: bool = True,
        env: Optional[Runtime] = None,
        durable: bool = True,
        replication_factor: Optional[int] = None,
        zone_map: Optional[ZoneMap] = None,
    ):
        if flavour not in ("dynamic", "static", "isolated", "none"):
            raise ValueError(f"unknown service flavour {flavour!r}")
        self.flavour = flavour
        self.env: Runtime = env if env is not None else SimRuntime.create(
            seed=seed, link=link, shared_medium=shared_medium, keep_trace=keep_trace
        )
        # Online invariant monitors (sanitizer-style): on by default so
        # every scenario doubles as a correctness test.  Pass
        # ``checkers=False`` for timing-sensitive perf runs.
        self.checkers: Optional[CheckerSuite] = None
        if checkers:
            self.checkers = CheckerSuite.standard().attach(self.env.tracer)
        self.addressing = self.env.group_addressing()
        self.lwg_config = lwg_config or LwgConfig()
        self.vsync_config = vsync_config or VsyncConfig()
        self.name_server_ids = [f"ns{i}" for i in range(num_name_servers)]
        # Replica-set scope (PROTOCOLS.md §18): ``replication_factor``
        # turns on LWG-name sharding — each shard lives on ``rf`` of the
        # name servers, chosen by rendezvous hashing.  ``None`` keeps the
        # legacy fully-replicated deployment, bit-identical to before.
        self.shard_map: Optional[ShardMap] = None
        if replication_factor is not None:
            self.shard_map = ShardMap(self.name_server_ids, replication_factor)
        # Per-node durable stores (crash-recovery state).  ``durable=False``
        # restores the legacy volatile behaviour where a recovered node
        # keeps its in-memory database and counters.
        self.stores: Dict[NodeId, DurableStore] = {}
        self.name_servers: Dict[NodeId, NameServer] = {
            node: NameServer(
                self.env, node, peers=self.name_server_ids,
                store=self._make_store(node) if durable else None,
                shard_map=self.shard_map,
            )
            for node in self.name_server_ids
        }
        self.process_ids: List[NodeId] = [
            f"{process_prefix}{i}" for i in range(num_processes)
        ]
        # Zoned topology (PROTOCOLS.md §20): one shared directory, like
        # the addressing registry.  Flat clusters carry no directory, so
        # every pre-zoning scenario stays bit-identical.
        self.zone_directory: Optional[ZoneDirectory] = None
        if self.vsync_config.topology == "zoned":
            self.zone_directory = ZoneDirectory(
                zone_map or ZoneMap(self.vsync_config.num_zones)
            )
        self.stacks: Dict[NodeId, ProtocolStack] = {}
        self.clients: Dict[NodeId, NamingClient] = {}
        self.services: Dict[NodeId, Union[LwgService, NoLwgService]] = {}
        for node in self.process_ids:
            stack = ProtocolStack(
                self.env, node, self.addressing, self.vsync_config,
                node_store=self._make_store(node) if durable else None,
                zone_directory=self.zone_directory,
            )
            self.stacks[node] = stack
            if flavour == "none":
                self.services[node] = NoLwgService(stack)
                continue
            client = NamingClient(stack, self.name_server_ids, shard_map=self.shard_map)
            self.clients[node] = client
            if flavour == "dynamic":
                self.services[node] = make_dynamic_service(stack, client, self.lwg_config)
            elif flavour == "static":
                self.services[node] = make_static_service(stack, client, self.lwg_config)
            else:
                self.services[node] = make_isolated_service(stack, client, self.lwg_config)

    def _make_store(self, node: NodeId) -> DurableStore:
        store = DurableStore(MemoryStorage())
        self.stores[node] = store
        return store

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def node_id(self, index: int) -> NodeId:
        return self.process_ids[index]

    def service(self, which: Union[int, NodeId]) -> Union[LwgService, NoLwgService]:
        """The LWG service of a process, by index or node id."""
        node = self.process_ids[which] if isinstance(which, int) else which
        return self.services[node]

    def stack(self, which: Union[int, NodeId]) -> ProtocolStack:
        node = self.process_ids[which] if isinstance(which, int) else which
        return self.stacks[node]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_for(self, duration_us: int) -> None:
        """Advance the runtime by ``duration_us`` microseconds."""
        self.env.run_for(duration_us)

    def run_for_seconds(self, seconds: float) -> None:
        self.run_for(int(seconds * SECOND))

    def run_until(self, predicate: Callable[[], bool], timeout_us: int,
                  step_us: int = 50_000) -> bool:
        """Step the runtime until ``predicate()`` or ``timeout_us`` elapses.

        Returns True if the predicate was met.
        """
        deadline = self.env.now + timeout_us
        while self.env.now < deadline:
            if predicate():
                return True
            self.env.run_for(min(deadline, self.env.now + step_us) - self.env.now)
        return predicate()

    # ------------------------------------------------------------------
    # Invariant checking
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Run the at-quiesce invariant checks (no-op if checkers are off).

        Call after a scenario has settled (views converged, naming
        traffic drained): raises
        :class:`~repro.checkers.InvariantViolation` on the first
        quiescent-state property that does not hold.
        """
        if self.checkers is not None:
            self.checkers.check_quiescent(self)

    # ------------------------------------------------------------------
    # Fault/partition injection conveniences
    # ------------------------------------------------------------------
    def partition(self, *blocks: Sequence[NodeId]) -> None:
        """Split the network into the given blocks (ids, not indexes)."""
        self.env.fabric.set_partitions(list(blocks))

    def heal(self) -> None:
        self.env.fabric.heal()

    def crash(self, which: Union[int, NodeId]) -> None:
        node = self.process_ids[which] if isinstance(which, int) else which
        self.env.failures.crash_now(node)

    def recover(self, which: Union[int, NodeId]) -> None:
        node = self.process_ids[which] if isinstance(which, int) else which
        self.env.failures.recover_now(node)
