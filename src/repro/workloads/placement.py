"""High-group-count placement workload: Zipf-ish classes over two zones.

The scenario is built so the paper's Figure-1 rules converge to a
mapping they can never improve, while the global optimizer
(:mod:`repro.core.placement`) finds a strictly cheaper one:

* a **zone** is 12 processes: one *dominant* class spans the whole
  zone, and the other classes are nested prefixes of it (4-8 process
  subsets), the hierarchy real deployments show (everyone / a team / a
  pair of replicas);
* under the paper rules each zone is driven onto **one 12-member HWG**,
  from any intermediate state: all of a zone's classes share a
  coordinator (the first zone process), so whenever churn strands a
  sub-class on its own HWG, that coordinator sees both HWGs, the
  sub-class is a non-minority subset of the zone HWG (``4*4 > 12``),
  and the share rule collapses the pair right back together;
* the collapse is irreversible: every sub-class covers 33-67% of the
  zone HWG — never a minority under ``k_m = 4`` — so the interference
  rule holds the mapping forever, and every multicast for a 4-8 member
  class pays fan-out 12;
* LWG counts per class follow a Zipf-ish 1/rank split with the
  *sub-window* classes ranked first, so the misplaced classes carry
  most of the load (the skew reported for real group systems).

The optimizer's cost model charges that slack fan-out directly, so it
peels every sub-window class onto a right-sized HWG (union 4-6),
roughly halving steady-state fan-out *and* the membership each
crash/recovery flush has to walk.  ``benchmarks/bench_policies.py``
asserts both ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.config import LwgConfig
from ..sim.engine import MS, SECOND
from ..vsync.stack import VsyncConfig
from .cluster import Cluster
from .traffic import ProbeHub, ProbeListener, probe_payload

#: Processes per zone.  12 keeps every sub-window (4 or 6 wide) above
#: the ``k_m = 4`` minority threshold on the zone HWG, which is the
#: whole point: the paper rules must be *stuck with* the
#: one-HWG-per-zone mapping.
ZONE_SIZE = 12

#: (offset, width) of each membership class inside a zone, in Zipf rank
#: order: sub-classes first (they carry the load), the dominant
#: zone-spanning class last.  Every class starts at offset 0, so the
#: whole zone shares one coordinator and an escaped sub-class HWG
#: always share-collapses back onto the zone HWG.
_ZONE_LAYOUT = ((0, 6), (0, 5), (0, 4), (0, 7), (0, 8), (0, 12))


@dataclass(frozen=True)
class MembershipClass:
    """One membership class: ``count`` LWGs over the same member set."""

    index: int
    zone: int
    members: Tuple[str, ...]
    count: int

    @property
    def creator(self) -> str:
        return self.members[0]

    def group_name(self, j: int) -> str:
        return f"c{self.index:02d}g{j:03d}"

    @property
    def group_names(self) -> List[str]:
        return [self.group_name(j) for j in range(self.count)]


def zipf_classes(
    zones: int = 2,
    num_lwgs: int = 120,
) -> List[MembershipClass]:
    """The scenario's membership classes with 1/rank LWG counts.

    Classes are laid out per zone from :data:`_ZONE_LAYOUT`; each
    zone's share of ``num_lwgs`` is apportioned over its classes by
    Zipf weight in layout order, largest-remainder, minimum one LWG per
    class — so the zones mirror each other and the misplaced sub-window
    classes carry most of the load.
    """
    per_zone_layout: List[Tuple[int, ...]] = [
        tuple(range(offset, offset + width)) for offset, width in _ZONE_LAYOUT
    ]
    weights = [1.0 / (rank + 1) for rank in range(len(per_zone_layout))]
    total_weight = sum(weights)
    zone_share = num_lwgs // zones
    counts = [max(1, int(zone_share * w / total_weight)) for w in weights]
    shortfall = zone_share - sum(counts)
    for rank in range(len(counts)):
        if shortfall <= 0:
            break
        counts[rank] += 1
        shortfall -= 1
    classes: List[MembershipClass] = []
    for zone in range(zones):
        base = zone * ZONE_SIZE
        for rank, offsets in enumerate(per_zone_layout):
            classes.append(
                MembershipClass(
                    index=len(classes),
                    zone=zone,
                    members=tuple(f"p{base + i}" for i in offsets),
                    count=counts[rank],
                )
            )
    return classes


# ----------------------------------------------------------------------
# Fabric metering
# ----------------------------------------------------------------------

#: Message types that are merge/flush machinery: the vsync flush
#: protocol (Stop .. InstallView), partition-merge discovery and
#: branch reconciliation, and the LWG announce/merge control messages.
#: Everything else (data, heartbeats, naming) is excluded.
_FLUSH_MERGE_TYPES = frozenset(
    {
        "Stop",
        "FlushState",
        "FlushFill",
        "FlushDone",
        "InstallView",
        "MergeRequest",
        "MergeDecline",
        "BranchFlushed",
        "MergeViewsMsg",
        "AllViewsMsg",
        "LwgViewMsg",
    }
)

#: Failure-detection traffic: per-peer heartbeats under the flat
#: topology, gossip digests / indirect probes / zone summaries under
#: "zoned" (PROTOCOLS.md §20).  Metered separately from flush/merge —
#: FD volume is the quantity the zoned topology exists to shrink.
_FD_TYPES = frozenset(
    {"Heartbeat", "LivenessDigest", "ProbeRequest", "ProbePing", "ZoneSummary"}
)


def classify_flush_payload(payload: Any, max_depth: int = 5) -> Optional[str]:
    """The merge/flush/FD message type carried by ``payload``.

    Control messages are never batched (the packer flushes before every
    ``hwg_send`` of an LWG control message), so unwrapping the nested
    ``payload`` attributes — transport segment, then total-order wrapper,
    then the LWG message — is enough to see the real type.
    """
    for _ in range(max_depth):
        if payload is None:
            return None
        name = type(payload).__name__
        if name in _FLUSH_MERGE_TYPES or name in _FD_TYPES:
            return name
        payload = getattr(payload, "payload", None)
    return None


class FabricMeter:
    """Counts merge/flush and heartbeat deliveries on a cluster's fabric.

    Wraps ``Network._deliver`` (the single funnel every scheduled
    delivery fires through), classifies each payload and forwards it
    untouched.  Counts include deliveries dropped at fire time by a
    concurrent crash/partition — a flush message the fabric carried is
    work regardless of whether the receiver was still there.
    """

    def __init__(self, cluster: Cluster):
        self.flush_messages = 0
        self.flush_bytes = 0
        self.heartbeats = 0
        self.fd_messages = 0
        self.by_type: Dict[str, int] = {}
        self._network = cluster.env.network
        network = self._network
        inner = network._deliver

        def metered(src: str, dst: str, payload: Any, size: int) -> None:
            kind = classify_flush_payload(payload)
            if kind in _FD_TYPES:
                self.fd_messages += 1
                if kind == "Heartbeat":
                    self.heartbeats += 1
                self.by_type[kind] = self.by_type.get(kind, 0) + 1
            elif kind is not None:
                self.flush_messages += 1
                self.flush_bytes += size
                self.by_type[kind] = self.by_type.get(kind, 0) + 1
            inner(src, dst, payload, size)

        network._deliver = metered  # type: ignore[method-assign]

    @property
    def fanout_memo_hits(self) -> int:
        """Multicast fan-out memo hits on the underlying fabric."""
        return getattr(self._network, "fanout_memo_hits", 0)

    @property
    def fanout_memo_misses(self) -> int:
        return getattr(self._network, "fanout_memo_misses", 0)

    def snapshot(self) -> int:
        return self.flush_messages

    def counters(self) -> Dict[str, int]:
        """All meter counters, including the fabric's fan-out memo stats."""
        return {
            "flush_messages": self.flush_messages,
            "flush_bytes": self.flush_bytes,
            "heartbeats": self.heartbeats,
            "fd_messages": self.fd_messages,
            "fanout_memo_hits": self.fanout_memo_hits,
            "fanout_memo_misses": self.fanout_memo_misses,
        }


# ----------------------------------------------------------------------
# The scenario
# ----------------------------------------------------------------------
@dataclass
class PlacementSetup:
    """A converged high-group-count scenario."""

    cluster: Cluster
    classes: List[MembershipClass]
    placement: str
    handles: Dict[Tuple[str, str], Any]
    probes: Dict[Tuple[str, str], ProbeListener]
    hub: ProbeHub
    meter: FabricMeter

    @property
    def num_lwgs(self) -> int:
        return sum(c.count for c in self.classes)

    def converged(self) -> bool:
        """Every member of every LWG sees the full membership.

        Checked from *all* member handles, not just the creator's: a
        member whose handle still shows a stale sub-view would silently
        miss multicasts, which would flatter whatever placement it
        happened under.
        """
        for cls in self.classes:
            want = set(cls.members)
            for group in cls.group_names:
                for node in cls.members:
                    handle = self.handles.get((group, node))
                    if handle is None:
                        return False
                    view = handle.view
                    if view is None or set(view.members) != want:
                        return False
        return True

    def hwgs_in_use(self) -> set:
        return {handle.hwg for handle in self.handles.values()}

    def max_hwg_size(self) -> int:
        """Largest HWG membership seen from any live endpoint."""
        largest = 0
        for node in self.cluster.process_ids:
            try:
                stack = self.cluster.stack(node)
            except KeyError:
                continue
            for endpoint in getattr(stack, "endpoints", {}).values():
                view = getattr(endpoint, "current_view", None)
                if view is not None:
                    largest = max(largest, len(view.members))
        return largest


def _placement_lwg_config(placement: str) -> LwgConfig:
    """Scenario timers: fast policies, rebalance-after-load switching.

    ``placement_settle_us`` is raised far past the default so the
    optimizer does not start moving groups until the join waves are
    over: every switch strands an HWG remnant the merge machinery must
    heal, and on the shared 10 Mb/s medium a heal storm concurrent with
    the bulk-load joins congests the wire past the merge timeouts (the
    classic "don't rebalance during bulk load" rule).  Moves then drain
    in bounded batches per policy period on an otherwise quiet wire.

    ``coordinator_silence_us`` is raised because during the drain the
    wire carries dozens of concurrent switch/merge flushes and LWG
    announcements easily lag past the 6 s default — and a premature
    forced-out rejoin feeds the very churn that delayed the announce
    (each rejoin is another naming round plus an HWG view change).
    The backstop still fires, just calibrated to drain-storm latencies.
    """
    config = LwgConfig(placement_policy=placement, placement_max_switches=8)
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    config.placement_settle_us = 20 * SECOND
    config.coordinator_silence_us = 15 * SECOND
    return config


def _placement_vsync_config(placement: str) -> VsyncConfig:
    """Vsync substrate config for the scenario.

    The optimizer's switch churn shatters HWGs into many concurrently
    healing views; the merge machinery needs the mass-heal hardening to
    reconverge from that (see :class:`VsyncConfig`).  The paper rules
    never split an established HWG, so they run the validated baseline
    substrate — the same pairing production would use, and the same one
    every other benchmark and the frozen fuzz corpus measure.
    """
    return VsyncConfig(heal_hardening=(placement == "optimizer"))


def build_placement_scenario(
    placement: str,
    num_lwgs: int = 120,
    zones: int = 2,
    seed: int = 0,
    settle_seconds: Optional[float] = None,
) -> PlacementSetup:
    """Build and converge the scenario under the given placement policy.

    Classes are joined window by window (both zones in parallel): the
    creator first, then the remaining members.  The exact interleaving
    with policy evaluations does not matter — under the paper rules the
    share-rule collapse merges each zone onto one HWG from any
    intermediate state.
    """
    classes = zipf_classes(zones=zones, num_lwgs=num_lwgs)
    cluster = Cluster(
        num_processes=zones * ZONE_SIZE,
        seed=seed,
        lwg_config=_placement_lwg_config(placement),
        vsync_config=_placement_vsync_config(placement),
        keep_trace=False,
    )
    meter = FabricMeter(cluster)
    hub = ProbeHub(env=cluster.env)
    handles: Dict[Tuple[str, str], Any] = {}
    probes: Dict[Tuple[str, str], ProbeListener] = {}

    def join(group: str, node: str) -> None:
        probe = ProbeListener(hub, node)
        probes[(group, node)] = probe
        handles[(group, node)] = cluster.services[node].join(group, probe)

    classes_per_zone = len(classes) // zones
    # The dominant zone-spanning class (last in the layout) is built
    # first, so every sub-window creator is already a member of the
    # zone HWG when its classes appear.
    wave_order = [classes_per_zone - 1] + list(range(classes_per_zone - 1))
    # Bulk-load pacing: each LWG's join burst is one naming round trip
    # plus a fan-in of LwgJoinReq/state-transfer traffic, all on the
    # shared 10 Mb/s medium.  Past ~40 LWGs the 60 ms stride floods the
    # wire faster than it drains, installs trail their beacons by
    # seconds and the substrate starts seceding members it was about to
    # admit — so the stride widens linearly with the group count.
    stride_us = int(60 * MS * max(1.0, num_lwgs / 48.0))
    for wave in wave_order:
        batch = [cls for cls in classes if cls.index % classes_per_zone == wave]
        span = 0
        for cls in batch:
            for j, group in enumerate(cls.group_names):
                # Tight join bursts: the creator gets a short head start
                # (the naming record must exist), then the remaining
                # members pile in — the class spends as little time as
                # possible in a transient-minority state.
                base = j * stride_us
                cluster.env.scheduler.schedule(
                    base, lambda g=group, n=cls.creator: join(g, n)
                )
                for i, node in enumerate(cls.members[1:]):
                    cluster.env.scheduler.schedule(
                        base + 100 * MS + (i + 1) * 15 * MS,
                        lambda g=group, n=node: join(g, n),
                    )
            span = max(span, cls.count * stride_us + 400 * MS)
        cluster.run_for(span + 1500 * MS)

    setup = PlacementSetup(
        cluster=cluster, classes=classes, placement=placement,
        handles=handles, probes=probes, hub=hub, meter=meter,
    )
    timeout = int((20.0 + 0.2 * num_lwgs) * SECOND)
    if not cluster.run_until(setup.converged, timeout_us=timeout):
        laggards = []
        for cls in classes:
            want = set(cls.members)
            for group in cls.group_names:
                for node in cls.members:
                    handle = handles.get((group, node))
                    view = handle.view if handle is not None else None
                    got = sorted(view.members) if view is not None else None
                    if got is None or set(got) != want:
                        laggards.append(f"{group}@{node}: {got}")
        raise RuntimeError(
            f"placement scenario ({placement}, {num_lwgs} LWGs) failed to "
            f"converge; {len(laggards)} laggard(s), first: {laggards[:4]}"
        )
    # Let the placement policy reach its fixed point: the optimizer's
    # first moves wait out placement_settle_us, then the backlog (one
    # move per misplaced LWG) drains a rate-limited batch per policy
    # period — so the window scales with the group count.
    if settle_seconds is None:
        settle_seconds = 30.0 + 0.4 * num_lwgs
    cluster.run_for_seconds(settle_seconds)
    # The drain itself strands HWG remnants that need healing; require
    # the system to be whole again before anyone measures on it.
    if not cluster.run_until(setup.converged, timeout_us=timeout):
        raise RuntimeError(
            f"placement scenario ({placement}, {num_lwgs} LWGs) degraded "
            f"while draining placement moves"
        )
    return setup


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
@dataclass
class PlacementMetrics:
    """Traffic attributable to one placement, over identical phases."""

    #: Fabric deliveries during the paced data phase, excluding FD
    #: heartbeats: app multicasts plus all placement-dependent control
    #: (announces, view machinery).  Heartbeats are excluded because the
    #: dominant zone class pins the FD peer graph to the full zone under
    #: *both* placements — a constant-rate background that would only
    #: dilute the comparison.
    data_messages: int
    data_heartbeats: int
    data_seconds: float
    #: Merge/flush control deliveries during the churn phase.
    flush_messages: int
    flush_by_type: Dict[str, int] = field(default_factory=dict)
    hwg_count: int = 0
    max_hwg_size: int = 0


def measure_placement(
    setup: PlacementSetup,
    rounds: int = 3,
    churn_cycles: Tuple[str, ...] = ("p1", f"p{ZONE_SIZE + 1}"),
) -> PlacementMetrics:
    """Run the paced data phase, then the crash/recover churn phase.

    Both phases advance simulated time by amounts that depend only on
    the scenario shape, so two setups that differ *only* in placement
    are compared over identical windows.

    The churn victims default to the second process of each zone: a
    member of the zone's first wide and first narrow window but the
    coordinator of nothing, so the flush/rejoin traffic — not
    coordinator succession — dominates the phase.
    """
    cluster = setup.cluster
    network = cluster.env.network

    # --- data phase: every LWG's creator multicasts, paced. -----------
    gap = 10 * MS
    sends: List[Tuple[str, str]] = [
        (group, cls.creator)
        for cls in setup.classes
        for group in cls.group_names
    ]
    data_start = cluster.env.now
    base_delivered = network.messages_delivered
    base_heartbeats = setup.meter.heartbeats
    for round_no in range(rounds):
        for index, (group, sender) in enumerate(sends):
            delay = (round_no * len(sends) + index) * gap
            handle = setup.handles[(group, sender)]
            cluster.env.scheduler.schedule(
                delay,
                lambda h=handle, r=round_no: h.send(probe_payload(cluster.env, r)),
            )
    cluster.run_for(rounds * len(sends) * gap + 2 * SECOND)
    data_heartbeats = setup.meter.heartbeats - base_heartbeats
    data_messages = (
        network.messages_delivered - base_delivered - data_heartbeats
    )
    data_seconds = (cluster.env.now - data_start) / SECOND

    # --- churn phase: crash + recover + rejoin, one victim per zone. --
    base_flush = setup.meter.snapshot()
    base_by_type = dict(setup.meter.by_type)
    for victim in churn_cycles:
        rejoin = [
            (group, cls)
            for cls in setup.classes
            if victim in cls.members
            for group in cls.group_names
        ]
        cluster.crash(victim)
        cluster.run_for_seconds(4)
        cluster.recover(victim)
        for group, cls in rejoin:
            probe = ProbeListener(setup.hub, victim)
            setup.probes[(group, victim)] = probe
            setup.handles[(group, victim)] = cluster.services[victim].join(
                group, probe
            )
        cluster.run_for_seconds(8)
    flush_messages = setup.meter.snapshot() - base_flush
    flush_by_type = {
        kind: count - base_by_type.get(kind, 0)
        for kind, count in setup.meter.by_type.items()
        if count - base_by_type.get(kind, 0) > 0
    }

    return PlacementMetrics(
        data_messages=data_messages,
        data_heartbeats=data_heartbeats,
        data_seconds=data_seconds,
        flush_messages=flush_messages,
        flush_by_type=flush_by_type,
        hwg_count=len(setup.hwgs_in_use()),
        max_hwg_size=setup.max_hwg_size(),
    )
