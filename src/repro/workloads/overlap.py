"""Configuration B: overlapping group sets (precursor paper [8]).

The paper presents Figure 2 as "the result from one of several
configurations reported in [8]" (Dynamic Light-Weight Groups, ICDCS'97).
This module builds a second, harder configuration: the two sets of user
groups have *overlapping* membership —

* set A: n groups over processes ``p0..p3``
* set B: n groups over processes ``p2..p5``   (p2, p3 in both)

The interesting question for the mapping heuristics: with k_m = 4 the
share rule must NOT collapse the two classes (overlap k = 2 against
sqrt(2*2*2) ~ 2.83), so the dynamic service should stabilise on two
HWGs — the overlap processes carry both, which is precisely the partial
sharing a static design cannot express (one global HWG makes the
disjoint tails interfere; per-group HWGs forgo all sharing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..metrics.collectors import SummaryStats
from ..sim.engine import MS, SECOND
from ..vsync.stack import VsyncConfig
from .cluster import Cluster
from .scenarios import _scaled_lwg_config
from .traffic import ProbeHub, ProbeListener, probe_payload

SET_A = ["p0", "p1", "p2", "p3"]
SET_B = ["p2", "p3", "p4", "p5"]


@dataclass
class OverlapSetup:
    """A converged configuration-B scenario."""

    cluster: Cluster
    n: int
    groups_a: List[str]
    groups_b: List[str]
    handles: Dict[Tuple[str, str], object]
    probes: Dict[Tuple[str, str], ProbeListener]
    hub: ProbeHub

    @property
    def all_groups(self) -> List[str]:
        return self.groups_a + self.groups_b

    def members_of(self, group: str) -> List[str]:
        return SET_A if group in self.groups_a else SET_B

    def sender_of(self, group: str) -> str:
        return self.members_of(group)[0]

    def converged(self) -> bool:
        for (group, node), handle in self.handles.items():
            view = handle.view
            if view is None or len(view.members) != 4:
                return False
        return True

    def hwgs_in_use(self) -> set:
        return {handle.hwg for handle in self.handles.values()}


def build_overlap(
    n: int,
    flavour: str,
    seed: int = 0,
    settle_seconds: Optional[float] = None,
    placement: str = "paper",
) -> OverlapSetup:
    """Build and converge configuration B under the given service.

    ``placement`` selects the dynamic service's mapping policy
    (PROTOCOLS.md §19); the default leaves every flavour exactly as
    the paper ran it.
    """
    config = _scaled_lwg_config()
    config.placement_policy = placement
    cluster = Cluster(
        num_processes=6,
        seed=seed,
        flavour=flavour,
        lwg_config=config,
        vsync_config=VsyncConfig(heal_hardening=(placement == "optimizer")),
        keep_trace=False,
    )
    hub = ProbeHub(env=cluster.env)
    groups_a = [f"oa{i}" for i in range(n)]
    groups_b = [f"ob{i}" for i in range(n)]
    handles: Dict[Tuple[str, str], object] = {}
    probes: Dict[Tuple[str, str], ProbeListener] = {}

    def join(group: str, node: str) -> None:
        probe = ProbeListener(hub, node)
        probes[(group, node)] = probe
        handles[(group, node)] = cluster.services[node].join(group, probe)

    # Creators first (p0 for set A, p4 for set B — disjoint tails), then
    # the rest, staggered as in the Figure-2 harness.
    for index, group in enumerate(groups_a):
        cluster.env.scheduler.schedule(index * 150 * MS, lambda g=group: join(g, "p0"))
    for index, group in enumerate(groups_b):
        cluster.env.scheduler.schedule(index * 150 * MS, lambda g=group: join(g, "p4"))
    cluster.run_for(n * 150 * MS + SECOND)
    for index, group in enumerate(groups_a):
        for node in SET_A[1:]:
            cluster.env.scheduler.schedule(index * 40 * MS, lambda g=group, c=node: join(g, c))
    for index, group in enumerate(groups_b):
        for node in SET_B:
            if node == "p4":
                continue
            cluster.env.scheduler.schedule(index * 40 * MS, lambda g=group, c=node: join(g, c))
    cluster.run_for(n * 40 * MS)
    setup = OverlapSetup(
        cluster=cluster, n=n, groups_a=groups_a, groups_b=groups_b,
        handles=handles, probes=probes, hub=hub,
    )
    if settle_seconds is None:
        settle_seconds = 8.0 + 0.75 * n
    if not cluster.run_until(setup.converged, timeout_us=int(settle_seconds * SECOND)):
        raise RuntimeError(f"overlap(n={n}, {flavour}) failed to converge")
    # The optimizer defers moves until placement_settle_us after the
    # last view change, then drains per policy tick — give it the extra
    # window to consolidate the per-group bootstrap HWGs.  The paper
    # rules act immediately; their window stays exactly as before.
    cluster.run_for_seconds(2.0 if placement == "paper" else 14.0)
    return setup


def measure_overlap_throughput(
    setup: OverlapSetup,
    burst_per_group: int = 30,
    timeout_seconds: float = 60.0,
) -> float:
    """Saturating drain rate, as in Figure 2b (deliveries/second)."""
    cluster = setup.cluster
    start = cluster.env.now
    baseline = setup.hub.deliveries
    expected = burst_per_group * 4 * len(setup.all_groups)
    for group in setup.all_groups:
        handle = setup.handles[(group, setup.sender_of(group))]
        for seq in range(burst_per_group):
            handle.send(probe_payload(cluster.env, seq))
    cluster.run_until(
        lambda: setup.hub.deliveries - baseline >= expected,
        timeout_us=int(timeout_seconds * SECOND),
        step_us=20 * MS,
    )
    delivered = setup.hub.deliveries - baseline
    elapsed = cluster.env.now - start
    return delivered * 1_000_000 / max(1, elapsed)


def measure_overlap_recovery(setup: OverlapSetup, timeout_seconds: float = 60.0) -> int:
    """Crash p3 (a member of BOTH classes): post-detection reconfiguration
    time until every group at every survivor excludes it (microseconds).

    This is where configuration B separates the services: the overlap
    member sits in all 2n groups, so the no-service design runs 2n
    recovery protocols while the dynamic service runs two HWG flushes.
    """
    cluster = setup.cluster
    victim = "p3"
    prefix = "" if setup.cluster.flavour == "none" else "lwg:"
    expected = [
        (f"{prefix}{group}", node)
        for group in setup.all_groups
        for node in setup.members_of(group)
        if node != victim
    ]
    detection_at: List[int] = []

    def watch(peer, suspected):
        if suspected and peer == victim and not detection_at:
            detection_at.append(cluster.env.now)

    for node in cluster.process_ids:
        if node != victim:
            cluster.stack(node).fd.subscribe(watch)
    crash_at = cluster.env.now
    setup.hub.recovery.arm(crash_at, victim, expected)
    cluster.crash(victim)
    if not cluster.run_until(
        lambda: setup.hub.recovery.complete, timeout_us=int(timeout_seconds * SECOND)
    ):
        raise RuntimeError("overlap recovery incomplete")
    total = setup.hub.recovery.recovery_time_us()
    detection = (detection_at[0] - crash_at) if detection_at else 0
    assert total is not None
    return max(0, total - detection)


def measure_overlap_latency(setup: OverlapSetup, probes_per_group: int = 6) -> SummaryStats:
    """Mean delivery latency under light paced load (as in Figure 2a)."""
    cluster = setup.cluster
    gap = 20 * MS
    for round_no in range(probes_per_group):
        for index, group in enumerate(setup.all_groups):
            handle = setup.handles[(group, setup.sender_of(group))]
            delay = round_no * gap * len(setup.all_groups) + index * gap
            cluster.env.scheduler.schedule(
                delay, lambda h=handle, r=round_no: h.send(probe_payload(cluster.env, r))
            )
    cluster.run_for(probes_per_group * gap * len(setup.all_groups) + 2 * SECOND)
    stats = setup.hub.latency.summary()
    assert stats is not None
    return stats
