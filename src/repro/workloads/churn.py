"""Reusable randomized churn driver for soak testing.

Generates and applies a seeded random schedule of joins, leaves,
crashes, partitions and heals against a cluster, while tracking the
membership every group *should* converge to.  Used by the integration
soak tests and the churn benchmark; applications can use it to stress
their own listeners.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sim.engine import SECOND
from .cluster import Cluster

Action = Tuple[str, str, str]  # (kind, node, group) — group may be ""


@dataclass
class ChurnModel:
    """Weights and limits for the random schedule."""

    join_weight: float = 4.0
    leave_weight: float = 2.0
    crash_weight: float = 1.0
    recover_weight: float = 1.0
    partition_weight: float = 1.0
    heal_weight: float = 2.0
    #: Never crash below this many live processes.
    min_alive: int = 2
    #: Gap between actions, microseconds.
    step_us: int = 1_500_000


class ChurnDriver:
    """Applies a random-but-reproducible churn schedule to a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        groups: Sequence[str],
        seed: int = 0,
        model: Optional[ChurnModel] = None,
    ):
        self.cluster = cluster
        self.groups = list(groups)
        self.model = model or ChurnModel()
        self.rng = random.Random(seed)
        #: group -> the member set the system should converge to.
        self.expected: Dict[str, Set[str]] = {g: set() for g in self.groups}
        self.crashed: Set[str] = set()
        self.partitioned = False
        self.log: List[Action] = []

    # ------------------------------------------------------------------
    def seed_membership(self, per_group: int = 2) -> None:
        """Start every group with ``per_group`` members."""
        for index, group in enumerate(self.groups):
            for offset in range(per_group):
                node = self.cluster.process_ids[
                    (index + offset) % len(self.cluster.process_ids)
                ]
                self._join(node, group)
        self.cluster.run_for_seconds(8)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _join(self, node: str, group: str) -> None:
        if node in self.crashed or node in self.expected[group]:
            return
        self.cluster.services[node].join(group)
        self.expected[group].add(node)
        self.log.append(("join", node, group))

    def _leave(self, node: str, group: str) -> None:
        if node in self.crashed or node not in self.expected[group]:
            return
        self.cluster.services[node].leave(group)
        self.expected[group].discard(node)
        self.log.append(("leave", node, group))

    def _crash(self, node: str) -> None:
        alive = len(self.cluster.process_ids) - len(self.crashed)
        if node in self.crashed or alive <= self.model.min_alive:
            return
        self.cluster.crash(node)
        self.crashed.add(node)
        for members in self.expected.values():
            members.discard(node)
        self.log.append(("crash", node, ""))

    def _recover(self, node: str) -> None:
        if node not in self.crashed:
            return
        self.cluster.recover(node)
        self.crashed.discard(node)
        self.log.append(("recover", node, ""))
        # A recovered process has a clean slate; it re-joins nothing
        # until the schedule says so.

    def _partition(self) -> None:
        if self.partitioned:
            return
        alive = [n for n in self.cluster.process_ids if n not in self.crashed]
        if len(alive) < 2:
            return
        half = len(alive) // 2
        servers = list(self.cluster.name_server_ids)
        left_servers = servers[: max(1, len(servers) // 2)]
        right_servers = servers[max(1, len(servers) // 2):] or left_servers[:1]
        self.cluster.partition(
            alive[:half] + left_servers, alive[half:] + right_servers
        )
        self.partitioned = True
        self.log.append(("partition", "", ""))

    def _heal(self) -> None:
        if not self.partitioned:
            return
        self.cluster.heal()
        self.partitioned = False
        self.log.append(("heal", "", ""))

    # ------------------------------------------------------------------
    def run(self, steps: int) -> None:
        """Apply ``steps`` random actions, pausing between them."""
        model = self.model
        kinds = ["join", "leave", "crash", "recover", "partition", "heal"]
        weights = [
            model.join_weight, model.leave_weight, model.crash_weight,
            model.recover_weight, model.partition_weight, model.heal_weight,
        ]
        for _ in range(steps):
            kind = self.rng.choices(kinds, weights)[0]
            node = self.rng.choice(self.cluster.process_ids)
            group = self.rng.choice(self.groups)
            if kind == "join":
                self._join(node, group)
            elif kind == "leave":
                self._leave(node, group)
            elif kind == "crash":
                self._crash(node)
            elif kind == "recover":
                self._recover(node)
            elif kind == "partition":
                self._partition()
            elif kind == "heal":
                self._heal()
            self.cluster.run_for(model.step_us)

    def finish(self) -> None:
        """End in a fully healed network (required before quiesce checks)."""
        if self.partitioned:
            self._heal()

    # ------------------------------------------------------------------
    # Convergence checking
    # ------------------------------------------------------------------
    def quiesced(self) -> Tuple[bool, str]:
        """Is every group converged on the expected membership?"""
        for group, members in self.expected.items():
            if not members:
                continue
            views = []
            for node in sorted(members):
                local = self.cluster.services[node].table.local(f"lwg:{group}")
                if local is None or not local.is_member or local.view is None:
                    return False, f"{group}: {node} not a member"
                views.append((node, local.view, local.hwg))
            ids = {v.view_id for _, v, _ in views}
            if len(ids) != 1:
                return False, (
                    f"{group}: divergent views "
                    f"{[(n, str(v.view_id)) for n, v, _ in views]}"
                )
            if set(views[0][1].members) != members:
                return False, (
                    f"{group}: members {views[0][1].members} != {sorted(members)}"
                )
            if len({h for _, _, h in views}) != 1:
                return False, f"{group}: divergent hwg mappings"
        return True, "ok"

    def wait_for_quiesce(self, timeout_seconds: float = 90.0) -> Tuple[bool, str]:
        self.finish()
        self.cluster.run_until(
            lambda: self.quiesced()[0], timeout_us=int(timeout_seconds * SECOND)
        )
        return self.quiesced()
