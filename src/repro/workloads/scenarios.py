"""The paper's evaluation scenarios.

* :func:`build_figure2` — the Figure-2 configuration: "two sets of n
  user groups where each group within a set has identical membership of
  4 processes, and the two sets have disjoint membership", runnable
  under any of the three services (none / static / dynamic).
* :func:`measure_latency` / :func:`measure_throughput` /
  :func:`measure_recovery` — the three Figure-2 panels.
* :func:`build_partition_scenario` — the Figure-3/4 (Tables 3/4)
  reconciliation scenario: LWGs created in concurrent partitions with
  inconsistent mappings, then healed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import LwgConfig
from ..metrics.collectors import SummaryStats
from ..sim.engine import MS, SECOND
from ..vsync.stack import VsyncConfig
from .cluster import Cluster
from .traffic import PeriodicSender, ProbeHub, ProbeListener, probe_payload

#: Processes per user group in the Figure-2 configuration.
GROUP_SIZE = 4


@dataclass
class Figure2Setup:
    """A built, converged Figure-2 scenario ready for measurement."""

    cluster: Cluster
    flavour: str
    n: int
    groups_a: List[str]
    groups_b: List[str]
    #: (group, node) -> application handle
    handles: Dict[Tuple[str, str], object]
    #: (group, node) -> probe listener
    probes: Dict[Tuple[str, str], ProbeListener]
    hub: ProbeHub

    @property
    def all_groups(self) -> List[str]:
        return self.groups_a + self.groups_b

    def members_of(self, group: str) -> List[str]:
        ids = self.cluster.process_ids
        return ids[:GROUP_SIZE] if group in self.groups_a else ids[GROUP_SIZE:]

    def sender_of(self, group: str) -> str:
        return self.members_of(group)[0]

    def converged(self) -> bool:
        """Every handle is a member of a full (4-member) group view."""
        for (group, node), handle in self.handles.items():
            view = handle.view
            if view is None or len(view.members) != GROUP_SIZE:
                return False
        return True


def _scaled_lwg_config() -> LwgConfig:
    """Benchmark-friendly timers: policies every 2s instead of 60s."""
    config = LwgConfig()
    config.policy_period_us = 2 * SECOND
    config.shrink_grace_us = 1 * SECOND
    return config


def build_figure2(
    n: int,
    flavour: str,
    seed: int = 0,
    settle_seconds: Optional[float] = None,
    creator_stagger_us: int = 150 * MS,
    follower_stagger_us: int = 40 * MS,
    keep_trace: bool = False,
) -> Figure2Setup:
    """Build and converge the Figure-2 configuration.

    Group creators join first (staggered) so the optimistic mapping rule
    sees a stable pool; the remaining members follow.  The scenario is
    run until every group reaches its full 4-member view.
    """
    cluster = Cluster(
        num_processes=2 * GROUP_SIZE,
        seed=seed,
        flavour=flavour,
        lwg_config=_scaled_lwg_config(),
        keep_trace=keep_trace,
    )
    hub = ProbeHub(env=cluster.env)
    groups_a = [f"a{i}" for i in range(n)]
    groups_b = [f"b{i}" for i in range(n)]
    handles: Dict[Tuple[str, str], object] = {}
    probes: Dict[Tuple[str, str], ProbeListener] = {}

    def join(group: str, node: str) -> None:
        probe = ProbeListener(hub, node)
        probes[(group, node)] = probe
        handles[(group, node)] = cluster.services[node].join(group, probe)

    # Wave 1: creators (the first member of each set), staggered.
    for index, group in enumerate(groups_a):
        creator = cluster.process_ids[0]
        cluster.env.scheduler.schedule(
            index * creator_stagger_us, lambda g=group, c=creator: join(g, c)
        )
    for index, group in enumerate(groups_b):
        creator = cluster.process_ids[GROUP_SIZE]
        cluster.env.scheduler.schedule(
            index * creator_stagger_us, lambda g=group, c=creator: join(g, c)
        )
    cluster.run_for(n * creator_stagger_us + SECOND)
    # Wave 2: the remaining members of every group, lightly staggered per
    # group so large configurations don't storm the medium all at once.
    for index, group in enumerate(groups_a):
        for node in cluster.process_ids[1:GROUP_SIZE]:
            cluster.env.scheduler.schedule(
                index * follower_stagger_us, lambda g=group, c=node: join(g, c)
            )
    for index, group in enumerate(groups_b):
        for node in cluster.process_ids[GROUP_SIZE + 1:]:
            cluster.env.scheduler.schedule(
                index * follower_stagger_us, lambda g=group, c=node: join(g, c)
            )
    cluster.run_for(n * follower_stagger_us)
    setup = Figure2Setup(
        cluster=cluster,
        flavour=flavour,
        n=n,
        groups_a=groups_a,
        groups_b=groups_b,
        handles=handles,
        probes=probes,
        hub=hub,
    )
    if settle_seconds is None:
        settle_seconds = 6.0 + 0.75 * n
    converged = cluster.run_until(
        setup.converged, timeout_us=int(settle_seconds * SECOND)
    )
    if not converged:
        raise RuntimeError(
            f"figure2(n={n}, {flavour}) failed to converge within {settle_seconds}s"
        )
    # Let the naming/policy dust settle before measuring.
    cluster.run_for_seconds(1.0)
    return setup


# ----------------------------------------------------------------------
# Figure 2a: latency
# ----------------------------------------------------------------------
def measure_latency(
    setup: Figure2Setup,
    probes_per_group: int = 10,
    gap_us: int = 20 * MS,
) -> SummaryStats:
    """Mean send-to-delivery latency under light load.

    Each group's first member sends ``probes_per_group`` timestamped
    messages, paced so the medium does not saturate; the latency of
    every delivery at every member is collected.
    """
    cluster = setup.cluster
    for round_no in range(probes_per_group):
        for index, group in enumerate(setup.all_groups):
            sender = setup.sender_of(group)
            handle = setup.handles[(group, sender)]
            delay = round_no * gap_us * len(setup.all_groups) + index * gap_us
            cluster.env.scheduler.schedule(
                delay, lambda h=handle, s=round_no: h.send(probe_payload(cluster.env, s))
            )
    total = probes_per_group * gap_us * len(setup.all_groups) + 2 * SECOND
    cluster.run_for(total)
    stats = setup.hub.latency.summary()
    assert stats is not None, "no probe deliveries recorded"
    return stats


# ----------------------------------------------------------------------
# Figure 2b: throughput
# ----------------------------------------------------------------------
def measure_throughput(
    setup: Figure2Setup,
    burst_per_group: int = 50,
    timeout_seconds: float = 60.0,
) -> float:
    """Aggregate delivered messages/second under saturating load.

    Every group's sender offers its whole burst at once (far beyond the
    medium's capacity), and the clock stops when the last delivery of
    the last group lands — so the figure is the system's drain rate, not
    the offered rate.
    """
    cluster = setup.cluster
    start = cluster.env.now
    baseline = setup.hub.deliveries
    expected = burst_per_group * GROUP_SIZE * len(setup.all_groups)
    for group in setup.all_groups:
        sender = setup.sender_of(group)
        handle = setup.handles[(group, sender)]
        for seq in range(burst_per_group):
            handle.send(probe_payload(cluster.env, seq))
    drained = cluster.run_until(
        lambda: setup.hub.deliveries - baseline >= expected,
        timeout_us=int(timeout_seconds * SECOND),
        step_us=20 * MS,
    )
    delivered = setup.hub.deliveries - baseline
    elapsed = cluster.env.now - start
    if not drained and delivered == 0:
        raise RuntimeError(f"throughput(n={setup.n}, {setup.flavour}): nothing delivered")
    return delivered * 1_000_000 / max(1, elapsed)


# ----------------------------------------------------------------------
# Figure 2c: recovery time
# ----------------------------------------------------------------------
@dataclass
class RecoveryResult:
    """Breakdown of a crash-recovery measurement (microseconds).

    ``total_us`` is crash-to-last-reconfiguration; ``detection_us`` is
    the failure-detector share (common to every flavour — one shared
    detector per process); ``reconfig_us`` is the protocol work that
    differs between services: flushes and view installations for every
    affected group.
    """

    total_us: int
    detection_us: int

    @property
    def reconfig_us(self) -> int:
        return max(0, self.total_us - self.detection_us)


def measure_recovery(
    setup: Figure2Setup,
    victim_index: int = 1,
    timeout_seconds: float = 60.0,
    traffic_period_us: int = 60 * MS,
) -> RecoveryResult:
    """Crash one member of set A; time until every affected group has
    reconfigured at every survivor.

    Every group carries light background traffic while the crash is
    handled, as in the paper's testbed: recovery must flush the
    in-transit messages of every affected group, so its cost scales with
    how many independent recovery protocols must run — n per crash
    without the service, one per HWG with it.
    """
    cluster = setup.cluster
    victim = cluster.process_ids[victim_index]
    affected = [g for g in setup.all_groups if victim in setup.members_of(g)]
    expected = [
        (f"lwg:{group}" if setup.flavour != "none" else group, node)
        for group in affected
        for node in setup.members_of(group)
        if node != victim
    ]
    senders = []
    for group in setup.all_groups:
        sender = setup.sender_of(group)
        senders.append(
            PeriodicSender(
                cluster.env,
                cluster.stack(sender),
                setup.handles[(group, sender)],
                period_us=traffic_period_us,
            )
        )
    for sender in senders:
        sender.start()
    cluster.run_for_seconds(0.5)  # traffic flowing before the crash
    detection_at: List[int] = []

    def watch_suspicion(peer: str, suspected: bool) -> None:
        if suspected and peer == victim and not detection_at:
            detection_at.append(cluster.env.now)

    for node in cluster.process_ids:
        if node != victim:
            cluster.stack(node).fd.subscribe(watch_suspicion)
    crash_at = cluster.env.now
    setup.hub.recovery.arm(crash_at, victim, expected)
    cluster.crash(victim)
    done = cluster.run_until(
        lambda: setup.hub.recovery.complete, timeout_us=int(timeout_seconds * SECOND)
    )
    for sender in senders:
        sender.stop()
    if not done:
        raise RuntimeError(
            f"recovery(n={setup.n}, {setup.flavour}) incomplete after {timeout_seconds}s"
        )
    total = setup.hub.recovery.recovery_time_us()
    assert total is not None
    detection = (detection_at[0] - crash_at) if detection_at else 0
    return RecoveryResult(total_us=total, detection_us=detection)


# ----------------------------------------------------------------------
# Figures 3-4 / Tables 3-4: the partition-reconciliation scenario
# ----------------------------------------------------------------------
@dataclass
class PartitionScenario:
    """Two LWGs created with crossed mappings in concurrent partitions."""

    cluster: Cluster
    groups: List[str]
    handles: Dict[Tuple[str, str], object]
    probes: Dict[Tuple[str, str], ProbeListener]
    hub: ProbeHub
    side_a: List[str]
    side_b: List[str]

    def converged(self) -> bool:
        """One full view per LWG, everyone on the same HWG."""
        everyone = self.side_a + self.side_b
        for group in self.groups:
            lwg = f"lwg:{group}"
            view_ids = set()
            hwgs = set()
            for node in everyone:
                handle = self.handles[(group, node)]
                view = handle.view
                if view is None or len(view.members) != len(everyone):
                    return False
                view_ids.add(view.view_id)
                hwgs.add(handle.hwg)
            if len(view_ids) != 1 or len(hwgs) != 1:
                return False
        return True


def build_partition_scenario(
    num_groups: int = 2,
    side_size: int = 2,
    seed: int = 0,
    partition_seconds: float = 5.0,
) -> PartitionScenario:
    """Create ``num_groups`` LWGs while the network is split in two.

    Each side has its own name server, so each side establishes its own
    (mutually inconsistent) mappings — the Figure-3 starting state.
    """
    cluster = Cluster(
        num_processes=2 * side_size,
        seed=seed,
        flavour="dynamic",
        num_name_servers=2,
        lwg_config=_scaled_lwg_config(),
    )
    hub = ProbeHub(env=cluster.env)
    side_a = cluster.process_ids[:side_size]
    side_b = cluster.process_ids[side_size:]
    cluster.partition(side_a + ["ns0"], side_b + ["ns1"])
    groups = [chr(ord("a") + i) for i in range(num_groups)]
    handles: Dict[Tuple[str, str], object] = {}
    probes: Dict[Tuple[str, str], ProbeListener] = {}
    for group in groups:
        for node in side_a + side_b:
            probe = ProbeListener(hub, node)
            probes[(group, node)] = probe
            handles[(group, node)] = cluster.services[node].join(group, probe)
    cluster.run_for_seconds(partition_seconds)
    return PartitionScenario(
        cluster=cluster,
        groups=groups,
        handles=handles,
        probes=probes,
        hub=hub,
        side_a=side_a,
        side_b=side_b,
    )
