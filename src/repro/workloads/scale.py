"""Membership-layer scale harness: flat vs zoned at 64..1024 nodes.

The full LWG stack tops out around a few dozen simulated processes per
affordable bench second; the scalability question the zoned topology
answers — *what does failure detection cost at 1k nodes?* — lives one
layer down.  This harness builds populations of bare failure detectors
(the flat :class:`~repro.vsync.failure_detector.FailureDetector` or the
zoned :class:`~repro.vsync.failure_detector.GossipFailureDetector`
seeded exactly the way :class:`~repro.vsync.zones.ZoneAgent` seeds it)
and measures the membership substrate alone, in two modes:

* :func:`fd_census` — no network at all.  Sends are counted, not
  delivered, which prices the *per-period message volume* and the
  *tracked-peer state* at any ``n`` in milliseconds: the flat topology's
  O(n²) datagrams/period against zoned's O(n·log(n/z) + relay pairs).
* :func:`fd_dynamics` — the real simulated fabric.  Nodes tick on
  timers, a partition splits the population in half, heals, and the
  harness measures how long suspicions take to clear — the
  heal-convergence figure — plus delivered-message throughput.

Both modes are deterministic from their seed: gossip target selection
is rendezvous hashing (no RNG draws) and the dynamics mode draws all
jitter from the environment's stream-split registry.

Used by ``benchmarks/bench_scalability.py`` (the node-axis sweep) and
the ``membership.fd_scale`` suite workload gated in CI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from ..sim import MS, SECOND, SimEnv
from ..sim.network import LinkModel
from ..vsync.failure_detector import FailureDetector, GossipFailureDetector
from ..vsync.messages import LivenessDigest, ProbePing, ProbeRequest
from ..vsync.zones import ZoneDirectory, ZoneMap

HEARTBEAT_PERIOD_US = 100 * MS
FD_TIMEOUT_US = 350 * MS
PROBE_TIMEOUT_US = 150 * MS


def _node_ids(n: int) -> List[str]:
    return [f"p{i}" for i in range(n)]


def _build_flat(env, nodes, send_for):
    detectors = {}
    for node in nodes:
        fd = FailureDetector(
            env,
            node,
            send_multicast=send_for(node),
            heartbeat_period_us=HEARTBEAT_PERIOD_US,
            timeout_us=FD_TIMEOUT_US,
        )
        detectors[node] = fd
    peers = set(nodes)
    for node, fd in detectors.items():
        for peer in peers:
            fd.monitor(peer)
    return detectors, None


def _build_zoned(env, nodes, send_for, num_zones):
    directory = ZoneDirectory(ZoneMap(num_zones))
    detectors = {}
    for node in nodes:
        directory.register(node)
        detectors[node] = GossipFailureDetector(
            env,
            node,
            send_multicast=send_for(node),
            heartbeat_period_us=HEARTBEAT_PERIOD_US,
            timeout_us=FD_TIMEOUT_US,
            probe_timeout_us=PROBE_TIMEOUT_US,
        )
    for node, fd in detectors.items():
        zone = directory.zone_of(node)
        fd.set_substrate(set(directory.members(zone)) - {node})
        # Relay wiring, exactly as ZoneAgent._update_relay_links does it.
        extras: Set[str] = set()
        if node in directory.relays(zone):
            for other in directory.zones():
                if other != zone:
                    extras.update(directory.relays(other))
        fd.set_extras(extras)
    return detectors, directory


def fd_census(
    seed: int,
    n: int,
    topology: str,
    num_zones: int = 0,
    periods: int = 3,
) -> Dict[str, Any]:
    """Per-period FD message volume and tracked state, networkless.

    Every node runs ``periods`` heartbeat rounds against a counting send
    callback.  ``datagrams`` weights each multicast by its fan-out (the
    fabric schedules one delivery per destination), ``sends`` counts the
    multicast calls themselves.
    """
    env = SimEnv.create(seed=seed, keep_trace=False)
    nodes = _node_ids(n)
    counters = {"datagrams": 0, "sends": 0}

    def send_for(node):
        def send(peers, msg, size):
            counters["sends"] += 1
            counters["datagrams"] += len(peers)

        return send

    if topology == "zoned":
        detectors, _ = _build_zoned(env, nodes, send_for, num_zones or 4)
    else:
        detectors, _ = _build_flat(env, nodes, send_for)
    for _ in range(periods):
        for node in nodes:
            detectors[node].tick_heartbeat()
    if topology == "zoned":
        tracked = [fd.tracked_peer_count() for fd in detectors.values()]
    else:
        tracked = [len(fd.monitored_peers()) for fd in detectors.values()]
    return {
        "n": n,
        "topology": topology,
        "datagrams_per_period": counters["datagrams"] // periods,
        "sends_per_period": counters["sends"] // periods,
        "tracked_peers_max": max(tracked),
        "tracked_peers_avg": round(sum(tracked) / len(tracked), 1),
    }


class _Population:
    """Detectors wired through the real simulated fabric, on timers."""

    def __init__(self, seed: int, n: int, topology: str, num_zones: int):
        # A point-to-point link model: at hundreds of nodes the default
        # shared-medium serialization would swamp the measurement with
        # queueing artifacts that say nothing about the FD protocols.
        self.env = SimEnv.create(
            seed=seed, keep_trace=False, shared_medium=False,
            link=LinkModel(),
        )
        self.nodes = _node_ids(n)
        self.topology = topology

        def send_for(node):
            def send(peers, msg, size):
                self.env.network.multicast(node, peers, msg, size)

            return send

        if topology == "zoned":
            self.detectors, self.directory = _build_zoned(
                self.env, self.nodes, send_for, num_zones or 4
            )
        else:
            self.detectors, self.directory = _build_flat(
                self.env, self.nodes, send_for
            )
        for node in self.nodes:
            self.env.network.attach(node, self._receiver(node))
        # One staggered driver per node: ticking all n detectors from a
        # single event would synchronize every gossip round unrealistically.
        for index, node in enumerate(self.nodes):
            offset = (index * 7919) % HEARTBEAT_PERIOD_US
            self.env.sim.schedule(offset, self._ticker(node))

    def _ticker(self, node):
        def tick():
            fd = self.detectors[node]
            if self.env.network.is_alive(node):
                fd.tick_heartbeat()
                fd.tick_check()
            self.env.sim.schedule(HEARTBEAT_PERIOD_US, tick)

        return tick

    def _receiver(self, node):
        def deliver(src, payload, size):
            fd = self.detectors[node]
            if isinstance(payload, LivenessDigest):
                fd.on_digest(src, payload)
            elif isinstance(payload, ProbeRequest):
                fd.on_probe_request(src, payload)
            elif isinstance(payload, ProbePing):
                fd.on_probe_ping(src, payload)
            else:
                fd.on_heartbeat(src)

        return deliver

    def run_for(self, duration_us: int) -> None:
        self.env.sim.run_until(self.env.sim.now + duration_us)

    def suspicion_pairs(self) -> int:
        """Live-suspects-live pairs (the count heal must drive to zero)."""
        alive = {n for n in self.nodes if self.env.network.is_alive(n)}
        return sum(
            len(self.detectors[node].suspected_peers() & alive)
            for node in alive
        )


def fd_dynamics(
    seed: int,
    n: int,
    topology: str,
    num_zones: int = 0,
    measure_heal: bool = True,
    heal_timeout_us: int = 30 * SECOND,
) -> Dict[str, Any]:
    """Partition/heal dynamics on the real fabric at population ``n``.

    Returns delivered-message and FD-round counts for throughput, and —
    when ``measure_heal`` — the sim time from the heal until no live
    node suspects another live node (the heal-convergence figure; the
    flat topology at n=1024 is deliberately priced by the caller as
    census-only, since its O(n²) fabric load is the wall this PR moves).
    """
    population = _Population(seed, n, topology, num_zones)
    env = population.env
    population.run_for(2 * SECOND)  # settle: everyone seen everyone
    baseline_suspicions = population.suspicion_pairs()
    half = n // 2
    heal_convergence_us = -1
    if measure_heal:
        env.network.set_partitions(
            [population.nodes[:half], population.nodes[half:]]
        )
        population.run_for(2 * SECOND)  # long past timeout: cut detected
        env.network.heal()
        healed_at = env.sim.now
        deadline = healed_at + heal_timeout_us
        while env.sim.now < deadline:
            if population.suspicion_pairs() == 0:
                heal_convergence_us = env.sim.now - healed_at
                break
            population.run_for(50 * MS)
    return {
        "n": n,
        "topology": topology,
        "messages_delivered": env.network.messages_delivered,
        "messages_sent": env.network.messages_sent,
        "sim_time_us": env.sim.now,
        "baseline_suspicions": baseline_suspicions,
        "heal_convergence_us": heal_convergence_us,
    }
