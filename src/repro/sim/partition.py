"""Scripted partition schedules.

The paper distinguishes *real* partitions (router/link crashes) from
*virtual* partitions (overload-induced timeouts) that "tend to disappear
and heal faster".  Both are expressed here as timed reconfigurations of
the :class:`~repro.sim.network.Network` partition blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from .engine import Simulation
from .network import Network, NodeId


@dataclass(frozen=True)
class PartitionEvent:
    """One scheduled change to the network's partition blocks.

    ``blocks`` is the full block list to install; an empty list means
    *heal* (everyone back in one block).
    """

    time: int
    blocks: Sequence[Sequence[NodeId]] = field(default_factory=tuple)

    @property
    def is_heal(self) -> bool:
        return len(self.blocks) <= 1


class PartitionSchedule:
    """A timed script of partition and heal events.

    Example::

        schedule = PartitionSchedule()
        schedule.split_at(2_000_000, [["p0", "p1"], ["p2", "p3"]])
        schedule.heal_at(5_000_000)
        schedule.apply(sim, network)
    """

    def __init__(self) -> None:
        self.events: List[PartitionEvent] = []

    def split_at(self, time: int, blocks: Sequence[Iterable[NodeId]]) -> "PartitionSchedule":
        """Install the given partition blocks at ``time``."""
        self.events.append(PartitionEvent(time, tuple(tuple(b) for b in blocks)))
        return self

    def heal_at(self, time: int) -> "PartitionSchedule":
        """Merge all blocks at ``time``."""
        self.events.append(PartitionEvent(time, tuple()))
        return self

    def virtual_partition(
        self, start: int, duration: int, blocks: Sequence[Iterable[NodeId]]
    ) -> "PartitionSchedule":
        """A short-lived partition that heals after ``duration`` microseconds."""
        self.split_at(start, blocks)
        self.heal_at(start + duration)
        return self

    def apply(self, sim: Simulation, network: Network) -> None:
        """Schedule every event of this script on the simulation."""
        for event in sorted(self.events, key=lambda e: e.time):
            if event.is_heal:
                sim.schedule_at(event.time, network.heal)
            else:
                blocks = event.blocks
                sim.schedule_at(
                    event.time, lambda b=blocks: network.set_partitions(b)
                )

    def __len__(self) -> int:
        return len(self.events)
