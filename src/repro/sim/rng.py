"""Compatibility shim: the RNG registry moved to :mod:`repro.runtime.rng`.

The registry is backend-agnostic (the asyncio backend seeds its jitter
streams the same way), so it lives in the runtime layer now.  Importing
it from here keeps working.
"""

from __future__ import annotations

from ..runtime.rng import RngRegistry, _derive_seed

__all__ = ["RngRegistry", "_derive_seed"]
