"""Structured event tracing for simulations.

Protocol layers emit ``(time, category, event, fields)`` records through a
shared :class:`Tracer`.  Tests and benchmarks subscribe to categories to
observe protocol behaviour (view installations, flushes, naming-service
reconciliations) without reaching into private state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: int
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:>12}us] {self.category}.{self.event} {detail}".rstrip()


TraceListener = Callable[[TraceRecord], None]


class Tracer:
    """Collects trace records and fans them out to listeners.

    Recording to the in-memory list can be disabled for long benchmark
    runs (listeners still fire) via ``keep_records=False``.
    """

    def __init__(self, clock: Callable[[], int], keep_records: bool = True):
        self._clock = clock
        self._keep = keep_records
        self.records: List[TraceRecord] = []
        self._listeners: List[TraceListener] = []

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record an event in ``category`` with arbitrary keyword fields."""
        if not self._keep and not self._listeners:
            return  # nobody is watching: skip record construction entirely
        record = TraceRecord(self._clock(), category, event, fields)
        if self._keep:
            self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: TraceListener) -> None:
        """Register a callback invoked for every emitted record."""
        self._listeners.append(listener)

    def select(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> List[TraceRecord]:
        """Return recorded events filtered by category and/or event name."""
        out = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            out.append(record)
        return out

    def clear(self) -> None:
        """Drop all recorded events (listeners are kept)."""
        self.records.clear()

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump of the trace, optionally restricted by category."""
        wanted = set(categories) if categories is not None else None
        lines = [
            str(record)
            for record in self.records
            if wanted is None or record.category in wanted
        ]
        return "\n".join(lines)


class NullTracer(Tracer):
    """A tracer that drops everything — for hot benchmark loops."""

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0, keep_records=False)

    def emit(self, category: str, event: str, **fields: Any) -> None:  # noqa: D102
        pass
