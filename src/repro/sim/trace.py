"""Compatibility shim: the tracer moved to :mod:`repro.runtime.trace`.

Tracing is backend-agnostic (asyncio-backend runs capture the same
record stream, stamped with wall-clock microseconds), so it lives in the
runtime layer now.  Importing it from here keeps working.
"""

from __future__ import annotations

from ..runtime.trace import NullTracer, TraceListener, TraceRecord, Tracer

__all__ = ["NullTracer", "TraceListener", "TraceRecord", "Tracer"]
