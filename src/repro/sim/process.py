"""Simulated processes (actors) and their environment bundle.

A :class:`Process` owns a node on the network, receives messages through
``on_message``, and manages timers that are automatically cancelled when
the process crashes.  Protocol layers (failure detector, HWG endpoint,
LWG layer, name server) are all built as processes or as components
hosted by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional

from .engine import EventHandle, Simulation
from .failure import FailureInjector
from .network import Network, NodeId
from .rng import RngRegistry
from .trace import Tracer


@dataclass
class SimEnv:
    """Everything a process needs to participate in a simulation."""

    sim: Simulation
    network: Network
    rng: RngRegistry
    tracer: Tracer
    failures: FailureInjector

    @classmethod
    def create(
        cls,
        seed: int = 0,
        link=None,
        shared_medium: bool = True,
        keep_trace: bool = True,
    ) -> "SimEnv":
        """Build a fresh simulation environment from a root seed."""
        sim = Simulation()
        rng = RngRegistry(seed)
        tracer = Tracer(clock=lambda: sim.now, keep_records=keep_trace)
        network = Network(sim, rng, tracer=tracer, link=link, shared_medium=shared_medium)
        failures = FailureInjector(sim, network)
        return cls(sim=sim, network=network, rng=rng, tracer=tracer, failures=failures)

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self.sim.now


class Process:
    """Base class for a simulated process bound to one network node."""

    def __init__(self, env: SimEnv, node: NodeId):
        self.env = env
        self.node = node
        self.crashed = False
        self._timers: List[EventHandle] = []
        #: (period, callback, jitter_stream) specs, re-armed on recovery.
        self._periodic_specs: List[tuple] = []
        env.network.attach(node, self._network_deliver)
        env.failures.on_transition(node, self._on_transition)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: NodeId, msg: Any, size: int = 256) -> bool:
        """Unicast ``msg`` to ``dst``.  No-op while crashed."""
        if self.crashed:
            return False
        return self.env.network.send(self.node, dst, msg, size)

    def multicast(self, dsts: Iterable[NodeId], msg: Any, size: int = 256) -> int:
        """Multicast ``msg`` to every node in ``dsts`` (one transmission)."""
        if self.crashed:
            return 0
        return self.env.network.multicast(self.node, dsts, msg, size)

    def _network_deliver(self, src: NodeId, payload: Any, size: int) -> None:
        if self.crashed:
            return
        self.on_message(src, payload, size)

    def on_message(self, src: NodeId, msg: Any, size: int) -> None:
        """Handle an incoming message.  Subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay`` us unless the process crashes first."""
        handle = self.env.sim.schedule(delay, self._guard(callback))
        self._timers.append(handle)
        self._prune_timers()
        return handle

    def set_periodic(
        self, period: int, callback: Callable[[], None], jitter_stream: str = ""
    ) -> None:
        """Run ``callback`` every ``period`` us until crash.

        If ``jitter_stream`` names an RNG stream, each period is jittered
        by up to 10% to avoid global phase-locking of periodic tasks.
        Periodic tasks are re-armed automatically when the process
        recovers from a crash.
        """
        self._periodic_specs.append((period, callback, jitter_stream))
        self._start_periodic(period, callback, jitter_stream)

    def _start_periodic(
        self, period: int, callback: Callable[[], None], jitter_stream: str = ""
    ) -> None:
        rng = self.env.rng.stream(jitter_stream) if jitter_stream else None

        def tick() -> None:
            callback()
            delay = period
            if rng is not None:
                delay += rng.randint(0, max(1, period // 10))
            handle = self.env.sim.schedule(delay, self._guard(tick))
            self._timers.append(handle)

        first = period if rng is None else period + rng.randint(0, max(1, period // 10))
        self._timers.append(self.env.sim.schedule(first, self._guard(tick)))

    def _guard(self, callback: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            if not self.crashed:
                callback()

        return run

    def _prune_timers(self) -> None:
        if len(self._timers) > 256:
            self._timers = [t for t in self._timers if t.pending]

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def _on_transition(self, crashed: bool) -> None:
        if crashed and not self.crashed:
            self.crashed = True
            for timer in self._timers:
                timer.cancel()
            self._timers.clear()
            self.on_crash()
        elif not crashed and self.crashed:
            self.crashed = False
            for period, callback, jitter_stream in self._periodic_specs:
                self._start_periodic(period, callback, jitter_stream)
            self.on_recover()

    def on_crash(self) -> None:
        """Hook invoked when this process fail-stops.  Subclasses may override."""

    def on_recover(self) -> None:
        """Hook invoked when this process recovers.  Subclasses may override."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}(node={self.node}, {state})"
