"""The discrete-event runtime bundle and the backend-agnostic process.

:class:`SimRuntime` is the deterministic implementation of the
:class:`~repro.runtime.interfaces.Runtime` protocol: the
:class:`~repro.sim.engine.Simulation` serves as both clock and
scheduler, the :class:`~repro.sim.network.Network` as the fabric, and
the :class:`~repro.sim.failure.FailureInjector` as the failure feed.

:class:`Process` is the base class for every protocol actor (failure
detector host, HWG stack, name server).  It touches its environment
*only* through the runtime protocols — messaging via ``env.fabric``,
timers via ``env.scheduler``, crash transitions via ``env.failures`` —
so the same process code runs unmodified on the real-time asyncio
backend (:mod:`repro.runtime.asyncio_backend`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..runtime.interfaces import Addressing, NodeId, Runtime, TimerHandle
from ..runtime.rng import RngRegistry
from ..runtime.trace import Tracer
from .engine import Simulation
from .failure import FailureInjector
from .network import LinkModel, Network


@dataclass
class SimRuntime:
    """Everything a process needs to run on the discrete-event backend."""

    sim: Simulation
    network: Network
    rng: RngRegistry
    tracer: Tracer
    failures: FailureInjector

    @classmethod
    def create(
        cls,
        seed: int = 0,
        link: Optional[LinkModel] = None,
        shared_medium: bool = True,
        keep_trace: bool = True,
    ) -> "SimRuntime":
        """Build a fresh simulation environment from a root seed."""
        sim = Simulation()
        rng = RngRegistry(seed)
        tracer = Tracer(clock=lambda: sim.now, keep_records=keep_trace)
        network = Network(sim, rng, tracer=tracer, link=link, shared_medium=shared_medium)
        failures = FailureInjector(sim, network)
        return cls(sim=sim, network=network, rng=rng, tracer=tracer, failures=failures)

    # ------------------------------------------------------------------
    # Runtime protocol views
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Simulation:
        """The simulation is its own clock."""
        return self.sim

    @property
    def scheduler(self) -> Simulation:
        """The simulation is its own scheduler."""
        return self.sim

    @property
    def fabric(self) -> Network:
        """The simulated network is the message fabric."""
        return self.network

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self.sim.now

    def run_for(self, duration_us: int) -> None:
        """Execute every event in the next ``duration_us`` microseconds."""
        self.sim.run_until(self.sim.now + duration_us)

    def group_addressing(self) -> Addressing:
        """A shared in-memory subscriber registry (IP-multicast analogue)."""
        from ..vsync.locator import GroupAddressing

        return GroupAddressing()


#: Backward-compatible name: the environment bundle predates the
#: backend-agnostic runtime layer.
SimEnv = SimRuntime


class Process:
    """Base class for a protocol process bound to one fabric node."""

    def __init__(self, env: Runtime, node: NodeId):
        self.env = env
        self.node = node
        self.crashed = False
        self._timers: List[TimerHandle] = []
        #: (period, callback, jitter_stream) specs, re-armed on recovery.
        self._periodic_specs: List[Tuple[int, Callable[[], None], str]] = []
        env.fabric.attach(node, self._network_deliver)
        env.failures.on_transition(node, self._on_transition)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: NodeId, msg: Any, size: int = 256) -> bool:
        """Unicast ``msg`` to ``dst``.  No-op while crashed."""
        if self.crashed:
            return False
        return self.env.fabric.send(self.node, dst, msg, size)

    def multicast(self, dsts: Iterable[NodeId], msg: Any, size: int = 256) -> int:
        """Multicast ``msg`` to every node in ``dsts`` (one transmission)."""
        if self.crashed:
            return 0
        return self.env.fabric.multicast(self.node, dsts, msg, size)

    def _network_deliver(self, src: NodeId, payload: Any, size: int) -> None:
        if self.crashed:
            return
        self.on_message(src, payload, size)

    def on_message(self, src: NodeId, msg: Any, size: int) -> None:
        """Handle an incoming message.  Subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: int, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` us unless the process crashes first."""
        handle = self.env.scheduler.schedule(delay, self._guard(callback))
        self._timers.append(handle)
        self._prune_timers()
        return handle

    def set_periodic(
        self, period: int, callback: Callable[[], None], jitter_stream: str = ""
    ) -> None:
        """Run ``callback`` every ``period`` us until crash.

        If ``jitter_stream`` names an RNG stream, each period is jittered
        by up to 10% to avoid global phase-locking of periodic tasks.
        Periodic tasks are re-armed automatically when the process
        recovers from a crash.
        """
        self._periodic_specs.append((period, callback, jitter_stream))
        self._start_periodic(period, callback, jitter_stream)

    def _start_periodic(
        self, period: int, callback: Callable[[], None], jitter_stream: str = ""
    ) -> None:
        rng = self.env.rng.stream(jitter_stream) if jitter_stream else None

        def tick() -> None:
            callback()
            delay = period
            if rng is not None:
                delay += rng.randint(0, max(1, period // 10))
            handle = self.env.scheduler.schedule(delay, self._guard(tick))
            self._timers.append(handle)

        first = period if rng is None else period + rng.randint(0, max(1, period // 10))
        self._timers.append(self.env.scheduler.schedule(first, self._guard(tick)))

    def _guard(self, callback: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            if not self.crashed:
                callback()

        return run

    def _prune_timers(self) -> None:
        if len(self._timers) > 256:
            self._timers = [t for t in self._timers if t.pending]

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def _on_transition(self, crashed: bool) -> None:
        if crashed and not self.crashed:
            self.crashed = True
            for timer in self._timers:
                timer.cancel()
            self._timers.clear()
            self.on_crash()
        elif not crashed and self.crashed:
            self.crashed = False
            for period, callback, jitter_stream in self._periodic_specs:
                self._start_periodic(period, callback, jitter_stream)
            self.on_recover()

    def on_crash(self) -> None:
        """Hook invoked when this process fail-stops.  Subclasses may override."""

    def on_recover(self) -> None:
        """Hook invoked when this process recovers.  Subclasses may override."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}(node={self.node}, {state})"
