"""Reliable unicast transport over the lossy network.

Provides per-peer FIFO reliable delivery using sliding-window
retransmission with cumulative acknowledgements.  Protocol control
traffic (membership rounds, naming-service RPC) rides on this; bulk data
uses raw multicast with protocol-level gap repair instead.

Messages to unreachable peers are retransmitted until ``max_retries``
and then silently discarded — reachability tracking is the failure
detector's job, not the transport's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..runtime.interfaces import NodeId, Runtime


@dataclass(frozen=True)
class _Segment:
    """Wire envelope for reliable transport payloads.

    ``floor`` is the smallest sequence number the sender still retains:
    when the sender gives up on a segment (peer unreachable beyond
    ``max_retries``), later segments carry a raised floor so the receiver
    skips the abandoned gap instead of waiting forever.  Without this, a
    single drop during a partition would permanently wedge the channel —
    exactly what must NOT happen to the post-heal merge traffic.
    """

    kind: str  # "data" | "ack"
    seq: int
    payload: Any = None
    size: int = 0
    floor: int = 0
    incarnation: int = 0


@dataclass
class _PeerState:
    """Sliding-window sender + receiver state for one remote peer."""

    next_send_seq: int = 0
    acked_up_to: int = -1  # highest cumulatively acked seq
    unacked: Dict[int, Tuple[Any, int, int]] = field(default_factory=dict)
    # receiver side
    delivered_up_to: int = -1
    out_of_order: Dict[int, Tuple[Any, int]] = field(default_factory=dict)
    peer_incarnation: int = 0


class ReliableTransport:
    """FIFO reliable unicast channels from one node to every peer.

    The owner process must route incoming :class:`_Segment` payloads to
    :meth:`on_segment`; deliveries surface through ``deliver(src,
    payload, size)``.
    """

    ACK_SIZE = 32

    def __init__(
        self,
        env: Runtime,
        node: NodeId,
        deliver: Callable[[NodeId, Any, int], None],
        retransmit_timeout_us: int = 20_000,
        max_retries: int = 10,
        window: int = 64,
    ):
        self.env = env
        self.node = node
        self.deliver = deliver
        self.retransmit_timeout_us = retransmit_timeout_us
        self.max_retries = max_retries
        self.window = window
        self._peers: Dict[NodeId, _PeerState] = {}
        self._queued: Dict[NodeId, List[Tuple[Any, int]]] = {}
        self.retransmissions = 0
        self.gave_up = 0
        self._stopped = False
        #: Bumped on restart so peers reset their receive state for us.
        self.incarnation = 0

    def _peer(self, peer: NodeId) -> _PeerState:
        if peer not in self._peers:
            self._peers[peer] = _PeerState()
        return self._peers[peer]

    def stop(self) -> None:
        """Stop all retransmission activity (owner crashed)."""
        self._stopped = True

    def restart(self) -> None:
        """Clear all channel state after a recovery (fresh incarnation)."""
        self._peers.clear()
        self._queued.clear()
        self._stopped = False
        self.incarnation += 1

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: NodeId, payload: Any, size: int = 256) -> None:
        """Queue ``payload`` for FIFO reliable delivery to ``dst``."""
        if self._stopped:
            return
        state = self._peer(dst)
        in_flight = state.next_send_seq - state.acked_up_to - 1
        if in_flight >= self.window:
            self._queued.setdefault(dst, []).append((payload, size))
            return
        self._transmit(dst, payload, size)

    def _sender_floor(self, state: _PeerState) -> int:
        return min(state.unacked) if state.unacked else state.next_send_seq

    def _transmit(self, dst: NodeId, payload: Any, size: int) -> None:
        state = self._peer(dst)
        seq = state.next_send_seq
        state.next_send_seq += 1
        state.unacked[seq] = (payload, size, 0)
        segment = _Segment(
            "data", seq, payload, size, self._sender_floor(state), self.incarnation
        )
        self.env.fabric.send(self.node, dst, segment, size)
        self._arm_retransmit(dst, seq)

    #: Exponential-backoff cap for retransmissions, microseconds.
    MAX_BACKOFF_US = 1_000_000

    def _backoff(self, attempts: int) -> int:
        """Retransmission delay for the given attempt count.

        Exponential backoff is essential on a shared medium: a fixed
        timeout shorter than the congestion-induced ACK delay turns every
        burst into a retransmission storm that further congests the
        medium (measured: thousands of spurious retransmissions and even
        give-ups with zero real loss).
        """
        return min(self.retransmit_timeout_us << attempts, self.MAX_BACKOFF_US)

    def _arm_retransmit(self, dst: NodeId, seq: int) -> None:
        def retry() -> None:
            if self._stopped:
                return
            state = self._peer(dst)
            entry = state.unacked.get(seq)
            if entry is None:
                return  # acked meanwhile
            payload, size, attempts = entry
            if attempts >= self.max_retries:
                del state.unacked[seq]
                self.gave_up += 1
                self._drain_queue(dst)
                return
            state.unacked[seq] = (payload, size, attempts + 1)
            self.retransmissions += 1
            segment = _Segment(
                "data", seq, payload, size, self._sender_floor(state), self.incarnation
            )
            self.env.fabric.send(self.node, dst, segment, size)
            self.env.scheduler.schedule(self._backoff(attempts + 1), retry)

        self.env.scheduler.schedule(self._backoff(0), retry)

    def _drain_queue(self, dst: NodeId) -> None:
        state = self._peer(dst)
        queued = self._queued.get(dst, [])
        while queued and (state.next_send_seq - state.acked_up_to - 1) < self.window:
            payload, size = queued.pop(0)
            self._transmit(dst, payload, size)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_segment(self, src: NodeId, segment: _Segment) -> None:
        """Process an incoming transport segment from ``src``."""
        if self._stopped:
            return
        if segment.kind == "ack":
            if segment.incarnation == self.incarnation:
                self._on_ack(src, segment.seq)
            return
        state = self._peer(src)
        if segment.incarnation > state.peer_incarnation:
            # The peer restarted: its numbering begins afresh.
            state.peer_incarnation = segment.incarnation
            state.delivered_up_to = -1
            state.out_of_order.clear()
        elif segment.incarnation < state.peer_incarnation:
            return  # stale segment from a previous incarnation
        if segment.floor - 1 > state.delivered_up_to:
            # The sender abandoned everything below its floor: skip the gap.
            state.delivered_up_to = segment.floor - 1
            for seq in [s for s in state.out_of_order if s <= state.delivered_up_to]:
                del state.out_of_order[seq]
        if segment.seq <= state.delivered_up_to:
            # Duplicate; re-ack so the sender can advance.
            self._send_ack(src, state.delivered_up_to)
            return
        state.out_of_order[segment.seq] = (segment.payload, segment.size)
        while state.delivered_up_to + 1 in state.out_of_order:
            seq = state.delivered_up_to + 1
            payload, size = state.out_of_order.pop(seq)
            state.delivered_up_to = seq
            self.deliver(src, payload, size)
        self._send_ack(src, state.delivered_up_to)

    def _send_ack(self, dst: NodeId, up_to: int) -> None:
        # The ack echoes the *peer's* incarnation so a restarted sender
        # never credits acknowledgements meant for its previous life.
        state = self._peer(dst)
        ack = _Segment("ack", up_to, incarnation=state.peer_incarnation)
        self.env.fabric.send(self.node, dst, ack, self.ACK_SIZE)

    def _on_ack(self, src: NodeId, up_to: int) -> None:
        state = self._peer(src)
        if up_to > state.acked_up_to:
            state.acked_up_to = up_to
            for seq in [s for s in state.unacked if s <= up_to]:
                del state.unacked[seq]
            self._drain_queue(src)

    @staticmethod
    def is_segment(payload: Any) -> bool:
        """True if a raw network payload belongs to the reliable transport."""
        return isinstance(payload, _Segment)
