"""Deterministic discrete-event simulation engine.

Time is measured in integer microseconds.  Events scheduled at the same
instant fire in insertion order, which — together with the seeded RNG in
:mod:`repro.sim.rng` — makes every run exactly reproducible from its seed.

The engine is intentionally minimal: a priority queue of ``(time, seq,
callback)`` entries plus cancellation handles.  Everything above it
(network, processes, protocol stacks) is built from ``schedule`` calls.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

#: One millisecond expressed in the engine's integer-microsecond time base.
MS = 1_000
#: One second expressed in the engine's integer-microsecond time base.
SECOND = 1_000_000


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class EventHandle:
    """Cancellation handle for a scheduled event.

    Cancellation is lazy: the entry stays in the heap but is skipped when
    popped.  ``fired`` distinguishes "already executed" from "cancelled".
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True
        self.callback = None

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class Simulation:
    """A single-threaded discrete-event simulation.

    Usage::

        sim = Simulation()
        sim.schedule(10 * MS, lambda: print("at 10ms"))
        sim.run_until(1 * SECOND)
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[EventHandle] = []
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past")
        return self.schedule_at(self._now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}us, now is t={self._now}us"
            )
        handle = EventHandle(int(time), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def _pop_runnable(self) -> Optional[EventHandle]:
        while self._queue:
            handle = heapq.heappop(self._queue)
            if not handle.cancelled:
                return handle
        return None

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns False when the queue is empty.
        """
        handle = self._pop_runnable()
        if handle is None:
            return False
        self._now = handle.time
        handle.fired = True
        callback, handle.callback = handle.callback, None
        assert callback is not None
        callback()
        return True

    def run_until(self, time: int) -> None:
        """Run every event with timestamp ``<= time``; advance clock to ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to t={time}us")
        while self._queue:
            head = self._peek()
            if head is None or head.time > time:
                break
            self.step()
        self._now = max(self._now, int(time))

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns the number of events run.

        ``max_events`` is a runaway-protocol backstop; exceeding it raises.
        """
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway protocol?")
        return count

    def _peek(self) -> Optional[EventHandle]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for h in self._queue if not h.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulation(now={self._now}us, pending={self.pending_events})"
