"""Deterministic discrete-event simulation engine.

Time is measured in integer microseconds.  Events scheduled at the same
instant fire in insertion order, which — together with the seeded RNG in
:mod:`repro.sim.rng` — makes every run exactly reproducible from its seed.

The engine is intentionally minimal: a priority queue of ``(time, seq,
handle)`` entries plus cancellation handles.  Everything above it
(network, processes, protocol stacks) is built from ``schedule`` calls.

Heap entries are plain tuples so every sift comparison runs in C —
pushing :class:`EventHandle` objects directly would invoke a Python
``__lt__`` per comparison, which dominated the event loop's profile.
``(time, seq)`` is unique per event, so comparisons never reach the
handle in the third slot.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

# Canonical time-base constants live in the backend-agnostic runtime
# layer; re-exported here because the time base predates that layer.
from ..runtime.interfaces import MS, SECOND

__all__ = ["MS", "SECOND", "EventHandle", "Simulation", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class EventHandle:
    """Cancellation handle for a scheduled event.

    Cancellation is lazy: the entry stays in the heap but is skipped when
    popped.  ``fired`` distinguishes "already executed" from "cancelled".
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        sim: "Optional[Simulation]" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.cancelled and not self.fired and self._sim is not None:
            self._sim._live -= 1
        self.cancelled = True
        self.callback = None

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


# Bound once: the run loops construct one handle per event, and the
# ``__init__`` call frame plus per-call class attribute lookups showed up
# prominently in event-loop profiles.
_new_handle = EventHandle.__new__


class Simulation:
    """A single-threaded discrete-event simulation.

    Usage::

        sim = Simulation()
        sim.schedule(10 * MS, lambda: print("at 10ms"))
        sim.run_until(1 * SECOND)
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, EventHandle]] = []
        self._running = False
        # Count of scheduled, not-yet-cancelled, not-yet-fired events,
        # maintained incrementally so ``pending_events`` is O(1) instead
        # of an O(n) heap scan (it sits on the hot path of run loops that
        # poll for quiescence).
        self._live = 0

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past")
        if type(delay) is not int:
            delay = int(delay)
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        # Handle construction is inlined (no ``__init__`` call): this is
        # the single hottest allocation in the simulator.
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.cancelled = False
        handle.fired = False
        handle._sim = self
        _heappush(self._queue, (time, seq, handle))
        return handle

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}us, now is t={self._now}us"
            )
        if type(time) is not int:
            time = int(time)
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.cancelled = False
        handle.fired = False
        handle._sim = self
        _heappush(self._queue, (time, seq, handle))
        return handle

    def _pop_runnable(self) -> Optional[EventHandle]:
        queue = self._queue
        while queue:
            handle = heapq.heappop(queue)[2]
            if not handle.cancelled:
                return handle
        return None

    def _fire(self, handle: EventHandle) -> None:
        self._now = handle.time
        handle.fired = True
        self._live -= 1
        callback, handle.callback = handle.callback, None
        assert callback is not None
        callback()

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns False when the queue is empty.
        """
        handle = self._pop_runnable()
        if handle is None:
            return False
        self._fire(handle)
        return True

    def run_until(self, time: int) -> None:
        """Run every event with timestamp ``<= time``; advance clock to ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to t={time}us")
        # Hot loop: fire events inline (no ``_peek``/``_fire`` calls), one
        # heap pop per event.  ``callback is None`` doubles as the
        # cancellation test — fired entries never sit in the heap, so a
        # None callback can only mean ``cancel()`` ran.  The one event
        # popped past the horizon is pushed back (once per call, not per
        # event).
        queue = self._queue
        heappop = _heappop
        while queue:
            head = heappop(queue)
            handle = head[2]
            callback = handle.callback
            if callback is None:  # cancelled
                continue
            head_time = head[0]
            if head_time > time:
                _heappush(queue, head)
                break
            self._now = head_time
            handle.fired = True
            self._live -= 1
            handle.callback = None
            callback()
        self._now = max(self._now, int(time))

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns the number of events run.

        ``max_events`` is a runaway-protocol backstop; exceeding it raises.
        """
        queue = self._queue
        heappop = _heappop
        count = 0
        while queue:
            handle = heappop(queue)[2]
            callback = handle.callback
            if callback is None:  # cancelled (see run_until)
                continue
            count += 1
            if count > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway protocol?")
            self._now = handle.time
            handle.fired = True
            self._live -= 1
            handle.callback = None
            callback()
        return count

    def _peek(self) -> Optional[EventHandle]:
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        return queue[0][2] if queue else None

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events (O(1))."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulation(now={self._now}us, pending={self.pending_events})"
