"""Crash and recovery injection.

Crashes are *fail-stop*: a crashed node neither sends nor receives, and
messages in flight to it are dropped.  Recovery brings the node back with
whatever volatile protocol state its process chooses to rebuild (the
process is notified through its ``on_crash`` / ``on_recover`` hooks, see
:mod:`repro.sim.process`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .engine import Simulation
from .network import Network, NodeId


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled crash or recovery."""

    time: int
    node: NodeId
    crash: bool  # True = crash, False = recover


class FailureInjector:
    """Schedules crash/recovery events and notifies interested parties."""

    def __init__(self, sim: Simulation, network: Network):
        self.sim = sim
        self.network = network
        self.events: List[FailureEvent] = []
        self._hooks: Dict[NodeId, List[Callable[[bool], None]]] = {}

    def on_transition(self, node: NodeId, hook: Callable[[bool], None]) -> None:
        """Register ``hook(crashed)`` called when ``node`` crashes/recovers."""
        self._hooks.setdefault(node, []).append(hook)

    def crash_at(self, time: int, node: NodeId) -> "FailureInjector":
        """Schedule a fail-stop crash of ``node`` at ``time``."""
        self.events.append(FailureEvent(time, node, crash=True))
        self.sim.schedule_at(time, lambda: self._apply(node, crash=True))
        return self

    def recover_at(self, time: int, node: NodeId) -> "FailureInjector":
        """Schedule recovery of ``node`` at ``time``."""
        self.events.append(FailureEvent(time, node, crash=False))
        self.sim.schedule_at(time, lambda: self._apply(node, crash=False))
        return self

    def crash_now(self, node: NodeId) -> None:
        """Crash ``node`` immediately."""
        self._apply(node, crash=True)

    def recover_now(self, node: NodeId) -> None:
        """Recover ``node`` immediately."""
        self._apply(node, crash=False)

    def _apply(self, node: NodeId, crash: bool) -> None:
        want_alive = not crash
        if self.network.has_node(node) and self.network.is_alive(node) == want_alive:
            # Already in the requested state: crashing a crashed node or
            # recovering a live one is a no-op, and in particular the
            # transition hooks must not fire a second time (they wipe
            # and rebuild protocol state).  Unknown nodes still raise,
            # via set_alive below.
            return
        self.network.set_alive(node, want_alive)
        for hook in self._hooks.get(node, []):
            hook(crash)
