"""Simulated network: topology, latency/bandwidth model, partitions, multicast.

The model reproduces the first-order costs of the paper's testbed (a
loaded 10 Mbps shared Ethernet with IP multicast):

* **Shared medium** — transmissions optionally serialize on one global
  channel, so unrelated traffic delays everyone (the paper's
  "interference through a common multicast transport channel").
* **Multicast** — one transmission reaches any number of destinations
  (IP-multicast semantics); the *receivers* each pay a per-message
  processing cost, so delivering a message to processes that will only
  filter it out is not free (the paper's "need to filter information at
  the LWG layer").
* **Partitions** — nodes are assigned to partition blocks; messages
  between blocks are dropped both at send and at delivery time, so a
  partition event cuts messages already in flight.

Delivery callbacks are registered per node via :meth:`Network.attach`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..runtime.interfaces import DeliveryCallback, NodeId
from ..runtime.rng import RngRegistry
from ..runtime.trace import Tracer
from .engine import Simulation

__all__ = ["DeliveryCallback", "LinkModel", "Network", "NodeId"]

#: Bound on the sorted-destination memo (distinct destination sets are
#: few — view memberships and name-server peer sets — but churny
#: workloads must not grow the cache without limit).
_SORTED_DSTS_MEMO_MAX = 1024

#: Bound on the recycled delivery-event pool.
_DELIVERY_POOL_MAX = 4096


class _Delivery:
    """A reusable delivery event.

    ``Network.multicast`` used to allocate one lambda closure (plus its
    cells) per scheduled delivery; these slotted objects are cheaper to
    fill in and are recycled through ``Network._delivery_pool`` once
    fired.  Recycling is safe because the simulation engine drops its
    reference to the callback the moment it fires, and a delivery event
    is never cancelled.
    """

    __slots__ = ("net", "src", "dst", "payload", "size")

    net: "Network"
    src: NodeId
    dst: NodeId
    payload: Any
    size: int

    def __call__(self) -> None:
        net = self.net
        net._deliver(self.src, self.dst, self.payload, self.size)
        self.payload = None  # do not pin message payloads while pooled
        pool = net._delivery_pool
        if len(pool) < _DELIVERY_POOL_MAX:
            pool.append(self)


@dataclass
class LinkModel:
    """Cost model for message transmission and reception.

    Attributes:
        latency_us: one-way propagation latency in microseconds.
        jitter_us: uniform jitter added to the latency, ``[0, jitter_us]``.
        bandwidth_bps: channel bandwidth in bits per second; serialization
            delay for a message of ``size`` bytes is ``size*8/bandwidth``.
        per_message_overhead_bytes: fixed framing overhead added to every
            message before the serialization delay is computed.
        rx_cost_us: receiver CPU cost to process one incoming message —
            paid per destination, which is what makes over-wide multicast
            groups expensive.
        loss_probability: independent per-delivery drop probability
            (unicast) or per-receiver drop probability (multicast).
    """

    latency_us: int = 500
    jitter_us: int = 100
    bandwidth_bps: int = 10_000_000
    per_message_overhead_bytes: int = 64
    rx_cost_us: int = 50
    loss_probability: float = 0.0

    def serialization_us(self, size: int) -> int:
        """Time to put ``size`` bytes on the wire."""
        total_bits = (size + self.per_message_overhead_bytes) * 8
        return max(1, int(total_bits * 1_000_000 / self.bandwidth_bps))


class Network:
    """A partitionable broadcast-domain network of named nodes."""

    def __init__(
        self,
        sim: Simulation,
        rng: RngRegistry,
        tracer: Optional[Tracer] = None,
        link: Optional[LinkModel] = None,
        shared_medium: bool = True,
    ):
        self.sim = sim
        self.link = link or LinkModel()
        self.shared_medium = shared_medium
        self.tracer = tracer or Tracer(clock=lambda: sim.now, keep_records=False)
        self._rng = rng.stream("network")
        self._callbacks: Dict[NodeId, DeliveryCallback] = {}
        self._alive: Dict[NodeId, bool] = {}
        self._partition_of: Dict[NodeId, int] = {}
        # Busy-until times for the serialization model.
        self._medium_free_at = 0
        self._egress_free_at: Dict[NodeId, int] = {}
        self._rx_free_at: Dict[NodeId, int] = {}
        # Counters for metrics.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.deliveries_scheduled = 0
        self.bytes_sent = 0
        # Fan-out memo effectiveness: a gossip detector that defeats the
        # sorted-destination memo (fresh random target set every round)
        # shows up as a miss-heavy ratio in bench snapshots.
        self.fanout_memo_hits = 0
        self.fanout_memo_misses = 0
        # Hot-path caches (see docs/PERFORMANCE.md).  The sorted-
        # destination memo preserves the replay-critical sorted iteration
        # order of ``multicast`` while paying the sort once per distinct
        # destination set; it is invalidated whenever the node population
        # changes.  The partition-block list is recomputed only when the
        # partition map or the node population changes.
        self._sorted_dsts: Dict[FrozenSet[NodeId], Tuple[NodeId, ...]] = {}
        self._blocks_cache: Optional[List[FrozenSet[NodeId]]] = None
        self._delivery_pool: List[_Delivery] = []

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, node: NodeId, callback: DeliveryCallback) -> None:
        """Register ``node`` with its delivery callback.  Node starts alive."""
        self._callbacks[node] = callback
        self._alive[node] = True
        self._partition_of.setdefault(node, 0)
        self._sorted_dsts.clear()
        self._blocks_cache = None

    def detach(self, node: NodeId) -> None:
        """Remove ``node`` from the network entirely."""
        self._callbacks.pop(node, None)
        self._alive.pop(node, None)
        self._partition_of.pop(node, None)
        self._sorted_dsts.clear()
        self._blocks_cache = None

    @property
    def nodes(self) -> List[NodeId]:
        """All attached node ids (alive or crashed)."""
        return sorted(self._callbacks)

    # ------------------------------------------------------------------
    # Liveness (crash/recovery)
    # ------------------------------------------------------------------
    def is_alive(self, node: NodeId) -> bool:
        """True if the node is attached and not crashed."""
        return self._alive.get(node, False)

    def has_node(self, node: NodeId) -> bool:
        """True if ``node`` is attached (alive or crashed)."""
        return node in self._callbacks

    def set_alive(self, node: NodeId, alive: bool) -> None:
        """Crash (``False``) or recover (``True``) a node."""
        if node not in self._callbacks:
            raise KeyError(f"unknown node {node!r}")
        self._alive[node] = alive
        self.tracer.emit("network", "crash" if not alive else "recover", node=node)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def set_partitions(self, blocks: Sequence[Iterable[NodeId]]) -> None:
        """Partition the network into the given blocks of nodes.

        Nodes not named in any block join block 0.  Messages only flow
        within a block.
        """
        assignment: Dict[NodeId, int] = {}
        for index, block in enumerate(blocks):
            for node in block:
                if node in assignment:
                    raise ValueError(f"node {node!r} appears in two partition blocks")
                assignment[node] = index
        for node in self._callbacks:
            self._partition_of[node] = assignment.get(node, 0)
        self._blocks_cache = None
        self.tracer.emit(
            "network", "partition",
            blocks=[sorted(n for n in self._callbacks if self._partition_of[n] == i)
                    for i in range(len(blocks) or 1)],
        )

    def heal(self) -> None:
        """Merge all partition blocks back into one."""
        for node in self._partition_of:
            self._partition_of[node] = 0
        self._blocks_cache = None
        self.tracer.emit("network", "heal")

    def partition_blocks(self) -> List[FrozenSet[NodeId]]:
        """Current partition blocks containing at least one node.

        Cached until the partition map changes (``set_partitions`` /
        ``heal``) or the node population changes (``attach`` /
        ``detach``); a fresh list is returned so callers may mutate it.
        """
        if self._blocks_cache is None:
            by_block: Dict[int, Set[NodeId]] = {}
            for node, block in self._partition_of.items():
                by_block.setdefault(block, set()).add(node)
            self._blocks_cache = [
                frozenset(nodes) for _, nodes in sorted(by_block.items())
            ]
        return list(self._blocks_cache)

    def reachable(self, a: NodeId, b: NodeId) -> bool:
        """True if a message sent now from ``a`` would be deliverable to ``b``."""
        return (
            self._alive.get(a, False)
            and self._alive.get(b, False)
            and self._partition_of.get(a) == self._partition_of.get(b)
        )

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _transmission_start(self, src: NodeId, size: int) -> Tuple[int, int]:
        """Reserve the medium; return (start_time, end_time) of serialization."""
        serialization = self.link.serialization_us(size)
        if self.shared_medium:
            start = max(self.sim.now, self._medium_free_at)
            end = start + serialization
            self._medium_free_at = end
        else:
            start = max(self.sim.now, self._egress_free_at.get(src, 0))
            end = start + serialization
            self._egress_free_at[src] = end
        return start, end

    def _delivery_time(self, dst: NodeId, wire_done: int) -> int:
        """Arrival + receiver-processing completion time for one delivery."""
        jitter = self._rng.randint(0, self.link.jitter_us) if self.link.jitter_us else 0
        arrival = wire_done + self.link.latency_us + jitter
        rx_start = max(arrival, self._rx_free_at.get(dst, 0))
        rx_done = rx_start + self.link.rx_cost_us
        self._rx_free_at[dst] = rx_done
        return rx_done

    def _deliver(self, src: NodeId, dst: NodeId, payload: Any, size: int) -> None:
        # Re-check reachability at delivery: a partition or crash that
        # happened while the message was in flight drops it.
        if not self.reachable(src, dst):
            self.messages_dropped += 1
            return
        callback = self._callbacks.get(dst)
        if callback is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        callback(src, payload, size)

    def send(self, src: NodeId, dst: NodeId, payload: Any, size: int = 256) -> bool:
        """Send a unicast message.  Returns False if dropped at the source."""
        self.messages_sent += 1
        self.bytes_sent += size
        if not self.reachable(src, dst):
            self.messages_dropped += 1
            return False
        if self.link.loss_probability and self._rng.random() < self.link.loss_probability:
            self.messages_dropped += 1
            return False
        _, wire_done = self._transmission_start(src, size)
        done = self._delivery_time(dst, wire_done)
        self.deliveries_scheduled += 1
        self.sim.schedule_at(done, self._delivery_event(src, dst, payload, size))
        return True

    def multicast(
        self, src: NodeId, dsts: Iterable[NodeId], payload: Any, size: int = 256
    ) -> int:
        """Send one transmission to many destinations (IP-multicast model).

        The medium is reserved once; every reachable destination pays its
        own receive-processing cost.  Returns the number of scheduled
        deliveries.  Unreachable destinations count as per-receiver drops
        (mirroring the unicast ``send`` accounting).
        """
        self.messages_sent += 1
        self.bytes_sent += size
        if not self._alive.get(src, False):
            self.messages_dropped += 1
            return 0
        _, wire_done = self._transmission_start(src, size)
        scheduled = 0
        # Iterate destinations in sorted order: callers often pass sets,
        # and the per-receiver jitter draws below must not depend on a
        # hash-randomized iteration order or runs stop being replayable
        # across interpreter processes.  The sort is memoized per distinct
        # destination set — protocol layers multicast to the same view
        # membership over and over.
        key = frozenset(dsts)
        order = self._sorted_dsts.get(key)
        if order is None:
            self.fanout_memo_misses += 1
            if len(self._sorted_dsts) >= _SORTED_DSTS_MEMO_MAX:
                self._sorted_dsts.clear()
            order = self._sorted_dsts[key] = tuple(sorted(key))
        else:
            self.fanout_memo_hits += 1
        # The per-destination body below is ``_delivery_time`` +
        # ``reachable`` + ``_delivery_event`` inlined with hoisted
        # attribute lookups: the fan-out loop is the fabric's hottest
        # code.  The logic (including the order of RNG draws) must stay
        # exactly equivalent to the helper methods or replays diverge.
        link = self.link
        loss = link.loss_probability
        jitter_us = link.jitter_us
        latency_us = link.latency_us
        rx_cost_us = link.rx_cost_us
        rng = self._rng
        alive = self._alive
        partition_of = self._partition_of
        src_block = partition_of.get(src)
        rx_free_at = self._rx_free_at
        pool = self._delivery_pool
        schedule_at = self.sim.schedule_at
        dropped = 0
        for dst in order:
            if dst == src:
                # Loopback delivery skips the network but keeps rx cost.
                arrival = self.sim.now + latency_us
                if jitter_us:
                    arrival += rng.randint(0, jitter_us)
            else:
                if not alive.get(dst, False) or partition_of.get(dst) != src_block:
                    dropped += 1
                    continue
                if loss and rng.random() < loss:
                    dropped += 1
                    continue
                arrival = wire_done + latency_us
                if jitter_us:
                    arrival += rng.randint(0, jitter_us)
            rx_start = rx_free_at.get(dst, 0)
            if arrival > rx_start:
                rx_start = arrival
            done = rx_start + rx_cost_us
            rx_free_at[dst] = done
            if pool:
                event = pool.pop()
            else:
                event = _Delivery()
                event.net = self
            event.src = src
            event.dst = dst
            event.payload = payload
            event.size = size
            schedule_at(done, event)
            scheduled += 1
        self.messages_dropped += dropped
        self.deliveries_scheduled += scheduled
        return scheduled

    def _delivery_event(
        self, src: NodeId, dst: NodeId, payload: Any, size: int
    ) -> "_Delivery":
        """A filled-in (pooled) delivery event for the scheduler."""
        pool = self._delivery_pool
        if pool:
            event = pool.pop()
        else:
            event = _Delivery()
            event.net = self
        event.src = src
        event.dst = dst
        event.payload = payload
        event.size = size
        return event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network(nodes={len(self._callbacks)}, "
            f"blocks={len(self.partition_blocks())}, "
            f"sent={self.messages_sent}, delivered={self.messages_delivered})"
        )
