"""Simulated network: topology, latency/bandwidth model, partitions, multicast.

The model reproduces the first-order costs of the paper's testbed (a
loaded 10 Mbps shared Ethernet with IP multicast):

* **Shared medium** — transmissions optionally serialize on one global
  channel, so unrelated traffic delays everyone (the paper's
  "interference through a common multicast transport channel").
* **Multicast** — one transmission reaches any number of destinations
  (IP-multicast semantics); the *receivers* each pay a per-message
  processing cost, so delivering a message to processes that will only
  filter it out is not free (the paper's "need to filter information at
  the LWG layer").
* **Partitions** — nodes are assigned to partition blocks; messages
  between blocks are dropped both at send and at delivery time, so a
  partition event cuts messages already in flight.

Delivery callbacks are registered per node via :meth:`Network.attach`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..runtime.interfaces import DeliveryCallback, NodeId
from ..runtime.rng import RngRegistry
from ..runtime.trace import Tracer
from .engine import Simulation

__all__ = ["DeliveryCallback", "LinkModel", "Network", "NodeId"]


@dataclass
class LinkModel:
    """Cost model for message transmission and reception.

    Attributes:
        latency_us: one-way propagation latency in microseconds.
        jitter_us: uniform jitter added to the latency, ``[0, jitter_us]``.
        bandwidth_bps: channel bandwidth in bits per second; serialization
            delay for a message of ``size`` bytes is ``size*8/bandwidth``.
        per_message_overhead_bytes: fixed framing overhead added to every
            message before the serialization delay is computed.
        rx_cost_us: receiver CPU cost to process one incoming message —
            paid per destination, which is what makes over-wide multicast
            groups expensive.
        loss_probability: independent per-delivery drop probability
            (unicast) or per-receiver drop probability (multicast).
    """

    latency_us: int = 500
    jitter_us: int = 100
    bandwidth_bps: int = 10_000_000
    per_message_overhead_bytes: int = 64
    rx_cost_us: int = 50
    loss_probability: float = 0.0

    def serialization_us(self, size: int) -> int:
        """Time to put ``size`` bytes on the wire."""
        total_bits = (size + self.per_message_overhead_bytes) * 8
        return max(1, int(total_bits * 1_000_000 / self.bandwidth_bps))


class Network:
    """A partitionable broadcast-domain network of named nodes."""

    def __init__(
        self,
        sim: Simulation,
        rng: RngRegistry,
        tracer: Optional[Tracer] = None,
        link: Optional[LinkModel] = None,
        shared_medium: bool = True,
    ):
        self.sim = sim
        self.link = link or LinkModel()
        self.shared_medium = shared_medium
        self.tracer = tracer or Tracer(clock=lambda: sim.now, keep_records=False)
        self._rng = rng.stream("network")
        self._callbacks: Dict[NodeId, DeliveryCallback] = {}
        self._alive: Dict[NodeId, bool] = {}
        self._partition_of: Dict[NodeId, int] = {}
        # Busy-until times for the serialization model.
        self._medium_free_at = 0
        self._egress_free_at: Dict[NodeId, int] = {}
        self._rx_free_at: Dict[NodeId, int] = {}
        # Counters for metrics.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, node: NodeId, callback: DeliveryCallback) -> None:
        """Register ``node`` with its delivery callback.  Node starts alive."""
        self._callbacks[node] = callback
        self._alive[node] = True
        self._partition_of.setdefault(node, 0)

    def detach(self, node: NodeId) -> None:
        """Remove ``node`` from the network entirely."""
        self._callbacks.pop(node, None)
        self._alive.pop(node, None)
        self._partition_of.pop(node, None)

    @property
    def nodes(self) -> List[NodeId]:
        """All attached node ids (alive or crashed)."""
        return sorted(self._callbacks)

    # ------------------------------------------------------------------
    # Liveness (crash/recovery)
    # ------------------------------------------------------------------
    def is_alive(self, node: NodeId) -> bool:
        """True if the node is attached and not crashed."""
        return self._alive.get(node, False)

    def has_node(self, node: NodeId) -> bool:
        """True if ``node`` is attached (alive or crashed)."""
        return node in self._callbacks

    def set_alive(self, node: NodeId, alive: bool) -> None:
        """Crash (``False``) or recover (``True``) a node."""
        if node not in self._callbacks:
            raise KeyError(f"unknown node {node!r}")
        self._alive[node] = alive
        self.tracer.emit("network", "crash" if not alive else "recover", node=node)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def set_partitions(self, blocks: Sequence[Iterable[NodeId]]) -> None:
        """Partition the network into the given blocks of nodes.

        Nodes not named in any block join block 0.  Messages only flow
        within a block.
        """
        assignment: Dict[NodeId, int] = {}
        for index, block in enumerate(blocks):
            for node in block:
                if node in assignment:
                    raise ValueError(f"node {node!r} appears in two partition blocks")
                assignment[node] = index
        for node in self._callbacks:
            self._partition_of[node] = assignment.get(node, 0)
        self.tracer.emit(
            "network", "partition",
            blocks=[sorted(n for n in self._callbacks if self._partition_of[n] == i)
                    for i in range(len(blocks) or 1)],
        )

    def heal(self) -> None:
        """Merge all partition blocks back into one."""
        for node in self._partition_of:
            self._partition_of[node] = 0
        self.tracer.emit("network", "heal")

    def partition_blocks(self) -> List[FrozenSet[NodeId]]:
        """Current partition blocks containing at least one node."""
        by_block: Dict[int, Set[NodeId]] = {}
        for node, block in self._partition_of.items():
            by_block.setdefault(block, set()).add(node)
        return [frozenset(nodes) for _, nodes in sorted(by_block.items())]

    def reachable(self, a: NodeId, b: NodeId) -> bool:
        """True if a message sent now from ``a`` would be deliverable to ``b``."""
        return (
            self._alive.get(a, False)
            and self._alive.get(b, False)
            and self._partition_of.get(a) == self._partition_of.get(b)
        )

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _transmission_start(self, src: NodeId, size: int) -> Tuple[int, int]:
        """Reserve the medium; return (start_time, end_time) of serialization."""
        serialization = self.link.serialization_us(size)
        if self.shared_medium:
            start = max(self.sim.now, self._medium_free_at)
            end = start + serialization
            self._medium_free_at = end
        else:
            start = max(self.sim.now, self._egress_free_at.get(src, 0))
            end = start + serialization
            self._egress_free_at[src] = end
        return start, end

    def _delivery_time(self, dst: NodeId, wire_done: int) -> int:
        """Arrival + receiver-processing completion time for one delivery."""
        jitter = self._rng.randint(0, self.link.jitter_us) if self.link.jitter_us else 0
        arrival = wire_done + self.link.latency_us + jitter
        rx_start = max(arrival, self._rx_free_at.get(dst, 0))
        rx_done = rx_start + self.link.rx_cost_us
        self._rx_free_at[dst] = rx_done
        return rx_done

    def _deliver(self, src: NodeId, dst: NodeId, payload: Any, size: int) -> None:
        # Re-check reachability at delivery: a partition or crash that
        # happened while the message was in flight drops it.
        if not self.reachable(src, dst):
            self.messages_dropped += 1
            return
        callback = self._callbacks.get(dst)
        if callback is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        callback(src, payload, size)

    def send(self, src: NodeId, dst: NodeId, payload: Any, size: int = 256) -> bool:
        """Send a unicast message.  Returns False if dropped at the source."""
        self.messages_sent += 1
        self.bytes_sent += size
        if not self.reachable(src, dst):
            self.messages_dropped += 1
            return False
        if self.link.loss_probability and self._rng.random() < self.link.loss_probability:
            self.messages_dropped += 1
            return False
        _, wire_done = self._transmission_start(src, size)
        done = self._delivery_time(dst, wire_done)
        self.sim.schedule_at(done, lambda: self._deliver(src, dst, payload, size))
        return True

    def multicast(
        self, src: NodeId, dsts: Iterable[NodeId], payload: Any, size: int = 256
    ) -> int:
        """Send one transmission to many destinations (IP-multicast model).

        The medium is reserved once; every reachable destination pays its
        own receive-processing cost.  Returns the number of scheduled
        deliveries.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        if not self._alive.get(src, False):
            self.messages_dropped += 1
            return 0
        _, wire_done = self._transmission_start(src, size)
        scheduled = 0
        # Iterate destinations in sorted order: callers often pass sets,
        # and the per-receiver jitter draws below must not depend on a
        # hash-randomized iteration order or runs stop being replayable
        # across interpreter processes.
        for dst in sorted(dsts):
            if dst == src:
                # Loopback delivery skips the network but keeps rx cost.
                done = self._delivery_time(dst, self.sim.now)
                self.sim.schedule_at(done, self._make_delivery(src, dst, payload, size))
                scheduled += 1
                continue
            if not self.reachable(src, dst):
                continue
            if self.link.loss_probability and self._rng.random() < self.link.loss_probability:
                self.messages_dropped += 1
                continue
            done = self._delivery_time(dst, wire_done)
            self.sim.schedule_at(done, self._make_delivery(src, dst, payload, size))
            scheduled += 1
        return scheduled

    def _make_delivery(
        self, src: NodeId, dst: NodeId, payload: Any, size: int
    ) -> Callable[[], None]:
        return lambda: self._deliver(src, dst, payload, size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network(nodes={len(self._callbacks)}, "
            f"blocks={len(self.partition_blocks())}, "
            f"sent={self.messages_sent}, delivered={self.messages_delivered})"
        )
