"""Discrete-event simulation substrate.

This package stands in for the paper's physical testbed (Sparc10
workstations on a loaded 10 Mbps Ethernet): a deterministic event loop,
a partitionable broadcast network with latency/bandwidth/receive-cost
modelling, crash injection and scripted partition schedules.
"""

from .engine import MS, SECOND, EventHandle, Simulation, SimulationError
from .failure import FailureEvent, FailureInjector
from .network import LinkModel, Network, NodeId
from .partition import PartitionEvent, PartitionSchedule
from .process import Process, SimEnv
from .rng import RngRegistry
from .trace import NullTracer, TraceRecord, Tracer
from .transport import ReliableTransport

__all__ = [
    "MS",
    "SECOND",
    "EventHandle",
    "Simulation",
    "SimulationError",
    "FailureEvent",
    "FailureInjector",
    "LinkModel",
    "Network",
    "NodeId",
    "PartitionEvent",
    "PartitionSchedule",
    "Process",
    "SimEnv",
    "RngRegistry",
    "NullTracer",
    "TraceRecord",
    "Tracer",
    "ReliableTransport",
]
