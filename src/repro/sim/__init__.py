"""Discrete-event simulation backend.

This package stands in for the paper's physical testbed (Sparc10
workstations on a loaded 10 Mbps Ethernet): a deterministic event loop,
a partitionable broadcast network with latency/bandwidth/receive-cost
modelling, crash injection and scripted partition schedules.

It is one implementation of the backend-agnostic runtime interfaces in
:mod:`repro.runtime` — :class:`Simulation` is the clock and scheduler,
:class:`Network` the fabric, and :class:`SimRuntime` the bundle handed
to protocol code.  The real-time counterpart is
:mod:`repro.runtime.asyncio_backend`.
"""

from .engine import MS, SECOND, EventHandle, Simulation, SimulationError
from .failure import FailureEvent, FailureInjector
from .network import LinkModel, Network, NodeId
from .partition import PartitionEvent, PartitionSchedule
from .process import Process, SimEnv, SimRuntime
from .rng import RngRegistry
from .trace import NullTracer, TraceRecord, Tracer
from .transport import ReliableTransport

__all__ = [
    "SimRuntime",
    "MS",
    "SECOND",
    "EventHandle",
    "Simulation",
    "SimulationError",
    "FailureEvent",
    "FailureInjector",
    "LinkModel",
    "Network",
    "NodeId",
    "PartitionEvent",
    "PartitionSchedule",
    "Process",
    "SimEnv",
    "RngRegistry",
    "NullTracer",
    "TraceRecord",
    "Tracer",
    "ReliableTransport",
]
