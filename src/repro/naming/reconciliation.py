"""Database reconciliation when name servers reconnect.

"When name servers become reachable by other name servers after a
network partition has been healed, a database reconciliation procedure
needs to be performed.  Mappings that are known in one view and not
known in the other view are simply propagated" (Section 5.2) — and
because records are per-``(lwg, lwg_view)`` single-writer entries,
propagation plus genealogy GC is a complete merge: truly *conflicting*
mappings (concurrent views on different HWGs) are not resolved here but
surfaced through MULTIPLE-MAPPINGS callbacks for the LWG layer to
reconcile (Section 6.2).

This module holds the pure merge arithmetic used by the server's
anti-entropy exchange, so it can be unit-tested and benchmarked without
a network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ..vsync.view import ViewId
from .database import NamingDatabase
from .records import LwgId, MappingRecord, RecordKey

Digest = Dict[RecordKey, Tuple[int, str]]


@dataclass
class ReconcileResult:
    """Outcome of absorbing a batch of remote records/genealogy."""

    applied: int = 0
    ignored: int = 0
    gc_removed: int = 0
    touched_lwgs: Set[LwgId] = field(default_factory=set)


def absorb(
    db: NamingDatabase,
    records: Iterable[MappingRecord],
    genealogy: Dict[ViewId, Tuple[ViewId, ...]],
) -> ReconcileResult:
    """Merge remote ``records`` and ``genealogy`` edges into ``db``.

    Genealogy is absorbed first so that garbage collection triggered by
    record insertion already sees the full ancestry.
    """
    result = ReconcileResult()
    db.absorb_genealogy(genealogy)
    for record in records:
        if db.apply(record):
            result.applied += 1
            result.touched_lwgs.add(record.lwg)
        else:
            result.ignored += 1
    # A genealogy-only update can also obsolete existing records.
    result.gc_removed = db.garbage_collect()
    return result


def records_to_send(db: NamingDatabase, remote_digest: Digest) -> List[MappingRecord]:
    """Records the remote replica lacks or holds in an older version."""
    return db.records_missing_from(remote_digest)


def genealogy_to_send(
    db: NamingDatabase, remote_children: Iterable[ViewId]
) -> Dict[ViewId, Tuple[ViewId, ...]]:
    """Genealogy edges whose child view the remote replica has not seen."""
    known = set(remote_children)
    return {
        child: parents
        for child, parents in db.genealogy_edges().items()
        if child not in known
    }


def databases_consistent(replicas: Iterable[NamingDatabase]) -> bool:
    """True if every replica stores exactly the same records (test helper)."""
    snapshots = [tuple(db.snapshot()) for db in replicas]
    return all(s == snapshots[0] for s in snapshots[1:])


def databases_identical(replicas: Iterable[NamingDatabase]) -> bool:
    """Stronger than :func:`databases_consistent`: byte-identical replicas.

    Compares full content hashes, so tombstones and genealogy knowledge
    must match too — the fixed point at which anti-entropy exchanges
    short-circuit to hash acknowledgements.
    """
    hashes = [db.content_hash() for db in replicas]
    return all(h == hashes[0] for h in hashes[1:])
