"""Database reconciliation when name servers reconnect.

"When name servers become reachable by other name servers after a
network partition has been healed, a database reconciliation procedure
needs to be performed.  Mappings that are known in one view and not
known in the other view are simply propagated" (Section 5.2) — and
because records are per-``(lwg, lwg_view)`` single-writer entries,
propagation plus genealogy GC is a complete merge: truly *conflicting*
mappings (concurrent views on different HWGs) are not resolved here but
surfaced through MULTIPLE-MAPPINGS callbacks for the LWG layer to
reconcile (Section 6.2).

This module holds the pure merge arithmetic used by the server's
anti-entropy exchange, so it can be unit-tested and benchmarked without
a network.  :class:`MerkleSession` is the wire-format-agnostic engine
of the Merkle-prefix descent (PROTOCOLS.md §16): each call to
:meth:`MerkleSession.handle` consumes one incoming :class:`SyncDelta`
and produces the outgoing one, descending the two replicas' digest
trees until only the divergent leaves' records travel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..vsync.view import ViewId
from .database import NamingDatabase
from .merkle import EMPTY_HASH
from .records import LwgId, MappingRecord, RecordKey

Digest = Dict[RecordKey, Tuple[int, str]]

#: Hard ceiling on descent steps per session.  A full descent of a
#: depth-4 tree needs ~2 messages per level plus the leaf exchanges, so
#: a healthy session ends well below this; the cap only bounds damage
#: when replicas mutate heavily mid-descent (the next gossip tick
#: resumes from the — strictly closer — new state).
DEFAULT_MAX_SYNC_ROUNDS = 32


@dataclass
class ReconcileResult:
    """Outcome of absorbing a batch of remote records/genealogy."""

    applied: int = 0
    ignored: int = 0
    gc_removed: int = 0
    touched_lwgs: Set[LwgId] = field(default_factory=set)


def absorb(
    db: NamingDatabase,
    records: Iterable[MappingRecord],
    genealogy: Dict[ViewId, Tuple[ViewId, ...]],
) -> ReconcileResult:
    """Merge remote ``records`` and ``genealogy`` edges into ``db``.

    Genealogy is absorbed first so that garbage collection triggered by
    record insertion already sees the full ancestry.
    """
    result = ReconcileResult()
    db.absorb_genealogy(genealogy)
    for record in records:
        if db.apply(record):
            result.applied += 1
            result.touched_lwgs.add(record.lwg)
        else:
            result.ignored += 1
    # New genealogy can obsolete records of *any* LWG, so only an
    # edge-carrying update pays the full-database sweep; record-only
    # updates were already collected per-LWG inside ``apply``.
    if genealogy:
        result.gc_removed = db.garbage_collect()
    return result


def records_to_send(db: NamingDatabase, remote_digest: Digest) -> List[MappingRecord]:
    """Records the remote replica lacks or holds in an older version."""
    return db.records_missing_from(remote_digest)


def genealogy_to_send(
    db: NamingDatabase, remote_children: Iterable[ViewId]
) -> Dict[ViewId, Tuple[ViewId, ...]]:
    """Genealogy edges whose child view the remote replica has not seen."""
    known = set(remote_children)
    return {
        child: parents
        for child, parents in db.genealogy_edges().items()
        if child not in known
    }


# ----------------------------------------------------------------------
# Merkle-prefix descent (PROTOCOLS.md §16)
# ----------------------------------------------------------------------
@dataclass
class SyncDelta:
    """One side's contribution to one step of the descent.

    Every field is self-describing — a receiver needs no per-session
    state beyond "which leaf digests and genealogy children have I
    already sent", so steps survive reordering against session teardown
    (a fresh session can answer any step correctly, just less
    economically).

    * ``expansions`` — for each probed prefix, the sender's non-empty
      child subtree hashes (``child hex char -> hash``).
    * ``leaf_digests`` — for each divergence-localized prefix, the
      sender's ``key -> order_key`` leaf entries under it (the flat
      digest, restricted to one subtree; ``{}`` means "I hold nothing
      here — ship me everything").
    * ``records`` — full records the receiver lacks or holds older,
      computed against the receiver's previously-sent leaf digests.
    * ``genealogy`` / ``genealogy_children`` — ancestry edges for the
      receiver, and the sender's known child views so the receiver can
      compute the reverse delta (sent once per session).
    """

    expansions: Dict[str, Dict[str, str]] = field(default_factory=dict)
    leaf_digests: Dict[str, Digest] = field(default_factory=dict)
    records: Tuple[MappingRecord, ...] = ()
    genealogy: Dict[ViewId, Tuple[ViewId, ...]] = field(default_factory=dict)
    genealogy_children: Optional[Tuple[ViewId, ...]] = None

    def is_empty(self) -> bool:
        return not (
            self.expansions
            or self.leaf_digests
            or self.records
            or self.genealogy
            or self.genealogy_children is not None
        )


class MerkleSession:
    """One replica's half of a Merkle descent with one peer.

    Symmetric: both the initiator and the responder run the same
    :meth:`handle` loop; only :meth:`opener` distinguishes the caller.
    The session mutates ``db`` (via :func:`absorb`) as records arrive,
    so subtree hashes converge while the descent is still in flight.

    ``scope`` restricts the descent to a set of subtree prefixes — the
    shards both servers own under a sharded deployment (PROTOCOLS.md
    §18).  The default root scope ``("",)`` is the whole-database
    descent, unchanged.  Both sides derive the same scope from the
    shard map, so it never travels on the wire.  ``accept`` filters
    incoming records before they are absorbed (a sharded server keeps
    only records of shards it owns); genealogy is deliberately *not*
    filtered — ancestry knowledge is global and must flood for GC to
    agree everywhere.
    """

    def __init__(
        self,
        db: NamingDatabase,
        scope: Tuple[str, ...] = ("",),
        accept: Optional[Callable[[MappingRecord], bool]] = None,
    ):
        self.db = db
        self.scope = scope
        self.accept = accept
        #: Steps this side has processed (the server bounds this).
        self.rounds = 0
        #: Records shipped by this side over the whole session.
        self.records_sent = 0
        #: Result of the most recent absorb (for tracing/notification).
        self.last_absorb = ReconcileResult()
        self._sent_leaf: Set[str] = set()
        self._sent_children = False

    def opener(self) -> SyncDelta:
        """Round 0: probe the scoped subtrees, offer genealogy exchange."""
        self._sent_children = True
        return SyncDelta(
            expansions={p: self.db.merkle.children(p) for p in self.scope},
            genealogy_children=tuple(self.db.genealogy_edges()),
        )

    def handle(self, incoming: SyncDelta) -> Optional[SyncDelta]:
        """Consume one step; return the next step or None when done."""
        self.rounds += 1
        out = SyncDelta()
        incoming_records = incoming.records
        if self.accept is not None and incoming_records:
            incoming_records = tuple(r for r in incoming_records if self.accept(r))
        if incoming_records or incoming.genealogy:
            self.last_absorb = absorb(self.db, incoming_records, incoming.genealogy)
        else:
            self.last_absorb = ReconcileResult()
        if incoming.genealogy_children is not None:
            out.genealogy = genealogy_to_send(self.db, incoming.genealogy_children)
            if not self._sent_children:
                mine = tuple(self.db.genealogy_edges())
                # Offering our child-view list only pays off if it can
                # elicit edges: identical lists would make the peer's
                # child-filtered delta empty, so stay silent and let an
                # in-sync exchange end at the opener.
                if set(mine) != set(incoming.genealogy_children):
                    out.genealogy_children = mine
                self._sent_children = True
        records: List[MappingRecord] = []
        for prefix in sorted(incoming.leaf_digests):
            records.extend(
                self.db.records_missing_under(prefix, incoming.leaf_digests[prefix])
            )
            if prefix not in self._sent_leaf:
                self._sent_leaf.add(prefix)
                out.leaf_digests[prefix] = self.db.leaf_digest_under(prefix)
        for parent in sorted(incoming.expansions):
            self._compare_children(parent, incoming.expansions[parent], out, records)
        if records:
            seen: Set[RecordKey] = set()
            unique = []
            for record in records:
                if record.key not in seen:
                    seen.add(record.key)
                    unique.append(record)
            out.records = tuple(unique)
            self.records_sent += len(unique)
        return None if out.is_empty() else out

    def _compare_children(
        self,
        parent: str,
        theirs: Dict[str, str],
        out: SyncDelta,
        records: List[MappingRecord],
    ) -> None:
        mine = self.db.merkle.children(parent)
        for child_char in sorted(set(theirs) | set(mine)):
            child = parent + child_char
            their_hash = theirs.get(child_char, EMPTY_HASH)
            my_hash = mine.get(child_char, EMPTY_HASH)
            if their_hash == my_hash:
                continue
            if their_hash == EMPTY_HASH:
                # The peer holds nothing under this subtree: everything
                # of ours is part of the delta, no digest needed.
                records.extend(self.db.records_missing_under(child, {}))
            elif my_hash == EMPTY_HASH or self.db.merkle.is_bucket(child):
                # Divergence localized (or one-sided): exchange leaves.
                if child not in self._sent_leaf:
                    self._sent_leaf.add(child)
                    out.leaf_digests[child] = self.db.leaf_digest_under(child)
            else:
                # Both non-empty and still internal: descend one level.
                out.expansions[child] = self.db.merkle.children(child)


def merkle_exchange(
    left: NamingDatabase,
    right: NamingDatabase,
    max_rounds: int = DEFAULT_MAX_SYNC_ROUNDS,
) -> List[Tuple[str, SyncDelta]]:
    """Run one full descent between two in-memory replicas.

    Returns the alternating step transcript as ``(direction, delta)``
    pairs (``"left"``/``"right"`` is the *sender*), so tests and
    benchmarks can weigh every step with the real wire sizes.  The
    session the server runs is exactly this loop, one network hop per
    step.
    """
    sessions = {"left": MerkleSession(left), "right": MerkleSession(right)}
    sender = "left"
    delta: Optional[SyncDelta] = sessions[sender].opener()
    transcript: List[Tuple[str, SyncDelta]] = []
    while delta is not None and len(transcript) < max_rounds:
        transcript.append((sender, delta))
        receiver = "right" if sender == "left" else "left"
        delta = sessions[receiver].handle(delta)
        sender = receiver
    return transcript


def databases_consistent(replicas: Iterable[NamingDatabase]) -> bool:
    """True if every replica stores exactly the same records (test helper)."""
    snapshots = [tuple(db.snapshot()) for db in replicas]
    return all(s == snapshots[0] for s in snapshots[1:])


def databases_identical(replicas: Iterable[NamingDatabase]) -> bool:
    """Stronger than :func:`databases_consistent`: byte-identical replicas.

    Compares full content hashes, so tombstones and genealogy knowledge
    must match too — the fixed point at which anti-entropy exchanges
    short-circuit to hash acknowledgements.
    """
    hashes = [db.content_hash() for db in replicas]
    return all(h == hashes[0] for h in hashes[1:])
