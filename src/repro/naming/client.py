"""Client side of the naming service (the Table-2 interface).

A :class:`NamingClient` lives on every application process, piggybacked
on its protocol stack.  It exposes the paper's three primitives —
``set``, ``read`` and ``testset`` — in their view-augmented form, as
asynchronous calls (the simulation is event-driven): each returns via a
completion callback carrying the live records the contacted server
holds for the LWG.

Partition tolerance comes from retry-and-rotate: a request that times
out is retried against the next server in the list, forever — the
deployment assumption (Section 5.2) is that every partition retains at
least one reachable server.  All operations are idempotent (records are
versioned, testset re-proposes the same record), so retries are safe.

With a :class:`~repro.naming.sharding.ShardMap` the client routes each
request to the key's replica set instead of spraying the full roster:
the fast path sends to one owner of the LWG's shard, a timeout rotates
to the next owner, and only after every owner has been tried twice
does the client fall back to the full roster — where any non-owner
forwards to an owner on its behalf (owner-miss retry, PROTOCOLS.md
§18).  Without a map the legacy rotate-everything behaviour is
bit-identical to before.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..runtime.interfaces import NodeId
from ..vsync.view import ViewId
from .messages import MultipleMappings, NamingMessage, NsRequest, NsResponse
from .records import HwgId, LwgId, MappingRecord
from .sharding import ShardMap

ReplyCallback = Callable[[Tuple[MappingRecord, ...]], None]
MultipleMappingsHandler = Callable[[MultipleMappings], None]

#: Per-attempt RPC timeout before rotating to the next server.
RPC_TIMEOUT_US = 150_000

#: Hardened-mode (VsyncConfig.heal_hardening) retry backoff cap.  The
#: fixed-interval retry above is fine when a timeout means "server
#: unreachable", but during a mass heal it means "wire congested" — and
#: re-sending every 150 ms then multiplies every in-flight request by
#: the latency/timeout ratio, which is what *keeps* the wire congested
#: (classic retry-induced congestion collapse).  Hardened clients double
#: the per-attempt timeout instead, capped here.
RPC_BACKOFF_CAP_US = 4_800_000


class _PendingCall:
    """One outstanding RPC with its retry state."""

    def __init__(self, request: NsRequest, on_reply: Optional[ReplyCallback]):
        self.request = request
        self.on_reply = on_reply
        self.attempts = 0
        self.timer = None
        self.done = False


class NamingClient:
    """Naming-service access for one application process."""

    def __init__(
        self,
        stack,
        servers: Sequence[NodeId],
        shard_map: Optional[ShardMap] = None,
    ):
        if not servers:
            raise ValueError("naming client needs at least one server")
        self.stack = stack
        self.env = stack.env
        self.node: NodeId = stack.node
        self.servers: List[NodeId] = list(servers)
        #: Replica-set routing (PROTOCOLS.md §18); None = legacy rotation.
        self.shard_map = shard_map
        self._request_counter = 0
        self._version_counter = 0
        self._pending: Dict[int, _PendingCall] = {}
        # Spread first-choice servers across clients deterministically.
        self._server_offset = sum(ord(c) for c in self.node) % len(self.servers)
        self.on_multiple_mappings: Optional[MultipleMappingsHandler] = None
        self.requests_sent = 0
        self.retries = 0
        stack.register_handler(self._handle_message)

    # ------------------------------------------------------------------
    # Public API (Table 2, view-augmented per Section 5.2)
    # ------------------------------------------------------------------
    def next_version(self) -> int:
        """Monotonic version stamp for records written by this process."""
        self._version_counter += 1
        return self._version_counter

    def observe_version(self, version: int) -> None:
        """Raise the version floor (single-writer monotonic discipline)
        after overwriting a record that already carried ``version``."""
        self._version_counter = max(self._version_counter, version)

    def set(
        self,
        record: MappingRecord,
        parents: Sequence[ViewId] = (),
        on_reply: Optional[ReplyCallback] = None,
    ) -> None:
        """ns.set: establish/update a mapping for an LWG view."""
        self._call("set", record.lwg, record, tuple(parents), on_reply)

    def read(self, lwg: LwgId, on_reply: ReplyCallback) -> None:
        """ns.read: fetch the live mappings currently stored for ``lwg``."""
        self._call("read", lwg, None, (), on_reply)

    def testset(
        self,
        record: MappingRecord,
        parents: Sequence[ViewId] = (),
        on_reply: Optional[ReplyCallback] = None,
    ) -> None:
        """ns.testset: return the current mapping, installing ours if none.

        The reply carries the winning records — compare against the
        proposal to learn whether it was accepted.
        """
        self._call("testset", record.lwg, record, tuple(parents), on_reply)

    def unset(
        self,
        record: MappingRecord,
        on_reply: Optional[ReplyCallback] = None,
    ) -> None:
        """Remove a mapping via tombstone (LWG destroyed)."""
        self._call("unset", record.lwg, record, (), on_reply)

    # ------------------------------------------------------------------
    # RPC machinery
    # ------------------------------------------------------------------
    def _call(
        self,
        op: str,
        lwg: LwgId,
        record: Optional[MappingRecord],
        parents: Tuple[ViewId, ...],
        on_reply: Optional[ReplyCallback],
    ) -> None:
        self._request_counter += 1
        request = NsRequest(
            request_id=self._request_counter,
            client=self.node,
            op=op,
            lwg=lwg,
            record=record,
            parents=parents,
        )
        call = _PendingCall(request, on_reply)
        self._pending[request.request_id] = call
        self._attempt(call)

    def _target(self, call: _PendingCall) -> NodeId:
        """The server for this attempt: owners first, then the roster.

        Sharded routing tries the LWG's replica set round-robin (the
        single-owner fast path, then owner-miss rotation).  After two
        full cycles over the owners — all of them presumed unreachable,
        e.g. across a partition — it widens to the whole roster, where
        any reachable non-owner forwards to an owner for us.
        """
        if self.shard_map is None:
            return self.servers[
                (self._server_offset + call.attempts) % len(self.servers)
            ]
        owners = self.shard_map.owners_for_lwg(call.request.lwg)
        if call.attempts < 2 * len(owners):
            return owners[(self._server_offset + call.attempts) % len(owners)]
        return self.servers[(self._server_offset + call.attempts) % len(self.servers)]

    def _attempt(self, call: _PendingCall) -> None:
        if call.done:
            return
        server = self._target(call)
        call.attempts += 1
        if call.attempts > 1:
            self.retries += 1
        self.requests_sent += 1
        self.stack.send(server, call.request, call.request.size_bytes())
        delay = RPC_TIMEOUT_US
        if getattr(getattr(self.stack, "config", None), "heal_hardening", False):
            delay = min(
                RPC_TIMEOUT_US << min(call.attempts - 1, 5), RPC_BACKOFF_CAP_US
            )
        call.timer = self.stack.set_timer(delay, lambda: self._attempt(call))

    def _handle_message(self, src: NodeId, msg: Any) -> bool:
        if isinstance(msg, NsResponse):
            call = self._pending.pop(msg.request_id, None)
            if call is not None and not call.done:
                call.done = True
                if call.timer is not None:
                    call.timer.cancel()
                if call.on_reply is not None:
                    call.on_reply(msg.records)
            return True
        if isinstance(msg, MultipleMappings):
            if self.on_multiple_mappings is not None:
                self.on_multiple_mappings(msg)
            return True
        return isinstance(msg, NamingMessage)

    def cancel_all(self) -> None:
        """Drop every outstanding call (process shutdown)."""
        for call in self._pending.values():
            call.done = True
            if call.timer is not None:
                call.timer.cancel()
        self._pending.clear()
