"""Partitionable naming service (paper Section 5.2).

A weakly-consistent replicated database of view-to-view mappings
(LWG view -> HWG view) with the Table-2 client interface, eager push +
anti-entropy replication, reconciliation on partition heal, genealogy-
driven garbage collection and MULTIPLE-MAPPINGS conflict callbacks.
"""

from .callbacks import ConflictNotifier
from .client import NamingClient
from .database import NamingDatabase
from .merkle import MerklePrefixTree
from .messages import MultipleMappings, NsRequest, NsResponse
from .persistence import (
    CORRUPTION_MODES,
    DurableStore,
    FileStorage,
    LoadResult,
    MemoryStorage,
    inject_corruption,
)
from .records import HwgId, LwgId, MappingRecord
from .reconciliation import (
    MerkleSession,
    ReconcileResult,
    SyncDelta,
    absorb,
    databases_consistent,
    databases_identical,
    merkle_exchange,
)
from .server import NameServer
from .sharding import (
    ALL_SHARDS,
    NUM_SHARDS,
    SHARD_PREFIX_LEN,
    ShardMap,
    shard_of_key,
    shard_of_lwg,
)

__all__ = [
    "ConflictNotifier",
    "NamingClient",
    "NamingDatabase",
    "MerklePrefixTree",
    "MerkleSession",
    "MultipleMappings",
    "NsRequest",
    "NsResponse",
    "HwgId",
    "LwgId",
    "MappingRecord",
    "CORRUPTION_MODES",
    "DurableStore",
    "FileStorage",
    "LoadResult",
    "MemoryStorage",
    "inject_corruption",
    "ReconcileResult",
    "SyncDelta",
    "absorb",
    "databases_consistent",
    "databases_identical",
    "merkle_exchange",
    "NameServer",
    "ALL_SHARDS",
    "NUM_SHARDS",
    "SHARD_PREFIX_LEN",
    "ShardMap",
    "shard_of_key",
    "shard_of_lwg",
]
