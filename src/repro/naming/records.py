"""Naming-service records: view-to-view mappings.

The partitionable naming service does not merely store "LWG -> HWG"
pairs; following Section 5.2 it "stores mappings between specific LWG
views and HWG views", recognising that concurrent views can exist at
both levels.  Each record is therefore keyed by ``(lwg, lwg_view)`` and
carries the HWG *view* the LWG view is mapped onto.

Records are single-writer: an LWG view has exactly one coordinator at
any time, and only coordinators write mappings.  Reconciliation can
therefore use simple ``(version, writer)`` last-writer-wins per key,
with genealogy-driven garbage collection removing records of superseded
views (Table 4's evolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..vsync.view import ProcessId, ViewId

LwgId = str
HwgId = str

RecordKey = Tuple[LwgId, ViewId]


@dataclass(frozen=True)
class MappingRecord:
    """One view-to-view mapping: an LWG view mapped onto an HWG view."""

    lwg: LwgId
    lwg_view: ViewId
    lwg_members: Tuple[ProcessId, ...]
    hwg: HwgId
    hwg_view: ViewId
    version: int
    writer: ProcessId
    deleted: bool = False  # explicit-destroy tombstone

    @property
    def key(self) -> RecordKey:
        return (self.lwg, self.lwg_view)

    @property
    def coordinator(self) -> ProcessId:
        """Callback target: the coordinator of the mapped LWG view."""
        return self.lwg_members[0]

    def order_key(self) -> tuple:
        """Total order among records with the same key (used for LWW and
        in anti-entropy digests).  ``(version, writer)`` decides; the
        full-content tail makes the order total, so replica merging stays
        commutative even if a buggy or byzantine writer reuses a version
        for different content (single-writer discipline normally
        prevents that)."""
        return (self.version, self.writer, self.hwg, self.hwg_view,
                self.deleted, self.lwg_members)

    def newer_than(self, other: "MappingRecord") -> bool:
        """LWW order for records with the same key."""
        return self.order_key() > other.order_key()

    def __str__(self) -> str:
        flag = " [deleted]" if self.deleted else ""
        return f"{self.lwg}@{self.lwg_view} -> {self.hwg}@{self.hwg_view}{flag}"
