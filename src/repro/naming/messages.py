"""Wire messages of the naming service: client RPC, anti-entropy, callbacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..vsync.view import ProcessId, ViewId
from .records import HwgId, LwgId, MappingRecord, RecordKey


@dataclass(frozen=True)
class NamingMessage:
    """Base class for all naming-service traffic."""

    def size_bytes(self) -> int:
        return 128


# ----------------------------------------------------------------------
# Client RPC (Table 2: ns.set / ns.read / ns.testset, view-augmented)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NsRequest(NamingMessage):
    """Client -> server RPC request.

    ``op`` is one of ``set``, ``read``, ``testset``, ``unset``.  For
    ``set``/``testset`` the record to (conditionally) install rides in
    ``record`` with its LWG-view parents in ``parents``; ``read`` only
    needs ``lwg``.
    """

    request_id: int = 0
    client: ProcessId = ""
    op: str = "read"
    lwg: LwgId = ""
    record: Optional[MappingRecord] = None
    parents: Tuple[ViewId, ...] = ()


@dataclass(frozen=True)
class NsResponse(NamingMessage):
    """Server -> client RPC reply: the live records for the LWG."""

    request_id: int = 0
    server: ProcessId = ""
    records: Tuple[MappingRecord, ...] = ()

    def size_bytes(self) -> int:
        return 96 + 96 * len(self.records)


# ----------------------------------------------------------------------
# Anti-entropy between servers (push-pull, 3 messages)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyncRequest(NamingMessage):
    """Server A -> server B: my digest; tell me what I'm missing.

    ``db_hash`` summarises A's whole database (records + genealogy); a
    replica holding an identical database answers with an ``in_sync``
    reply and the exchange ends after two small messages.
    """

    sender: ProcessId = ""
    sync_id: int = 0
    digest: Dict[RecordKey, Tuple[int, str]] = field(default_factory=dict)
    genealogy_children: Tuple[ViewId, ...] = ()
    db_hash: str = ""

    def size_bytes(self) -> int:
        return 128 + 48 * len(self.digest) + 16 * len(self.genealogy_children)


@dataclass(frozen=True)
class SyncReply(NamingMessage):
    """B -> A: records/edges A lacks, plus B's digest so A can push back.

    When ``in_sync`` is set the databases already match and every other
    payload field is empty — the reply is just a hash acknowledgement.
    """

    sender: ProcessId = ""
    sync_id: int = 0
    records: Tuple[MappingRecord, ...] = ()
    genealogy: Dict[ViewId, Tuple[ViewId, ...]] = field(default_factory=dict)
    digest: Dict[RecordKey, Tuple[int, str]] = field(default_factory=dict)
    genealogy_children: Tuple[ViewId, ...] = ()
    in_sync: bool = False

    def size_bytes(self) -> int:
        if self.in_sync:
            return 96
        return 96 + 96 * len(self.records) + 48 * len(self.digest)


@dataclass(frozen=True)
class SyncUpdate(NamingMessage):
    """A -> B: the records/edges B turned out to be missing."""

    sender: ProcessId = ""
    sync_id: int = 0
    records: Tuple[MappingRecord, ...] = ()
    genealogy: Dict[ViewId, Tuple[ViewId, ...]] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return 96 + 96 * len(self.records)


@dataclass(frozen=True)
class PushUpdate(NamingMessage):
    """Eager write propagation: server -> every reachable peer server."""

    sender: ProcessId = ""
    records: Tuple[MappingRecord, ...] = ()
    genealogy: Dict[ViewId, Tuple[ViewId, ...]] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return 96 + 96 * len(self.records)


# ----------------------------------------------------------------------
# Callbacks (Section 6.1: global peer discovery)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MultipleMappings(NamingMessage):
    """Server -> LWG-view coordinators: your LWG has inconsistent mappings.

    "The message contains all the mappings stored for the LWG in the
    name server" (Section 6.1).
    """

    lwg: LwgId = ""
    records: Tuple[MappingRecord, ...] = ()
    server: ProcessId = ""

    def size_bytes(self) -> int:
        return 96 + 96 * len(self.records)
