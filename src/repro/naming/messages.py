"""Wire messages of the naming service: client RPC, anti-entropy, callbacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..vsync.view import ProcessId, ViewId
from .records import HwgId, LwgId, MappingRecord, RecordKey


@dataclass(frozen=True)
class NamingMessage:
    """Base class for all naming-service traffic."""

    def size_bytes(self) -> int:
        return 128


# ----------------------------------------------------------------------
# Client RPC (Table 2: ns.set / ns.read / ns.testset, view-augmented)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NsRequest(NamingMessage):
    """Client -> server RPC request.

    ``op`` is one of ``set``, ``read``, ``testset``, ``unset``.  For
    ``set``/``testset`` the record to (conditionally) install rides in
    ``record`` with its LWG-view parents in ``parents``; ``read`` only
    needs ``lwg``.

    ``forwarded`` marks a request relayed by a non-owner server to one
    of the LWG's shard owners (PROTOCOLS.md §18).  The owner answers
    ``client`` directly; a forwarded request is served wherever it
    lands (never re-forwarded), so relaying can not loop.
    """

    request_id: int = 0
    client: ProcessId = ""
    op: str = "read"
    lwg: LwgId = ""
    record: Optional[MappingRecord] = None
    parents: Tuple[ViewId, ...] = ()
    forwarded: bool = False


@dataclass(frozen=True)
class NsResponse(NamingMessage):
    """Server -> client RPC reply: the live records for the LWG."""

    request_id: int = 0
    server: ProcessId = ""
    records: Tuple[MappingRecord, ...] = ()

    def size_bytes(self) -> int:
        return 96 + 96 * len(self.records)


# ----------------------------------------------------------------------
# Anti-entropy between servers (Merkle-prefix descent, PROTOCOLS.md §16)
# ----------------------------------------------------------------------
def _expansion_bytes(expansions: Dict[str, Dict[str, str]]) -> int:
    # Per probed prefix: length-prefixed path + (child char, 64-bit
    # hash) per non-empty child.
    return sum(4 + len(p) + 9 * len(c) for p, c in expansions.items())


def _leaf_digest_bytes(leaf_digests: Dict[str, Dict[RecordKey, Tuple[int, str]]]) -> int:
    # 48 bytes per (key, order_key) entry — same rate the flat digest
    # was costed at, now restricted to divergent subtrees.
    return sum(4 + len(p) + 48 * len(d) for p, d in leaf_digests.items())


def _genealogy_bytes(genealogy: Dict[ViewId, Tuple[ViewId, ...]]) -> int:
    return sum(16 + 16 * len(parents) for parents in genealogy.values())


@dataclass(frozen=True)
class SyncRequest(NamingMessage):
    """Server A -> server B: open a Merkle descent.

    ``db_hash`` summarises A's whole database (records + genealogy); a
    replica holding an identical database answers with an ``in_sync``
    reply and the exchange ends after two small messages.  Otherwise
    ``expansions`` (the root's child subtree hashes) seeds the descent
    and ``genealogy_children`` opens the ancestry exchange — every
    subsequent step travels as a :class:`SyncReply` in either direction.
    """

    sender: ProcessId = ""
    sync_id: int = 0
    db_hash: str = ""
    expansions: Dict[str, Dict[str, str]] = field(default_factory=dict)
    genealogy_children: Optional[Tuple[ViewId, ...]] = None

    def size_bytes(self) -> int:
        return (
            96
            + _expansion_bytes(self.expansions)
            + 16 * len(self.genealogy_children or ())
        )


@dataclass(frozen=True)
class SyncReply(NamingMessage):
    """One step of the bounded descent, in either direction.

    When ``in_sync`` is set the databases already match and every other
    payload field is empty — the reply is just a hash acknowledgement.
    Otherwise the fields mirror
    :class:`~repro.naming.reconciliation.SyncDelta`: subtree-hash
    expansions to descend further, leaf digests for localized
    divergences, and the records/genealogy edges the receiver lacks.
    ``round_no`` bounds runaway sessions.
    """

    sender: ProcessId = ""
    sync_id: int = 0
    round_no: int = 0
    in_sync: bool = False
    expansions: Dict[str, Dict[str, str]] = field(default_factory=dict)
    leaf_digests: Dict[str, Dict[RecordKey, Tuple[int, str]]] = field(
        default_factory=dict
    )
    records: Tuple[MappingRecord, ...] = ()
    genealogy: Dict[ViewId, Tuple[ViewId, ...]] = field(default_factory=dict)
    genealogy_children: Optional[Tuple[ViewId, ...]] = None

    def size_bytes(self) -> int:
        if self.in_sync:
            return 96
        return (
            96
            + _expansion_bytes(self.expansions)
            + _leaf_digest_bytes(self.leaf_digests)
            + 96 * len(self.records)
            + _genealogy_bytes(self.genealogy)
            + 16 * len(self.genealogy_children or ())
        )


@dataclass(frozen=True)
class PushUpdate(NamingMessage):
    """Eager write propagation: server -> every reachable peer server."""

    sender: ProcessId = ""
    records: Tuple[MappingRecord, ...] = ()
    genealogy: Dict[ViewId, Tuple[ViewId, ...]] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return 96 + 96 * len(self.records)


# ----------------------------------------------------------------------
# Callbacks (Section 6.1: global peer discovery)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MultipleMappings(NamingMessage):
    """Server -> LWG-view coordinators: your LWG has inconsistent mappings.

    "The message contains all the mappings stored for the LWG in the
    name server" (Section 6.1).
    """

    lwg: LwgId = ""
    records: Tuple[MappingRecord, ...] = ()
    server: ProcessId = ""

    def size_bytes(self) -> int:
        return 96 + 96 * len(self.records)
